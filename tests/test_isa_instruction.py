"""Instruction operand classification: what each opcode reads, writes,
addresses, and transmits (the contract every other layer builds on)."""

import pytest

from repro.isa import Cond, FLAGS, Instruction, Op, SP


def ins(op, **kw):
    return Instruction(op, **kw)


def test_movi_operands():
    i = ins(Op.MOVI, rd=3, imm=7)
    assert i.dest_regs() == (3,)
    assert i.src_regs() == ()
    assert not i.is_transmitter


def test_mov_operands():
    i = ins(Op.MOV, rd=1, ra=2)
    assert i.dest_regs() == (1,)
    assert i.src_regs() == (2,)


@pytest.mark.parametrize("op", [Op.ADD, Op.SUB, Op.AND, Op.OR, Op.XOR,
                                Op.SHL, Op.SHR, Op.MUL])
def test_reg_alu_operands(op):
    i = ins(op, rd=1, ra=2, rb=3)
    assert i.dest_regs() == (1,)
    assert i.src_regs() == (2, 3)
    assert not i.is_transmitter


@pytest.mark.parametrize("op", [Op.ADDI, Op.SUBI, Op.ANDI, Op.ORI,
                                Op.XORI, Op.SHLI, Op.SHRI, Op.MULI])
def test_imm_alu_operands(op):
    i = ins(op, rd=4, ra=5, imm=9)
    assert i.dest_regs() == (4,)
    assert i.src_regs() == (5,)


@pytest.mark.parametrize("op", [Op.DIV, Op.REM])
def test_division_transmits_both_inputs_at_execute(op):
    i = ins(op, rd=1, ra=2, rb=3)
    assert i.is_div and i.is_transmitter
    assert i.transmit_regs_at_execute() == (2, 3)
    assert i.transmit_regs_at_resolve() == ()


def test_cmp_writes_flags():
    i = ins(Op.CMP, ra=1, rb=2)
    assert i.dest_regs() == (FLAGS,)
    assert i.src_regs() == (1, 2)
    assert i.writes_flags


def test_branch_transmits_flags_at_resolve():
    i = ins(Op.BR, cond=Cond.LT, target=5)
    assert i.is_branch
    assert i.src_regs() == (FLAGS,)
    assert i.transmit_regs_at_resolve() == (FLAGS,)
    assert i.transmit_regs_at_execute() == ()


def test_jmpi_transmits_target():
    i = ins(Op.JMPI, ra=6)
    assert i.transmit_regs_at_resolve() == (6,)
    assert i.is_branch


def test_load_address_registers():
    i = ins(Op.LOAD, rd=1, ra=2, rb=3, imm=8)
    assert i.is_load and not i.is_store
    assert i.addr_regs() == (2, 3)
    assert i.transmit_regs_at_execute() == (2, 3)
    assert i.dest_regs() == (1,)
    assert set(i.src_regs()) == {2, 3}


def test_load_without_index():
    i = ins(Op.LOAD, rd=1, ra=2)
    assert i.addr_regs() == (2,)


def test_store_data_and_address():
    i = ins(Op.STORE, rd=4, ra=2, rb=None, imm=0)
    assert i.is_store and not i.is_load
    assert i.data_reg() == 4
    assert i.addr_regs() == (2,)
    assert i.dest_regs() == ()
    assert 4 in i.src_regs()


def test_push_pop_stack_effects():
    push = ins(Op.PUSH, ra=3)
    assert push.is_store
    assert push.dest_regs() == (SP,)
    assert push.data_reg() == 3
    assert push.addr_regs() == (SP,)
    pop = ins(Op.POP, rd=3)
    assert pop.is_load
    assert set(pop.dest_regs()) == {3, SP}
    assert pop.addr_regs() == (SP,)


def test_call_is_store_and_control():
    i = ins(Op.CALL, target="f")
    assert i.is_store and i.is_control and not i.is_branch
    assert i.dest_regs() == (SP,)
    assert i.data_reg() is None  # pushes a constant return address


def test_ret_is_load_branch_transmitting_loaded_target():
    i = ins(Op.RET)
    assert i.is_load and i.is_branch
    assert i.transmits_loaded_target
    assert i.dest_regs() == (SP,)


def test_with_prot_round_trip():
    i = ins(Op.ADD, rd=1, ra=2, rb=3)
    assert not i.prot
    p = i.with_prot(True)
    assert p.prot and not i.prot
    assert p.with_prot(True) is p
    assert p.with_prot(False).prot is False


def test_nop_halt_have_no_operands():
    for op in (Op.NOP, Op.HALT, Op.MFENCE):
        i = ins(op)
        assert i.dest_regs() == () and i.src_regs() == ()
