"""The metrics registry, its instrumentation sites, and the profiler.

The headline invariants:

* a detached registry costs nothing — simulation results are identical
  with and without one, and ``Core.step`` itself contains no metrics
  code at all (accounting happens once per ``run()``);
* the profiler's subsystem map partitions every frame, so subsystem
  times sum exactly to the profile's total.
"""

import inspect
import json

import pytest

from repro.bench import RunSpec, clear_caches, run_batch
from repro.metrics import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    Timer,
    attached,
    classify_module,
    flatten_snapshot,
    get_registry,
    profile_spec,
    report_from_stats,
    set_registry,
)
from repro.uarch import P_CORE, simulate
from repro.uarch.pipeline import Core
from repro.workloads import get_workload

FAST = RunSpec(workload="ossl.ecadd")


@pytest.fixture()
def isolated_cache(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.setenv("REPRO_PROGRESS", "0")
    clear_caches()
    yield tmp_path / "cache"
    clear_caches()


# ----------------------------------------------------------------------
# Registry semantics
# ----------------------------------------------------------------------

def test_counter_increments_and_rejects_decrease():
    registry = MetricsRegistry()
    counter = registry.counter("executor.specs")
    counter.inc()
    counter.inc(4)
    assert counter.value == 5
    with pytest.raises(ValueError, match="cannot decrease"):
        counter.inc(-1)
    # create-on-first-use returns the same instance
    assert registry.counter("executor.specs") is counter


def test_gauge_last_write_wins():
    registry = MetricsRegistry()
    gauge = registry.gauge("fuzz.programs_per_sec")
    gauge.set(10)
    gauge.set(3.5)
    assert gauge.value == 3.5


def test_timer_aggregates_and_percentiles():
    timer = Timer("t", buckets=(0.01, 0.1, 1.0))
    for seconds in (0.005, 0.005, 0.05, 0.5):
        timer.observe(seconds)
    assert timer.count == 4
    assert timer.sum == pytest.approx(0.56)
    assert timer.min == 0.005
    assert timer.max == 0.5
    assert timer.mean == pytest.approx(0.14)
    # p50 rank lands in the first bucket (edge 0.01)
    assert timer.percentile(50) == 0.01
    # p100 is clamped to the observed max, not the bucket edge
    assert timer.percentile(100) == 0.5
    with pytest.raises(ValueError):
        timer.percentile(0)


def test_timer_infinity_bucket_and_context_manager():
    timer = Timer("t", buckets=(0.001,))
    timer.observe(5.0)  # beyond the last edge -> +Inf bucket
    assert timer.bucket_counts[-1] == 1
    with timer.time():
        pass
    assert timer.count == 2


def test_timer_rejects_unsorted_buckets():
    with pytest.raises(ValueError, match="strictly"):
        Timer("t", buckets=(1.0, 0.5))


def test_default_buckets_are_strictly_increasing():
    assert list(DEFAULT_BUCKETS) == sorted(set(DEFAULT_BUCKETS))


# ----------------------------------------------------------------------
# Export formats
# ----------------------------------------------------------------------

def _sample_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("executor.specs").inc(3)
    registry.gauge("uarch.sim_cycles_per_sec").set(1500.0)
    timer = registry.timer("executor.spec_seconds", buckets=(0.1, 1.0))
    timer.observe(0.05)
    timer.observe(0.5)
    return registry


def test_json_snapshot_shape():
    snapshot = json.loads(_sample_registry().to_json())
    assert snapshot["counters"] == {"executor.specs": 3}
    assert snapshot["gauges"] == {"uarch.sim_cycles_per_sec": 1500.0}
    timer = snapshot["timers"]["executor.spec_seconds"]
    assert timer["count"] == 2
    assert timer["sum"] == pytest.approx(0.55)
    assert timer["buckets"] == [[0.1, 1], [1.0, 1]]


def test_prometheus_export_golden():
    text = _sample_registry().to_prometheus()
    assert text == (
        "# HELP repro_executor_specs_total "
        "specs requested across all batches\n"
        "# TYPE repro_executor_specs_total counter\n"
        "repro_executor_specs_total 3\n"
        "# HELP repro_uarch_sim_cycles_per_sec "
        "fast-engine simulation throughput\n"
        "# TYPE repro_uarch_sim_cycles_per_sec gauge\n"
        "repro_uarch_sim_cycles_per_sec 1500\n"
        "# HELP repro_executor_spec_seconds "
        "worker-side simulation time per spec\n"
        "# TYPE repro_executor_spec_seconds histogram\n"
        'repro_executor_spec_seconds_bucket{le="0.1"} 1\n'
        'repro_executor_spec_seconds_bucket{le="1"} 2\n'
        'repro_executor_spec_seconds_bucket{le="+Inf"} 2\n'
        "repro_executor_spec_seconds_sum 0.55\n"
        "repro_executor_spec_seconds_count 2\n"
    )


def test_prometheus_help_omitted_for_unknown_metric():
    registry = MetricsRegistry()
    registry.counter("bespoke.unknown_counter").inc()
    text = registry.to_prometheus()
    assert "# HELP" not in text
    assert "# TYPE repro_bespoke_unknown_counter_total counter" in text


def test_empty_registry_prometheus_is_empty():
    assert MetricsRegistry().to_prometheus() == ""


def test_every_published_metric_has_help(isolated_cache):
    """HELP enforcement: walk a real bench + fuzz snapshot and fail on
    any metric the instrumentation publishes without a ``# HELP``
    description in ``METRIC_HELP``.  Per-worker fabric gauges are the
    one sanctioned dynamic family (``fabric.worker.<id>.*``)."""
    from repro.contracts import Contract
    from repro.fuzzing import CampaignConfig, run_campaign
    from repro.metrics.registry import METRIC_HELP

    registry = MetricsRegistry()
    with attached(registry):
        run_batch([FAST,
                   RunSpec(workload="ossl.ecadd", defense="track",
                           instrument="auto")], jobs=1)
        run_batch([FAST], jobs=1)  # a cache hit, for the hit counters
        config = CampaignConfig(defense_factory=None,
                                defense_name="unsafe",
                                contract=Contract.CT_SEQ, n_programs=1,
                                pairs_per_program=1, program_size=12)
        run_campaign(config, jobs=1)
    snapshot = registry.snapshot()
    names = (set(snapshot["counters"]) | set(snapshot["gauges"])
             | set(snapshot["timers"]))
    assert len(names) > 10  # the walk covered a real surface
    missing = sorted(
        name for name in names
        if name not in METRIC_HELP
        and not name.startswith("fabric.worker."))
    assert not missing, \
        f"metrics published without a # HELP description: {missing}"
    # And every described metric that fired carries its HELP line.
    text = registry.to_prometheus()
    for name in sorted(names & set(METRIC_HELP)):
        assert METRIC_HELP[name] in text, name


def test_flatten_snapshot_scalars():
    flat = flatten_snapshot(_sample_registry().snapshot())
    assert flat["executor.specs"] == 3.0
    assert flat["uarch.sim_cycles_per_sec"] == 1500.0
    assert flat["executor.spec_seconds.count"] == 2.0
    assert flat["executor.spec_seconds.sum"] == pytest.approx(0.55)
    assert flat["executor.spec_seconds.max"] == 0.5
    assert "executor.spec_seconds.buckets" not in flat


# ----------------------------------------------------------------------
# Attachment and the zero-overhead contract
# ----------------------------------------------------------------------

def test_attached_restores_previous_registry():
    assert get_registry() is None
    outer = MetricsRegistry()
    previous = set_registry(outer)
    assert previous is None
    with attached(MetricsRegistry()) as inner:
        assert get_registry() is inner
    assert get_registry() is outer
    set_registry(None)


def test_metrics_are_transparent_to_simulation():
    """Mirrors PR2's tracer-transparency test: attaching a registry
    must not perturb the simulation in any observable way."""
    w = get_workload("ossl.ecadd")
    from repro.defenses import SPTSB

    plain = simulate(w.program, SPTSB(), P_CORE, w.memory, w.regs)
    registry = MetricsRegistry()
    with attached(registry):
        measured = simulate(w.program, SPTSB(), P_CORE, w.memory, w.regs)
    assert plain.cycles == measured.cycles
    assert plain.stats == measured.stats
    assert registry.counter("uarch.sim_cycles").value == measured.cycles
    assert registry.counter("uarch.runs").value == 1
    assert registry.timer("uarch.run_seconds").count == 1


def test_core_step_has_no_metrics_code():
    """The acceptance criterion: the per-cycle hot path pays nothing.
    All metrics accounting lives in ``Core.run`` (once per simulation);
    ``step`` keeps exactly its one tracer None-check."""
    source = inspect.getsource(Core.step)
    assert "metrics" not in source
    assert source.count("is not None") == 1


# ----------------------------------------------------------------------
# Instrumentation sites
# ----------------------------------------------------------------------

def test_run_batch_publishes_counters(isolated_cache):
    registry = MetricsRegistry()
    with attached(registry):
        run_batch([FAST], jobs=1)
        run_batch([FAST], jobs=1)  # memory hit on the second pass
    counters = registry.snapshot()["counters"]
    assert counters["executor.batches"] == 2
    assert counters["executor.specs"] == 2
    assert counters["cache.misses"] == 1
    assert counters["cache.memory_hits"] == 1
    assert registry.timer("executor.batch_seconds").count == 2
    assert registry.timer("executor.spec_seconds").count == 1


def test_run_batch_parallel_records_queue_wait(isolated_cache):
    registry = MetricsRegistry()
    with attached(registry):
        run_batch([FAST, RunSpec(workload="ossl.ecadd",
                                 defense="spt-sb")], jobs=2)
    assert registry.timer("executor.spec_seconds").count == 2
    assert registry.timer("executor.queue_wait_seconds").count == 2
    assert registry.counter("cache.misses").value == 2


def test_campaign_publishes_throughput():
    from repro.fuzzing import CampaignConfig, run_campaign
    from repro.contracts import Contract

    registry = MetricsRegistry()
    config = CampaignConfig(defense_factory=None, defense_name="unsafe",
                            contract=Contract.CT_SEQ, n_programs=2,
                            pairs_per_program=2, program_size=12)
    with attached(registry):
        result = run_campaign(config, jobs=1)
    counters = registry.snapshot()["counters"]
    assert counters["fuzz.campaigns"] == 1
    assert counters["fuzz.programs"] == 2
    assert counters["fuzz.checks"] == result.tests + result.invalid_pairs
    assert registry.gauge("fuzz.checks_per_sec").value > 0


# ----------------------------------------------------------------------
# Profiler
# ----------------------------------------------------------------------

def test_classify_module_rules():
    assert classify_module("/x/src/repro/uarch/pipeline.py") == "pipeline"
    assert classify_module("/x/src/repro/uarch/caches.py") == "caches"
    assert classify_module("/x/src/repro/defenses/spt.py") == \
        "defense-hooks"
    assert classify_module("/usr/lib/python3/enum.py") == "host-runtime"
    assert classify_module("~") == "host-runtime"
    assert classify_module("/x/src/repro/newthing.py") == "repro-other"


def test_profile_subsystems_sum_to_total(isolated_cache):
    report = profile_spec(FAST)
    assert report.cycles > 0
    assert report.total_s > 0
    assert sum(report.subsystems.values()) == pytest.approx(
        report.total_s, rel=1e-9)
    assert "pipeline" in report.subsystems
    rendered = report.render(5)
    assert "host time by subsystem" in rendered
    assert "pipeline" in rendered


def test_profile_collapsed_stacks(isolated_cache, tmp_path):
    report = profile_spec(FAST)
    out = report.write_collapsed(tmp_path / "stacks.txt")
    lines = out.read_text().splitlines()
    assert lines
    for line in lines:
        frame, _, micros = line.rpartition(" ")
        assert ";" in frame
        assert int(micros) > 0


def test_report_from_stats_handles_builtins():
    import cProfile
    import pstats

    profile = cProfile.Profile()
    profile.enable()
    sorted(range(1000))
    profile.disable()
    report = report_from_stats(pstats.Stats(profile), label="x")
    assert report.entries
    assert all(e.subsystem == "host-runtime" for e in report.entries)


def test_profile_cli_smoke(isolated_cache, tmp_path, capsys):
    from repro.cli import main

    collapsed = tmp_path / "stacks.txt"
    assert main(["profile", "ossl.ecadd", "--top", "5",
                 "--collapsed", str(collapsed)]) == 0
    out = capsys.readouterr().out
    assert "host time by subsystem" in out
    assert collapsed.exists()
    assert main(["profile", "ossl.ecadd", "--defense", "nope"]) == 2
