"""SPT mechanism details: backward invertible declassification, the
shadow-memory analogue, and first-transmission delays."""

from repro.arch import Memory
from repro.defenses import SPT
from repro.isa import assemble
from repro.uarch import Core, P_CORE


def run_spt(src, memory=None):
    defense = SPT()
    core = Core(assemble(src).linked(), defense, P_CORE, memory)
    result = core.run()
    assert result.halt_reason == "halt"
    return core, defense


def preg_of(core, pc, which=0):
    uop = next(u for u in core.committed if u.pc == pc)
    return uop.pdests[which][1]


def test_backward_closure_through_invertible_chain():
    # r1 -> addi -> transmitted: both the sum and r1 become public.
    core, _ = run_spt("""
        movi r9, 0x4000
        load r1, [r9]         ; not public (fresh load)
        addi r2, r1, 8
        store [r2], r1        ; transmits r2 (and, invertibly, r1)
        halt
    """, Memory({0x4000: 0x40, 0x4001: 0x00}))
    assert core.prf.public[preg_of(core, 1)]   # r1, via the closure
    assert core.prf.public[preg_of(core, 2)]   # r2, directly


def test_backward_closure_stops_at_lossy_op():
    core, _ = run_spt("""
        movi r9, 0x4000
        load r1, [r9]
        andi r2, r1, 0xF8     ; lossy
        movi r10, 0x5000
        store [r10 + r2], r1  ; transmits r2 only
        halt
    """, Memory({0x4000: 0x40}))
    assert core.prf.public[preg_of(core, 2)]       # the mask itself
    assert not core.prf.public[preg_of(core, 1)]   # r1 stays private


def test_transmitted_load_declassifies_its_bytes():
    # Once a loaded value is transmitted, the bytes it came from are
    # public: a later load of the same word is public at execute.
    core, defense = run_spt("""
        movi r9, 0x4000
        load r1, [r9]         ; pointer stored in memory
        movi r10, 0x5000
        store [r10 + r1], r1  ; transmits r1 -> declassifies 0x4000
        load r2, [r9]         ; now reads public bytes
        mul r3, r2, r2
        mul r3, r3, r3
        mul r3, r3, r3
        mul r3, r3, r3
        load r4, [r9]         ; well after the declassifying commit
        halt
    """, Memory({0x4000: 0x40}))
    assert any(0x4000 + i in defense._public_mem for i in range(8))


def test_branch_on_fresh_flags_resolves_at_nonspec_only():
    # Flags are never "already transmitted" when freshly computed from
    # non-public data: a mispredicting branch pays the full window.
    src = """
        movi r9, 0x4000
        movi r8, 0x6000
        load r0, [r8]          ; chained cold head-blockers keep the
        load r0, [r8 + r0 + 64]  ; branch speculative when it completes
        load r1, [r9]          ; data feeding the branch
        cmpi r1, 5
        beq over
        movi r2, 1
    over:
        halt
    """
    core, defense = run_spt(src, Memory({0x4000: 0x05}))
    assert defense.stats["delayed_resolutions"] > 0
