"""Fast-path mechanics: fast-forwarding, cache replay accounting, the
tracer opt-out, the REPRO_NO_FAST_PATH escape hatch, the stall-sum
invariant, and the no-forward-progress early abort."""

import pytest

from repro.defenses import Defense
from repro.fixtures import build
from repro.isa import assemble
from repro.uarch import P_CORE, PipelineTracer, simulate
from repro.uarch.pipeline import Core
from repro.uarch.refcore import compare_results


def stall_sum(result) -> int:
    return sum(v for k, v in result.stats.items()
               if k.startswith("stall_"))


def assert_stall_invariant(result, width=P_CORE.width) -> None:
    # Every commit-slot cycle is either a committed uop or an
    # attributed stall — including inside fast-forwarded windows.
    assert stall_sum(result) \
        == width * result.cycles - result.stats["committed_uops"]


class WedgeDefense(Defense):
    """Refuses every load forever: wedges the machine at the first
    load that reaches the ROB head."""

    name = "Wedge"

    def may_execute(self, uop):
        return not uop.is_load


# ----------------------------------------------------------------------
# Fast-forward engagement and accounting
# ----------------------------------------------------------------------

def test_fast_forward_engages_on_stall_heavy_run():
    from repro.defenses import SPTSB

    program, memory = build("div-channel")
    core = Core(program, SPTSB(), P_CORE, memory)
    result = core.run()
    assert result.halt_reason == "halt"
    assert core._fast
    assert core._ff_jumps > 0
    assert core._ff_cycles > 0
    assert_stall_invariant(result)


def test_fast_forward_result_matches_reference():
    from repro.defenses import SPTSB

    program, memory = build("div-channel")
    fast = simulate(program, SPTSB(), P_CORE, memory, fast_path=True)
    ref = simulate(program, SPTSB(), P_CORE, memory, fast_path=False)
    compare_results(fast, ref).raise_if_different()
    assert_stall_invariant(fast)
    assert_stall_invariant(ref)


@pytest.mark.parametrize("fixture", ["v1-gadget", "div-channel",
                                     "squash-bug"])
def test_stall_sum_invariant_both_engines(fixture):
    from repro.defenses import ProtTrack

    for fast in (True, False):
        program, memory = build(fixture)
        result = simulate(program, ProtTrack(), P_CORE, memory,
                          fast_path=fast)
        assert result.halt_reason == "halt"
        assert_stall_invariant(result)


# ----------------------------------------------------------------------
# Opt-outs: tracer attachment and the environment knob
# ----------------------------------------------------------------------

def test_tracer_disables_fast_path_and_sees_every_cycle():
    from repro.defenses import SPTSB

    program, memory = build("div-channel")
    tracer = PipelineTracer()
    core = Core(program, SPTSB(), P_CORE, memory, tracer=tracer)
    result = core.run()
    assert core._fast is False
    assert core._ff_cycles == 0
    # The tracer observed literally every simulated cycle: no
    # fast-forwarded window skipped past it.
    assert tracer.cycles_seen == result.cycles
    # And tracing did not perturb the simulation.
    untraced = simulate(program, None, P_CORE, build("div-channel")[1])
    traced_unsafe_tracer = PipelineTracer()
    traced = simulate(program, None, P_CORE, build("div-channel")[1],
                      tracer=traced_unsafe_tracer)
    compare_results(traced, untraced).raise_if_different()


def test_env_var_disables_fast_path(monkeypatch):
    monkeypatch.setenv("REPRO_NO_FAST_PATH", "1")
    program, memory = build("v1-gadget")
    core = Core(program, None, P_CORE, memory)
    assert core._fast is False
    monkeypatch.delenv("REPRO_NO_FAST_PATH")
    core = Core(program, None, P_CORE, memory)
    assert core._fast is True


def test_explicit_fast_path_flag_beats_env(monkeypatch):
    monkeypatch.setenv("REPRO_NO_FAST_PATH", "1")
    program, memory = build("v1-gadget")
    assert Core(program, None, P_CORE, memory,
                fast_path=True)._fast is True


# ----------------------------------------------------------------------
# No-forward-progress early abort
# ----------------------------------------------------------------------

def test_wedged_run_aborts_early_with_no_progress():
    program, memory = build("v1-gadget")
    result = simulate(program, WedgeDefense(), P_CORE, memory,
                      no_progress_limit=200)
    assert result.halt_reason == "no_progress"
    # Early: nowhere near the default 3M-cycle timeout budget.
    assert result.cycles < 2_000
    assert_stall_invariant(result)


def test_wedged_run_identical_across_engines():
    results = []
    for fast in (True, False):
        program, memory = build("v1-gadget")
        results.append(simulate(program, WedgeDefense(), P_CORE, memory,
                                no_progress_limit=200, fast_path=fast))
    compare_results(*results).raise_if_different()


def test_no_progress_limit_none_falls_back_to_timeout():
    program, memory = build("v1-gadget")
    result = simulate(program, WedgeDefense(), P_CORE, memory,
                      no_progress_limit=None, max_cycles=3_000)
    assert result.halt_reason == "timeout"
    assert result.cycles == 3_000


def test_committing_runaway_still_times_out():
    # A spinning loop commits constantly: that is a timeout, not a
    # no-progress abort.
    program = assemble("""
main:
    movi r1, 0
spin:
    addi r1, r1, 1
    jmp spin
""").linked()
    result = simulate(program, None, P_CORE, max_cycles=2_000,
                      no_progress_limit=500)
    assert result.halt_reason == "timeout"
    assert result.cycles == 2_000


def test_wedged_state_classifies_as_no_progress():
    # Empty ROB, empty fetch buffer, dead frontend past any redirect:
    # the classifier must name the wedge rather than blame the frontend.
    program, memory = build("v1-gadget")
    core = Core(program, None, P_CORE, memory)
    core.fetch_pc = len(core.program)
    core.fetch_stalled_until = 0
    core.cycle = 10
    assert not core.fetch_buffer
    assert core._classify_stall(None) == "no_progress"


def test_frontend_stall_still_classified_when_redirect_pending():
    program, memory = build("v1-gadget")
    core = Core(program, None, P_CORE, memory)
    core.fetch_pc = len(core.program)
    core.fetch_stalled_until = 100
    core.cycle = 10
    assert core._classify_stall(None) == "fetch_redirect"
