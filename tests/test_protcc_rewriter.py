"""Program rewriting: insertions, edge splits, label/entry remapping."""

from repro.arch import run_program
from repro.isa import Instruction, Op, assemble
from repro.protcc import Rewriter, identity_move


def test_replace_sets_prot():
    p = assemble("movi r1, 1\nhalt\n").linked()
    rw = Rewriter(p)
    rw.set_prot(0, True)
    out = rw.build().program
    assert out[0].prot


def test_insert_before_is_jump_visible():
    # Anchored inserts execute on jumps into the point.
    p = assemble("""
        movi r1, 0
        jmp target
        movi r1, 99
    target:
        halt
    """).linked()
    rw = Rewriter(p)
    rw.insert_before(3, [Instruction(Op.MOVI, rd=2, imm=7)])
    out = rw.build().program
    result = run_program(out)
    assert result.final_regs[2] == 7


def test_insert_after_skipped_by_jumps():
    # Fall-through inserts are invisible to jumps targeting pc+1.
    p = assemble("""
        movi r1, 0
        jmp target
        nop
    target:
        halt
    """).linked()
    rw = Rewriter(p)
    rw.insert_after(2, [Instruction(Op.MOVI, rd=2, imm=7)])  # after the nop
    out = rw.build().program
    result = run_program(out)
    assert result.final_regs[2] == 0  # jump skipped the insert


def test_insert_after_runs_on_fallthrough():
    p = assemble("""
        cmpi r1, 1
        beq skip
        nop
    skip:
        halt
    """).linked()
    rw = Rewriter(p)
    rw.insert_after(1, [Instruction(Op.MOVI, rd=2, imm=5)])  # not-taken edge
    out = rw.build().program
    taken = run_program(out, regs={1: 1})
    fallthrough = run_program(out, regs={1: 0})
    assert taken.final_regs[2] == 0
    assert fallthrough.final_regs[2] == 5


def test_split_taken_edge():
    p = assemble("""
        cmpi r1, 1
        beq yes
        halt
    yes:
        halt
    """).linked()
    rw = Rewriter(p)
    rw.split_taken_edge(1, [Instruction(Op.MOVI, rd=2, imm=9)])
    out = rw.build().program
    taken = run_program(out, regs={1: 1})
    fallthrough = run_program(out, regs={1: 0})
    assert taken.final_regs[2] == 9
    assert fallthrough.final_regs[2] == 0


def test_entry_remapped():
    p = assemble(".entry start\nnop\nstart: halt\n").linked()
    rw = Rewriter(p)
    rw.insert_before(0, [Instruction(Op.NOP)])
    out = rw.build().program
    assert out.entry == 2


def test_function_regions_remapped():
    p = assemble(".func f\nf: nop\nret\n.endfunc\nnop\n").linked()
    rw = Rewriter(p)
    rw.insert_before(0, [Instruction(Op.NOP)])
    rw.insert_before(2, [Instruction(Op.NOP)])
    out = rw.build()
    region = out.program.function_named("f")
    # Inserts anchored at a boundary point belong to the *next* region
    # (they sit at its entry anchor), so f ends before them.
    assert (region.start, region.end) == (0, 3)


def test_layout_maps():
    p = assemble("nop\nnop\nhalt\n").linked()
    rw = Rewriter(p)
    rw.insert_before(1, [Instruction(Op.NOP), Instruction(Op.NOP)])
    result = rw.build()
    assert result.inst_pos[0] == 0
    assert result.inst_pos[1] == 3
    assert result.point_pos[1] == 1
    assert result.before_positions(1, 2) == [1, 2]


def test_identity_move_helper():
    move = identity_move(5)
    assert move.op is Op.MOV and move.rd == move.ra == 5 and not move.prot
    assert identity_move(5, prot=True).prot
