"""Fuzzer components and a miniature end-to-end campaign."""

import random

import pytest

from repro.arch import run_program
from repro.contracts import Contract
from repro.defenses import ProtTrack, Unsafe
from repro.fuzzing import (
    CampaignConfig,
    HIDDEN_BASE,
    HIDDEN_WORDS,
    generate_input,
    generate_program,
    mutate_input,
    run_campaign,
)


@pytest.mark.parametrize("seed", range(8))
def test_generated_programs_terminate(seed):
    program = generate_program(seed)
    result = run_program(program)
    assert result.halt_reason == "halt"
    assert result.instruction_count < 100_000


def test_generation_is_deterministic():
    a = generate_program(42)
    b = generate_program(42)
    assert a.instructions == b.instructions


def test_size_parameter_scales():
    small = generate_program(1, size=10)
    large = generate_program(1, size=120)
    assert len(large) > len(small)


def test_inputs_cover_regions():
    rng = random.Random(0)
    base = generate_input(rng)
    addresses = {addr for addr, _ in base.memory_words}
    assert HIDDEN_BASE in addresses


def test_mutation_only_touches_hidden_by_default():
    rng = random.Random(0)
    base = generate_input(rng)
    mutated = mutate_input(rng, base)
    assert mutated.regs == base.regs
    changed = {addr for (addr, v) in mutated.memory_words
               if dict(base.memory_words).get(addr) != v}
    hidden = set(range(HIDDEN_BASE, HIDDEN_BASE + HIDDEN_WORDS * 8, 8))
    assert changed and changed <= hidden


def test_campaign_unsafe_finds_violations():
    config = CampaignConfig(defense_factory=Unsafe,
                            contract=Contract.UNPROT_SEQ,
                            instrumentation="rand",
                            n_programs=4, pairs_per_program=2, seed=5,
                            stop_on_first_violation=True)
    result = run_campaign(config)
    assert result.violations >= 1
    assert result.violation_sites


def test_campaign_prottrack_clean():
    config = CampaignConfig(defense_factory=ProtTrack,
                            contract=Contract.UNPROT_SEQ,
                            instrumentation="rand",
                            n_programs=3, pairs_per_program=2, seed=5)
    result = run_campaign(config)
    assert result.violations == 0
    assert result.tests > 0


def test_campaign_summary_format():
    config = CampaignConfig(defense_factory=Unsafe,
                            contract=Contract.ARCH_SEQ,
                            instrumentation="arch",
                            n_programs=1, pairs_per_program=1, seed=1)
    result = run_campaign(config)
    assert "violations" in result.summary()


def test_summary_breaks_down_invalid_pairs():
    from repro.fuzzing import CampaignResult

    result = CampaignResult(tests=5, violations=1, invalid_pairs=6,
                            invalid_nonterminating=1,
                            invalid_distinguishable=2,
                            invalid_hw_timeout=3)
    summary = result.summary()
    assert "violations" in summary
    assert "1 nonterminating" in summary
    assert "2 contract-distinguishable" in summary
    assert "3 hw-timeout" in summary
    # The breakdown only appears when pairs were actually rejected.
    assert "nonterminating" not in CampaignResult(tests=5).summary()


def test_merge_accumulates_breakdown_and_telemetry():
    from repro.fuzzing import CampaignResult

    a = CampaignResult(invalid_pairs=1, invalid_hw_timeout=1,
                       wall_time=0.5, witnesses=[{"w": 1}])
    b = CampaignResult(invalid_pairs=2, invalid_nonterminating=2,
                       wall_time=0.25, witnesses=[{"w": 2}])
    a.merge(b)
    assert a.invalid_pairs == 3
    assert a.invalid_hw_timeout == 1
    assert a.invalid_nonterminating == 2
    assert a.wall_time == 0.75
    assert a.witnesses == [{"w": 1}, {"w": 2}]


def test_resolve_campaign_jobs_malformed_env(monkeypatch, caplog):
    import logging
    import os

    from repro.fuzzing.campaign import resolve_campaign_jobs

    monkeypatch.setenv("REPRO_JOBS", "not-a-number")
    # The warn-and-fallback policy lives in the shared executor
    # resolver now; the campaign entry point delegates to it.
    with caplog.at_level(logging.WARNING, logger="repro.bench.executor"):
        jobs = resolve_campaign_jobs()
    assert jobs == (os.cpu_count() or 1)
    assert any("REPRO_JOBS" in record.message for record in caplog.records)
    # An explicit argument always wins, malformed env or not.
    assert resolve_campaign_jobs(3) == 3
    # A well-formed env value still applies.
    monkeypatch.setenv("REPRO_JOBS", "5")
    assert resolve_campaign_jobs() == 5
