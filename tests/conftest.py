"""Shared fixtures: keep the suite from touching developer state.

Every test gets a throwaway run ledger (``REPRO_LEDGER``) so CLI
invocations that append records never write the real
``benchmarks/results/ledger.db``, and any metrics registry or span
recorder a test attaches is detached again on teardown.
"""

import pytest

from repro.metrics import set_recorder, set_registry


@pytest.fixture(autouse=True)
def _isolated_ledger(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_LEDGER", str(tmp_path / "ledger.db"))
    yield
    set_registry(None)
    set_recorder(None)
