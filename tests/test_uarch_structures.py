"""Back-end structures: PRF, rename map, ROB, LSQ."""

import pytest

from repro.isa import Instruction, NUM_REGS, Op
from repro.uarch.structures import (
    LoadStoreQueue,
    PhysRegFile,
    RenameMap,
    ReorderBuffer,
)
from repro.uarch.uop import Uop


def make_uop(seq, op=Op.NOP, **kw):
    return Uop(seq, seq, Instruction(op, **kw), seq + 1, 0)


def test_prf_alloc_free_cycle():
    prf = PhysRegFile(NUM_REGS + 4)
    regs = [prf.allocate() for _ in range(4)]
    assert all(r is not None for r in regs)
    assert prf.allocate() is None
    prf.free(regs[0])
    assert prf.allocate() == regs[0]


def test_prf_free_clears_tag_planes():
    prf = PhysRegFile(NUM_REGS + 2)
    preg = prf.allocate()
    prf.prot[preg] = True
    prf.yrot[preg] = 42
    prf.public[preg] = True
    prf.ready[preg] = True
    prf.free(preg)
    assert not prf.prot[preg] and prf.yrot[preg] is None
    assert not prf.public[preg] and not prf.ready[preg]


def test_prf_requires_headroom():
    with pytest.raises(ValueError):
        PhysRegFile(NUM_REGS)


def test_rename_map_identity_reset():
    rm = RenameMap()
    assert all(rm.lookup(i) == i for i in range(NUM_REGS))


def test_rename_rollback():
    rm = RenameMap()
    uop = make_uop(1, Op.MOVI, rd=3, imm=0)
    old = rm.update(3, 20)
    uop.pdests = ((3, 20),)
    uop.old_pdests = ((3, old),)
    assert rm.lookup(3) == 20
    rm.rollback(uop)
    assert rm.lookup(3) == 3


def test_rob_order_and_squash():
    rob = ReorderBuffer(8)
    uops = [make_uop(i) for i in range(5)]
    for u in uops:
        rob.push(u)
    assert rob.head is uops[0]
    squashed = rob.squash_younger_than(2)
    assert [u.seq for u in squashed] == [4, 3]  # youngest first
    assert len(rob) == 3


def test_rob_overflow():
    rob = ReorderBuffer(1)
    rob.push(make_uop(0))
    assert rob.full
    with pytest.raises(OverflowError):
        rob.push(make_uop(1))


def _store(seq, addr, data=0, executed=True):
    u = make_uop(seq, Op.STORE, rd=0, ra=1)
    if executed:
        u.mem_addr = addr
        u.store_data = data
        u.issued = True
    return u


def _load(seq, addr):
    u = make_uop(seq, Op.LOAD, rd=0, ra=1)
    u.mem_addr = addr
    return u


def test_forwarding_exact_match():
    lsq = LoadStoreQueue(4, 4)
    store = _store(1, 0x100, data=55)
    lsq.insert(store)
    load = _load(2, 0x100)
    lsq.insert(load)
    kind, hit = lsq.forwarding_store(load)
    assert kind == "forward" and hit is store


def test_forwarding_youngest_older_wins():
    lsq = LoadStoreQueue(4, 4)
    s1 = _store(1, 0x100, data=1)
    s2 = _store(2, 0x100, data=2)
    lsq.insert(s1)
    lsq.insert(s2)
    load = _load(3, 0x100)
    kind, hit = lsq.forwarding_store(load)
    assert kind == "forward" and hit is s2


def test_unknown_store_address_stalls_load():
    lsq = LoadStoreQueue(4, 4)
    lsq.insert(_store(1, None, executed=False))
    load = _load(2, 0x100)
    assert lsq.forwarding_store(load)[0] == "stall"


def test_partial_overlap_stalls_load():
    lsq = LoadStoreQueue(4, 4)
    lsq.insert(_store(1, 0x104))
    load = _load(2, 0x100)
    assert lsq.forwarding_store(load)[0] == "stall"


def test_disjoint_store_reads_memory():
    lsq = LoadStoreQueue(4, 4)
    lsq.insert(_store(1, 0x200))
    load = _load(2, 0x100)
    assert lsq.forwarding_store(load)[0] == "memory"


def test_younger_store_ignored():
    lsq = LoadStoreQueue(4, 4)
    lsq.insert(_store(5, 0x100))
    load = _load(2, 0x100)
    assert lsq.forwarding_store(load)[0] == "memory"


def test_capacity_checks():
    lsq = LoadStoreQueue(1, 1)
    lsq.insert(_load(1, 0x0))
    assert not lsq.can_insert(_load(2, 0x8))
    assert lsq.can_insert(_store(2, 0x8))
