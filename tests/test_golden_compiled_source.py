"""Golden-source regression test for the compiled backend's codegen.

``tests/golden/compiled_v1_track.py`` pins the exact source
:func:`repro.uarch.compiled.generate_source` emits for one fixed
triple: the Spectre-v1 gadget fixture on the P-core under ProtTrack
(the densest case — every defense hook live, branches, loads, stores).
Any codegen change shows up here as a plain text diff; review it like
any other source diff, then regenerate:

    PYTHONPATH=src python - <<'EOF'
    from repro.fixtures import build
    from repro.defenses import ProtTrack
    from repro.uarch.config import P_CORE
    from repro.uarch.compiled import generate_source
    src = generate_source(build("v1-gadget")[0], P_CORE, ProtTrack())
    open("tests/golden/compiled_v1_track.py", "w").write(src)
    EOF

``tests/golden/compiled_v1_fence_unsafe.py`` pins a second triple: the
same gadget *fence-mitigated* (``repro.protcc.mitigations``) on the
unsafe core — the software-mitigation path through codegen, where the
MFENCE frontend serialization must be emitted.  Regenerate:

    PYTHONPATH=src python - <<'EOF'
    from repro.fixtures import FIXTURES
    from repro.defenses import Unsafe
    from repro.uarch.config import P_CORE
    from repro.uarch.compiled import generate_source
    from repro.protcc import mitigate_program
    program = mitigate_program(FIXTURES["v1-gadget"].program(),
                               "fence").program
    src = generate_source(program, P_CORE, Unsafe())
    open("tests/golden/compiled_v1_fence_unsafe.py", "w").write(src)
    EOF

The generated source is deterministic by construction (no timestamps,
no ids, no dict-order dependence), so this test is also the guard that
keeps it that way — a flaky diff here means codegen grew a source of
nondeterminism, which would break the content-addressed artifact
cache.
"""

import difflib
import pathlib

from repro.defenses import ProtTrack, Unsafe
from repro.fixtures import FIXTURES, build
from repro.protcc import mitigate_program
from repro.uarch.compiled import generate_source
from repro.uarch.config import P_CORE

GOLDEN_PATH = (pathlib.Path(__file__).parent / "golden"
               / "compiled_v1_track.py")
GOLDEN_FENCE_PATH = (pathlib.Path(__file__).parent / "golden"
                     / "compiled_v1_fence_unsafe.py")


def test_generated_source_matches_golden():
    program, _ = build("v1-gadget")
    actual = generate_source(program, P_CORE, ProtTrack())
    golden = GOLDEN_PATH.read_text()
    if actual != golden:
        diff = "\n".join(difflib.unified_diff(
            golden.splitlines(), actual.splitlines(),
            fromfile="tests/golden/compiled_v1_track.py",
            tofile="generate_source(v1-gadget, P_CORE, ProtTrack())",
            lineterm="", n=2))
        raise AssertionError(
            "generated source drifted from the golden file "
            "(intended codegen change? regenerate per the module "
            "docstring and review the diff):\n" + diff)


def test_golden_source_is_executable():
    namespace = {}
    exec(compile(GOLDEN_PATH.read_text(), str(GOLDEN_PATH), "exec"),
         namespace)
    assert callable(namespace["run"])


def test_mitigated_generated_source_matches_golden():
    program = mitigate_program(FIXTURES["v1-gadget"].program(),
                               "fence").program
    actual = generate_source(program, P_CORE, Unsafe())
    golden = GOLDEN_FENCE_PATH.read_text()
    if actual != golden:
        diff = "\n".join(difflib.unified_diff(
            golden.splitlines(), actual.splitlines(),
            fromfile="tests/golden/compiled_v1_fence_unsafe.py",
            tofile="generate_source(fence(v1-gadget), P_CORE, Unsafe())",
            lineterm="", n=2))
        raise AssertionError(
            "mitigated generated source drifted from the golden file "
            "(intended codegen or mitigation-pass change? regenerate "
            "per the module docstring and review the diff):\n" + diff)


def test_mitigated_golden_source_serializes_the_frontend():
    # The fence pass inserts MFENCEs, so the compiled source must carry
    # the fetch-blocking serialization path — its absence means the
    # compiled engine silently runs the mitigation as a NOP.
    golden = GOLDEN_FENCE_PATH.read_text()
    assert "fetch_blocked" in golden


def test_mitigated_golden_source_is_executable():
    namespace = {}
    exec(compile(GOLDEN_FENCE_PATH.read_text(), str(GOLDEN_FENCE_PATH),
                 "exec"), namespace)
    assert callable(namespace["run"])
