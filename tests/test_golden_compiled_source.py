"""Golden-source regression test for the compiled backend's codegen.

``tests/golden/compiled_v1_track.py`` pins the exact source
:func:`repro.uarch.compiled.generate_source` emits for one fixed
triple: the Spectre-v1 gadget fixture on the P-core under ProtTrack
(the densest case — every defense hook live, branches, loads, stores).
Any codegen change shows up here as a plain text diff; review it like
any other source diff, then regenerate:

    PYTHONPATH=src python - <<'EOF'
    from repro.fixtures import build
    from repro.defenses import ProtTrack
    from repro.uarch.config import P_CORE
    from repro.uarch.compiled import generate_source
    src = generate_source(build("v1-gadget")[0], P_CORE, ProtTrack())
    open("tests/golden/compiled_v1_track.py", "w").write(src)
    EOF

The generated source is deterministic by construction (no timestamps,
no ids, no dict-order dependence), so this test is also the guard that
keeps it that way — a flaky diff here means codegen grew a source of
nondeterminism, which would break the content-addressed artifact
cache.
"""

import difflib
import pathlib

from repro.defenses import ProtTrack
from repro.fixtures import build
from repro.uarch.compiled import generate_source
from repro.uarch.config import P_CORE

GOLDEN_PATH = (pathlib.Path(__file__).parent / "golden"
               / "compiled_v1_track.py")


def test_generated_source_matches_golden():
    program, _ = build("v1-gadget")
    actual = generate_source(program, P_CORE, ProtTrack())
    golden = GOLDEN_PATH.read_text()
    if actual != golden:
        diff = "\n".join(difflib.unified_diff(
            golden.splitlines(), actual.splitlines(),
            fromfile="tests/golden/compiled_v1_track.py",
            tofile="generate_source(v1-gadget, P_CORE, ProtTrack())",
            lineterm="", n=2))
        raise AssertionError(
            "generated source drifted from the golden file "
            "(intended codegen change? regenerate per the module "
            "docstring and review the diff):\n" + diff)


def test_golden_source_is_executable():
    namespace = {}
    exec(compile(GOLDEN_PATH.read_text(), str(GOLDEN_PATH), "exec"),
         namespace)
    assert callable(namespace["run"])
