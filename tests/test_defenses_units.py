"""Defense-mechanism unit behaviour: taint propagation, the access
predictor, and per-defense gating decisions on crafted pipelines."""

import pytest

from repro.arch import Memory
from repro.defenses import (
    AccessDelay,
    AccessPredictor,
    AccessTrack,
    ProtDelay,
    ProtTrack,
    SPT,
    SPTSB,
    Unsafe,
)
from repro.isa import assemble
from repro.uarch import Core, P_CORE


# ---------------------------------------------------------------- predictor

def test_predictor_defaults_to_access():
    p = AccessPredictor(entries=16)
    assert p.predict_access(0x40) is True


def test_predictor_learns_no_access():
    p = AccessPredictor(entries=16)
    p.predict_access(5)
    p.train(5, was_access=False, predicted=True)
    assert p.predict_access(5) is False
    assert p.mispredictions == 1


def test_predictor_aliasing():
    p = AccessPredictor(entries=4)
    p.train(1, was_access=False, predicted=True)
    assert p.predict_access(5) is False  # 5 aliases 1


def test_infinite_predictor_no_aliasing():
    p = AccessPredictor(entries=None)
    p.train(1, was_access=False, predicted=True)
    assert p.predict_access(5) is True


def test_predictor_false_negative_counted():
    p = AccessPredictor(entries=16)
    p.train(3, was_access=False, predicted=True)
    p.train(3, was_access=True, predicted=False)
    assert p.false_negatives == 1


def test_predictor_rejects_zero_entries():
    with pytest.raises(ValueError):
        AccessPredictor(entries=0)


def test_predictor_rate():
    p = AccessPredictor(entries=16)
    assert p.misprediction_rate == 0.0
    p.predict_access(0)
    p.train(0, was_access=False, predicted=True)
    assert p.misprediction_rate == 1.0


# ---------------------------------------------------------------- taint

def run_with(defense, src, memory=None):
    core = Core(assemble(src).linked(), defense, P_CORE, memory)
    result = core.run()
    assert result.halt_reason == "halt"
    return core, result


def test_stt_taints_load_outputs():
    mem = Memory()
    mem.write_word(0x100, 3)
    defense = AccessTrack()
    core, _ = run_with(defense, """
        movi r1, 0x100
        load r2, [r1]
        add r3, r2, r2
        halt
    """, mem)
    load = next(u for u in core.committed if u.pc == 1)
    add = next(u for u in core.committed if u.pc == 2)
    # Taint roots propagate: the add's output carries the load's seq.
    assert core.prf.yrot[add.pdests[0][1]] == load.seq


def test_stt_does_not_taint_alu_roots():
    defense = AccessTrack()
    core, _ = run_with(defense, "movi r1, 1\nadd r2, r1, r1\nhalt\n")
    add = next(u for u in core.committed if u.pc == 1)
    assert core.prf.yrot[add.pdests[0][1]] is None


def test_prottrack_protected_source_taints_unprefixed_output():
    defense = ProtTrack()
    core, _ = run_with(defense, """
        prot movi r1, 5
        add r2, r1, r1
        prot add r3, r1, r1
        halt
    """)
    unprefixed = next(u for u in core.committed if u.pc == 1)
    prefixed = next(u for u in core.committed if u.pc == 2)
    assert core.prf.yrot[unprefixed.pdests[0][1]] == unprefixed.seq
    # The PROT-prefixed output is covered by its protection tag instead.
    assert core.prf.yrot[prefixed.pdests[0][1]] is None
    assert core.prf.prot[prefixed.pdests[0][1]]


def test_prottrack_trains_predictor_at_commit():
    defense = ProtTrack()
    mem = Memory()
    mem.write_word(0x100, 1)
    run_with(defense, """
        movi r1, 0x100
        load r2, [r1]
        halt
    """, mem)
    assert defense.predictor.predictions >= 1


def test_spt_publicness_via_transmission():
    defense = SPT()
    core, _ = run_with(defense, """
        movi r1, 0x200
        movi r2, 1
        store [r1], r2
        halt
    """)
    store = next(u for u in core.committed if u.pc == 2)
    addr_preg = store.phys_for(1)
    assert core.prf.public[addr_preg]  # transmitted as a store address


def test_spt_lossy_op_blocks_publicness():
    defense = SPT()
    core, _ = run_with(defense, """
        movi r1, 0x200
        store [r1], r1
        andi r2, r1, 0xF8
        mul r3, r1, r1
        addi r4, r1, 8
        halt
    """)
    get = lambda pc: next(u for u in core.committed if u.pc == pc)
    assert not core.prf.public[get(2).pdests[0][1]]  # AND is lossy
    assert not core.prf.public[get(3).pdests[0][1]]  # MUL is lossy
    assert core.prf.public[get(4).pdests[0][1]]      # ADDI is invertible


def test_defense_names():
    assert Unsafe().name == "Unsafe"
    assert AccessDelay().binary == "base"
    assert ProtDelay().binary == "protcc"
    assert ProtDelay(selective_wakeup=False).name == "AccessDelay-on-ProtISA"
    assert ProtTrack(use_predictor=False).name == "AccessTrack-on-ProtISA"
    assert SPTSB().name == "SPT-SB"
