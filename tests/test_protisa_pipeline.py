"""ProtISA's microarchitectural tag plumbing through the pipeline
(paper SIV-C): rename-map bits on physical registers, LSQ bits at
execute, L1D bits at commit."""

from repro.arch import Memory
from repro.isa import assemble
from repro.uarch import Core, P_CORE


def run_core(src, memory=None):
    core = Core(assemble(src).linked(), None, P_CORE, memory)
    result = core.run()
    assert result.halt_reason == "halt"
    return core


def committed(core, pc):
    return next(u for u in core.committed if u.pc == pc)


def test_prot_prefix_tags_physical_register():
    core = run_core("prot movi r1, 5\nmovi r2, 6\nhalt\n")
    prot_uop = committed(core, 0)
    unprot_uop = committed(core, 1)
    assert core.prf.prot[prot_uop.pdests[0][1]] is True
    assert core.prf.prot[unprot_uop.pdests[0][1]] is False


def test_store_lsq_bit_follows_data_operand():
    core = run_core("""
        movi r1, 0x2000
        prot movi r2, 7
        store [r1], r2
        movi r3, 8
        store [r1 + 8], r3
        halt
    """)
    assert committed(core, 2).lsq_prot is True
    assert committed(core, 4).lsq_prot is False


def test_store_commit_updates_l1d_tags():
    core = run_core("""
        movi r1, 0x2000
        prot movi r2, 7
        store [r1], r2
        movi r3, 8
        store [r1 + 8], r3
        halt
    """)
    assert core.mem_tags.word_protected(0x2000)
    assert not core.mem_tags.word_protected(0x2008)


def test_load_lsq_bit_reads_l1d_tags():
    mem = Memory()
    mem.write_word(0x3000, 1)
    # The second load's address depends on a long multiply chain so it
    # cannot execute until the first load has committed (unprotection
    # happens at commit, paper SIV-C2b).
    core = run_core("""
        movi r1, 0x3000
        load r2, [r1]
        mul r4, r2, r2
        mul r4, r4, r4
        mul r4, r4, r4
        mul r4, r4, r4
        mul r4, r4, r4
        andi r4, r4, 0
        add r5, r1, r4
        load r3, [r5]
        halt
    """, mem)
    # First load reads never-written (protected) memory...
    assert committed(core, 1).lsq_prot is True
    # ...its unprefixed commit unprotects the bytes for the second.
    assert committed(core, 9).lsq_prot is False
    assert not core.mem_tags.word_protected(0x3000)


def test_prot_load_does_not_unprotect_memory():
    mem = Memory()
    mem.write_word(0x3000, 1)
    core = run_core("""
        movi r1, 0x3000
        prot load r2, [r1]
        halt
    """, mem)
    assert core.mem_tags.word_protected(0x3000)


def test_forwarded_load_copies_store_bit():
    core = run_core("""
        movi r1, 0x4000
        prot movi r2, 9
        store [r1], r2
        load r3, [r1]
        halt
    """)
    load = committed(core, 3)
    assert load.forwarded_from is not None
    assert load.lsq_prot is True


def test_call_return_address_unprotected():
    core = run_core("""
        movi sp, 0x9000
        call f
        halt
    f:
        ret
    """)
    call = committed(core, 1)
    assert call.lsq_prot is False
