"""Contract checking and adversary models."""

from types import SimpleNamespace

from repro.contracts import (
    AdversaryModel,
    Contract,
    InvalidReason,
    TestInput,
    Verdict,
    check_contract_pair,
    observe,
)
from repro.defenses import ProtTrack, Unsafe
from repro.isa import assemble
from repro.arch import ObserverMode

LEAKY = """
main:
    movi r1, 0x1000
    movi r9, 0x20000
    movi r2, 0x80000
    load r8, [r9]
    load r8, [r9 + r8 + 64]
    test r8, r8
    beq safe
    load r3, [r1 + 800]
    shli r3, r3, 9
    load r4, [r2 + r3]
safe:
    halt
"""


def inputs(secret):
    return TestInput(memory_words=((0x1000 + 800, secret),))


def test_contract_observer_mapping():
    assert Contract.ARCH_SEQ.observer is ObserverMode.ARCH
    assert Contract.CT_SEQ.observer is ObserverMode.CT
    assert Contract.CTS_SEQ.observer is ObserverMode.CTS
    assert Contract.UNPROT_SEQ.observer is ObserverMode.UNPROT


def test_unsafe_violates_arch_seq():
    program = assemble(LEAKY).linked()
    outcome = check_contract_pair(program, Unsafe, Contract.ARCH_SEQ,
                                  inputs(3), inputs(57))
    assert outcome.verdict is Verdict.VIOLATION


def test_prottrack_upholds_arch_seq():
    program = assemble(LEAKY).linked()
    outcome = check_contract_pair(program, ProtTrack, Contract.ARCH_SEQ,
                                  inputs(3), inputs(57))
    assert outcome.verdict is Verdict.PASS


def test_architecturally_distinguishable_pair_rejected():
    program = assemble("""
        load r1, [r2]
        cmpi r1, 0
        beq done
        movi r3, 1
    done:
        halt
    """).linked()
    a = TestInput(memory_words=((0, 0),), regs=((2, 0),))
    b = TestInput(memory_words=((0, 1),), regs=((2, 0),))
    outcome = check_contract_pair(program, Unsafe, Contract.ARCH_SEQ, a, b)
    assert outcome.verdict is Verdict.INVALID_PAIR


def test_nonterminating_pair_rejected():
    program = assemble("x: jmp x\n").linked()
    outcome = check_contract_pair(program, Unsafe, Contract.CT_SEQ,
                                  TestInput(), TestInput(), fuel=100)
    assert outcome.verdict is Verdict.INVALID_PAIR


def test_adversary_observation_shapes():
    from repro.uarch import simulate
    program = assemble("movi r1, 1\nhalt\n").linked()
    result = simulate(program, None)
    cache_view = observe(result, AdversaryModel.CACHE_TLB)
    timing_view = observe(result, AdversaryModel.TIMING)
    # l1d, l2, l3, tlb tag states: the L3 is part of the probing
    # surface (shared-LLC channel).
    assert len(cache_view) == 4
    assert timing_view[0] == result.cycles


def test_identical_inputs_always_pass():
    program = assemble(LEAKY).linked()
    outcome = check_contract_pair(program, Unsafe, Contract.ARCH_SEQ,
                                  inputs(3), inputs(3))
    assert outcome.verdict is Verdict.PASS


def test_violation_carries_localized_divergence():
    program = assemble(LEAKY).linked()
    outcome = check_contract_pair(program, Unsafe, Contract.ARCH_SEQ,
                                  inputs(3), inputs(57))
    assert outcome.verdict is Verdict.VIOLATION
    assert outcome.divergence is not None
    assert outcome.divergence.adversary == outcome.adversary.value
    assert outcome.divergence.label in outcome.detail


def test_invalid_pair_reasons_are_reported():
    looping = assemble("x: jmp x\n").linked()
    outcome = check_contract_pair(looping, Unsafe, Contract.CT_SEQ,
                                  TestInput(), TestInput(), fuel=100)
    assert outcome.invalid_reason is InvalidReason.NONTERMINATING

    distinguishable = assemble("""
        load r1, [r2]
        cmpi r1, 0
        beq done
        movi r3, 1
    done:
        halt
    """).linked()
    a = TestInput(memory_words=((0, 0),), regs=((2, 0),))
    b = TestInput(memory_words=((0, 1),), regs=((2, 0),))
    outcome = check_contract_pair(distinguishable, Unsafe,
                                  Contract.ARCH_SEQ, a, b)
    assert outcome.invalid_reason is InvalidReason.DISTINGUISHABLE


def test_hw_timeout_reported_as_invalid_reason(monkeypatch):
    from repro.contracts import checker

    def timed_out(*args, **kwargs):
        return SimpleNamespace(halt_reason="timeout")

    monkeypatch.setattr(checker, "simulate", timed_out)
    program = assemble("movi r1, 1\nhalt\n").linked()
    outcome = check_contract_pair(program, Unsafe, Contract.ARCH_SEQ,
                                  TestInput(), TestInput())
    assert outcome.verdict is Verdict.INVALID_PAIR
    assert outcome.invalid_reason is InvalidReason.HW_TIMEOUT


def test_false_positive_filter_flags_sequential_divergence(monkeypatch):
    """A divergence whose committed streams differ is the AMuLeT*
    sequential-leakage artifact, not a transient violation.  Honest runs
    with equal contract traces cannot produce one, so doctor the
    microarchitectural results directly."""
    from repro.contracts import checker

    empty = frozenset()
    doctored = [
        SimpleNamespace(halt_reason="halt",
                        adversary_cache_state=(frozenset({(0, 1)}), empty,
                                               empty, empty),
                        cycles=10, timing_trace=[],
                        committed_pcs=[0, 1], committed_accesses=[]),
        SimpleNamespace(halt_reason="halt",
                        adversary_cache_state=(frozenset({(0, 2)}), empty,
                                               empty, empty),
                        cycles=10, timing_trace=[],
                        committed_pcs=[0, 2], committed_accesses=[]),
    ]
    monkeypatch.setattr(checker, "simulate",
                        lambda *args, **kwargs: doctored.pop(0))
    program = assemble("movi r1, 1\nhalt\n").linked()
    outcome = check_contract_pair(
        program, Unsafe, Contract.ARCH_SEQ, TestInput(), TestInput(),
        adversaries=(AdversaryModel.CACHE_TLB,))
    assert outcome.verdict is Verdict.FALSE_POSITIVE
    assert outcome.adversary is AdversaryModel.CACHE_TLB
    # The localized divergence is attached to false positives too.
    assert outcome.divergence is not None
    assert outcome.divergence.kind == "cache_tag"
