"""ProtTrack mechanism details: the secure fallbacks of SVI-B2b/c."""

from repro.defenses import ProtTrack
from repro.isa import assemble
from repro.uarch import Core, P_CORE


def run_track(src, memory=None):
    defense = ProtTrack()
    core = Core(assemble(src).linked(), defense, P_CORE, memory)
    result = core.run()
    assert result.halt_reason == "halt"
    return core, defense


def test_tainted_store_forwarding_gates_wakeup():
    # An untainted load forwarding from a store of tainted data must not
    # wake dependents until the store's data untaints (SVI-B2c).
    src = """
        movi r9, 0x7000        ; protected region (never written)
        movi r8, 0x4000
        load r0, [r8]          ; warms the spill slot...
        load r1, [r9]          ; tainted (reads protected memory)
        store [r8], r1         ; spill tainted data
        load r2, [r8]          ; forwards from the tainted store
        add r3, r2, r2
        halt
    """
    core, defense = run_track(src)
    load = next(u for u in core.committed if u.pc == 5)
    assert load.forwarded_from is not None
    assert defense.stats["delayed_wakeups"] >= 0  # gate exercised below
    # The dependent add could not complete before the store untainted:
    add = next(u for u in core.committed if u.pc == 6)
    store = next(u for u in core.committed if u.pc == 4)
    assert add.issue_cycle >= store.issue_cycle


def test_predictor_predictive_untainting():
    # After training, loads of unprotected memory leave outputs clean.
    src = """
        movi r8, 0x4000
        movi r6, 0
    p:
        movi r7, 0
    w:
        load r0, [r8 + r7]
        addi r7, r7, 8
        cmpi r7, 128
        blt w
        addi r6, r6, 1
        cmpi r6, 3
        blt p
        load r1, [r8]
        halt
    """
    core, defense = run_track(src)
    warm_loads = [u for u in core.committed if u.pc == 3]
    # First encounter of the PC conservatively predicts *access*...
    assert not warm_loads[0].predicted_no_access
    # ...later ones are predictively untainted.
    assert warm_loads[-1].predicted_no_access
    assert core.prf.yrot[warm_loads[-1].pdests[0][1]] is None
    # A never-seen load PC stays conservative (cold entries mean
    # "access", the safe default).
    cold_load = next(u for u in core.committed if u.pc == 10)
    assert not cold_load.predicted_no_access


def test_prot_prefixed_load_not_tainted():
    core, defense = run_track("""
        movi r8, 0x7000
        prot load r1, [r8]
        halt
    """)
    load = next(u for u in core.committed if u.pc == 1)
    preg = load.pdests[0][1]
    assert core.prf.prot[preg]
    assert core.prf.yrot[preg] is None


def test_raw_accesstrack_taints_all_loads():
    defense = ProtTrack(use_predictor=False)
    src = """
        movi r8, 0x4000
        load r0, [r8]
        load r1, [r8]
        halt
    """
    core = Core(assemble(src).linked(), defense, P_CORE)
    core.run()
    for pc in (1, 2):
        uop = next(u for u in core.committed if u.pc == pc)
        assert core.prf.yrot[uop.pdests[0][1]] == uop.seq
