"""Program container: linking, regions, leaders, validation."""

import pytest

from repro.isa import (
    Instruction,
    Op,
    Program,
    ProgramError,
    assemble,
    find_basic_block_leaders,
)


def test_linking_resolves_labels():
    p = assemble("start: beq end\nnop\nend: halt\n")
    linked = p.linked()
    assert linked.is_linked
    assert linked[0].target == 2


def test_linking_unknown_label():
    p = Program([Instruction(Op.JMP, target="nowhere")])
    with pytest.raises(ProgramError):
        p.linked()


def test_label_out_of_range_rejected():
    with pytest.raises(ProgramError):
        Program([Instruction(Op.NOP)], labels={"x": 5})


def test_function_lookup():
    p = assemble(".func f\nf: nop\nret\n.endfunc\nnop\n")
    assert p.function_at(0).name == "f"
    assert p.function_at(2) is None
    assert p.function_named("f").start == 0
    with pytest.raises(ProgramError):
        p.function_named("g")


def test_with_instructions_requires_equal_length():
    p = assemble("nop\nhalt\n")
    with pytest.raises(ProgramError):
        p.with_instructions([Instruction(Op.NOP)])
    q = p.with_instructions([Instruction(Op.NOP, prot=True),
                             Instruction(Op.HALT)])
    assert q[0].prot


def test_prot_count_and_code_size():
    p = assemble("prot movi r0, 1\nnop\nhalt\n")
    assert p.prot_count() == 1
    assert p.code_size() == 2  # NOP excluded


def test_basic_block_leaders():
    p = assemble("""
        movi r0, 1
        cmpi r0, 0
        beq skip
        movi r1, 2
    skip:
        halt
    """).linked()
    assert find_basic_block_leaders(p) == [0, 3, 4]


def test_leaders_include_entry():
    p = assemble(".entry here\nnop\nhere: halt\n").linked()
    assert 1 in find_basic_block_leaders(p)
