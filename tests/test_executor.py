"""The parallel batch executor and its persistent result cache."""

import os
import pathlib

import pytest

from repro.bench import (
    ExecutorError,
    RunSpec,
    RunSummary,
    baseline_norm,
    clear_caches,
    run,
    run_batch,
    run_summary,
)
from repro.bench import executor
from repro.bench import runner
from repro.bench.executor import (
    cache_load,
    clear_summary_cache,
    spec_cache_key,
    summarize,
)
from repro.contracts import Contract
from repro.defenses import Unsafe
from repro.fuzzing import CampaignConfig, run_campaign

FAST = RunSpec(workload="ossl.ecadd")
FAST_SPTSB = RunSpec(workload="ossl.ecadd", defense="spt-sb")


@pytest.fixture()
def isolated_cache(monkeypatch, tmp_path):
    """Point the persistent cache at a fresh directory."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.setenv("REPRO_PROGRESS", "0")
    clear_caches()
    yield tmp_path / "cache"
    clear_caches()


# ----------------------------------------------------------------------
# RunSummary / keys
# ----------------------------------------------------------------------

def test_summary_round_trip():
    summary = RunSummary(cycles=100, instructions=40, halt_reason="halt",
                         stats=(("squashes", 3),))
    assert RunSummary.from_dict(summary.to_dict()) == summary
    assert summary.ipc == pytest.approx(0.4)
    assert summary.stat == {"squashes": 3}


def test_summarize_matches_full_result(isolated_cache):
    result = run(FAST)
    summary = summarize(result)
    assert summary.cycles == result.cycles
    assert summary.instructions == result.instructions
    assert summary.stat == result.stats


def test_cache_key_depends_on_spec_and_workload(isolated_cache):
    assert spec_cache_key(FAST) != spec_cache_key(FAST_SPTSB)
    assert spec_cache_key(FAST) != spec_cache_key(
        RunSpec(workload="ossl.dh"))
    assert spec_cache_key(FAST) == spec_cache_key(
        RunSpec(workload="ossl.ecadd"))


def test_cache_key_invalidates_on_version_change(isolated_cache,
                                                 monkeypatch):
    before = spec_cache_key(FAST)
    monkeypatch.setenv("REPRO_CACHE_SALT", "simulator-changed")
    assert spec_cache_key(FAST) != before


# ----------------------------------------------------------------------
# Cache hit/miss/invalidation through run_batch
# ----------------------------------------------------------------------

def test_batch_miss_then_memory_then_disk_hits(isolated_cache):
    specs = [FAST, FAST_SPTSB]
    first = run_batch(specs, jobs=1)
    assert executor.LAST_BATCH.simulated == 2
    assert executor.LAST_BATCH.hits == 0

    second = run_batch(specs, jobs=1)
    assert executor.LAST_BATCH.memory_hits == 2
    assert executor.LAST_BATCH.simulated == 0

    clear_summary_cache()
    third = run_batch(specs, jobs=1)
    assert executor.LAST_BATCH.disk_hits == 2
    assert executor.LAST_BATCH.simulated == 0
    assert first == second == third


def test_version_change_forces_resimulation(isolated_cache, monkeypatch):
    run_batch([FAST], jobs=1)
    assert executor.LAST_BATCH.simulated == 1
    monkeypatch.setenv("REPRO_CACHE_SALT", "new-simulator")
    clear_summary_cache()
    run_batch([FAST], jobs=1)
    assert executor.LAST_BATCH.simulated == 1  # old entry not reused


def test_no_cache_env_disables_persistence(isolated_cache, monkeypatch):
    monkeypatch.setenv("REPRO_NO_CACHE", "1")
    run_summary(FAST)
    assert cache_load(FAST) is None
    if isolated_cache.exists():
        assert not list(isolated_cache.rglob("*.json"))


def test_run_summary_matches_batch(isolated_cache):
    assert run_summary(FAST) == run_batch([FAST], jobs=1)[FAST]


# ----------------------------------------------------------------------
# Parallel == serial
# ----------------------------------------------------------------------

def test_parallel_results_bit_identical_to_serial(isolated_cache,
                                                  monkeypatch, tmp_path):
    specs = [FAST, FAST_SPTSB,
             RunSpec(workload="ossl.dh"),
             RunSpec(workload="ossl.dh", defense="track",
                     instrument="unr")]
    serial = run_batch(specs, jobs=1)
    assert executor.LAST_BATCH.jobs == 1

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache2"))
    clear_caches()
    parallel = run_batch(specs, jobs=2)
    assert executor.LAST_BATCH.simulated == 4
    assert serial == parallel


def test_repro_jobs_env_sets_default(isolated_cache, monkeypatch):
    monkeypatch.setenv("REPRO_JOBS", "3")
    assert executor.resolve_jobs() == 3
    assert executor.resolve_jobs(1) == 1
    monkeypatch.delenv("REPRO_JOBS")
    assert executor.resolve_jobs() == (os.cpu_count() or 1)


# ----------------------------------------------------------------------
# Worker timeout / retry / crash paths (stub workers must be
# module-level so the pool can pickle them by reference)
# ----------------------------------------------------------------------

def _always_timeout_worker(spec, timeout_s):
    return ("timeout", spec, None)


def _always_error_worker(spec, timeout_s):
    return ("error", spec, "injected failure")


def _always_crash_worker(spec, timeout_s):
    os._exit(3)


def _marker(spec):
    return pathlib.Path(os.environ["REPRO_TEST_MARKER_DIR"]) \
        / spec.workload.replace("/", "_")


def _fail_once_worker(spec, timeout_s):
    marker = _marker(spec)
    if not marker.exists():
        marker.write_text("failed once")
        return ("error", spec, "injected transient failure")
    return executor._worker_run(spec, timeout_s)


def _crash_once_worker(spec, timeout_s):
    marker = _marker(spec)
    if not marker.exists():
        marker.write_text("crashed once")
        os._exit(3)
    return executor._worker_run(spec, timeout_s)


def test_worker_timeout_exhausts_retries(isolated_cache):
    with pytest.raises(ExecutorError, match="timed out|attempts"):
        run_batch([FAST, FAST_SPTSB], jobs=2, retries=1,
                  worker=_always_timeout_worker)


def test_worker_error_exhausts_retries(isolated_cache):
    with pytest.raises(ExecutorError, match="injected failure"):
        run_batch([FAST, FAST_SPTSB], jobs=2, retries=1,
                  worker=_always_error_worker)


def test_transient_failure_is_retried(isolated_cache, monkeypatch,
                                      tmp_path):
    markers = tmp_path / "markers"
    markers.mkdir()
    monkeypatch.setenv("REPRO_TEST_MARKER_DIR", str(markers))
    results = run_batch([FAST, FAST_SPTSB], jobs=2, retries=2,
                        worker=_fail_once_worker)
    assert executor.LAST_BATCH.retried >= 1
    assert results[FAST].halt_reason == "halt"
    assert results[FAST_SPTSB].cycles > results[FAST].cycles


def test_crashed_worker_is_requeued(isolated_cache, monkeypatch,
                                    tmp_path):
    markers = tmp_path / "markers"
    markers.mkdir()
    monkeypatch.setenv("REPRO_TEST_MARKER_DIR", str(markers))
    results = run_batch([FAST, FAST_SPTSB], jobs=2, retries=2,
                        worker=_crash_once_worker)
    assert results[FAST].halt_reason == "halt"
    assert len(results) == 2


def test_reliably_crashing_worker_gives_up(isolated_cache):
    with pytest.raises(ExecutorError, match="crashed"):
        run_batch([FAST, FAST_SPTSB], jobs=2, retries=1,
                  worker=_always_crash_worker)


def test_worker_run_reports_simulation_errors(isolated_cache):
    status, _, payload, sim_s = executor._worker_run(
        RunSpec(workload="no-such-workload"), None)
    assert status == "error"
    assert "no-such-workload" in payload
    assert sim_s >= 0


# ----------------------------------------------------------------------
# Campaign determinism under parallelism
# ----------------------------------------------------------------------

def test_campaign_parallel_matches_serial():
    config = CampaignConfig(defense_factory=Unsafe,
                            contract=Contract.UNPROT_SEQ,
                            instrumentation="rand",
                            n_programs=4, pairs_per_program=1, seed=7)
    serial = run_campaign(config, jobs=1)
    parallel = run_campaign(config, jobs=4)
    assert (serial.tests, serial.violations, serial.false_positives,
            serial.invalid_pairs, serial.violation_sites) == \
           (parallel.tests, parallel.violations, parallel.false_positives,
            parallel.invalid_pairs, parallel.violation_sites)


def test_campaign_defense_name_enables_lambda_parallelism():
    config = CampaignConfig(defense_factory=None,
                            contract=Contract.UNPROT_SEQ,
                            instrumentation="rand",
                            n_programs=2, pairs_per_program=1, seed=3,
                            defense_name="track-raw")
    result = run_campaign(config, jobs=2)
    assert result.tests == 2
    assert result.violations == 0


def test_unpicklable_factory_falls_back_to_serial():
    config = CampaignConfig(defense_factory=lambda: Unsafe(),
                            contract=Contract.UNPROT_SEQ,
                            instrumentation="rand",
                            n_programs=2, pairs_per_program=1, seed=3)
    result = run_campaign(config, jobs=2)
    assert result.tests == 2
    # The serial fallback must agree exactly with the same cell run in
    # parallel through its registry name.
    named = CampaignConfig(defense_factory=None,
                           contract=Contract.UNPROT_SEQ,
                           instrumentation="rand",
                           n_programs=2, pairs_per_program=1, seed=3,
                           defense_name="unsafe")
    parallel = run_campaign(named, jobs=2)
    assert (result.tests, result.violations, result.false_positives,
            result.invalid_pairs, result.violation_sites) == \
           (parallel.tests, parallel.violations, parallel.false_positives,
            parallel.invalid_pairs, parallel.violation_sites)


# ----------------------------------------------------------------------
# Satellite fixes in the legacy runner
# ----------------------------------------------------------------------

def test_baseline_norm_rejects_unknown_baseline(monkeypatch):
    class FakeWorkload:
        baseline = "definitely-not-a-defense"

    monkeypatch.setattr(runner, "get_workload", lambda name: FakeWorkload())
    with pytest.raises(ValueError, match="unknown baseline"):
        baseline_norm("whatever")


def test_baseline_norm_resolves_directly(isolated_cache):
    from repro.bench import norm_runtime

    assert baseline_norm("ossl.dh") == norm_runtime("ossl.dh", "spt-sb")


def test_full_result_cache_is_bounded(isolated_cache, monkeypatch):
    monkeypatch.setattr(runner, "_RUN_CACHE_LIMIT", 2)
    runner._run_cache.clear()
    run(RunSpec(workload="ossl.ecadd"))
    run(RunSpec(workload="ossl.dh"))
    newest = run(RunSpec(workload="ossl.bnexp"))
    assert len(runner._run_cache) == 2
    assert RunSpec(workload="ossl.ecadd") not in runner._run_cache
    # The most recent entry is still served by identity.
    assert run(RunSpec(workload="ossl.bnexp")) is newest


# ----------------------------------------------------------------------
# Cache-format versioning
# ----------------------------------------------------------------------

def test_from_dict_rejects_missing_or_stale_schema():
    summary = RunSummary(cycles=10, instructions=4, halt_reason="halt")
    payload = summary.to_dict()
    payload["schema"] = executor.CACHE_FORMAT - 1
    with pytest.raises(ValueError, match="stale RunSummary payload"):
        RunSummary.from_dict(payload)
    payload.pop("schema")
    with pytest.raises(ValueError, match="stale RunSummary payload"):
        RunSummary.from_dict(payload)


def test_cache_format_bump_invalidates_entries(isolated_cache,
                                               monkeypatch):
    run_batch([FAST], jobs=1)
    assert cache_load(FAST) is not None
    # A format bump changes the cache key: old entries are never even
    # looked up, and the spec re-simulates.
    monkeypatch.setattr(executor, "CACHE_FORMAT",
                        executor.CACHE_FORMAT + 1)
    clear_summary_cache()
    assert cache_load(FAST) is None
    run_batch([FAST], jobs=1)
    assert executor.LAST_BATCH.simulated == 1


def test_cache_load_rejects_stale_payload_at_current_key(isolated_cache):
    import json

    run_batch([FAST], jobs=1)
    path = executor._cache_path(spec_cache_key(FAST))
    payload = json.loads(path.read_text())
    # Old wrapper format at the current key (e.g. a hand-copied cache).
    payload["format"] = executor.CACHE_FORMAT - 1
    path.write_text(json.dumps(payload))
    assert cache_load(FAST) is None
    # Current wrapper, stale embedded summary: from_dict must refuse it
    # rather than silently deserializing an old schema.
    payload["format"] = executor.CACHE_FORMAT
    payload["summary"]["schema"] = executor.CACHE_FORMAT - 1
    path.write_text(json.dumps(payload))
    assert cache_load(FAST) is None


def test_serial_and_parallel_runsummary_json_byte_identical(
        isolated_cache, monkeypatch):
    """Determinism regression: with the persistent cache disabled and
    the fast path at its default (enabled), a serial batch and a
    --jobs 2 batch must produce byte-identical RunSummary JSON."""
    import json

    monkeypatch.setenv("REPRO_NO_CACHE", "1")
    monkeypatch.delenv("REPRO_NO_FAST_PATH", raising=False)
    specs = [FAST, FAST_SPTSB,
             RunSpec(workload="ossl.dh", defense="track",
                     instrument="unr")]

    def batch_json(jobs):
        clear_caches()
        results = run_batch(specs, jobs=jobs)
        return json.dumps(
            [(repr(spec), results[spec].to_dict()) for spec in specs],
            sort_keys=True)

    serial = batch_json(1)
    parallel = batch_json(2)
    assert executor.LAST_BATCH.simulated == len(specs)  # cache was off
    assert serial == parallel
    assert serial.encode() == parallel.encode()


def test_runsummary_engine_independent(isolated_cache, monkeypatch):
    """The slim perf summary is identical whichever engine produced it
    (the RunSummary-level corollary of the differential harness)."""
    import json

    monkeypatch.setenv("REPRO_NO_CACHE", "1")

    def summary_json():
        clear_caches()
        clear_summary_cache()
        return json.dumps(run_summary(FAST_SPTSB).to_dict(),
                          sort_keys=True)

    monkeypatch.delenv("REPRO_NO_FAST_PATH", raising=False)
    with_fast = summary_json()
    monkeypatch.setenv("REPRO_NO_FAST_PATH", "1")
    without_fast = summary_json()
    assert with_fast == without_fast


def test_runsummary_repro_engine_env_independent(isolated_cache,
                                                 monkeypatch):
    """``REPRO_ENGINE`` picks the backend without changing results
    (that is what lets ``repro bench --engine`` reach pool workers)."""
    import json

    monkeypatch.setenv("REPRO_NO_CACHE", "1")

    def summary_json():
        clear_caches()
        clear_summary_cache()
        return json.dumps(run_summary(FAST_SPTSB).to_dict(),
                          sort_keys=True)

    by_engine = {}
    for engine in ("refcore", "fast", "compiled"):
        monkeypatch.setenv("REPRO_ENGINE", engine)
        by_engine[engine] = summary_json()
    assert by_engine["refcore"] == by_engine["fast"]
    assert by_engine["refcore"] == by_engine["compiled"]


# ----------------------------------------------------------------------
# Shared jobs resolver (warn-and-fallback at both call sites)
# ----------------------------------------------------------------------

def test_resolve_jobs_malformed_env_warns_and_falls_back(monkeypatch,
                                                         caplog):
    import logging

    monkeypatch.setenv("REPRO_JOBS", "four")
    with caplog.at_level(logging.WARNING, logger="repro.bench.executor"):
        jobs = executor.resolve_jobs()
    assert jobs == (os.cpu_count() or 1)
    assert any("REPRO_JOBS" in record.message
               for record in caplog.records)
    # An explicit argument bypasses the env entirely.
    assert executor.resolve_jobs(2) == 2


def test_campaign_resolver_delegates_to_executor(monkeypatch, caplog):
    """The campaign-side resolver and run_batch share one policy: the
    same malformed env warns (from the executor logger) in both."""
    import logging

    from repro.fuzzing.campaign import resolve_campaign_jobs

    monkeypatch.setenv("REPRO_JOBS", "four")
    with caplog.at_level(logging.WARNING, logger="repro.bench.executor"):
        assert resolve_campaign_jobs() == (os.cpu_count() or 1)
    assert any("REPRO_JOBS" in record.message
               for record in caplog.records)
    monkeypatch.setenv("REPRO_JOBS", "3")
    assert resolve_campaign_jobs() == executor.resolve_jobs() == 3


# ----------------------------------------------------------------------
# Cache robustness (tmp-file leak, racing wipe)
# ----------------------------------------------------------------------

def test_cache_store_read_only_dir_does_not_leak_tmp(isolated_cache,
                                                     monkeypatch):
    """A failing os.replace must unlink its mkstemp file: a read-only
    or full cache volume must not accumulate orphan .tmp files."""
    summary = run_summary(FAST)
    key_dir = executor._cache_path(spec_cache_key(FAST)).parent

    def broken_replace(src, dst):
        raise OSError("injected replace failure")

    monkeypatch.setattr(executor.os, "replace", broken_replace)
    executor.cache_store(FAST_SPTSB, summary)  # must not raise
    assert not list(key_dir.parent.rglob("*.tmp"))


def test_cache_store_tolerates_unwritable_dir(isolated_cache,
                                              monkeypatch):
    run_summary(FAST)  # create the cache directory
    monkeypatch.setattr(executor.tempfile, "mkstemp",
                        lambda **kw: (_ for _ in ()).throw(
                            OSError("read-only file system")))
    summary = run_summary(FAST)
    executor.cache_store(FAST_SPTSB, summary)  # must not raise
    assert not list(isolated_cache.rglob("*.tmp"))


def test_cache_info_tolerates_concurrent_wipe(isolated_cache,
                                              monkeypatch):
    """Files deleted between the rglob walk and the stat (a racing
    wipe_cache or writer) are skipped, not crashed on."""
    run_batch([FAST, FAST_SPTSB], jobs=1)
    real_rglob = pathlib.Path.rglob

    def racing_rglob(self, pattern):
        paths = list(real_rglob(self, pattern))
        for path in paths:
            path.unlink()  # the concurrent wipe wins the race
            yield path

    monkeypatch.setattr(pathlib.Path, "rglob", racing_rglob)
    info = executor.cache_info()
    assert info["entries"] == 0
    assert info["bytes"] == 0


def test_wipe_cache_tolerates_vanished_files(isolated_cache,
                                             monkeypatch):
    run_batch([FAST], jobs=1)
    real_rglob = pathlib.Path.rglob

    def racing_rglob(self, pattern):
        paths = list(real_rglob(self, pattern))
        for path in paths:
            path.unlink()
            yield path

    monkeypatch.setattr(pathlib.Path, "rglob", racing_rglob)
    assert executor.wipe_cache() == 0  # nothing left to remove, no crash


# ----------------------------------------------------------------------
# Queue-wait accounting across a pool rebuild
# ----------------------------------------------------------------------

def _slow_crash_once_worker(spec, timeout_s):
    import time as _time

    marker = _marker(spec)
    if spec.defense == "unsafe" and not marker.exists():
        marker.write_text("crashing")
        _time.sleep(0.6)  # make the pre-crash epoch measurably old
        os._exit(3)
    return executor._worker_run(spec, timeout_s)


def test_queue_wait_restarts_after_pool_rebuild(isolated_cache,
                                                monkeypatch, tmp_path):
    """A spec resubmitted after a BrokenProcessPool rebuild gets a
    fresh submission stamp: its queue wait is measured from the
    rebuild, not from the doomed pool's epoch (which would be >= the
    0.6s the crashing worker slept)."""
    from repro.metrics import MetricsRegistry, attached

    markers = tmp_path / "markers"
    markers.mkdir()
    monkeypatch.setenv("REPRO_TEST_MARKER_DIR", str(markers))
    registry = MetricsRegistry()
    with attached(registry):
        results = run_batch([FAST, FAST_SPTSB], jobs=2, retries=2,
                            worker=_slow_crash_once_worker)
    assert len(results) == 2
    waited = registry.timer("executor.queue_wait_seconds")
    assert waited.count >= 1
    assert waited.max < 0.5


# ----------------------------------------------------------------------
# Spool wire format helpers
# ----------------------------------------------------------------------

def test_spec_payload_round_trip():
    from repro.bench.executor import spec_from_payload, spec_to_payload

    assert spec_from_payload(spec_to_payload(FAST_SPTSB)) == FAST_SPTSB


def test_spec_from_payload_rejects_unknown_fields():
    from repro.bench.executor import spec_from_payload, spec_to_payload

    payload = spec_to_payload(FAST)
    payload["not_a_field"] = 1
    with pytest.raises(ValueError, match="unknown RunSpec fields"):
        spec_from_payload(payload)


def test_canonical_json_is_byte_stable():
    from repro.bench.executor import canonical_json

    a = canonical_json({"b": 1, "a": [1, 2]})
    b = canonical_json({"a": [1, 2], "b": 1})
    assert a == b == '{"a":[1,2],"b":1}'


def test_batch_stats_count_compile_cache_traffic(isolated_cache):
    """A cold serial batch compiles its triples once; a warm batch
    reuses them (counters are parent-process registry deltas, so the
    serial path is the one that must account them)."""
    from repro.metrics import MetricsRegistry, attached

    registry = MetricsRegistry()
    with attached(registry):
        run_batch([FAST, FAST_SPTSB], jobs=1)
        cold = executor.LAST_BATCH
        clear_summary_cache()  # forget summaries, keep compiled code
        run_batch([FAST, FAST_SPTSB], jobs=1)
        warm = executor.LAST_BATCH
    assert cold.simulated == 2
    assert cold.compile_misses == 2
    assert cold.compile_hits == 0
    assert "compile cache 0/2 hit" in cold.line()
    # The second batch loads summaries from disk and never simulates,
    # so it sees no compile traffic at all.
    assert warm.simulated == 0 or warm.compile_hits == warm.simulated
    assert warm.compile_misses == 0
