"""The persistent run ledger and cross-commit comparison.

Covers the acceptance flow end to end: ``repro bench`` appends a
record, a second identical invocation plus ``repro compare`` exits 0,
and a hand-slowed record trips ``--threshold 0`` into exit 1.
"""

import copy
import json

import pytest

from repro.metrics import (
    LEDGER_SCHEMA,
    LedgerError,
    LedgerRecord,
    MetricsRegistry,
    append_record,
    compare_records,
    config_digest,
    current_git_sha,
    default_ledger_path,
    host_fingerprint,
    ledger_enabled,
    load_records,
    make_record,
    render_history,
    resolve_record,
    summarize_tables,
)


class FakeTable:
    def __init__(self, name, data):
        self.name = name
        self.data = data


def _record(command="bench", sha="aaaa000000", seconds=10.0,
            tables=None, host=None) -> LedgerRecord:
    return LedgerRecord(
        command=command, git_sha=sha, host=host or host_fingerprint(),
        config="cfg", metrics={"command_seconds": seconds,
                               "executor.batch_seconds.sum": seconds / 2,
                               "executor.specs": 24.0},
        tables=tables if tables is not None
        else {"Table V::ct:geomean/delay": 1.025})


# ----------------------------------------------------------------------
# Fingerprints and digests
# ----------------------------------------------------------------------

def test_host_fingerprint_is_stable():
    a, b = host_fingerprint(), host_fingerprint()
    assert a == b
    assert len(a["digest"]) == 16


def test_git_sha_env_override(monkeypatch):
    monkeypatch.setenv("REPRO_GIT_SHA", "cafebabe")
    assert current_git_sha() == "cafebabe"


def test_config_digest_is_order_insensitive():
    assert config_digest({"a": 1, "b": 2}) == config_digest({"b": 2,
                                                             "a": 1})
    assert config_digest({"a": 1}) != config_digest({"a": 2})


def test_ledger_enabled_env(monkeypatch):
    assert ledger_enabled()
    monkeypatch.setenv("REPRO_NO_LEDGER", "1")
    assert not ledger_enabled()
    monkeypatch.setenv("REPRO_NO_LEDGER", "0")
    assert ledger_enabled()


# ----------------------------------------------------------------------
# Table summarization
# ----------------------------------------------------------------------

def test_summarize_tables_keeps_geomeans_only():
    table = FakeTable("Table V", {
        "bearssl": {"baseline": 1.5, "delay": 1.0},
        "ct:geomean": {"baseline": 1.44, "delay": 1.02},
    })
    flat = summarize_tables([table])
    assert flat == {"Table V::ct:geomean/baseline": 1.44,
                    "Table V::ct:geomean/delay": 1.02}


def test_summarize_tables_without_geomeans_keeps_all_leaves():
    table = FakeTable("T", {"x": 2.0, ("a", "b"): 3.0, "s": "skip",
                            "flag": True, 1024: 1.1})
    flat = summarize_tables([table])
    assert flat == {"T::x": 2.0, "T::a/b": 3.0, "T::1024": 1.1}


# ----------------------------------------------------------------------
# Append / load round trip
# ----------------------------------------------------------------------

def test_append_and_load_round_trip(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_GIT_SHA", "feedc0de00")
    registry = MetricsRegistry()
    registry.counter("executor.specs").inc(24)
    record = make_record("bench table-v", tables=[],
                         registry=registry, config={"jobs": 2},
                         extra_metrics={"command_seconds": 1.25})
    stored = append_record(record)
    assert stored.record_id == 1
    assert stored.created_at > 0

    loaded = load_records()
    assert len(loaded) == 1
    got = loaded[0]
    assert got.command == "bench table-v"
    assert got.git_sha == "feedc0de00"
    assert got.schema == LEDGER_SCHEMA
    assert got.metrics["executor.specs"] == 24.0
    assert got.metrics["command_seconds"] == 1.25
    assert got.host == record.host
    json.dumps(got.to_dict())  # JSON-safe


def test_load_skips_foreign_schema(tmp_path, monkeypatch):
    bad = _record()
    bad.schema = LEDGER_SCHEMA + 1
    append_record(bad)
    append_record(_record())
    assert [r.schema for r in load_records()] == [LEDGER_SCHEMA]


def test_load_limit_returns_newest(monkeypatch):
    append_record(_record(command="first"))
    append_record(_record(command="second"))
    records = load_records(limit=1)
    assert len(records) == 1
    assert records[0].command == "second"


def test_default_path_env_override(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_LEDGER", str(tmp_path / "elsewhere.db"))
    assert default_ledger_path() == tmp_path / "elsewhere.db"


# ----------------------------------------------------------------------
# Record selectors
# ----------------------------------------------------------------------

def test_resolve_record_selectors():
    first = append_record(_record(sha="aaaa000000"))
    second = append_record(_record(sha="bbbb000000"))
    third = append_record(_record(sha="bbbb000000"))
    records = load_records()
    assert resolve_record(records, "latest").record_id == third.record_id
    assert resolve_record(records, "prev").record_id == second.record_id
    assert resolve_record(records, f"#{first.record_id}").record_id == \
        first.record_id
    # SHA prefix resolves to the newest match
    assert resolve_record(records, "bbbb").record_id == third.record_id


def test_resolve_record_errors():
    with pytest.raises(LedgerError, match="empty"):
        resolve_record([], "latest")
    append_record(_record())
    records = load_records()
    with pytest.raises(LedgerError, match="at least two"):
        resolve_record(records, "prev")
    with pytest.raises(LedgerError, match="bad record id"):
        resolve_record(records, "#xyz")
    with pytest.raises(LedgerError, match="no ledger record"):
        resolve_record(records, "#99")
    with pytest.raises(LedgerError, match="SHA prefix"):
        resolve_record(records, "ffff")


# ----------------------------------------------------------------------
# Comparison semantics
# ----------------------------------------------------------------------

def test_compare_identical_records_passes():
    a, b = _record(), _record()
    comparison = compare_records(a, b, threshold_pct=0.0)
    assert not comparison.regressed
    assert comparison.deltas  # values were actually compared
    assert "verdict: 0 regressions" in comparison.render()


def test_compare_flags_perf_increase_only():
    slower = compare_records(_record(seconds=10.0), _record(seconds=12.0),
                             threshold_pct=10.0)
    names = [d.name for d in slower.regressions]
    assert "command_seconds" in names
    # getting faster is an improvement, never a regression
    faster = compare_records(_record(seconds=12.0), _record(seconds=6.0),
                             threshold_pct=10.0)
    assert not faster.regressed


def test_compare_flags_fidelity_drift_both_directions():
    base = _record(tables={"T::geomean": 1.5})
    up = compare_records(base, _record(tables={"T::geomean": 1.8}),
                         threshold_pct=10.0)
    down = compare_records(base, _record(tables={"T::geomean": 1.2}),
                           threshold_pct=10.0)
    assert up.regressed and down.regressed
    within = compare_records(base, _record(tables={"T::geomean": 1.55}),
                             threshold_pct=10.0)
    assert not within.regressed


def test_compare_notes_asymmetric_tables_and_host_mismatch():
    other_host = dict(host_fingerprint(), digest="0" * 16)
    comparison = compare_records(
        _record(tables={"T::a": 1.0}),
        _record(tables={"T::b": 1.0}, host=other_host))
    assert any("different hosts" in n for n in comparison.notes)
    assert any("only in old: T::a" in n for n in comparison.notes)
    assert any("only in new: T::b" in n for n in comparison.notes)
    assert not comparison.regressed  # nothing shared to regress on


def test_compare_to_dict_is_json_safe():
    payload = compare_records(_record(), _record(seconds=99.0)).to_dict()
    assert payload["regressed"] is True
    json.dumps(payload)


def test_render_history_columns():
    append_record(_record(command="bench", seconds=4.0))
    append_record(_record(command="bench", seconds=2.0))
    text = render_history(load_records(), metrics=["command_seconds"])
    assert "command_seconds" in text
    assert "2 records" in text
    assert "#1" in text and "#2" in text


# ----------------------------------------------------------------------
# CLI acceptance flow
# ----------------------------------------------------------------------

@pytest.fixture()
def bench_env(monkeypatch, tmp_path):
    """Isolated cache + deterministic SHA for in-process CLI runs."""
    from repro.bench import clear_caches

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.setenv("REPRO_PROGRESS", "0")
    monkeypatch.setenv("REPRO_GIT_SHA", "abcd123456")
    clear_caches()
    yield
    clear_caches()


def test_bench_appends_ledger_record_and_compare_passes(bench_env,
                                                        capsys):
    from repro.cli import main

    argv = ["bench", "--quick", "--only", "table-v", "--jobs", "2"]
    assert main(argv) == 0
    assert "[ledger] appended record #1" in capsys.readouterr().out
    assert main(argv) == 0  # warm cache, identical output
    records = load_records()
    assert len(records) == 2
    assert records[0].tables == records[1].tables
    # second run in the same process: every spec is a cache hit
    hits = records[1].metrics["cache.memory_hits"] \
        + records[1].metrics["cache.disk_hits"]
    assert hits == records[0].metrics["cache.misses"] > 0

    assert main(["compare", "prev", "latest"]) == 0
    out = capsys.readouterr().out
    assert "verdict: 0 regressions" in out


def test_compare_threshold_zero_catches_slowdown(bench_env, capsys):
    from repro.cli import main

    assert main(["bench", "--quick", "--only", "table-v",
                 "--jobs", "2"]) == 0
    slow = copy.deepcopy(load_records()[-1])
    slow.record_id = None
    slow.created_at = 0.0
    slow.metrics["command_seconds"] *= 2
    for key in slow.tables:
        slow.tables[key] *= 1.5
    append_record(slow)

    assert main(["compare", "prev", "latest", "--threshold", "0"]) == 1
    assert "REGRESSION" in capsys.readouterr().out
    # a generous threshold tolerates the fake perf delta but the
    # fidelity drift (50%) still regresses
    assert main(["compare", "prev", "latest", "--threshold", "200"]) == 0


def test_compare_unresolvable_selector_exits_2(bench_env, capsys):
    from repro.cli import main

    assert main(["compare", "prev", "latest"]) == 2
    assert "empty" in capsys.readouterr().err
    assert main(["bench", "--quick", "--only", "table-v", "--jobs", "1",
                 "--no-ledger"]) == 0
    assert load_records() == []  # --no-ledger really skipped the append


def test_history_cli(bench_env, capsys):
    from repro.cli import main

    assert main(["history"]) == 0
    assert "empty" in capsys.readouterr().out
    assert main(["bench", "--quick", "--only", "table-v",
                 "--jobs", "1"]) == 0
    capsys.readouterr()
    assert main(["history", "--metric", "command_seconds",
                 "cache.disk"]) == 0
    out = capsys.readouterr().out
    assert "command_seconds" in out
    assert "abcd123456"[:10] in out
    assert main(["history", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload[0]["git_sha"] == "abcd123456"


def test_history_json_honors_metric_filter(bench_env, capsys):
    from repro.cli import main

    assert main(["bench", "--quick", "--only", "table-v",
                 "--jobs", "1"]) == 0
    capsys.readouterr()
    assert main(["history", "--json", "--metric",
                 "command_seconds"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload[0]["git_sha"] == "abcd123456"  # identity kept
    assert list(payload[0]["metrics"]) == ["command_seconds"]
    assert payload[0]["tables"] == {}
    # Filters are substrings, matching the table view's semantics.
    assert main(["history", "--json", "--metric", "cache."]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload[0]["metrics"]
    assert all(name.startswith("cache.")
               for name in payload[0]["metrics"])


def test_fuzz_appends_ledger_record(bench_env, capsys):
    from repro.cli import main

    assert main(["fuzz", "--defense", "spt", "--contract", "ct-seq",
                 "--programs", "2", "--pairs", "2", "--jobs", "1"]) == 0
    records = load_records()
    assert len(records) == 1
    assert records[0].command == "fuzz spt ct-seq"
    assert records[0].metrics["fuzz.programs"] == 2.0


def test_bench_metrics_out_writes_json_and_prom(bench_env, tmp_path,
                                                capsys):
    from repro.cli import main

    out = tmp_path / "metrics.json"
    assert main(["bench", "--quick", "--only", "table-v", "--jobs", "1",
                 "--metrics-out", str(out)]) == 0
    snapshot = json.loads(out.read_text())
    assert snapshot["counters"]["executor.specs"] == 24
    prom = out.with_suffix(".json.prom").read_text()
    assert "# TYPE repro_executor_specs_total counter" in prom
