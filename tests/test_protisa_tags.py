"""ProtISA memory-protection tag store (paper SIV-C2)."""

from repro.protisa import MemoryProtectionTags
from repro.uarch import CacheHierarchy, L1DTagMode, P_CORE


def make(mode=L1DTagMode.L1D):
    tags = MemoryProtectionTags(mode)
    caches = CacheHierarchy(P_CORE, tags.on_l1d_eviction)
    tags.attach_l1d(caches.l1d)
    return tags, caches


def test_default_protected():
    tags, _ = make()
    assert tags.word_protected(0x1000)
    assert tags.byte_protected(0x1000)


def test_unprotect_requires_l1d_residence():
    tags, caches = make()
    tags.clear_word(0x1000)          # line absent: cannot track
    assert tags.word_protected(0x1000)
    caches.access(0x1000)
    tags.clear_word(0x1000)
    assert not tags.word_protected(0x1000)


def test_word_protected_is_or_of_bytes():
    tags, caches = make()
    caches.access(0x1000)
    tags.clear_word(0x1000)
    tags.set_word(0x1004, True)      # reprotect the upper half
    assert tags.word_protected(0x1000)
    assert not tags.byte_protected(0x1000)


def test_eviction_forgets_unprotection():
    tags, caches = make()
    caches.access(0x1000)
    tags.clear_word(0x1000)
    assert not tags.word_protected(0x1000)
    # Thrash the set until the line is evicted.
    sets = caches.l1d.num_sets
    for way in range(P_CORE.l1d.assoc + 1):
        caches.access(0x1000 + (way + 1) * sets * 64)
    assert tags.word_protected(0x1000)


def test_none_mode_always_protected():
    tags, caches = make(L1DTagMode.NONE)
    caches.access(0x1000)
    tags.clear_word(0x1000)
    assert tags.word_protected(0x1000)


def test_perfect_mode_survives_eviction():
    tags, caches = make(L1DTagMode.PERFECT)
    tags.clear_word(0x1000)          # no residence requirement
    assert not tags.word_protected(0x1000)
    tags.on_l1d_eviction(0x1000 >> 6)
    assert not tags.word_protected(0x1000)


def test_store_reprotects():
    tags, caches = make()
    caches.access(0x2000)
    tags.clear_word(0x2000)
    tags.set_word(0x2000, True)
    assert tags.word_protected(0x2000)


def test_unprotected_count():
    tags, caches = make()
    assert tags.unprotected_count() == 0
    caches.access(0x1000)
    tags.clear_word(0x1000)
    assert tags.unprotected_count() == 8
