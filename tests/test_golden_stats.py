"""Golden-fixture regression tests for ``CoreResult.stats``.

The checked-in ``tests/golden/core_stats.json`` pins the exact cycle
count and every stat counter for the security fixtures under their
signature configurations.  Any uarch change that shifts a counter
shows up here as a readable per-key diff — if the shift is intended,
regenerate the golden file (each entry is plain JSON) and review the
delta in the PR.
"""

import json
import pathlib

import pytest

from repro.bench.runner import DEFENSES
from repro.fixtures import build
from repro.protcc import mitigate_program
from repro.uarch import P_CORE, simulate

GOLDEN_PATH = pathlib.Path(__file__).parent / "golden" / "core_stats.json"
GOLDEN = json.loads(GOLDEN_PATH.read_text())

#: label -> (fixture, defense, config, software mitigation or None).
#: The fence-mitigated case pins the *software* overhead baseline: any
#: change to fence placement or MFENCE frontend serialization shifts
#: its cycle count and shows up here.
CASES = {
    "div-channel/unsafe": ("div-channel", "unsafe", P_CORE, None),
    "div-channel/track": ("div-channel", "track", P_CORE, None),
    "squash-bug/track": ("squash-bug", "track", P_CORE, None),
    "squash-bug/track-buggy": ("squash-bug", "track",
                               P_CORE.replace(buggy_squash_notify=True),
                               None),
    "v1-gadget/unsafe+fence": ("v1-gadget", "unsafe", P_CORE, "fence"),
}


def format_stat_diff(label, expected, actual) -> str:
    lines = [f"{label}: stats diverge from tests/golden/core_stats.json"]
    for key in sorted(set(expected) | set(actual)):
        want, got = expected.get(key), actual.get(key)
        if want != got:
            lines.append(f"  {key}: golden={want} actual={got}")
    lines.append("  (intended change? regenerate the golden file and "
                 "review the delta)")
    return "\n".join(lines)


def test_golden_file_covers_every_case():
    assert set(GOLDEN) == set(CASES)


def _case_program(fixture, mitigation):
    program, memory = build(fixture)
    if mitigation is not None:
        program = mitigate_program(program, mitigation).program
    return program, memory


@pytest.mark.parametrize("label", sorted(CASES))
def test_stats_match_golden(label):
    fixture, defense, config, mitigation = CASES[label]
    program, memory = _case_program(fixture, mitigation)
    result = simulate(program, DEFENSES[defense](), config, memory)
    assert result.halt_reason == "halt"
    golden = GOLDEN[label]
    actual = dict(sorted(result.stats.items()))
    assert result.cycles == golden["cycles"], (
        f"{label}: cycles golden={golden['cycles']} "
        f"actual={result.cycles}")
    assert actual == golden["stats"], \
        format_stat_diff(label, golden["stats"], actual)


@pytest.mark.parametrize("label", sorted(CASES))
def test_golden_runs_identical_on_reference_engine(label):
    # The goldens pin the *observable* behaviour, which by the
    # differential contract is engine-independent.
    fixture, defense, config, mitigation = CASES[label]
    program, memory = _case_program(fixture, mitigation)
    result = simulate(program, DEFENSES[defense](), config, memory,
                      fast_path=False)
    golden = GOLDEN[label]
    assert result.cycles == golden["cycles"]
    assert dict(sorted(result.stats.items())) == golden["stats"]
