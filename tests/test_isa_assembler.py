"""Assembler / disassembler round trips and error handling."""

import pytest

from repro.isa import (
    AssemblyError,
    Cond,
    Op,
    assemble,
    disassemble,
    format_instruction,
)


def test_basic_program():
    p = assemble("""
    main:
        movi r1, 42
        add r2, r1, r1
        halt
    """)
    assert len(p) == 3
    assert p.labels == {"main": 0}
    assert p[0].op is Op.MOVI and p[0].imm == 42


def test_prot_prefix():
    p = assemble("prot movi r1, 1\nmovi r2, 2\n")
    assert p[0].prot and not p[1].prot


@pytest.mark.parametrize("text,base,index,disp", [
    ("[r1]", 1, None, 0),
    ("[r1 + 8]", 1, None, 8),
    ("[r1 - 16]", 1, None, -16),
    ("[r1 + r2]", 1, 2, 0),
    ("[r1 + r2 + 24]", 1, 2, 24),
    ("[r1 + r2 - 8]", 1, 2, -8),
    ("[sp + 0x10]", 15, None, 16),
])
def test_memory_operands(text, base, index, disp):
    p = assemble(f"load r0, {text}\n")
    i = p[0]
    assert (i.ra, i.rb, i.imm) == (base, index, disp)


def test_store_memory_operand():
    p = assemble("store [r3 + r4 + 8], r5\n")
    i = p[0]
    assert i.op is Op.STORE
    assert (i.ra, i.rb, i.imm, i.rd) == (3, 4, 8, 5)


def test_branch_aliases():
    p = assemble("x: beq x\nbne x\nblt x\nbge x\nbb x\nbae x\n")
    assert [i.cond for i in p] == [Cond.EQ, Cond.NE, Cond.LT, Cond.GE,
                                   Cond.B, Cond.AE]


def test_br_long_form():
    p = assemble("x: br le, x\n")
    assert p[0].cond is Cond.LE and p[0].target == "x"


def test_numeric_target():
    p = assemble("beq 3\nnop\nnop\nhalt\n")
    assert p[0].target == 3


def test_comments_and_blank_lines():
    p = assemble("""
    ; a comment
    movi r0, 1   # trailing comment
    """)
    assert len(p) == 1


def test_function_directives():
    p = assemble("""
    .func f
    f:
        nop
        ret
    .endfunc
    nop
    """)
    assert len(p.functions) == 1
    region = p.functions[0]
    assert region.name == "f" and (region.start, region.end) == (0, 2)


def test_entry_directive():
    p = assemble(".entry start\nnop\nstart: halt\n")
    assert p.entry == 1


def test_duplicate_label_rejected():
    with pytest.raises(AssemblyError):
        assemble("a: nop\na: nop\n")


def test_unknown_mnemonic_rejected():
    with pytest.raises(AssemblyError):
        assemble("frobnicate r1\n")


def test_wrong_operand_count_rejected():
    with pytest.raises(AssemblyError):
        assemble("add r1, r2\n")


def test_bad_memory_operand_rejected():
    with pytest.raises(AssemblyError):
        assemble("load r1, [r2 * 4]\n")


def test_unterminated_func_rejected():
    with pytest.raises(AssemblyError):
        assemble(".func f\nnop\n")


def test_nested_func_rejected():
    with pytest.raises(AssemblyError):
        assemble(".func a\n.func b\n")


def test_full_roundtrip():
    source = """
    .func main
    main:
        movi sp, 0x1000
        prot movi r1, 5
        mov r2, r1
        add r3, r1, r2
        addi r3, r3, -7
        cmp r3, r2
        blt out
        store [r3 + r2 + 8], r1
        prot load r4, [r3]
        push r4
        pop r5
        div r6, r4, r5
        call main
        jmpi r6
    out:
        test r1, r2
        cmpi r1, 3
        mfence
        ret
    .endfunc
    """
    p = assemble(source).linked()
    p2 = assemble(disassemble(p)).linked()
    assert p.instructions == p2.instructions


def test_format_every_instruction_parses_back():
    p = assemble("""
        movi r0, 1
        shli r1, r0, 3
        ori r2, r1, 1
        xori r2, r2, 2
        andi r2, r2, 3
        subi r2, r2, 1
        muli r2, r2, 5
        shri r2, r2, 1
        rem r3, r2, r0
        or r4, r2, r3
        and r4, r4, r2
        xor r4, r4, r3
        shl r4, r4, r0
        shr r4, r4, r0
        sub r4, r4, r0
        mul r4, r4, r0
        jmp 0
    """)
    for inst in p:
        text = format_instruction(inst)
        reparsed = assemble(text + "\n")[0]
        assert reparsed == inst or reparsed.target == inst.target
