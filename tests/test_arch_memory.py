"""Sparse memory semantics."""

from repro.arch import Memory
from repro.arch.semantics import ADDR_MASK


def test_default_zero():
    assert Memory().read_word(0x1234) == 0


def test_word_little_endian():
    m = Memory()
    m.write_word(0x100, 0x0807060504030201)
    assert m.read_byte(0x100) == 0x01
    assert m.read_byte(0x107) == 0x08


def test_word_roundtrip():
    m = Memory()
    m.write_word(8, (1 << 64) - 2)
    assert m.read_word(8) == (1 << 64) - 2


def test_unaligned_overlap():
    m = Memory()
    m.write_word(0, 0xFFFFFFFFFFFFFFFF)
    m.write_word(4, 0)
    assert m.read_word(0) == 0x00000000FFFFFFFF


def test_address_masking():
    m = Memory()
    m.write_word(ADDR_MASK + 1, 7)   # wraps to 0
    assert m.read_word(0) == 7


def test_copy_is_independent():
    m = Memory({0: 1})
    c = m.copy()
    c.write_byte(0, 2)
    assert m.read_byte(0) == 1


def test_equality_ignores_explicit_zeros():
    a = Memory()
    b = Memory()
    a.write_word(0x10, 0)
    assert a == b


def test_bulk_helpers():
    m = Memory()
    m.write_words(0x40, [1, 2, 3])
    assert m.read_words(0x40, 3) == (1, 2, 3)


def test_touched_addresses():
    m = Memory()
    m.write_word(0x40, 1)
    touched = set(m.touched_addresses())
    assert touched == set(range(0x40, 0x48))
