"""Sequential machine semantics, one behaviour per test."""

from repro.arch import Memory, SequentialMachine, STACK_TOP, run_program
from repro.isa import assemble


def run(src, memory=None, regs=None, fuel=10000):
    return run_program(assemble(src).linked(), memory, regs, fuel=fuel)


def test_movi_and_halt():
    r = run("movi r1, 99\nhalt\n")
    assert r.halt_reason == "halt"
    assert r.final_regs[1] == 99


def test_negative_immediate():
    r = run("movi r1, -1\nhalt\n")
    assert r.final_regs[1] == (1 << 64) - 1


def test_arithmetic_chain():
    r = run("""
        movi r1, 10
        movi r2, 3
        add r3, r1, r2
        sub r4, r1, r2
        mul r5, r1, r2
        div r6, r1, r2
        rem r7, r1, r2
        halt
    """)
    assert r.final_regs[3:8] == (13, 7, 30, 3, 1)


def test_load_store():
    r = run("""
        movi r1, 0x2000
        movi r2, 0xABCD
        store [r1 + 8], r2
        load r3, [r1 + 8]
        halt
    """)
    assert r.final_regs[3] == 0xABCD
    assert r.memory.read_word(0x2008) == 0xABCD


def test_base_plus_index_addressing():
    mem = Memory()
    mem.write_word(0x3010, 77)
    r = run("""
        movi r1, 0x3000
        movi r2, 0x10
        load r3, [r1 + r2]
        halt
    """, mem)
    assert r.final_regs[3] == 77


def test_branch_taken_and_not_taken():
    r = run("""
        movi r1, 1
        cmpi r1, 1
        beq yes
        movi r2, 100
    yes:
        cmpi r1, 2
        beq no
        movi r3, 200
    no:
        halt
    """)
    assert r.final_regs[2] == 0 and r.final_regs[3] == 200


def test_call_ret_stack():
    r = run("""
        movi sp, 0x8000
        call f
        movi r2, 2
        halt
    f:
        movi r1, 1
        ret
    """)
    assert r.final_regs[1] == 1 and r.final_regs[2] == 2
    assert r.final_regs[15] == 0x8000  # sp restored


def test_push_pop():
    r = run("""
        movi sp, 0x8000
        movi r1, 42
        push r1
        movi r1, 0
        pop r2
        halt
    """)
    assert r.final_regs[2] == 42
    assert r.final_regs[15] == 0x8000


def test_jmpi():
    r = run("""
        movi r1, 3
        jmpi r1
        movi r2, 1
        halt
    """)
    assert r.final_regs[2] == 0
    assert r.halt_reason == "halt"


def test_default_stack_pointer():
    machine = SequentialMachine(assemble("halt\n").linked())
    assert machine.regs[15] == STACK_TOP


def test_off_end():
    assert run("nop\n").halt_reason == "off_end"


def test_bad_pc():
    r = run("movi r1, 1000\njmpi r1\n")
    assert r.halt_reason == "bad_pc"


def test_fuel_exhaustion():
    r = run("x: jmp x\n", fuel=50)
    assert r.halt_reason == "fuel"
    assert r.instruction_count == 50


def test_step_records():
    mem = Memory()
    mem.write_word(0x100, 5)
    r = run("movi r1, 0x100\nload r2, [r1]\nstore [r1 + 8], r2\nhalt\n",
            mem)
    load_step = r.steps[1]
    assert load_step.mem_read == (0x100, 5)
    assert load_step.addr_reg_values == ((1, 0x100),)
    store_step = r.steps[2]
    assert store_step.mem_write == (0x108, 5)


def test_div_operands_recorded():
    r = run("movi r1, 10\nmovi r2, 2\ndiv r3, r1, r2\nhalt\n")
    assert r.steps[2].div_operands == (10, 2)


def test_accessed_bytes_tracked():
    mem = Memory()
    r = run("movi r1, 0x100\nload r2, [r1]\nhalt\n", mem)
    assert set(range(0x100, 0x108)) <= r.accessed_bytes


def test_initial_regs_applied():
    r = run("add r2, r0, r1\nhalt\n", regs={0: 3, 1: 4})
    assert r.final_regs[2] == 7
