"""Per-defense gating decisions observed through pipeline behaviour:
which mechanism delays what, on minimal crafted programs."""

from repro.arch import Memory
from repro.defenses import (
    AccessDelay,
    AccessTrack,
    ProtDelay,
    ProtTrack,
    SPT,
    SPTSB,
    Unsafe,
)
from repro.isa import assemble
from repro.uarch import Core, P_CORE


def run(defense, src, memory=None):
    core = Core(assemble(src).linked(), defense, P_CORE, memory)
    result = core.run()
    assert result.halt_reason == "halt"
    return core, result


# A dependent-load pair over *warmed* (unprotected) memory.
WARM_CHAIN = """
    movi r8, 0x4000
    movi r7, 0
w:
    load r0, [r8 + r7]
    addi r7, r7, 8
    cmpi r7, 256
    blt w
    movi r5, 0
    movi r7, 0
l:
    andi r0, r7, 0xF8
    load r1, [r8 + r0]
    andi r1, r1, 0xF8
    load r2, [r8 + r1]
    add r5, r5, r2
    addi r7, r7, 8
    cmpi r7, 512
    blt l
    halt
"""


def _mem():
    memory = Memory()
    for i in range(32):
        memory.write_word(0x4000 + 8 * i, (i * 72) % 256)
    return memory


def test_stt_pays_on_warm_chains_protean_does_not():
    _, unsafe = run(Unsafe(), WARM_CHAIN, _mem())
    _, stt = run(AccessTrack(), WARM_CHAIN, _mem())
    _, track = run(ProtTrack(), WARM_CHAIN, _mem())
    assert stt.cycles > unsafe.cycles * 1.2
    # The data is unprotected after the warm pass: ProtTrack's predictor
    # learns no-access and the chain flows freely.
    assert track.cycles < stt.cycles


def test_sptsb_serializes_every_transmitter():
    _, unsafe = run(Unsafe(), WARM_CHAIN, _mem())
    _, sptsb = run(SPTSB(), WARM_CHAIN, _mem())
    assert sptsb.cycles > unsafe.cycles * 1.5


def test_access_delay_blocks_dependent_wakeups():
    _, unsafe = run(Unsafe(), WARM_CHAIN, _mem())
    _, nda = run(AccessDelay(), WARM_CHAIN, _mem())
    assert nda.cycles > unsafe.cycles * 1.2


def test_spt_first_transmission_cost_then_free():
    # The same masked address value is transmitted repeatedly: SPT pays
    # on fresh values, so a loop with fresh masks every iteration is
    # slower than the unsafe core while STT (untainted counters) is not.
    src = """
        movi r8, 0x4000
        movi r7, 0
    w:
        load r0, [r8 + r7]
        addi r7, r7, 8
        cmpi r7, 256
        blt w
        movi r7, 0
    l:
        andi r0, r7, 0xF8
        load r1, [r8 + r0]
        addi r7, r7, 8
        cmpi r7, 512
        blt l
        halt
    """
    _, unsafe = run(Unsafe(), src, _mem())
    _, spt = run(SPT(), src, _mem())
    assert spt.cycles > unsafe.cycles * 1.1


def test_protdelay_prot_prefixed_access_wakes_immediately():
    # A PROT-prefixed load of protected memory may wake its dependents
    # (they are access instructions themselves); an unprefixed one may
    # not (paper SVI-B1).  An older cold chain keeps the ROB head busy
    # so the wakeup-delay difference is visible.
    prot_src = """
        movi r9, 0x9000
        load r3, [r9]
        load r3, [r9 + r3 + 64]
        movi r8, 0x7000
        prot load r1, [r8]
        prot add r2, r1, r1
        prot add r2, r2, r2
        prot add r2, r2, r2
        prot add r2, r2, r2
        prot add r2, r2, r2
        prot add r2, r2, r2
        prot add r2, r2, r2
        prot add r2, r2, r2
        halt
    """
    unprot_src = prot_src.replace("prot load", "load")
    _, with_prot = run(ProtDelay(), prot_src)
    _, without = run(ProtDelay(), unprot_src)
    assert with_prot.cycles < without.cycles


def test_prottrack_false_negative_fallback():
    # Train the predictor to no-access, then make the same load PC read
    # protected memory: the fallback delays dependents until retire.
    src = """
        movi r8, 0x4000
        movi r9, 0x7000       ; never-written: protected
        movi r7, 0
    w:
        load r0, [r8 + r7]    ; trains this PC to no-access? no: below
        addi r7, r7, 8
        cmpi r7, 128
        blt w
        mov r10, r8
        movi r7, 0
    l:
        load r1, [r10]        ; same PC, protected on the last iteration
        add r2, r1, r1
        addi r7, r7, 1
        cmpi r7, 10
        beq swap
        cmpi r7, 12
        blt l
        jmp out
    swap:
        mov r10, r9           ; switch the PC to protected memory
        jmp l
    out:
        halt
    """
    defense = ProtTrack()
    core, result = run(defense, src, _mem())
    assert defense.predictor.false_negatives >= 1


def test_spt_sb_delays_branch_resolution():
    # The branch completes while an older cold load still blocks the
    # ROB head, so XmitDelay must defer its resolution.
    src = """
        movi r9, 0x9000
        load r3, [r9]
        movi r1, 0
    l:
        addi r1, r1, 1
        cmpi r1, 30
        blt l
        halt
    """
    core, _ = run(SPTSB(), src)
    assert core.defense.stats["delayed_resolutions"] > 0
