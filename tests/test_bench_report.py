"""JSON report export and regression comparison."""

from repro.bench import compare_reports, load_report, write_report
from repro.bench.tables import TableResult


def make_table(value):
    return TableResult("T1", ["name", "metric"], [["row", value]])


def test_roundtrip(tmp_path):
    path = write_report([make_table(1.5)], tmp_path / "report.json")
    loaded = load_report(path)
    assert loaded["tables"][0]["name"] == "T1"
    assert loaded["tables"][0]["rows"] == [["row", 1.5]]


def test_compare_within_tolerance(tmp_path):
    a = load_report(write_report([make_table(1.00)], tmp_path / "a.json"))
    b = load_report(write_report([make_table(1.02)], tmp_path / "b.json"))
    assert compare_reports(a, b, tolerance=0.05) == {}


def test_compare_flags_regressions(tmp_path):
    a = load_report(write_report([make_table(1.00)], tmp_path / "a.json"))
    b = load_report(write_report([make_table(1.50)], tmp_path / "b.json"))
    diffs = compare_reports(a, b, tolerance=0.05)
    assert "T1" in diffs


def test_compare_detects_new_tables(tmp_path):
    a = load_report(write_report([], tmp_path / "a.json"))
    b = load_report(write_report([make_table(1.0)], tmp_path / "b.json"))
    assert compare_reports(a, b) == {"T1": ["new table"]}


def test_non_numeric_cells_stringified(tmp_path):
    table = TableResult("T2", ["a"], [[("tuple", 1)]])
    path = write_report([table], tmp_path / "r.json")
    loaded = load_report(path)
    assert isinstance(loaded["tables"][0]["rows"][0][0], str)
