"""Additional sequential-machine behaviours: addressing corners,
control-flow edge cases, and record completeness."""

from repro.arch import Memory, run_program
from repro.arch.semantics import ADDR_MASK, MASK64
from repro.isa import assemble


def run(src, memory=None, regs=None, fuel=20000):
    return run_program(assemble(src).linked(), memory, regs, fuel=fuel)


def test_address_wraps_at_32_bits():
    mem = Memory()
    mem.write_word(8, 77)
    r = run("load r2, [r1 + 16]\nhalt\n", mem, {1: ADDR_MASK - 7})
    assert r.final_regs[2] == 77


def test_negative_displacement():
    mem = Memory()
    mem.write_word(0x0FF8, 5)
    r = run("movi r1, 0x1000\nload r2, [r1 - 8]\nhalt\n", mem)
    assert r.final_regs[2] == 5


def test_store_then_overlapping_load():
    r = run("""
        movi r1, 0x2000
        movi r2, -1
        store [r1], r2
        load r3, [r1 + 4]
        halt
    """)
    assert r.final_regs[3] == 0x00000000FFFFFFFF


def test_self_modifying_register_addressing():
    # load into its own base register (pointer chase step)
    mem = Memory()
    mem.write_word(0x100, 0x200)
    mem.write_word(0x200, 0x300)
    r = run("""
        movi r1, 0x100
        load r1, [r1]
        load r1, [r1]
        halt
    """, mem)
    assert r.final_regs[1] == 0x300


def test_jmp_backward_with_counter():
    r = run("""
        movi r1, 5
        movi r2, 0
    top:
        addi r2, r2, 2
        subi r1, r1, 1
        cmpi r1, 0
        bne top
        halt
    """)
    assert r.final_regs[2] == 10


def test_call_depth_three():
    r = run("""
        movi sp, 0x8000
        call a
        halt
    a:
        addi r1, r1, 1
        call b
        ret
    b:
        addi r1, r1, 10
        call c
        ret
    c:
        addi r1, r1, 100
        ret
    """)
    assert r.final_regs[1] == 111
    assert r.final_regs[15] == 0x8000


def test_jmpi_computed_dispatch():
    r = run("""
        movi r1, 2
        muli r2, r1, 2
        addi r2, r2, 1
        jmpi r2
        nop
        movi r3, 7
        halt
    """)
    assert r.final_regs[3] == 7


def test_flags_preserved_across_unrelated_ops():
    r = run("""
        movi r1, 1
        movi r2, 2
        cmp r1, r2
        add r3, r1, r2
        mul r4, r3, r3
        blt less
        movi r5, 0
        halt
    less:
        movi r5, 1
        halt
    """)
    assert r.final_regs[5] == 1  # ALU ops do not clobber flags


def test_record_disabled_still_tracks_outcome():
    r = run_program(assemble("movi r1, 9\nhalt\n").linked(), record=False)
    assert r.final_regs[1] == 9
    assert r.steps == []


def test_shift_by_register_mod_64():
    r = run("""
        movi r1, 1
        movi r2, 65
        shl r3, r1, r2
        halt
    """)
    assert r.final_regs[3] == 2


def test_mul_wraparound():
    r = run(f"""
        movi r1, -1
        movi r2, 2
        mul r3, r1, r2
        halt
    """)
    assert r.final_regs[3] == MASK64 - 1
