"""The campaign fabric: spool protocol, broker/worker loop, and the
sharded-equals-serial determinism proof."""

import json
import os
import signal
import subprocess
import sys
import threading
import time

import pytest

from repro.bench import RunSpec, clear_caches
from repro.bench import executor
from repro.bench.executor import (
    ExecutorError,
    canonical_json,
    run_batch,
    spec_cache_key,
)
from repro.bench.fabric import (
    DONE,
    FAILED,
    LEASED,
    PENDING,
    Broker,
    ResultMismatch,
    Spool,
    SpoolError,
    run_worker,
)
from repro.bench.fabric.broker import spec_job
from repro.bench.fabric.worker import worker_id

FAST = RunSpec(workload="ossl.ecadd")
FAST_SPTSB = RunSpec(workload="ossl.ecadd", defense="spt-sb")

#: A small cross-defense matrix standing in for a results table.
MATRIX = [RunSpec(workload=w, defense=d)
          for w in ("ossl.ecadd", "ossl.dh")
          for d in ("unsafe", "spt", "track")]


@pytest.fixture()
def isolated_cache(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.setenv("REPRO_PROGRESS", "0")
    clear_caches()
    yield tmp_path / "cache"
    clear_caches()


def drain(spool_dir, **kwargs):
    """Run one worker loop until the spool is idle (thread-safe args)."""
    kwargs.setdefault("lease_s", 10.0)
    kwargs.setdefault("poll_s", 0.05)
    kwargs.setdefault("idle_timeout_s", 0.2)
    return run_worker(spool_dir, **kwargs)


# ----------------------------------------------------------------------
# Spool protocol
# ----------------------------------------------------------------------

def test_spool_submit_claim_complete_roundtrip(tmp_path):
    with Spool(tmp_path / "spool") as spool:
        outcome = spool.submit([("k1", "spec", {"a": 1}),
                                ("k2", "spec", {"a": 2})])
        assert outcome == {"new": 2, "done": 0, "open": 0}
        assert spool.counts() == {PENDING: 2, LEASED: 0, DONE: 0,
                                  FAILED: 0}
        job = spool.claim("w1", lease_s=30.0)
        assert job.key == "k1"  # oldest first
        assert job.attempts == 1 and not job.reassigned
        assert spool.complete("k1", "w1", '{"r":1}') == "stored"
        stored = spool.job("k1")
        assert stored.state == DONE and stored.result == '{"r":1}'
        # Resubmitting the same keys reuses the finished row.
        again = spool.submit([("k1", "spec", {"a": 1}),
                              ("k2", "spec", {"a": 2})])
        assert again == {"new": 0, "done": 1, "open": 1}


def test_spool_refuses_other_schema(tmp_path):
    directory = tmp_path / "spool"
    with Spool(directory) as spool:
        spool._conn.execute("UPDATE meta SET value='99' "
                            "WHERE key='schema'")
    with pytest.raises(SpoolError, match="schema 99"):
        Spool(directory)


def test_expired_lease_is_reassigned_with_attempt_charged(tmp_path):
    with Spool(tmp_path / "spool") as spool:
        spool.submit([("k1", "spec", {})])
        spool.claim("doomed", lease_s=0.3)
        # Still leased: nobody else can claim before the deadline.
        assert spool.claim("w2", lease_s=30.0) is None
        time.sleep(0.4)
        job = spool.claim("w2", lease_s=30.0)
        assert job is not None and job.reassigned
        assert job.attempts == 2  # the doomed lease stays charged
        assert job.worker == "w2"


def test_reap_expired_returns_leases_to_pending(tmp_path):
    with Spool(tmp_path / "spool") as spool:
        spool.submit([("k1", "spec", {})])
        spool.claim("w1", lease_s=0.05)
        time.sleep(0.1)
        assert spool.reap_expired() == 1
        assert spool.counts() == {PENDING: 1, LEASED: 0, DONE: 0,
                                  FAILED: 0}


def test_heartbeat_extends_only_held_leases(tmp_path):
    with Spool(tmp_path / "spool") as spool:
        spool.submit([("k1", "spec", {})])
        spool.claim("w1", lease_s=0.2)
        assert spool.heartbeat("k1", "w1", lease_s=30.0)
        assert not spool.heartbeat("k1", "w2", lease_s=30.0)
        spool.complete("k1", "w1", "{}")
        assert not spool.heartbeat("k1", "w1", lease_s=30.0)


def test_release_keeps_attempt_and_error(tmp_path):
    with Spool(tmp_path / "spool") as spool:
        spool.submit([("k1", "spec", {})])
        spool.claim("w1", lease_s=30.0)
        assert spool.release("k1", "w1", "injected failure")
        job = spool.job("k1")
        assert job.state == PENDING
        assert job.attempts == 1
        assert job.error == "injected failure"
        # A worker that lost its lease cannot release it.
        spool.claim("w2", lease_s=30.0)
        assert not spool.release("k1", "w1", "stale")


def test_attempt_budget_exhaustion_marks_failed(tmp_path):
    with Spool(tmp_path / "spool") as spool:
        spool.set_retries(1)  # 2 attempts total
        spool.submit([("k1", "spec", {})])
        for _ in range(2):
            spool.claim("w1", lease_s=30.0)
            spool.release("k1", "w1", "injected failure")
        assert spool.claim("w1", lease_s=30.0) is None
        job = spool.job("k1")
        assert job.state == FAILED
        assert "injected failure" in job.error
        assert "2 attempts" in job.error


def test_duplicate_result_first_writer_wins(tmp_path):
    """Two workers racing one job: the first completion is canonical,
    a byte-identical duplicate is tolerated, a different one crashes."""
    with Spool(tmp_path / "spool") as spool:
        spool.submit([("k1", "spec", {})])
        spool.claim("w1", lease_s=0.05)
        time.sleep(0.1)
        spool.claim("w2", lease_s=30.0)  # reassignment race
        assert spool.complete("k1", "w1", '{"r":1}') == "stored"
        assert spool.complete("k1", "w2", '{"r":1}') == "duplicate"
        with pytest.raises(ResultMismatch, match="non-deterministic"):
            spool.complete("k1", "w2", '{"r":2}')


def test_contention_backs_off_then_raises(tmp_path, monkeypatch):
    import sqlite3

    from repro.metrics import MetricsRegistry, attached

    directory = tmp_path / "spool"
    with Spool(directory) as spool:
        contended = Spool(directory, backoff_base_s=0.001,
                          backoff_attempts=3)
        # A second connection holds the write lock for the duration.
        blocker = sqlite3.connect(str(directory / "spool.db"),
                                  isolation_level=None)
        blocker.execute("BEGIN IMMEDIATE")
        try:
            registry = MetricsRegistry()
            with attached(registry):
                with pytest.raises(SpoolError, match="contended"):
                    contended.submit([("k1", "spec", {})])
            assert contended.backoffs >= 3
            assert registry.counter("fabric.backoffs").value >= 3
        finally:
            contended.close()
            blocker.execute("ROLLBACK")
            blocker.close()
        assert spool.submit([("k1", "spec", {})])["new"] == 1


# ----------------------------------------------------------------------
# Worker loop
# ----------------------------------------------------------------------

def test_worker_drains_spool_and_records_itself(isolated_cache,
                                                tmp_path):
    spool_dir = tmp_path / "spool"
    with Broker(spool_dir) as broker:
        broker.submit_specs([FAST, FAST_SPTSB])
    stats = drain(spool_dir, name="w-test")
    assert stats.claimed == 2 and stats.completed == 2
    assert stats.released == 0 and not stats.drained
    with Spool(spool_dir) as spool:
        assert spool.counts() == {PENDING: 0, LEASED: 0, DONE: 2,
                                  FAILED: 0}
        workers = spool.workers()
        assert [w["id"] for w in workers] == ["w-test"]
        assert workers[0]["completed"] == 2
        assert workers[0]["pid"] == os.getpid()


def test_worker_writes_prometheus_textfile(isolated_cache, tmp_path):
    from repro.metrics import MetricsRegistry, attached

    spool_dir = tmp_path / "spool"
    with Broker(spool_dir) as broker:
        broker.submit_specs([FAST])
    with attached(MetricsRegistry()):
        drain(spool_dir, name="w-prom")
    prom = (spool_dir / "metrics" / "w-prom.prom").read_text()
    assert "fabric_worker_claims" in prom
    assert "fabric_worker_completed" in prom


def test_worker_releases_bad_payloads(tmp_path):
    spool_dir = tmp_path / "spool"
    with Spool(spool_dir) as spool:
        spool.set_retries(0)  # one attempt only
        spool.submit([("bad-kind", "no-such-kind", {}),
                      ("bad-spec", "spec", {"not_a_field": 1})])
    stats = drain(spool_dir)
    assert stats.released == 2
    with Spool(spool_dir) as spool:
        spool.fail_exhausted()
        jobs = {job.key: job for job in spool.jobs()}
        assert "unknown job kind" in jobs["bad-kind"].error
        assert "bad spec payload" in jobs["bad-spec"].error


def test_worker_max_jobs_stops_early(isolated_cache, tmp_path):
    spool_dir = tmp_path / "spool"
    with Broker(spool_dir) as broker:
        broker.submit_specs([FAST, FAST_SPTSB])
    stats = drain(spool_dir, max_jobs=1)
    assert stats.claimed == 1
    with Spool(spool_dir) as spool:
        assert spool.counts()[DONE] == 1
        assert spool.counts()[PENDING] == 1


def test_worker_id_is_host_pid():
    assert worker_id().endswith(f"-{os.getpid()}")


# ----------------------------------------------------------------------
# Broker: wait, gauges, failure propagation
# ----------------------------------------------------------------------

def test_broker_wait_raises_on_failed_jobs(isolated_cache, tmp_path):
    """A job that errors on every attempt exhausts its budget and
    surfaces as ExecutorError in the broker, attempts accounted."""
    bogus = RunSpec(workload="ossl.ecadd", defense="no-such-defense")
    spool_dir = tmp_path / "spool"
    with Broker(spool_dir, retries=1, poll_s=0.05) as broker:
        broker.submit_specs([bogus])
        worker = threading.Thread(target=drain, args=(spool_dir,),
                                  kwargs={"idle_timeout_s": 1.0})
        worker.start()
        with pytest.raises(ExecutorError, match="2 attempts"):
            broker.wait(timeout_s=30.0)
        worker.join()


def test_broker_wait_times_out_without_workers(tmp_path):
    spool_dir = tmp_path / "spool"
    with Broker(spool_dir, poll_s=0.02) as broker:
        broker.submit_specs([FAST])
        with pytest.raises(ExecutorError, match="repro work --spool"):
            broker.wait(timeout_s=0.1)


def test_broker_timeout_env_applies(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_FABRIC_TIMEOUT", "0.1")
    with Broker(tmp_path / "spool", poll_s=0.02) as broker:
        broker.submit_specs([FAST])
        with pytest.raises(ExecutorError, match="timed out"):
            broker.wait()


def test_broker_gauges_and_per_worker_liveness(isolated_cache, tmp_path):
    from repro.metrics import MetricsRegistry

    spool_dir = tmp_path / "spool"
    registry = MetricsRegistry()
    with Broker(spool_dir) as broker:
        broker.submit_specs([FAST, FAST_SPTSB], registry=registry)
        assert registry.counter("fabric.submitted").value == 2
        drain(spool_dir, name="w-gauge")
        broker.wait(timeout_s=10.0, registry=registry)
    gauges = registry.snapshot()["gauges"]
    assert gauges["fabric.done"] == 2
    assert gauges["fabric.pending"] == 0
    assert gauges["fabric.workers_active"] == 1
    assert gauges["fabric.worker.w-gauge.completed"] == 2
    assert gauges["fabric.worker.w-gauge.heartbeat_age_s"] >= 0.0


def test_spool_resume_after_broker_restart(isolated_cache, tmp_path):
    """A broker restart reuses every finished job in the spool: the
    resubmit reports them done and wait returns without workers."""
    spool_dir = tmp_path / "spool"
    with Broker(spool_dir) as broker:
        broker.submit_specs([FAST, FAST_SPTSB])
    drain(spool_dir)
    # The original broker is gone; a fresh one resumes from the spool.
    with Broker(spool_dir) as broker:
        outcome = broker.submit_specs([FAST, FAST_SPTSB])
        assert outcome == {"new": 0, "done": 2, "open": 0}
        broker.wait(timeout_s=1.0)
        merged = broker.collect_specs([FAST, FAST_SPTSB])
    assert merged[FAST].cycles > 0


# ----------------------------------------------------------------------
# Killed worker -> lease expiry -> reassignment
# ----------------------------------------------------------------------

def test_killed_worker_job_is_reassigned(isolated_cache, tmp_path):
    """A worker subprocess killed mid-lease (SIGKILL: no release, no
    heartbeat) lets its lease expire; the next worker takes the job
    over and completes it, with the dead worker's attempt charged."""
    spool_dir = tmp_path / "spool"
    with Broker(spool_dir) as broker:
        broker.submit_specs([FAST])
        key = broker.keys[0]
    claimer = subprocess.Popen(
        [sys.executable, "-c",
         "import sys, time\n"
         "from repro.bench.fabric import Spool\n"
         "with Spool(sys.argv[1]) as spool:\n"
         "    job = spool.claim('doomed-worker', lease_s=0.5)\n"
         "    assert job is not None\n"
         "print('claimed', flush=True)\n"
         "time.sleep(60)\n",
         str(spool_dir)],
        stdout=subprocess.PIPE, text=True)
    try:
        assert claimer.stdout.readline().strip() == "claimed"
    finally:
        claimer.kill()
        claimer.wait()
    with Spool(spool_dir) as spool:
        assert spool.job(key).state == LEASED  # died holding the lease
    stats = drain(spool_dir, name="survivor", idle_timeout_s=2.0)
    assert stats.reassigned == 1
    assert stats.completed == 1
    with Spool(spool_dir) as spool:
        job = spool.job(key)
        assert job.state == DONE
        assert job.attempts == 2
        assert job.worker == "survivor"


# ----------------------------------------------------------------------
# Determinism: sharded campaign == serial run_batch, byte for byte
# ----------------------------------------------------------------------

def _matrix_json(results, specs):
    return canonical_json([results[spec].to_dict() for spec in specs])


def test_sharded_matrix_byte_identical_to_serial(isolated_cache,
                                                 monkeypatch, tmp_path):
    """Broker + two real worker subprocesses vs a serial run_batch of
    the same matrix, compared as canonical JSON bytes.  The fabric pass
    runs first against its own cache so nothing leaks between them."""
    spool_dir = tmp_path / "spool"
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache-fabric"))
    # Bound the broker wait so a dead worker fails the test instead of
    # hanging it.
    monkeypatch.setenv("REPRO_FABRIC_TIMEOUT", "180")
    clear_caches()
    env = dict(os.environ)
    workers = [subprocess.Popen(
        [sys.executable, "-m", "repro", "work", "--spool", str(spool_dir),
         "--idle-timeout", "10", "--poll", "0.05", "--lease", "10",
         "--name", f"shard-{n}"],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True) for n in range(2)]
    try:
        fabric_results = run_batch(MATRIX, fabric=str(spool_dir))
    finally:
        for proc in workers:
            proc.terminate()
        for proc in workers:
            proc.wait(timeout=30)
    assert executor.LAST_BATCH.simulated == len(MATRIX)
    with Spool(spool_dir) as spool:
        by_worker = {w["id"]: w["completed"] for w in spool.workers()}
    assert sum(by_worker.values()) >= len(MATRIX)

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache-serial"))
    clear_caches()
    serial_results = run_batch(MATRIX, jobs=1)
    assert executor.LAST_BATCH.simulated == len(MATRIX)

    fabric_bytes = _matrix_json(fabric_results, MATRIX).encode()
    serial_bytes = _matrix_json(serial_results, MATRIX).encode()
    assert fabric_bytes == serial_bytes


def test_run_batch_routes_through_env(isolated_cache, monkeypatch,
                                      tmp_path):
    """REPRO_FABRIC makes run_batch broker a spool with no code change
    at the call site (the builders' path to --fabric)."""
    spool_dir = tmp_path / "spool"
    with Broker(spool_dir) as broker:
        broker.submit_specs([FAST, FAST_SPTSB])
    drain(spool_dir)
    clear_caches()
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache-env"))
    monkeypatch.setenv("REPRO_FABRIC", str(spool_dir))
    results = run_batch([FAST, FAST_SPTSB])
    assert set(results) == {FAST, FAST_SPTSB}
    # Every spec was already done in the spool: shared-state reuse.
    assert executor.LAST_BATCH.disk_hits == 2
    assert executor.LAST_BATCH.simulated == 0


def test_fabric_results_are_cached_locally(isolated_cache, monkeypatch,
                                           tmp_path):
    """After a fabric batch, the local caches hold the merged results:
    a second (non-fabric) batch never resimulates."""
    spool_dir = tmp_path / "spool"
    worker = threading.Thread(
        target=drain, args=(spool_dir,), kwargs={"idle_timeout_s": 5.0})
    worker.start()
    try:
        run_batch([FAST], fabric=str(spool_dir))
    finally:
        worker.join()
    monkeypatch.delenv("REPRO_FABRIC", raising=False)
    run_batch([FAST])
    assert executor.LAST_BATCH.memory_hits == 1


def test_fuzz_campaign_fabric_identical_to_serial(isolated_cache,
                                                  tmp_path):
    """Per-program fuzz units sharded through the spool merge to the
    exact serial result (wall_time excluded by the wire format)."""
    from repro.bench.runner import DEFENSES
    from repro.contracts import Contract
    from repro.fuzzing import CampaignConfig, run_campaign

    config = CampaignConfig(defense_factory=DEFENSES["unsafe"],
                            contract=Contract.UNPROT_SEQ,
                            instrumentation="rand", n_programs=4,
                            pairs_per_program=2, program_size=20,
                            seed=7, defense_name="unsafe")
    serial = run_campaign(config, jobs=1)
    spool_dir = tmp_path / "spool"
    worker = threading.Thread(
        target=drain, args=(spool_dir,), kwargs={"idle_timeout_s": 5.0})
    worker.start()
    try:
        order = []
        fabric = run_campaign(
            config, jobs=1, fabric=str(spool_dir),
            on_program=lambda seed, partial: order.append(seed))
    finally:
        worker.join()
    assert fabric.to_dict() == serial.to_dict()
    assert canonical_json(fabric.to_dict()) == \
        canonical_json(serial.to_dict())
    # on_program fires in program order, exactly as the serial path.
    from repro.fuzzing.campaign import _program_seeds

    assert order == _program_seeds(config)


def test_fuzz_anonymous_cell_falls_back_locally(isolated_cache,
                                                tmp_path, caplog):
    import logging

    from repro.contracts import Contract
    from repro.defenses import Unsafe
    from repro.fuzzing import CampaignConfig, run_campaign

    config = CampaignConfig(defense_factory=lambda: Unsafe(),
                            contract=Contract.UNPROT_SEQ,
                            instrumentation="rand", n_programs=2,
                            pairs_per_program=1, program_size=20, seed=3)
    with caplog.at_level(logging.WARNING, logger="repro.fuzzing.campaign"):
        result = run_campaign(config, jobs=1,
                              fabric=str(tmp_path / "spool"))
    assert result.tests == 2
    assert any("cannot be shipped" in record.message
               for record in caplog.records)


def test_campaign_result_wire_format_round_trips():
    from repro.fuzzing.campaign import CampaignResult

    result = CampaignResult(tests=3, violations=1, wall_time=1.5,
                            violation_sites=[(9, 0, "timing")],
                            witnesses=[{"w": 1}])
    payload = result.to_dict()
    assert "wall_time" not in payload  # telemetry, not identity
    rebuilt = CampaignResult.from_dict(json.loads(canonical_json(payload)))
    assert rebuilt.violation_sites == [(9, 0, "timing")]
    assert rebuilt.tests == 3 and rebuilt.witnesses == [{"w": 1}]


# ----------------------------------------------------------------------
# End-to-end tracing across the fabric
# ----------------------------------------------------------------------

def test_fabric_trace_two_workers_nest_under_broker_spans(
        isolated_cache, monkeypatch, tmp_path):
    """The headline acceptance test: a two-worker fabric campaign
    produces one merged Chrome trace in which every worker-side span
    nests under the broker-side span of the spec it executed."""
    from repro.metrics.spans import (
        SpanRecorder,
        load_shards,
        merged_trace,
        nesting_violations,
        recording,
    )

    spool_dir = tmp_path / "spool"
    monkeypatch.setenv("REPRO_FABRIC_TIMEOUT", "180")
    env = dict(os.environ)
    workers = [subprocess.Popen(
        [sys.executable, "-m", "repro", "work", "--spool", str(spool_dir),
         "--idle-timeout", "10", "--poll", "0.05", "--lease", "10",
         "--name", f"tracer-{n}"],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True) for n in range(2)]
    try:
        with recording(SpanRecorder(process="broker-under-test")) \
                as recorder:
            results = run_batch(MATRIX, fabric=str(spool_dir))
    finally:
        for proc in workers:
            proc.terminate()
        for proc in workers:
            proc.wait(timeout=30)
    assert len(results) == len(MATRIX)

    shard_spans, offsets = load_shards(spool_dir)
    spans = list(recorder.spans) + shard_spans
    by_id = {span.span_id: span for span in spans}
    spec_spans = {span.span_id: span for span in recorder.spans
                  if span.name == "spec"}
    assert len(spec_spans) == len(MATRIX)

    worker_spans = [span for span in shard_spans
                    if span.process.startswith("tracer-")]
    assert worker_spans, "workers wrote no span shards"
    assert {s.name for s in worker_spans} >= \
        {"fabric.lease", "fabric.job", "fabric.result-write"}
    for span in worker_spans:
        # Walk up: every worker span reaches a broker-side spec span.
        seen = set()
        node = span
        while node is not None and node.span_id not in spec_spans \
                and node.span_id not in seen:
            seen.add(node.span_id)
            node = by_id.get(node.parent_id)
        assert node is not None and node.span_id in spec_spans, \
            f"{span.name} [{span.span_id}] does not reach a spec span"
        assert span.trace_id == node.trace_id

    # Both workers' clocks were estimated while the broker polled.
    assert set(offsets) >= {s.process for s in worker_spans}

    trace = merged_trace(spans, offsets)
    assert nesting_violations(trace) == []
    # fabric.job slices carry the executing worker + attempt.
    jobs = [e for e in trace["traceEvents"]
            if e.get("ph") == "X" and e["name"] == "fabric.job"]
    assert len(jobs) >= len(MATRIX)
    assert all(e["args"]["worker"].startswith("tracer-") for e in jobs)


def test_fabric_trace_killed_lease_retry_parents_under_same_span(
        isolated_cache, tmp_path):
    """A traced job whose first worker dies mid-lease is reassigned;
    the surviving worker's fabric.job span (attempt 2) must still
    parent under the originally submitted span context."""
    from repro.metrics.spans import SpanRecorder, load_shards

    spool_dir = tmp_path / "spool"
    recorder = SpanRecorder(process="broker")
    submitted = recorder.start("spec")
    with Broker(spool_dir) as broker:
        broker.submit_specs([FAST],
                            traces={spec_cache_key(FAST):
                                    submitted.context()})
    claimer = subprocess.Popen(
        [sys.executable, "-c",
         "import sys, time\n"
         "from repro.bench.fabric import Spool\n"
         "with Spool(sys.argv[1]) as spool:\n"
         "    job = spool.claim('doomed-worker', lease_s=0.5)\n"
         "    assert job is not None and job.trace is not None\n"
         "print('claimed', flush=True)\n"
         "time.sleep(60)\n",
         str(spool_dir)],
        stdout=subprocess.PIPE, text=True)
    try:
        assert claimer.stdout.readline().strip() == "claimed"
    finally:
        claimer.kill()
        claimer.wait()
    stats = drain(spool_dir, name="survivor", idle_timeout_s=2.0)
    assert stats.reassigned == 1 and stats.completed == 1
    shard_spans, _ = load_shards(spool_dir)
    job = [s for s in shard_spans if s.name == "fabric.job"][0]
    assert job.parent_id == submitted.span_id
    assert job.trace_id == submitted.trace_id
    assert job.attrs["attempt"] == 2
    assert job.attrs["worker"] == "survivor"
    lease = [s for s in shard_spans if s.name == "fabric.lease"][0]
    assert lease.attrs["reassigned"] is True


def test_traced_spool_rows_and_resubmission_restamp(tmp_path):
    """Trace context rides a dedicated spool column (never the
    content-addressed payload), and resubmitting an open job with a
    fresh context re-stamps it for the new broker."""
    with Spool(tmp_path / "spool") as spool:
        ctx1 = {"trace_id": "a" * 16, "span_id": "b" * 16}
        ctx2 = {"trace_id": "a" * 16, "span_id": "c" * 16}
        spool.submit([("k1", "spec", {"a": 1})], traces={"k1": ctx1})
        assert spool.job("k1").trace == ctx1
        spool.submit([("k1", "spec", {"a": 1})], traces={"k1": ctx2})
        assert spool.job("k1").trace == ctx2
        job = spool.claim("w1", lease_s=30.0)
        assert job.trace == ctx2 and job.leased_at is not None
        spool.complete("k1", "w1", "{}")
        # Done rows are never re-stamped: their trace is history.
        spool.submit([("k1", "spec", {"a": 1})], traces={"k1": ctx1})
        assert spool.job("k1").trace == ctx2


def test_heartbeat_failures_counted_logged_and_surfaced(
        isolated_cache, tmp_path, monkeypatch, caplog):
    """Heartbeat-thread failures must never kill the job: they are
    caught, logged, counted in the registry and the worker row."""
    import logging

    from repro.bench.fabric import worker as worker_module
    from repro.metrics import MetricsRegistry, attached

    spool_dir = tmp_path / "spool"
    with Broker(spool_dir) as broker:
        broker.submit_specs([FAST])
    monkeypatch.setattr(
        worker_module.Spool, "heartbeat",
        lambda self, *a, **k: (_ for _ in ()).throw(
            RuntimeError("injected heartbeat outage")))

    def slow_execute(job, timeout_s):
        time.sleep(0.3)  # long enough for several (failing) beats
        return True, "{}", None

    monkeypatch.setattr(worker_module, "_execute_job", slow_execute)
    registry = MetricsRegistry()
    with caplog.at_level(logging.WARNING,
                         logger="repro.bench.fabric.worker"):
        with attached(registry):
            stats = drain(spool_dir, name="hb-victim", lease_s=0.2)
    assert stats.completed == 1  # the job itself still finished
    assert stats.heartbeat_errors >= 1
    assert "heartbeat errors" in stats.line()
    assert registry.counter("fabric.heartbeat_errors").value >= 1
    assert any("heartbeat" in record.message
               for record in caplog.records)
    with Spool(spool_dir) as spool:
        row = [w for w in spool.workers() if w["id"] == "hb-victim"][0]
        assert row["heartbeat_errors"] >= 1


def test_top_sample_and_render(tmp_path):
    from repro.bench.fabric import sample, render

    spool_dir = tmp_path / "spool"
    with Spool(spool_dir) as spool:
        spool.submit([("job-a", "spec", {}), ("job-b", "spec", {}),
                      ("job-c", "spec", {})])
        spool.claim("w-busy", lease_s=30.0)
        spool.complete("job-a", "w-busy", "{}")
        spool.claim("w-busy", lease_s=30.0)
        spool.record_worker("w-busy", "host", 1, completed=1,
                            duplicates=0, released=0,
                            heartbeat_errors=2)
        view = sample(spool, window_s=60.0)
    assert view.counts[DONE] == 1
    assert view.recent_done == 1
    assert view.throughput_per_min == pytest.approx(1.0)
    assert view.workers[0]["status"] == "live"
    assert view.workers[0]["heartbeat_errors"] == 2
    assert [job["key"] for job in view.inflight] == ["job-b"]
    body = render(view)
    assert "1 pending, 1 leased, 1 done" in body
    assert "w-busy" in body and "HB ERR" in body
    assert "job-b" in body


def test_top_render_empty_spool_hints_at_workers(tmp_path):
    from repro.bench.fabric import sample, render

    with Spool(tmp_path / "spool") as spool:
        body = render(sample(spool))
    assert "no workers have registered" in body
    assert "no jobs in flight" in body


def test_top_worker_staleness_thresholds(tmp_path):
    from repro.bench.fabric import sample

    with Spool(tmp_path / "spool") as spool:
        now = time.time()
        spool.record_worker("w-live", "h", 1, 0, 0, 0)
        view = sample(spool, now=now + 20.0)
        assert view.workers[0]["status"] == "stale"
        view = sample(spool, now=now + 120.0)
        assert view.workers[0]["status"] == "gone"


def test_run_top_loops_until_interrupt(tmp_path, monkeypatch):
    import io

    from repro.bench.fabric import run_top
    from repro.bench.fabric import top as top_module

    Spool(tmp_path / "spool").close()

    def interrupt(seconds):
        raise KeyboardInterrupt

    monkeypatch.setattr(top_module.time, "sleep", interrupt)
    stream = io.StringIO()
    assert run_top(tmp_path / "spool", interval_s=0.01,
                   stream=stream) == 0
    assert "repro top" in stream.getvalue()


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------

def test_cli_work_drains_and_reports(isolated_cache, tmp_path, capsys):
    from repro.cli import main

    spool_dir = tmp_path / "spool"
    with Broker(spool_dir) as broker:
        broker.submit_specs([FAST])
    assert main(["work", "--spool", str(spool_dir), "--idle-timeout",
                 "0.2", "--poll", "0.05", "--name", "cli-worker"]) == 0
    out = capsys.readouterr().out
    assert "[worker cli-worker] 1 claimed: 1 completed" in out
    assert (spool_dir / "metrics" / "cli-worker.prom").exists()


def test_cli_work_sigterm_drains_gracefully(isolated_cache, tmp_path):
    """SIGTERM mid-loop: the worker finishes its bookkeeping, reports
    a drain, and exits 0 (the fleet-shutdown path)."""
    spool_dir = tmp_path / "spool"
    Spool(spool_dir).close()  # create the spool so the worker idles
    env = dict(os.environ)
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "work", "--spool", str(spool_dir),
         "--poll", "0.1", "--name", "sig-worker"],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True)
    deadline = time.monotonic() + 30
    while time.monotonic() < deadline:
        with Spool(spool_dir) as spool:
            if spool.workers():
                break
        time.sleep(0.1)
    proc.send_signal(signal.SIGTERM)
    out, _ = proc.communicate(timeout=30)
    assert proc.returncode == 0
    assert "drained on signal" in out


def test_spec_job_key_matches_cache_key():
    key, kind, payload = spec_job(FAST_SPTSB)
    assert key == spec_cache_key(FAST_SPTSB)
    assert kind == "spec"
    assert payload["defense"] == "spt-sb"
