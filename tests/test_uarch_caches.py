"""Cache hierarchy, LRU, eviction callbacks, TLB."""

from repro.uarch import Cache, CacheHierarchy, P_CORE, TLB
from repro.uarch.config import CacheConfig


def small_cache(listener=None):
    return Cache(CacheConfig(4 * 64, 2, 3), listener)  # 2 sets x 2 ways


def test_miss_then_hit():
    c = small_cache()
    assert not c.lookup(0)
    c.fill(0)
    assert c.lookup(0)


def test_lru_eviction_order():
    evicted = []
    c = Cache(CacheConfig(2 * 64, 2, 3), evicted.append)  # 1 set, 2 ways
    c.fill(0 * 64)
    c.fill(1 * 64)
    c.fill(2 * 64)            # evicts line 0
    assert evicted == [0]
    c.lookup(1 * 64)          # refresh line 1
    c.fill(3 * 64)            # now evicts line 2
    assert evicted == [0, 2]


def test_fill_existing_no_eviction():
    c = small_cache()
    c.fill(0)
    assert c.fill(0) is None


def test_tag_state_observable():
    c = small_cache()
    c.fill(0)
    c.fill(64)
    state = c.tag_state()
    assert len(state) == 2
    assert all(isinstance(entry, tuple) for entry in state)


def test_hierarchy_latencies_monotone():
    h = CacheHierarchy(P_CORE)
    cold = h.access(0x5000)
    warm = h.access(0x5000)
    assert cold > warm
    assert warm >= P_CORE.l1d.latency


def test_hierarchy_fills_all_levels():
    h = CacheHierarchy(P_CORE)
    h.access(0x9000)
    assert h.l1d.contains(0x9000)
    assert h.l2.contains(0x9000)
    assert h.l3.contains(0x9000)


def test_l1_eviction_falls_back_to_l2():
    h = CacheHierarchy(P_CORE)
    h.access(0)
    # Thrash the L1D set containing address 0.
    sets = h.l1d.num_sets
    for way in range(P_CORE.l1d.assoc + 1):
        h.access((way + 1) * sets * 64)
    latency = h.access(0)
    assert P_CORE.l1d.latency < latency <= P_CORE.l2.latency + 16


def test_tlb_hit_miss():
    t = TLB(entries=2)
    assert not t.access(0x1000)
    assert t.access(0x1fff)      # same page
    t.access(0x2000)
    t.access(0x3000)             # evicts page 1
    assert not t.access(0x1000)


def test_adversary_state_shape():
    h = CacheHierarchy(P_CORE)
    h.access(0x40)
    l1, l2, l3, tlb = h.adversary_state()
    assert l1 and l2 and l3 and tlb


def test_adversary_state_pins_full_probing_surface():
    # The contract: the adversary observes the tag state of every
    # level, including the shared L3 (the cross-core channel).
    h = CacheHierarchy(P_CORE)
    h.access(0x40)
    h.access(0x4000)
    assert h.adversary_state() == (h.l1d.tag_state(), h.l2.tag_state(),
                                   h.l3.tag_state(), h.tlb.tag_state())


def test_adversary_state_sees_l3_only_divergence():
    # Regression: two hierarchies identical in L1D/L2/TLB but differing
    # in the L3 used to compare equal — an invisible leak channel.
    a = CacheHierarchy(P_CORE)
    b = CacheHierarchy(P_CORE)
    for h in (a, b):
        h.access(0x40)
    b.l3.fill(0x9f40)
    assert a.l1d.tag_state() == b.l1d.tag_state()
    assert a.l2.tag_state() == b.l2.tag_state()
    assert a.tlb.tag_state() == b.tlb.tag_state()
    assert a.adversary_state() != b.adversary_state()


def test_hierarchy_stats_schema():
    h = CacheHierarchy(P_CORE)
    h.access(0x40)
    h.access(0x40)
    stats = h.stats()
    assert set(stats) == {
        "l1d_hits", "l1d_misses", "l2_hits", "l2_misses",
        "l3_hits", "l3_misses", "tlb_hits", "tlb_misses",
    }
    assert stats["l1d_misses"] == 1 and stats["l1d_hits"] == 1


def test_hierarchy_last_level_tracks_servicing_level():
    h = CacheHierarchy(P_CORE)
    assert h.last_level is None
    h.access(0x40)
    assert h.last_level == "mem"
    h.access(0x40)
    assert h.last_level == "l1d"
