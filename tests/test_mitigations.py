"""Software Spectre mitigations (``repro.protcc.mitigations``).

Two proof obligations, both discharged here:

* **Security, by the fuzzer**: under the *unsafe* core, fence/SLH/BLADE
  must record zero contract violations on the security fixtures and on
  seeded generated-program campaigns, while the unmitigated binary and
  the deliberately partial ``mask`` pass must still leak (the fuzzer
  proves the negative result too — a mitigation harness that cannot
  find the unmitigated leak proves nothing).
* **Architectural transparency**: every pass must commit exactly the
  same architectural results (final registers, memory, halt reason) as
  the unmitigated binary on the reference executor — mitigations may
  only change *transient* behaviour.
"""

import random

import pytest

from repro.arch.executor import STACK_TOP, run_program
from repro.bench.executor import spec_cache_key
from repro.bench.runner import RunSpec
from repro.contracts import Contract
from repro.contracts.checker import TestInput, Verdict, check_contract_pair
from repro.defenses import Unsafe
from repro.fixtures import FIXTURES
from repro.forensics import LeakWitness
from repro.fuzzing import CampaignConfig, generate_input, run_campaign
from repro.fuzzing.generator import generate_program
from repro.protcc import (
    MITIGATIONS,
    SECURE_MITIGATIONS,
    MitigationError,
    compile_program,
    mitigate_program,
)
from repro.uarch.config import P_CORE

#: Secret pairs that make each fixture's channel observable: the v1
#: gadget leaks via which probe-array line the secret selects; the
#: divider channel needs operands in different latency classes.
FIXTURE_SECRETS = {
    "v1-gadget": (3, 57),
    "div-channel": (2, 1 << 40),
}

CONFIG = P_CORE.replace(div_is_transmitter=True)


def _fixture_outcome(fixture_name, mitigation):
    fixture = FIXTURES[fixture_name]
    program = fixture.program()
    if mitigation is not None:
        program = mitigate_program(program, mitigation).program
    secret_a, secret_b = FIXTURE_SECRETS[fixture_name]
    return check_contract_pair(
        program, Unsafe, Contract.ARCH_SEQ,
        TestInput(memory_words=((fixture.secret_addr, secret_a),)),
        TestInput(memory_words=((fixture.secret_addr, secret_b),)),
        CONFIG)


# ----------------------------------------------------------------------
# The contract-security matrix on the security fixtures
# ----------------------------------------------------------------------

@pytest.mark.parametrize("fixture_name", sorted(FIXTURE_SECRETS))
def test_unmitigated_fixture_leaks_on_unsafe(fixture_name):
    outcome = _fixture_outcome(fixture_name, None)
    assert outcome.verdict is Verdict.VIOLATION


@pytest.mark.parametrize("fixture_name", sorted(FIXTURE_SECRETS))
@pytest.mark.parametrize("mitigation", sorted(SECURE_MITIGATIONS))
def test_secure_mitigations_close_fixture_channels(fixture_name, mitigation):
    outcome = _fixture_outcome(fixture_name, mitigation)
    assert outcome.verdict is Verdict.PASS, outcome.detail


@pytest.mark.parametrize("fixture_name", sorted(FIXTURE_SECRETS))
def test_mask_alone_does_not_close_fixture_channels(fixture_name):
    # The fixtures bounds-check via CMP (register bound), which mask's
    # provable-CMPI pattern deliberately does not cover — the fuzzer is
    # expected to convict mask-only here, per SECURE_MITIGATIONS.
    outcome = _fixture_outcome(fixture_name, "mask")
    assert outcome.verdict is Verdict.VIOLATION


# ----------------------------------------------------------------------
# The campaign matrix on generated programs, witnesses verified
# ----------------------------------------------------------------------

def _campaign(mitigation, collect=False):
    return run_campaign(CampaignConfig(
        defense_factory=Unsafe,
        contract=Contract.ARCH_SEQ,
        instrumentation="arch",
        n_programs=2,
        pairs_per_program=2,
        seed=7,
        defense_name="unsafe",
        collect_witnesses=collect,
        mitigation=mitigation,
    ), jobs=1)


def test_campaign_unmitigated_baseline_leaks():
    result = _campaign(None, collect=True)
    assert result.violations > 0
    witness = LeakWitness.from_dict(result.witnesses[0])
    assert witness.verify().verdict is Verdict.VIOLATION


@pytest.mark.parametrize("mitigation", sorted(SECURE_MITIGATIONS))
def test_campaign_secure_mitigations_record_zero_violations(mitigation):
    result = _campaign(mitigation)
    assert result.violations == 0, (
        f"{mitigation} claims contract security but recorded "
        f"{result.violations} violations: {result.violation_sites}")


def test_campaign_mask_only_still_leaks_with_verified_witness():
    result = _campaign("mask", collect=True)
    assert result.violations > 0
    witness = LeakWitness.from_dict(result.witnesses[0])
    assert witness.meta["mitigation"] == "mask"
    # The witness embeds the *mitigated* instruction stream, so verify()
    # replays the violation against exactly the binary that leaked.
    assert witness.verify().verdict is Verdict.VIOLATION


def test_campaign_rejects_mitigation_under_cts_seq():
    config = CampaignConfig(
        defense_factory=Unsafe,
        contract=Contract.CTS_SEQ,
        instrumentation="cts",
        n_programs=1,
        pairs_per_program=1,
        seed=7,
        mitigation="fence",
    )
    with pytest.raises(ValueError, match="CTS-SEQ"):
        run_campaign(config, jobs=1)


# ----------------------------------------------------------------------
# Architectural equivalence on the seeded program grid
# ----------------------------------------------------------------------

#: Stack window: CALL pushes the return *PC*, and mitigation passes
#: move PCs, so popped-but-still-resident return addresses just below
#: the stack top legitimately differ between base and mitigated
#: binaries.  Every non-stack byte and all 17 registers must match
#: exactly.
_STACK_WINDOW = range(STACK_TOP - 4096, STACK_TOP)


def _arch_results(program, test_input):
    result = run_program(program, test_input.build_memory(),
                         test_input.build_regs())
    assert result.halt_reason == "halt"
    memory = {addr: value
              for addr, value in result.memory.snapshot().items()
              if value and addr not in _STACK_WINDOW}
    return result.final_regs, memory, result.halt_reason


@pytest.mark.parametrize("mitigation", sorted(MITIGATIONS))
@pytest.mark.parametrize("seed", range(4))
def test_mitigated_generated_programs_commit_identical_results(
        mitigation, seed):
    program = generate_program(seed, 40)
    test_input = generate_input(random.Random(seed ^ 0xF00D))
    mitigated = mitigate_program(program, mitigation).program
    assert _arch_results(program, test_input) \
        == _arch_results(mitigated, test_input)


@pytest.mark.parametrize("mitigation", sorted(MITIGATIONS))
@pytest.mark.parametrize("fixture_name", sorted(FIXTURES))
def test_mitigated_fixtures_commit_identical_results(mitigation,
                                                     fixture_name):
    fixture = FIXTURES[fixture_name]
    program = fixture.program()
    mitigated = mitigate_program(program, mitigation).program
    test_input = TestInput(memory_words=((fixture.secret_addr, 3),))
    assert _arch_results(program, test_input) \
        == _arch_results(mitigated, test_input)


# ----------------------------------------------------------------------
# Pass properties
# ----------------------------------------------------------------------

@pytest.mark.parametrize("mitigation", ["fence", "blade"])
@pytest.mark.parametrize("seed", range(4))
def test_fence_style_passes_are_idempotent(mitigation, seed):
    once = mitigate_program(generate_program(seed, 40), mitigation)
    twice = mitigate_program(once.program, mitigation)
    assert twice.stats["fences"] == 0
    assert twice.program.instructions == once.program.instructions


@pytest.mark.parametrize("seed", range(6))
def test_slh_scratch_registers_never_collide_with_program_regs(seed):
    program = generate_program(seed, 40)
    used = set()
    for inst in program.instructions:
        used |= set(inst.src_regs()) | set(inst.dest_regs()) \
            | set(inst.addr_regs())
    stats = mitigate_program(program, "slh").stats
    assert stats["poison_reg"] not in used
    assert stats["temp_reg"] not in used
    assert stats["poison_reg"] != stats["temp_reg"]


@pytest.mark.parametrize("mitigation", sorted(MITIGATIONS))
@pytest.mark.parametrize("clazz", ["arch", "ct"])
def test_mitigations_compose_with_protcc_classes(mitigation, clazz):
    # Compile-then-mitigate is the supported composition order: the
    # mitigation rewrites the instrumented binary, and the combined
    # result must still commit the unmitigated architectural results.
    seed = 3
    program = generate_program(seed, 40)
    instrumented = compile_program(program, clazz).program
    combined = mitigate_program(instrumented, mitigation).program
    test_input = generate_input(random.Random(seed ^ 0xF00D))
    assert _arch_results(instrumented, test_input) \
        == _arch_results(combined, test_input)


def test_unknown_mitigation_raises():
    with pytest.raises(MitigationError, match="registered"):
        mitigate_program(generate_program(0, 40), "retpoline")
    assert isinstance(MitigationError("x"), ValueError)


def test_mitigated_program_reports_code_size_overhead():
    result = mitigate_program(FIXTURES["v1-gadget"].program(), "fence")
    assert result.base_size > 0
    assert len(result.program.instructions) > result.base_size
    assert result.code_size_overhead > 0
    assert result.mitigation == "fence"
    assert result.stats["fences"] > 0


# ----------------------------------------------------------------------
# Bench plumbing: cache keys must see the mitigation field
# ----------------------------------------------------------------------

def test_mitigation_cases_identical_across_engines():
    # The full 16-case sweep runs in CI's `repro diff`; four cases here
    # keep the three-engine contract under the tier-1 suite too.
    import itertools

    from repro.uarch.refcore import mitigation_cases

    for label, report in itertools.islice(mitigation_cases(), 4):
        assert report.identical, report.render()


def test_mitigation_table_single_workload():
    from repro.bench.tables import MITIGATION_SCHEMES, mitigation_table

    table = mitigation_table(("mcf.s",), jobs=1)
    assert [row[0] for row in table.rows] \
        == [scheme for scheme, _ in MITIGATION_SCHEMES]
    fence, stt = table.data["fence"], table.data["stt"]
    assert fence["kind"] == "SW" and stt["kind"] == "HW"
    # Software fencing costs runtime and code size but collapses the
    # transient-uop share the observatory reports; hardware defenses
    # keep speculating and gate transmitters instead.
    assert fence["norm_runtime"] > 1.0
    assert fence["code_size_overhead"] > 0
    assert stt["code_size_overhead"] == 0.0
    assert fence["transient_share"] < stt["transient_share"]


def test_spec_cache_key_distinguishes_mitigations():
    keys = {spec_cache_key(RunSpec(workload="mcf.s", mitigation=m))
            for m in (None, "fence", "slh", "mask", "blade")}
    assert len(keys) == 5


def test_secure_mitigations_is_a_subset_of_the_registry():
    assert SECURE_MITIGATIONS < set(MITIGATIONS)
    assert "mask" in MITIGATIONS and "mask" not in SECURE_MITIGATIONS
