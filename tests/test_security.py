"""End-to-end security: Spectre v1 leakage on unsafe hardware, blocked
by every defense; the divider timing channel (paper SVII-B4b); and the
STT-inherited squash-notification bug (paper SVII-B4b)."""

import pytest

from repro.arch import Memory
from repro.defenses import (
    AccessDelay,
    AccessTrack,
    ProtDelay,
    ProtTrack,
    SPT,
    SPTSB,
    Unsafe,
)
from repro.fixtures import DIV_CHANNEL, SQUASH_BUG, V1_GADGET
from repro.isa import assemble
from repro.uarch import P_CORE, simulate



def observe(defense_factory, secret, program=None, config=P_CORE,
            secret_addr=0x1000 + 800, extra_mem=None):
    program = program if program is not None \
        else assemble(V1_GADGET).linked()
    mem = Memory()
    mem.write_word(secret_addr, secret)
    if extra_mem:
        for addr, value in extra_mem.items():
            mem.write_word(addr, value)
    result = simulate(program, defense_factory(), config, mem)
    assert result.halt_reason == "halt"
    return result


def leaks_cache(defense_factory, **kw):
    a = observe(defense_factory, 3, **kw)
    b = observe(defense_factory, 57, **kw)
    return a.adversary_cache_state != b.adversary_cache_state


def leaks_timing(defense_factory, **kw):
    a = observe(defense_factory, 3, **kw)
    b = observe(defense_factory, 57, **kw)
    return (a.cycles, a.timing_trace) != (b.cycles, b.timing_trace)


def test_unsafe_hardware_leaks_via_spectre_v1():
    assert leaks_cache(Unsafe)


@pytest.mark.parametrize("factory", [
    AccessDelay, AccessTrack, SPT, SPTSB, ProtDelay, ProtTrack,
    lambda: ProtDelay(selective_wakeup=False),
    lambda: ProtTrack(use_predictor=False),
], ids=["nda", "stt", "spt", "spt-sb", "delay", "track", "delay-raw",
        "track-raw"])
def test_defenses_block_spectre_v1(factory):
    assert not leaks_cache(factory)
    assert not leaks_timing(factory)


# ----------------------------------------------------------------------
# Divider timing channel: a transient division with a secret operand
# holds the (non-pipelined) divider against a committed division.
# ----------------------------------------------------------------------



def _div_leaks(factory, div_transmitter):
    config = P_CORE.replace(div_is_transmitter=div_transmitter)
    program = assemble(DIV_CHANNEL).linked()
    a = observe(factory, 2, program=program, config=config,
                secret_addr=0x18020)
    b = observe(factory, 1 << 40, program=program, config=config,
                secret_addr=0x18020)
    return (a.adversary_cache_state != b.adversary_cache_state
            or (a.cycles, tuple(a.timing_trace))
            != (b.cycles, tuple(b.timing_trace)))


def test_div_channel_leaks_on_unsafe():
    assert _div_leaks(Unsafe, div_transmitter=True)


@pytest.mark.parametrize("factory", [ProtTrack, ProtDelay, SPTSB],
                         ids=["track", "delay", "spt-sb"])
def test_div_transmitter_closes_channel(factory):
    assert not _div_leaks(factory, div_transmitter=True)


@pytest.mark.parametrize("factory", [ProtTrack, ProtDelay],
                         ids=["track", "delay"])
def test_without_div_transmitter_channel_reopens(factory):
    # Pre-AMuLeT* defenses did not treat divisions as transmitters.
    assert _div_leaks(factory, div_transmitter=False)


# ----------------------------------------------------------------------
# Squash-notification bug: an older tainted transient branch whose
# (secret-dependent) misprediction blocks a younger untainted branch
# from squashing, steering the wrong-path fetch secret-dependently.
# ----------------------------------------------------------------------



def _squash_leaks(buggy):
    config = P_CORE.replace(buggy_squash_notify=buggy)
    program = assemble(SQUASH_BUG).linked()
    a = observe(ProtTrack, 0, program=program, config=config,
                secret_addr=0x18008)
    b = observe(ProtTrack, 1, program=program, config=config,
                secret_addr=0x18008)
    return a.adversary_cache_state != b.adversary_cache_state


def test_fixed_squash_notification_is_safe():
    assert not _squash_leaks(buggy=False)


def test_buggy_squash_notification_leaks():
    assert _squash_leaks(buggy=True)
