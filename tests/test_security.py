"""End-to-end security: Spectre v1 leakage on unsafe hardware, blocked
by every defense; the divider timing channel (paper SVII-B4b); and the
STT-inherited squash-notification bug (paper SVII-B4b)."""

import pytest

from repro.arch import Memory
from repro.defenses import (
    AccessDelay,
    AccessTrack,
    ProtDelay,
    ProtTrack,
    SPT,
    SPTSB,
    Unsafe,
)
from repro.isa import assemble
from repro.uarch import P_CORE, simulate

V1_GADGET = """
main:
    movi r1, 0x1000      ; A base
    movi r2, 0x80000     ; probe array
    movi r6, 0
init:
    store [r1 + r6], r6
    addi r6, r6, 8
    cmpi r6, 512
    blt init
    load r10, [r1 + 768] ; prime the line holding the secret (A+800)
    movi r7, 0
    movi r9, 0x20000
train:
    movi r0, 0
    call gadget
    addi r9, r9, 0x4000
    addi r7, r7, 1
    cmpi r7, 6
    blt train
    movi r0, 800         ; out-of-bounds: A+800 holds the secret
    call gadget
    halt
.func gadget
gadget:
    load r8, [r9]
    load r8, [r9 + r8 + 64]
    addi r8, r8, 512
    cmp r0, r8
    bge skip
    load r3, [r1 + r0]
    shli r3, r3, 9
    load r4, [r2 + r3]
skip:
    ret
.endfunc
"""


def observe(defense_factory, secret, program=None, config=P_CORE,
            secret_addr=0x1000 + 800, extra_mem=None):
    program = program if program is not None \
        else assemble(V1_GADGET).linked()
    mem = Memory()
    mem.write_word(secret_addr, secret)
    if extra_mem:
        for addr, value in extra_mem.items():
            mem.write_word(addr, value)
    result = simulate(program, defense_factory(), config, mem)
    assert result.halt_reason == "halt"
    return result


def leaks_cache(defense_factory, **kw):
    a = observe(defense_factory, 3, **kw)
    b = observe(defense_factory, 57, **kw)
    return a.adversary_cache_state != b.adversary_cache_state


def leaks_timing(defense_factory, **kw):
    a = observe(defense_factory, 3, **kw)
    b = observe(defense_factory, 57, **kw)
    return (a.cycles, a.timing_trace) != (b.cycles, b.timing_trace)


def test_unsafe_hardware_leaks_via_spectre_v1():
    assert leaks_cache(Unsafe)


@pytest.mark.parametrize("factory", [
    AccessDelay, AccessTrack, SPT, SPTSB, ProtDelay, ProtTrack,
    lambda: ProtDelay(selective_wakeup=False),
    lambda: ProtTrack(use_predictor=False),
], ids=["nda", "stt", "spt", "spt-sb", "delay", "track", "delay-raw",
        "track-raw"])
def test_defenses_block_spectre_v1(factory):
    assert not leaks_cache(factory)
    assert not leaks_timing(factory)


# ----------------------------------------------------------------------
# Divider timing channel: a transient division with a secret operand
# holds the (non-pipelined) divider against a committed division.
# ----------------------------------------------------------------------

DIV_CHANNEL = """
main:
    movi r10, 0x18000
    load r0, [r10]            ; prime the secret's line
    movi r1, 1
    muli r1, r1, 3
    muli r1, r1, 3
    muli r1, r1, 3
    muli r1, r1, 3
    muli r1, r1, 3
    muli r1, r1, 3
    muli r1, r1, 3
    muli r1, r1, 3
    muli r1, r1, 3
    muli r1, r1, 3
    muli r1, r1, 3
    muli r1, r1, 3
    muli r1, r1, 3
    muli r1, r1, 3
    muli r1, r1, 3
    andi r1, r1, 0
    test r1, r1
    beq skip                  ; architecturally taken; cold-predicted NT
    prot load r2, [r10 + 32]  ; transient secret (protected, line-primed)
    prot shli r2, r2, 4
    movi r6, 3
    muli r6, r6, 3
    muli r6, r6, 3
    muli r6, r6, 3
    muli r6, r6, 3
    muli r6, r6, 3
    muli r6, r6, 3
    muli r6, r6, 3
    muli r6, r6, 3
    muli r6, r6, 3
    muli r6, r6, 3
    muli r6, r6, 3
    muli r6, r6, 3
    muli r6, r6, 3
    prot add r6, r6, r2       ; divisor = f(secret), ready just before
    movi r4, -1               ; the squash (mul chains are calibrated)
    prot div r4, r4, r6       ; transient div: latency = f(secret)
skip:
    movi r5, 77
    movi r6, 13
    div r7, r5, r6            ; committed div contends for the divider
    halt
"""


def _div_leaks(factory, div_transmitter):
    config = P_CORE.replace(div_is_transmitter=div_transmitter)
    program = assemble(DIV_CHANNEL).linked()
    a = observe(factory, 2, program=program, config=config,
                secret_addr=0x18020)
    b = observe(factory, 1 << 40, program=program, config=config,
                secret_addr=0x18020)
    return (a.adversary_cache_state != b.adversary_cache_state
            or (a.cycles, tuple(a.timing_trace))
            != (b.cycles, tuple(b.timing_trace)))


def test_div_channel_leaks_on_unsafe():
    assert _div_leaks(Unsafe, div_transmitter=True)


@pytest.mark.parametrize("factory", [ProtTrack, ProtDelay, SPTSB],
                         ids=["track", "delay", "spt-sb"])
def test_div_transmitter_closes_channel(factory):
    assert not _div_leaks(factory, div_transmitter=True)


@pytest.mark.parametrize("factory", [ProtTrack, ProtDelay],
                         ids=["track", "delay"])
def test_without_div_transmitter_channel_reopens(factory):
    # Pre-AMuLeT* defenses did not treat divisions as transmitters.
    assert _div_leaks(factory, div_transmitter=False)


# ----------------------------------------------------------------------
# Squash-notification bug: an older tainted transient branch whose
# (secret-dependent) misprediction blocks a younger untainted branch
# from squashing, steering the wrong-path fetch secret-dependently.
# ----------------------------------------------------------------------

SQUASH_BUG = """
main:
    movi r10, 0x18000
    movi r12, 0x30000
    load r0, [r10]             ; prime the secret's line
    load r1, [r12]             ; cold chain: outer branch resolves late
    load r1, [r12 + r1 + 64]
    test r1, r1
    beq done                   ; arch taken; predicted not-taken
    prot load r2, [r10 + 8]    ; transient secret
    test r2, r2
    beq m1                     ; tainted branch: outcome = f(secret)
    nop
m1:
    movi r5, 1                 ; short public chain: ensures the tainted
    muli r5, r5, 3             ; branch above has executed (and is
    muli r5, r5, 3             ; resolution-pending) before this branch
    muli r5, r5, 3             ; tries to initiate its squash
    muli r5, r5, 3
    cmpi r5, 0
    bne m2                     ; untainted, always mispredicts (cold)
    nop                        ; predicted (fall-through) path...
    nop
    nop
    jmp m3                     ; ...never reaches the probe loads
m2:
    movi r3, 0x50000           ; fetched only once this branch squashes:
    load r4, [r3]              ; the bug decides *whether* that happens
    load r4, [r3 + 0x1000]     ; before the outer branch kills the path
m3:
    nop
done:
    halt
"""


def _squash_leaks(buggy):
    config = P_CORE.replace(buggy_squash_notify=buggy)
    program = assemble(SQUASH_BUG).linked()
    a = observe(ProtTrack, 0, program=program, config=config,
                secret_addr=0x18008)
    b = observe(ProtTrack, 1, program=program, config=config,
                secret_addr=0x18008)
    return a.adversary_cache_state != b.adversary_cache_state


def test_fixed_squash_notification_is_safe():
    assert not _squash_leaks(buggy=False)


def test_buggy_squash_notification_leaks():
    assert _squash_leaks(buggy=True)
