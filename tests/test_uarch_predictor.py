"""Branch prediction units."""

from repro.isa import Cond, Instruction, Op
from repro.uarch import BranchPredictor
from repro.uarch.branch_predictor import BTB, GsharePredictor, \
    ReturnAddressStack


def test_gshare_learns_taken():
    g = GsharePredictor(table_bits=8, history_bits=4)
    for _ in range(4):
        g.predict(10)
        g.train_index(g.last_index, True)
    assert g.predict(10) is True


def test_gshare_index_travels_with_prediction():
    g = GsharePredictor(table_bits=8, history_bits=4)
    g.predict(10)
    index = g.last_index
    g.speculative_update_history(True)
    # Training must hit the original entry even after history moved.
    g.train_index(index, True)
    g.train_index(index, True)
    g.history = 0
    assert g.predict(10) is True


def test_btb():
    b = BTB(entries=16)
    assert b.predict(5) is None
    b.train(5, 42)
    assert b.predict(5) == 42
    b.train(5 + 16, 99)   # aliases, replaces
    assert b.predict(5) is None


def test_ras_lifo():
    r = ReturnAddressStack(entries=2)
    r.push(1)
    r.push(2)
    assert r.pop() == 2
    assert r.pop() == 1
    assert r.pop() is None


def test_ras_bounded():
    r = ReturnAddressStack(entries=2)
    for value in (1, 2, 3):
        r.push(value)
    assert r.pop() == 3
    assert r.pop() == 2
    assert r.pop() is None


def test_predict_next_direct_ops():
    bp = BranchPredictor()
    jmp = Instruction(Op.JMP, target=7)
    assert bp.predict_next(0, jmp) == 7
    call = Instruction(Op.CALL, target=3)
    assert bp.predict_next(1, call) == 3
    ret = Instruction(Op.RET)
    assert bp.predict_next(5, ret) == 2  # RAS from the call


def test_snapshot_restore():
    bp = BranchPredictor()
    bp.predict_next(0, Instruction(Op.CALL, target=9))
    snap = bp.snapshot()
    bp.predict_next(1, Instruction(Op.CALL, target=9))
    bp.direction.speculative_update_history(True)
    bp.restore(snap)
    assert bp.snapshot() == snap


def test_branch_prediction_flow():
    bp = BranchPredictor()
    br = Instruction(Op.BR, cond=Cond.EQ, target=10)
    nxt = bp.predict_next(4, br)
    assert nxt in (5, 10)
    bp.train(4, br, True, 10, bp.last_br_index)
