"""Dataflow analyses behind the ProtCC passes."""

from repro.isa import FLAGS, SP, assemble
from repro.protcc.analyses import (
    ReachingDefinitions,
    bound_to_leak,
    cts_sensitive_regs,
    full_transmit_regs,
    past_leaked,
    past_leaked_after,
    unprotectable,
    unprotectable_after,
)
from repro.protcc.cfg import FunctionGraph, function_regions


def graph_of(src):
    program = assemble(src).linked()
    region = function_regions(program)[0]
    return FunctionGraph(program, region)


def has(mask, reg):
    return bool((mask >> reg) & 1)


def test_full_transmit_set():
    g = graph_of(".func f\nload r1, [r2 + r3]\nret\n.endfunc\n")
    inst = g.instruction(0)
    assert set(full_transmit_regs(inst)) == {2, 3}
    br = graph_of(".func f\nx: beq x\nret\n.endfunc\n").instruction(0)
    assert full_transmit_regs(br) == (FLAGS,)
    div = graph_of(".func f\ndiv r1, r2, r3\nret\n.endfunc\n").instruction(0)
    assert full_transmit_regs(div) == ()          # partial only
    assert set(cts_sensitive_regs(div)) == {2, 3}  # but CTS-typed public


def test_past_leaked_constants():
    g = graph_of("""
    .func f
        movi r1, 5
        addi r2, r1, 1
        load r3, [r4]
        nop
        ret
    .endfunc
    """)
    pl = past_leaked(g)
    after_load = past_leaked_after(g, pl, 2)
    assert has(after_load, 1)     # constant
    assert has(after_load, 2)     # derived from constant
    assert has(after_load, 4)     # transmitted as an address
    assert not has(after_load, 3)  # loaded data is unknown


def test_past_leaked_meet_is_intersection():
    g = graph_of("""
    .func f
        cmpi r0, 0
        beq other
        movi r1, 1
        jmp join
    other:
        load r1, [r2]
    join:
        nop
        ret
    .endfunc
    """)
    pl = past_leaked(g)
    join_pc = 5
    assert not has(pl[join_pc], 1)   # constant on one path only
    assert not has(pl[join_pc], 2)   # transmitted on one path only
    assert has(pl[join_pc], FLAGS)   # the branch leaked flags on both


def test_bound_to_leak_through_transmitter():
    g = graph_of("""
    .func f
        movi r1, 0
        load r2, [r3]
        ret
    .endfunc
    """)
    btl = bound_to_leak(g)
    assert has(btl[0], 3)      # r3 will be transmitted by the load
    assert not has(btl[0], 2)


def test_bound_to_leak_invertible_backprop():
    g = graph_of("""
    .func f
        mov r1, r0
        addi r1, r1, 8
        load r2, [r1]
        ret
    .endfunc
    """)
    btl = bound_to_leak(g)
    assert has(btl[0], 0)  # r0 flows invertibly into a leaked address


def test_bound_to_leak_killed_by_lossy_op():
    g = graph_of("""
    .func f
        andi r1, r0, 248
        load r2, [r1]
        ret
    .endfunc
    """)
    btl = bound_to_leak(g)
    assert has(btl[1], 1)
    assert not has(btl[0], 0)  # masking is not invertible


def test_bound_to_leak_must_over_paths():
    g = graph_of("""
    .func f
        cmpi r4, 0
        beq skip
        load r2, [r1]
    skip:
        ret
    .endfunc
    """)
    btl = bound_to_leak(g)
    assert not has(btl[0], 1)  # leaks on one path only


def test_unprotectable_tracks_constant_derivations():
    g = graph_of("""
    .func f
        movi r1, 4
        add r2, r1, sp
        load r3, [r2]
        mul r4, r3, r1
        ret
    .endfunc
    """)
    u = unprotectable(g)
    assert has(unprotectable_after(g, u, 1), 2)   # const + sp
    assert not has(unprotectable_after(g, u, 2), 3)  # loaded data
    assert not has(unprotectable_after(g, u, 3), 4)  # derived from load
    assert has(u[0], SP)


def test_call_clobbers_caller_saved():
    g = graph_of("""
    .func f
        movi r1, 4
        movi r9, 4
        call g
        nop
        ret
    .endfunc
    .func g
    g:
        ret
    .endfunc
    """)
    u = unprotectable(g)
    after_call = u[3]
    assert not has(after_call, 1)   # caller-saved clobbered
    assert has(after_call, 9)       # callee-saved survives
    assert has(after_call, SP)


def test_reaching_definitions_basic():
    g = graph_of("""
    .func f
        movi r1, 1
        cmpi r0, 0
        beq skip
        movi r1, 2
    skip:
        mov r2, r1
        ret
    .endfunc
    """)
    rd = ReachingDefinitions(g)
    reaching = rd.reaching(4, 1)
    pcs = {d.pc for d in reaching}
    assert pcs == {0, 3}


def test_reaching_definitions_entry_defs():
    g = graph_of(".func f\nmov r2, r1\nret\n.endfunc\n")
    rd = ReachingDefinitions(g)
    defs = rd.reaching(0, 1)
    assert len(defs) == 1 and defs[0].kind == "entry"


def test_reaching_definitions_call_defs():
    g = graph_of("""
    .func f
        call g
        mov r2, r0
        ret
    .endfunc
    .func g
    g:
        ret
    .endfunc
    """)
    rd = ReachingDefinitions(g)
    kinds = {d.kind for d in rd.reaching(1, 0)}
    assert kinds == {"call"}
