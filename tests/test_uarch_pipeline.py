"""Out-of-order core behaviour."""

from repro.arch import Memory, run_program
from repro.isa import assemble
from repro.uarch import Core, E_CORE, P_CORE, simulate
from repro.uarch.config import SpeculationModel


def check_equivalence(src, memory=None, regs=None, config=P_CORE):
    program = assemble(src).linked()
    seq = run_program(program, memory, regs)
    hw = simulate(program, None, config, memory, regs)
    assert hw.halt_reason == seq.halt_reason
    assert hw.final_regs == seq.final_regs
    assert hw.committed_pcs == [s.pc for s in seq.steps]
    assert hw.memory == seq.memory
    return hw


def test_straightline_arithmetic():
    hw = check_equivalence("""
        movi r1, 6
        movi r2, 7
        mul r3, r1, r2
        div r4, r3, r1
        halt
    """)
    assert hw.final_regs[3] == 42


def test_store_to_load_forwarding_correctness():
    check_equivalence("""
        movi r1, 0x4000
        movi r2, 99
        store [r1], r2
        load r3, [r1]
        add r4, r3, r3
        halt
    """)


def test_partial_overlap_handled():
    check_equivalence("""
        movi r1, 0x4000
        movi r2, -1
        store [r1], r2
        movi r3, 0
        store [r1 + 4], r3
        load r4, [r1]
        halt
    """)


def test_branchy_loop():
    hw = check_equivalence("""
        movi r1, 0
        movi r2, 0
    loop:
        add r2, r2, r1
        addi r1, r1, 1
        cmpi r1, 50
        blt loop
        halt
    """)
    assert hw.final_regs[2] == sum(range(50))


def test_data_dependent_branches():
    mem = Memory()
    for i in range(32):
        mem.write_word(0x1000 + 8 * i, i * 37 % 11)
    check_equivalence("""
        movi r1, 0x1000
        movi r2, 0
        movi r5, 0
    loop:
        load r3, [r1 + r2]
        cmpi r3, 5
        blt small
        addi r5, r5, 100
        jmp next
    small:
        addi r5, r5, 1
    next:
        addi r2, r2, 8
        cmpi r2, 256
        blt loop
        halt
    """, mem)


def test_call_ret_nesting():
    check_equivalence("""
        movi sp, 0x9000
        call outer
        halt
    outer:
        movi r1, 1
        call inner
        addi r1, r1, 16
        ret
    inner:
        addi r1, r1, 4
        ret
    """)


def test_jmpi_through_btb():
    check_equivalence("""
        movi r1, 4
        movi r2, 0
    spin:
        jmpi r1
        nop
    target:
        addi r2, r2, 1
        cmpi r2, 10
        blt spin
        halt
    """.replace("jmpi r1", "jmpi r1"), regs={})


def test_off_end_halt():
    hw = simulate(assemble("movi r1, 1\n").linked(), None)
    assert hw.halt_reason == "off_end"


def test_bad_pc_halt():
    hw = simulate(assemble("movi r1, 500\njmpi r1\n").linked(), None)
    assert hw.halt_reason == "bad_pc"


def test_timeout():
    hw = simulate(assemble("x: jmp x\n").linked(), None, max_cycles=500)
    assert hw.halt_reason == "timeout"


def test_timing_monotonic_per_uop():
    program = assemble("""
        movi r1, 0x2000
        movi r2, 3
        store [r1], r2
        load r3, [r1]
        div r4, r3, r2
        halt
    """).linked()
    core = Core(program, None, P_CORE)
    core.run()
    for uop in core.committed:
        if uop.issue_cycle >= 0:
            assert (uop.fetch_cycle <= uop.rename_cycle <= uop.issue_cycle
                    <= uop.complete_cycle <= uop.commit_cycle)


def test_mfence_serializes():
    check_equivalence("""
        movi r1, 1
        mfence
        movi r2, 2
        halt
    """)


def test_e_core_config_runs():
    check_equivalence("""
        movi r1, 0
    loop:
        addi r1, r1, 1
        cmpi r1, 40
        blt loop
        halt
    """, config=E_CORE)


def test_control_speculation_model_runs():
    config = P_CORE.replace(speculation_model=SpeculationModel.CONTROL)
    check_equivalence("""
        movi r1, 0
    loop:
        addi r1, r1, 1
        cmpi r1, 30
        blt loop
        halt
    """, config=config)


def test_mispredicted_branch_recovers_rename_state():
    # Heavy misprediction traffic; final state must still be exact.
    mem = Memory()
    for i in range(64):
        mem.write_word(0x3000 + 8 * i, (i * 7919) % 3)
    check_equivalence("""
        movi r1, 0x3000
        movi r2, 0
        movi r6, 0
    loop:
        load r3, [r1 + r2]
        cmpi r3, 1
        beq one
        addi r6, r6, 2
        jmp next
    one:
        addi r6, r6, 5
    next:
        addi r2, r2, 8
        cmpi r2, 512
        blt loop
        halt
    """, mem)


def test_wrong_path_does_not_write_memory():
    # A store on the wrong path must never reach memory.
    mem = Memory()
    mem.write_word(0x100, 0)       # branch selector (cold -> late resolve)
    program = assemble("""
        movi r1, 0x100
        movi r2, 0x200
        movi r3, 0xDEAD
        load r4, [r1]
        test r4, r4
        beq skip
        store [r2], r3
    skip:
        halt
    """).linked()
    hw = simulate(program, None, P_CORE, mem)
    assert hw.memory.read_word(0x200) == 0


def test_stats_populated():
    hw = simulate(assemble("""
        movi r1, 0
    l:
        addi r1, r1, 1
        cmpi r1, 10
        blt l
        halt
    """).linked(), None)
    assert hw.stats["committed_branches"] == 10
    assert "l1d_hits" in hw.stats
    assert hw.instructions == 31  # HALT not counted
