"""Contracts on ProtCC-compiled binaries: the CTS observer fed by the
compiler's public-definition metadata, end to end."""

from repro.arch import Memory, ObserverMode, contract_trace, run_program, \
    traces_equal
from repro.isa import assemble
from repro.protcc import compile_program

SRC = """
main:
    movi r8, 0x1000     ; message (public)
    movi r9, 0x2000     ; key (secret)
    call mac
    halt
.func mac
mac:
    load r1, [r9]       ; key word: secret-typed
    load r2, [r8]       ; message word: secret-typed too (never leaks)
    mul r3, r1, r2
    store [r8 + 8], r3
    ret
.endfunc
"""


def traces(secret):
    program = assemble(SRC).linked()
    compiled = compile_program(program, {"mac": "cts"},
                               default_class="arch")
    memory = Memory()
    memory.write_word(0x1000, 77)
    memory.write_word(0x2000, secret)
    result = run_program(compiled.program, memory)
    return contract_trace(result, ObserverMode.CTS,
                          compiled.public_def_pcs)


def test_cts_contract_hides_secret_typed_values():
    assert traces_equal(traces(1), traces(2))


def test_cts_contract_exposes_public_typed_values():
    # The message pointer itself is publicly typed (it is an address):
    # traces differ when the *public* part differs.
    program = assemble(SRC).linked()
    compile_program(program, {"mac": "cts"}, default_class="arch")

    def trace_with_msgptr(ptr):
        source = SRC.replace("0x1000", hex(ptr))
        prog2 = compile_program(assemble(source).linked(),
                                {"mac": "cts"}, default_class="arch")
        memory = Memory()
        memory.write_word(ptr, 77)
        memory.write_word(0x2000, 5)
        result = run_program(prog2.program, memory)
        return contract_trace(result, ObserverMode.CTS,
                              prog2.public_def_pcs)

    assert not traces_equal(trace_with_msgptr(0x1000),
                            trace_with_msgptr(0x1800))
