"""Stall-cause accounting and pipeline event tracing.

The accounting contract: every one of the ``width * cycles`` issue
slots is either a committed uop or attributed to exactly one stall
cause, so the counters reconstruct the commit-bandwidth budget exactly.
"""

import json

import pytest

from repro.defenses import AccessTrack, SPTSB, Unsafe
from repro.uarch import (
    P_CORE,
    PipelineTracer,
    STALL_CAUSES,
    chrome_trace,
    simulate,
    text_pipeline,
)
from repro.uarch.config import SpeculationModel
from repro.workloads import get_workload


def run(name, defense, config=P_CORE, tracer=None):
    w = get_workload(name)
    return simulate(w.program, defense, config, w.memory, w.regs,
                    tracer=tracer)


# ----------------------------------------------------------------------
# The exact accounting invariant
# ----------------------------------------------------------------------

CONTROL = P_CORE.replace(speculation_model=SpeculationModel.CONTROL)


@pytest.mark.parametrize("name,defense,config", [
    ("ossl.ecadd", Unsafe(), P_CORE),
    ("ossl.dh", SPTSB(), P_CORE),
    ("mcf.s", AccessTrack(), P_CORE),
    ("ossl.ecadd", SPTSB(), CONTROL),
])
def test_stall_counters_sum_to_issue_slot_shortfall(name, defense, config):
    result = run(name, defense, config)
    stalled = sum(result.stats[f"stall_{c}"] for c in STALL_CAUSES)
    budget = config.width * result.cycles
    assert stalled == budget - result.stats["committed_uops"]


def test_all_stall_keys_present_and_nonnegative():
    result = run("ossl.ecadd", Unsafe())
    for cause in STALL_CAUSES:
        assert result.stats[f"stall_{cause}"] >= 0
    assert result.stats["committed_uops"] > 0


def test_defense_stalls_attributed_under_sptsb():
    unsafe = run("ossl.dh", Unsafe())
    sptsb = run("ossl.dh", SPTSB())
    defense_slots = sum(sptsb.stats[f"stall_{c}"] for c in
                       ("defense_transmitter", "defense_wakeup",
                        "defense_resolution"))
    assert defense_slots > 0
    # The unsafe baseline must never blame a defense.
    for cause in ("defense_transmitter", "defense_wakeup",
                  "defense_resolution"):
        assert unsafe.stats[f"stall_{cause}"] == 0


def test_hierarchy_stats_exported():
    result = run("mcf.s", Unsafe())
    for key in ("l1d_hits", "l1d_misses", "l2_hits", "l2_misses",
                "l3_hits", "l3_misses", "tlb_hits", "tlb_misses"):
        assert key in result.stats
    assert result.stats["l1d_hits"] > 0


# ----------------------------------------------------------------------
# Event tracing
# ----------------------------------------------------------------------

def test_tracer_is_transparent():
    plain = run("ossl.ecadd", SPTSB())
    traced = run("ossl.ecadd", SPTSB(), tracer=PipelineTracer())
    assert plain.cycles == traced.cycles
    assert plain.stats == traced.stats


def test_tracer_records_committed_and_squashed_uops():
    tracer = PipelineTracer()
    result = run("ossl.ecadd", Unsafe(), tracer=tracer)
    assert len(tracer.uops) >= result.stats["committed_uops"]
    assert tracer.dropped == 0
    assert tracer.occupancy  # ROB/IQ/LSQ samples were taken


def test_tracer_bounds_memory():
    tracer = PipelineTracer(max_uops=10)
    run("ossl.ecadd", Unsafe(), tracer=tracer)
    assert len(tracer.uops) == 10
    assert tracer.dropped > 0


def test_chrome_trace_is_json_serializable_with_required_keys():
    tracer = PipelineTracer()
    run("ossl.ecadd", Unsafe(), tracer=tracer)
    payload = chrome_trace(tracer, label="ossl.ecadd")
    json.dumps(payload)  # must not raise
    events = payload["traceEvents"]
    slices = [e for e in events if e["ph"] == "X"]
    counters = [e for e in events if e["ph"] == "C"]
    assert slices and counters
    for event in slices:
        assert {"name", "ph", "ts", "dur", "pid", "tid"} <= set(event)
        assert event["dur"] >= 0


def test_text_pipeline_renders_stage_letters():
    tracer = PipelineTracer()
    run("ossl.ecadd", Unsafe(), tracer=tracer)
    text = text_pipeline(tracer)
    assert "F" in text and "C" in text
