"""Shared value semantics: ALU, flags, addresses, divider timing."""

import pytest

from repro.arch import MASK64, alu, compare_flags, div_timing_class, \
    effective_address, to_signed
from repro.arch.semantics import ADDR_MASK
from repro.isa import Cond, Op, encode_flags, eval_cond


def test_add_wraps():
    assert alu(Op.ADD, MASK64, 1) == 0


def test_sub_wraps():
    assert alu(Op.SUB, 0, 1) == MASK64


def test_logic_ops():
    assert alu(Op.AND, 0b1100, 0b1010) == 0b1000
    assert alu(Op.OR, 0b1100, 0b1010) == 0b1110
    assert alu(Op.XOR, 0b1100, 0b1010) == 0b0110


def test_shifts_mod_64():
    assert alu(Op.SHL, 1, 65) == 2
    assert alu(Op.SHR, 4, 66) == 1
    assert alu(Op.SHL, 1, 63) == 1 << 63


def test_mul_wraps():
    assert alu(Op.MUL, 1 << 63, 2) == 0


def test_division_by_zero_defined():
    assert alu(Op.DIV, 123, 0) == MASK64
    assert alu(Op.REM, 123, 0) == 123


def test_division():
    assert alu(Op.DIV, 17, 5) == 3
    assert alu(Op.REM, 17, 5) == 2


def test_to_signed():
    assert to_signed(MASK64) == -1
    assert to_signed(5) == 5
    assert to_signed(1 << 63) == -(1 << 63)


def test_effective_address_masked():
    assert effective_address(ADDR_MASK, 1, 0) == 0
    assert effective_address(0x1000, 0x20, 8) == 0x1028


@pytest.mark.parametrize("a,b,cond,expected", [
    (5, 5, Cond.EQ, True),
    (5, 6, Cond.NE, True),
    (5, 6, Cond.LT, True),
    (6, 5, Cond.GT, True),
    (5, 5, Cond.LE, True),
    (5, 5, Cond.GE, True),
    (MASK64, 1, Cond.LT, True),    # -1 < 1 signed
    (MASK64, 1, Cond.B, False),    # huge unsigned not below 1
    (1, MASK64, Cond.B, True),
])
def test_flags_and_conditions(a, b, cond, expected):
    assert eval_cond(cond, encode_flags(a, b)) is expected


def test_compare_flags_test_op():
    flags = compare_flags(Op.TEST, 0b1100, 0b0011)
    assert eval_cond(Cond.EQ, flags)  # AND == 0


def test_div_timing_is_operand_dependent():
    fast = div_timing_class(1, 1)
    slow = div_timing_class(MASK64, 1)
    assert slow > fast
    assert div_timing_class(100, 0) == 0  # fault fast-path


def test_div_timing_deterministic():
    assert div_timing_class(1000, 3) == div_timing_class(1000, 3)
