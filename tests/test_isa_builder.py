"""Programmatic builder."""

import pytest

from repro.isa import Builder, Cond, Op


def test_builder_emits_and_links():
    asm = Builder()
    with asm.func("main"):
        asm.movi(0, 5)
        loop = asm.fresh_label("loop")
        asm.label(loop)
        asm.subi(0, 0, 1)
        asm.cmpi(0, 0)
        asm.br(Cond.GT, loop)
        asm.halt()
    p = asm.build()
    assert p.is_linked
    assert p.functions[0].name == "main"
    assert p[3].target == 1


def test_fresh_labels_unique():
    asm = Builder()
    assert asm.fresh_label("x") != asm.fresh_label("x")


def test_duplicate_label_rejected():
    asm = Builder()
    asm.label("a")
    with pytest.raises(ValueError):
        asm.label("a")


def test_all_emitters_produce_expected_ops():
    asm = Builder()
    asm.movi(0, 1); asm.mov(1, 0); asm.add(2, 0, 1); asm.sub(2, 2, 0)
    asm.and_(2, 2, 1); asm.or_(2, 2, 1); asm.xor(2, 2, 1)
    asm.shl(2, 2, 0); asm.shr(2, 2, 0); asm.mul(2, 2, 1)
    asm.div(3, 2, 1); asm.rem(3, 2, 1)
    asm.addi(3, 3, 1); asm.subi(3, 3, 1); asm.andi(3, 3, 1)
    asm.ori(3, 3, 1); asm.xori(3, 3, 1); asm.shli(3, 3, 1)
    asm.shri(3, 3, 1); asm.muli(3, 3, 2)
    asm.cmp(3, 2); asm.cmpi(3, 0); asm.test(3, 2)
    asm.load(4, 8, 7, 16); asm.store(8, 7, 16, 4)
    asm.push(4); asm.pop(5)
    asm.nop(); asm.mfence(); asm.halt()
    ops = [i.op for i in asm._instructions]
    assert ops.count(Op.MOVI) == 1
    assert Op.DIV in ops and Op.REM in ops and Op.MFENCE in ops
    assert len(ops) == 30


def test_prot_flag_passthrough():
    asm = Builder()
    asm.load(1, 2, None, 0, prot=True)
    asm.add(1, 1, 1, prot=True)
    assert all(i.prot for i in asm._instructions)


def test_entry_here():
    asm = Builder()
    asm.nop()
    asm.entry_here()
    asm.halt()
    assert asm.build().entry == 1
