"""Register-file definition tests."""

import pytest

from repro.isa import FLAGS, FP, NUM_GP_REGS, NUM_REGS, SP, parse_reg, reg_name
from repro.isa.registers import REG_INDEX, REG_NAMES


def test_register_counts():
    assert NUM_GP_REGS == 14
    assert NUM_REGS == 17
    assert len(REG_NAMES) == NUM_REGS


def test_special_registers_distinct():
    assert len({FP, SP, FLAGS}) == 3
    assert FP == 14 and SP == 15 and FLAGS == 16


@pytest.mark.parametrize("index", range(NUM_REGS))
def test_name_roundtrip(index):
    assert parse_reg(reg_name(index)) == index


def test_aliases():
    assert parse_reg("r14") == FP
    assert parse_reg("r15") == SP
    assert parse_reg("fp") == FP
    assert parse_reg("sp") == SP
    assert parse_reg("flags") == FLAGS


def test_parse_is_case_insensitive():
    assert parse_reg("R3") == 3
    assert parse_reg("  SP ") == SP


def test_parse_unknown_register():
    with pytest.raises(ValueError):
        parse_reg("r99")
    with pytest.raises(ValueError):
        parse_reg("eax")


def test_index_table_consistent():
    for name, index in REG_INDEX.items():
        assert parse_reg(name) == index
