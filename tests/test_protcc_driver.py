"""Multi-class compilation driver."""

import pytest

from repro.arch import run_program
from repro.isa import assemble
from repro.protcc import compile_program

MULTI = """
main:
    movi sp, 0x8000
    call f
    call g
    halt
.func f
f:
    movi r1, 1
    ret
.endfunc
.func g
g:
    load r2, [r3]
    ret
.endfunc
"""


def test_single_class_string():
    p = assemble(MULTI).linked()
    compiled = compile_program(p, "unr")
    assert compiled.classes["f"] == "unr"
    assert compiled.classes["g"] == "unr"


def test_class_map_with_default():
    p = assemble(MULTI).linked()
    compiled = compile_program(p, {"f": "cts"}, default_class="unr")
    assert compiled.classes["f"] == "cts"
    assert compiled.classes["g"] == "unr"


def test_toplevel_gets_synthesized_region():
    p = assemble(MULTI).linked()
    compiled = compile_program(p, {"f": "arch", "g": "arch"},
                               default_class="arch")
    assert any(name.startswith("__toplevel")
               for name in compiled.classes)


def test_unknown_function_rejected():
    p = assemble(MULTI).linked()
    with pytest.raises(ValueError):
        compile_program(p, {"nope": "arch"})


def test_unknown_class_rejected():
    p = assemble(MULTI).linked()
    with pytest.raises(ValueError):
        compile_program(p, "bogus")


def test_public_def_pcs_cover_cts_regions_only():
    p = assemble(MULTI).linked()
    compiled = compile_program(p, {"f": "cts"}, default_class="arch")
    assert compiled.public_def_pcs
    final_f = compiled.program.function_named("f")
    for pc in compiled.public_def_pcs:
        assert final_f.start <= pc < final_f.end


def test_metrics_populated():
    p = assemble(MULTI).linked()
    compiled = compile_program(p, "unr")
    assert compiled.base_size == len(p.instructions)
    assert compiled.prot_prefixes == compiled.program.prot_count()
    assert compiled.code_size_overhead >= 0.0


def test_multiclass_preserves_semantics():
    p = assemble(MULTI).linked()
    base = run_program(p)
    for classes in ("arch", "cts", "ct", "unr",
                    {"f": "cts", "g": "ct"}):
        compiled = compile_program(p, classes, default_class="unr")
        result = run_program(compiled.program)
        assert result.final_regs == base.final_regs
