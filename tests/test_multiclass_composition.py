"""Multi-class composition properties (paper Fig. 1 / SIX-C): per-class
targeting composes — the multi-class binary is at least as fast as the
everything-UNR binary under Protean, and both are secure."""

import pytest

from repro.contracts import Contract, TestInput, Verdict, \
    check_contract_pair
from repro.defenses import ProtTrack, SPTSB
from repro.protcc import compile_program
from repro.uarch import P_CORE, simulate
from repro.workloads import get_workload


@pytest.mark.parametrize("name", ["nginx.c2r2", "nginx.c4r1"])
def test_multiclass_beats_all_unr(name):
    w = get_workload(name)
    multi = compile_program(w.program, w.classes).program
    all_unr = compile_program(w.program, "unr").program
    multi_cycles = simulate(multi, ProtTrack(), P_CORE, w.memory,
                            w.regs).cycles
    unr_cycles = simulate(all_unr, ProtTrack(), P_CORE, w.memory,
                          w.regs).cycles
    assert multi_cycles <= unr_cycles * 1.02
    # And both beat treating the whole binary as unrestricted in
    # hardware (SPT-SB).
    sptsb = simulate(w.program, SPTSB(), P_CORE, w.memory, w.regs).cycles
    assert multi_cycles < sptsb


def test_multiclass_nginx_hides_handshake_secret():
    # The private exponent (KEY region) must not leak under the CT-SEQ
    # contract on the multi-class binary.
    w = get_workload("nginx.c1r1")
    compiled = compile_program(w.program, w.classes)
    # Build inputs differing only in the secret exponent word.
    key_addr = 0x0510_0000

    def word_input(secret):
        # snapshot is per-byte; rebuild word-level inputs instead:
        mem = w.memory.copy()
        mem.write_word(key_addr, secret)
        return TestInput(tuple(
            (addr, mem.read_word(addr))
            for addr in range(key_addr, key_addr + 8 * 8, 8)
        ) + tuple(
            (0x0500_0000 + 8 * i, mem.read_word(0x0500_0000 + 8 * i))
            for i in range(64)
        ) + ((key_addr + 64, mem.read_word(key_addr + 64)),) + tuple(
            (key_addr + 0x100 + 8 * i,
             mem.read_word(key_addr + 0x100 + 8 * i))
            for i in range(32)
        ))

    outcome = check_contract_pair(
        compiled.program, ProtTrack, Contract.CT_SEQ,
        word_input(0x1234_5678_9ABC), word_input(0xFEDC_BA98_7654),
        fuel=120_000, max_cycles=800_000)
    # The two keys drive different committed paths (UNR code!), so the
    # pair is CT-distinguishable and rejected -- OR, if paths happen to
    # coincide, the defended run must be indistinguishable.
    assert outcome.verdict in (Verdict.INVALID_PAIR, Verdict.PASS)


def test_multiclass_nginx_leaks_on_unsafe_for_equal_paths():
    # Same-path key pairs (identical bit patterns in the branches'
    # window) exercise the transient side only.
    w = get_workload("nginx.c1r1")
    compiled = compile_program(w.program, w.classes)

    def make_input(hidden):
        mem = w.memory.copy()
        # Flip a word the server never architecturally touches.
        mem.write_word(0x0518_0000, hidden)
        return TestInput(tuple(
            (addr, mem.read_word(addr))
            for addr in sorted(set(a & ~7 for a in mem.snapshot()))
        ))

    outcome = check_contract_pair(
        compiled.program, ProtTrack, Contract.CT_SEQ,
        make_input(1), make_input(2), fuel=120_000, max_cycles=800_000)
    assert outcome.verdict is Verdict.PASS
