"""The fast-path proof layer: differential fast-vs-reference runs.

Every test here executes the same simulation twice — once with the
fast-path engine, once on :class:`ReferenceCore` — and asserts the two
``CoreResult`` outcomes identical in every observable (cycles, stats,
timing trace, adversary cache state, committed streams)."""

import pytest

from repro.bench.runner import DEFENSES
from repro.fixtures import build
from repro.uarch import P_CORE, simulate
from repro.uarch.config import SpeculationModel
from repro.uarch.refcore import (
    DiffCase,
    ReferenceCore,
    compare_results,
    diff_cases,
    fixture_cases,
    run_case,
    run_pair,
)

ALL_DEFENSES = tuple(DEFENSES)


# ----------------------------------------------------------------------
# Harness plumbing
# ----------------------------------------------------------------------

def test_reference_core_pins_fast_path_off():
    program, memory = build("v1-gadget")
    core = ReferenceCore(program, None, P_CORE, memory, fast_path=True)
    assert core._fast is False
    result = core.run()
    assert result.halt_reason == "halt"


def test_compare_results_reports_per_stat_key():
    program, memory = build("v1-gadget")
    a = simulate(program, None, P_CORE, memory)
    b = simulate(program, None, P_CORE, memory)
    b.stats = dict(b.stats)
    b.stats["squashes"] += 1
    b.cycles += 7
    report = compare_results(a, b, label="forced")
    assert not report.identical
    rendered = report.render()
    assert "stats[squashes]" in rendered
    assert "cycles" in rendered
    with pytest.raises(AssertionError):
        report.raise_if_different()


def test_identical_results_render_clean():
    program, memory = build("v1-gadget")
    a = simulate(program, None, P_CORE, memory)
    report = compare_results(a, a)
    assert report.identical
    report.raise_if_different()
    assert "identical" in report.render()


def test_diff_cases_cover_every_defense_and_core():
    cases = list(diff_cases(programs=2))
    assert {c.defense for c in cases} == set(ALL_DEFENSES)
    assert {c.core for c in cases} == {"P", "E"}
    assert {c.instrument for c in cases} == {
        "rand", "arch", "cts", "ct", "unr"}
    # Seed rotation sweeps the Table III hardware variants.
    models = {c.config().speculation_model for c in cases}
    assert models == {SpeculationModel.ATCOMMIT, SpeculationModel.CONTROL}


# ----------------------------------------------------------------------
# The grid: every defense x instrumentation class x core config.
# ----------------------------------------------------------------------

@pytest.mark.parametrize("defense", ALL_DEFENSES)
@pytest.mark.parametrize("instrument", ["rand", "arch", "ct"])
def test_random_program_identical(defense, instrument):
    for core in ("P", "E"):
        report = run_case(DiffCase(defense, instrument, core, seed=11))
        report.raise_if_different()


@pytest.mark.parametrize("defense", ["track", "stt", "spt", "nda"])
def test_control_speculation_identical(defense):
    # seed % 3 == 1 rotates in the CONTROL speculation model.
    report = run_case(DiffCase(defense, "arch", "P", seed=4))
    assert (DiffCase(defense, "arch", "P", seed=4).config()
            .speculation_model is SpeculationModel.CONTROL)
    report.raise_if_different()


@pytest.mark.parametrize("defense", ["track", "stt"])
def test_buggy_squash_notify_identical(defense):
    # seed % 4 == 2 rotates in the squash-notification bug.
    case = DiffCase(defense, "arch", "P", seed=6)
    assert case.config().buggy_squash_notify
    run_case(case).raise_if_different()


# ----------------------------------------------------------------------
# Security fixtures under their signature configs.
# ----------------------------------------------------------------------

def test_fixture_runs_identical():
    reports = list(fixture_cases())
    assert len(reports) >= 12
    for _, report in reports:
        report.raise_if_different()


@pytest.mark.parametrize("defense", ["unsafe", "spt", "spt-sb", "track"])
def test_workload_identical(defense):
    from repro.workloads import get_workload
    from repro.protcc import compile_program

    workload = get_workload("mcf.s")
    factory = DEFENSES[defense]
    program = workload.program
    if factory().binary == "protcc":
        program = compile_program(workload.program,
                                  workload.classes).program
    _, _, report = run_pair(program, factory,
                            memory_factory=lambda: workload.memory,
                            regs=workload.regs,
                            label=f"mcf.s/{defense}")
    report.raise_if_different()
