"""Paper Lemma 2, as an executable property: the set of retired state
ProtISA's hardware tags mark *protected* is a superset of the
architectural ProtSet — equivalently, hardware never marks unprotected
anything the architecture protects.

Checked on random ProtCC-RAND binaries: (a) every architecturally
protected register is protected in the final rename-mapped tags, and
(b) every byte the hardware's L1D tags hold as unprotected is
architecturally unprotected."""

import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.arch import ArchProtSet, run_program
from repro.arch.executor import STACK_TOP
from repro.fuzzing import generate_program
from repro.fuzzing.inputs import generate_input
from repro.isa import NUM_REGS
from repro.protcc import compile_program
from repro.uarch import Core, P_CORE


def check_lemma2(seed):
    program = compile_program(generate_program(seed, size=25), "rand",
                              rng=random.Random(seed)).program
    test_input = generate_input(random.Random(seed ^ 0xBEEF))
    memory = test_input.build_memory()
    regs = test_input.build_regs()

    seq = run_program(program, memory, regs)
    assert seq.halt_reason == "halt"
    arch = ArchProtSet()
    # Match the hardware's boot assumption: startup wrote the initial
    # registers with unprefixed instructions.
    arch.protected_regs.clear()
    for step in seq.steps:
        arch.apply(step)

    core = Core(program, None, P_CORE, memory, regs)
    hw = core.run()
    assert hw.halt_reason == "halt"

    # (a) Registers: architecturally protected => hardware-protected.
    for reg in range(NUM_REGS):
        if arch.reg_protected(reg):
            preg = core.rename_map.lookup(reg)
            assert core.prf.prot[preg], f"reg {reg} under-protected"

    # (b) Memory: hardware-unprotected bytes (ignoring the stack, whose
    # contents are return addresses CALL writes as unprotected in both
    # views) must be architecturally unprotected.
    for addr in core.mem_tags._unprotected:
        if STACK_TOP - 0x2000 <= addr < STACK_TOP:
            continue
        assert not arch.mem_protected(addr), f"byte {addr:#x} " \
            "hardware-unprotected but architecturally protected"


@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=5000))
def test_lemma2_on_random_prot_binaries(seed):
    check_lemma2(seed)


@pytest.mark.parametrize("seed", [1, 7, 23, 99])
def test_lemma2_fixed_seeds(seed):
    check_lemma2(seed)
