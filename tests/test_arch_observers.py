"""Observer modes and contract traces (paper SII-C)."""

from repro.arch import Memory, ObserverMode, contract_trace, run_program, \
    traces_equal
from repro.isa import assemble


def trace(src, mode, memory=None, regs=None, public_defs=None):
    result = run_program(assemble(src).linked(), memory, regs)
    return contract_trace(result, mode, public_defs)


SECRET_LOAD = """
    movi r1, 0x100
    load r2, [r1]
    movi r3, 7
    halt
"""


def _mem(value):
    m = Memory()
    m.write_word(0x100, value)
    return m


def test_ct_hides_loaded_values():
    a = trace(SECRET_LOAD, ObserverMode.CT, _mem(1))
    b = trace(SECRET_LOAD, ObserverMode.CT, _mem(2))
    assert traces_equal(a, b)


def test_arch_exposes_loaded_values():
    a = trace(SECRET_LOAD, ObserverMode.ARCH, _mem(1))
    b = trace(SECRET_LOAD, ObserverMode.ARCH, _mem(2))
    assert not traces_equal(a, b)


def test_ct_exposes_addresses():
    src = "load r2, [r1]\nhalt\n"
    a = trace(src, ObserverMode.CT, regs={1: 0x100})
    b = trace(src, ObserverMode.CT, regs={1: 0x200})
    assert not traces_equal(a, b)


def test_ct_exposes_individual_address_registers():
    # AMuLeT* refinement (SVII-B1b): same sum, different components.
    src = "load r3, [r1 + r2]\nhalt\n"
    a = trace(src, ObserverMode.CT, regs={1: 0x100, 2: 0x10})
    b = trace(src, ObserverMode.CT, regs={1: 0x110, 2: 0x00})
    assert not traces_equal(a, b)


def test_ct_exposes_branch_flags():
    src = "cmpi r1, 5\nbeq done\nnop\ndone: halt\n"
    a = trace(src, ObserverMode.CT, regs={1: 5})
    b = trace(src, ObserverMode.CT, regs={1: 5})
    assert traces_equal(a, b)
    c = trace("cmpi r1, 5\nnop\nnop\nhalt\n", ObserverMode.CT, regs={1: 4})
    assert not traces_equal(a, c)


def test_ct_exposes_div_operands():
    src = "div r3, r1, r2\nhalt\n"
    a = trace(src, ObserverMode.CT, regs={1: 10, 2: 2})
    b = trace(src, ObserverMode.CT, regs={1: 20, 2: 2})
    assert not traces_equal(a, b)


def test_unprot_exposes_unprefixed_writes():
    src = "load r2, [r1]\nhalt\n"   # unprefixed: r2 write exposed
    a = trace(src, ObserverMode.UNPROT, regs={1: 0x100}, memory=_mem(1))
    b = trace(src, ObserverMode.UNPROT, regs={1: 0x100}, memory=_mem(2))
    assert not traces_equal(a, b)


def test_unprot_hides_prot_writes():
    src = "prot load r2, [r1]\nhalt\n"
    a = trace(src, ObserverMode.UNPROT, regs={1: 0x100}, memory=_mem(1))
    b = trace(src, ObserverMode.UNPROT, regs={1: 0x100}, memory=_mem(2))
    assert traces_equal(a, b)


def test_cts_exposes_public_defs_only():
    src = "load r2, [r1]\nload r3, [r1 + 8]\nhalt\n"
    mem_a = _mem(1)
    mem_b = _mem(2)
    mem_a.write_word(0x108, 5)
    mem_b.write_word(0x108, 5)
    # pc 0's definition publicly typed, pc 1's secret.
    a = trace(src, ObserverMode.CTS, mem_a, {1: 0x100}, public_defs={0})
    b = trace(src, ObserverMode.CTS, mem_b, {1: 0x100}, public_defs={0})
    assert not traces_equal(a, b)
    a = trace(src, ObserverMode.CTS, mem_a, {1: 0x100}, public_defs={1})
    b = trace(src, ObserverMode.CTS, mem_b, {1: 0x100}, public_defs={1})
    assert traces_equal(a, b)


def test_control_flow_always_exposed():
    # Contract traces expose the PC sequence: different paths through
    # the same program are always distinguishable.
    src = "cmpi r1, 0\nbeq skip\nnop\nskip: halt\n"
    a = trace(src, ObserverMode.CT, regs={1: 0})
    b = trace(src, ObserverMode.CT, regs={1: 1})
    assert not traces_equal(a, b)
