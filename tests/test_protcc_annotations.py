"""SV-C extension: user secrecy annotations refine the inferred
ProtSets — a declared-public argument is declassified instead of
conservatively protected."""

import pytest

from repro.arch import run_program
from repro.isa import Op, assemble
from repro.protcc import compile_program

SRC = """
main:
    movi r0, 21
    call f
    halt
.func f
f:
    mul r1, r0, r0      ; r0 never reaches a transmitter: inferred secret
    ret
.endfunc
"""


def body(compiled):
    region = compiled.program.function_named("f")
    return compiled.program.instructions[region.start:region.end]


def test_unr_annotation_unprotects_argument():
    program = assemble(SRC).linked()
    plain = compile_program(program, {"f": "unr"}, default_class="arch")
    muls = [i for i in body(plain) if i.op is Op.MUL]
    assert muls[0].prot  # r0 conservatively treated as possibly-secret

    hinted = compile_program(program, {"f": "unr"}, default_class="arch",
                             public_annotations={"f": (0,)})
    muls = [i for i in body(hinted) if i.op is Op.MUL]
    assert not muls[0].prot
    moves = [i for i in body(hinted) if i.op is Op.MOV and i.rd == i.ra]
    assert any(m.rd == 0 for m in moves)  # declassifying identity move


def test_ct_annotation_adds_entry_move():
    program = assemble(SRC).linked()
    hinted = compile_program(program, {"f": "ct"}, default_class="arch",
                             public_annotations={"f": (0,)})
    moves = [i for i in body(hinted) if i.op is Op.MOV and i.rd == i.ra]
    assert any(m.rd == 0 for m in moves)


def test_cts_annotation_publicizes_entry_def():
    program = assemble(SRC).linked()
    plain = compile_program(program, {"f": "cts"}, default_class="arch")
    hinted = compile_program(program, {"f": "cts"}, default_class="arch",
                             public_annotations={"f": (0,)})
    assert hinted.prot_prefixes <= plain.prot_prefixes
    moves = [i for i in body(hinted) if i.op is Op.MOV and i.rd == i.ra]
    assert any(m.rd == 0 for m in moves)


def test_annotation_preserves_semantics():
    program = assemble(SRC).linked()
    base = run_program(program)
    hinted = compile_program(program, {"f": "unr"}, default_class="arch",
                             public_annotations={"f": (0,)})
    result = run_program(hinted.program)
    assert result.final_regs == base.final_regs


def test_annotation_unknown_function_rejected():
    program = assemble(SRC).linked()
    with pytest.raises(ValueError):
        compile_program(program, "unr", public_annotations={"zzz": (0,)})
