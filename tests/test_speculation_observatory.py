"""The speculation observatory (always-on telemetry + opt-in ledger).

Three layers under test:

* the always-on aggregates — transient-uop accounting, speculation
  histograms, and per-hook intervention episode counters — must be
  present and internally consistent in every engine's result, and must
  cost nothing when no defense hook is live;
* the opt-in :class:`InterventionLedger` must honour the tracer's
  zero-overhead attach contract (``Core.step`` never mentions it, a
  detached run is byte-identical), must agree event-by-event with the
  aggregate counters, and must refuse the compiled backend;
* the projection helpers (``intervention_summary``,
  ``transient_summary``, ``histogram``, the Chrome-trace overlay, the
  ``speculation_anatomy`` table, the ``repro speculation`` CLI) must
  faithfully reshape the same numbers.
"""

import inspect
import json

import pytest

from repro.bench.runner import DEFENSES
from repro.fixtures import build
from repro.uarch import P_CORE, simulate
from repro.uarch.compiled import CompiledCore, CompileUnsupported
from repro.uarch.pipeline import HIST_EDGES, Core, hist_key
from repro.uarch.refcore import REQUIRED_TELEMETRY
from repro.uarch.speculation import (
    InterventionLedger,
    histogram,
    intervention_summary,
    ledger_chrome_events,
    transient_summary,
)

HOOK_STEMS = ("exec", "resolve", "wakeup")


def run_fixture(fixture="v1-gadget", defense="track", **kwargs):
    program, memory = build(fixture)
    return simulate(program, DEFENSES[defense](), P_CORE, memory,
                    **kwargs)


def ledgered_fixture(fixture="v1-gadget", defense="track", **kwargs):
    ledger = InterventionLedger(**kwargs)
    result = run_fixture(fixture, defense, ledger=ledger)
    return result, ledger


# ----------------------------------------------------------------------
# Always-on aggregates
# ----------------------------------------------------------------------

def test_hist_key_bucket_edges():
    assert hist_key("spec_depth", 0) == "spec_depth_le_1"
    assert hist_key("spec_depth", 1) == "spec_depth_le_1"
    assert hist_key("spec_depth", 2) == "spec_depth_le_2"
    assert hist_key("spec_depth", 3) == "spec_depth_le_4"
    assert hist_key("squash_cascade", 32) == "squash_cascade_le_32"
    assert hist_key("squash_cascade", 33) == "squash_cascade_gt_32"


@pytest.mark.parametrize("engine", ["refcore", "fast", "compiled"])
def test_required_telemetry_present_in_every_engine(engine):
    result = run_fixture(engine=engine)
    for key in REQUIRED_TELEMETRY:
        assert key in result.stats, (engine, key)


def test_unsafe_run_records_zero_interventions():
    result = run_fixture(defense="unsafe")
    for stem in HOOK_STEMS:
        assert result.stats[f"defense_{stem}_interventions"] == 0
        assert result.stats[f"defense_{stem}_delay_cycles"] == 0
    assert result.stats["issued_uops"] > 0
    assert result.stats["fetched_uops"] >= result.stats["committed_uops"]


def test_track_records_execute_interventions():
    result = run_fixture(defense="track")
    stats = result.stats
    assert stats["defense_exec_interventions"] > 0
    # An episode spans at least one cycle; refusals re-count each retry
    # cycle, so refusals >= episodes and delay >= episodes.
    assert stats["defense_exec_delay_cycles"] >= \
        stats["defense_exec_interventions"]
    assert stats["defense_delayed_transmitters"] >= \
        stats["defense_exec_interventions"]


def test_nda_records_wakeup_interventions():
    result = run_fixture(defense="nda")
    stats = result.stats
    assert stats["defense_wakeup_interventions"] > 0
    assert stats["defense_wakeup_delay_cycles"] >= \
        stats["defense_wakeup_interventions"]
    # NDA gates only wakeup: the other hooks never intervene.
    assert stats["defense_exec_interventions"] == 0
    assert stats["defense_resolve_interventions"] == 0


def test_squash_cause_counters_partition_squashes():
    result = run_fixture("squash-bug", "track")
    stats = result.stats
    assert stats["squashes"] > 0
    assert (stats["squashes_conditional"] + stats["squashes_indirect"]
            + stats["squashes_return"]) == stats["squashes"]


def test_squash_cascade_histogram_samples_once_per_squash():
    result = run_fixture("squash-bug", "track")
    stats = result.stats
    buckets = sum(stats[hist_key("squash_cascade", edge)]
                  for edge in HIST_EDGES)
    buckets += stats[f"squash_cascade_gt_{HIST_EDGES[-1]}"]
    assert buckets == stats["squashes"]


def test_spec_depth_histogram_records_resolutions():
    result = run_fixture(defense="unsafe")
    stats = result.stats
    total = sum(stats[hist_key("spec_depth", edge)]
                for edge in HIST_EDGES)
    total += stats[f"spec_depth_gt_{HIST_EDGES[-1]}"]
    assert total > 0


def test_stall_accounting_invariant_survives_alias_retirement():
    # The "defense" block reason became "defense_execute"; the coarse
    # stall columns must still account for every non-committing slot.
    result = run_fixture(defense="track")
    stats = result.stats
    stalls = sum(v for k, v in stats.items() if k.startswith("stall_"))
    assert stalls == \
        P_CORE.width * result.cycles - stats["committed_uops"]
    assert stats["stall_defense_transmitter"] > 0


def test_private_accounting_keys_never_escape():
    result = run_fixture(defense="track")
    assert not [k for k in result.stats if k.startswith("_")]


# ----------------------------------------------------------------------
# The ledger's attach contract
# ----------------------------------------------------------------------

def test_core_step_never_consults_the_ledger():
    source = inspect.getsource(Core.step)
    assert "ledger" not in source
    assert source.count("is not None") == 1


def test_detached_ledger_run_is_byte_identical():
    plain = run_fixture(defense="track", engine="fast")
    result, ledger = ledgered_fixture(defense="track")
    assert result.cycles == plain.cycles
    assert result.stats == plain.stats
    assert ledger.events


def test_ledger_pins_the_interpreter():
    program, memory = build("v1-gadget")
    with pytest.raises(CompileUnsupported):
        CompiledCore(program, DEFENSES["track"](), P_CORE, memory,
                     ledger=InterventionLedger())
    # simulate() falls back silently even when compiled is requested.
    plain = run_fixture(defense="track")
    result, _ = ledgered_fixture(defense="track")
    assert result.cycles == plain.cycles


# ----------------------------------------------------------------------
# Ledger events vs aggregate counters
# ----------------------------------------------------------------------

def test_ledger_events_reconcile_with_aggregates():
    result, ledger = ledgered_fixture(defense="track")
    by_hook = ledger.by_hook()
    for hook, stem in (("execute", "exec"), ("resolve", "resolve"),
                       ("wakeup", "wakeup")):
        assert len(by_hook[hook]) == \
            result.stats[f"defense_{stem}_interventions"], hook
    assert ledger.total_delay() == sum(
        result.stats[f"defense_{stem}_delay_cycles"]
        for stem in HOOK_STEMS)
    assert ledger.dropped == 0


def test_ledger_event_fields_are_sane():
    result, ledger = ledgered_fixture(defense="track")
    for event in ledger.events:
        assert event.delay >= 1
        assert 0 <= event.start < event.start + event.delay
        assert event.closed_by in ("allow", "squash", "halt")
        assert event.hook in ("execute", "resolve", "wakeup")
        assert event.asm  # disassembly, not an opcode number
        assert event.depth >= 0
    dicts = ledger.to_dicts()
    assert len(dicts) == len(ledger.events)
    assert json.dumps(dicts)  # JSON-serializable as-is


def test_ledger_finish_is_idempotent():
    _, ledger = ledgered_fixture(defense="track")
    assert ledger.finished
    n = len(ledger.events)
    ledger.finish(None)  # core unused once finished
    assert len(ledger.events) == n


def test_ledger_caps_events_but_not_aggregates():
    plain = run_fixture(defense="track")
    result, ledger = ledgered_fixture(defense="track", max_events=1)
    total = sum(plain.stats[f"defense_{stem}_interventions"]
                for stem in HOOK_STEMS)
    assert len(ledger.events) == 1
    assert ledger.dropped == total - 1
    assert result.stats == plain.stats  # aggregates stay exact


# ----------------------------------------------------------------------
# Projection helpers
# ----------------------------------------------------------------------

def test_intervention_summary_projection():
    summary = intervention_summary({
        "defense_exec_interventions": 3,
        "defense_exec_delay_cycles": 12,
        "defense_delayed_transmitters": 7,
    })
    assert summary["execute"] == {"interventions": 3,
                                  "delay_cycles": 12, "refusals": 7}
    assert summary["resolve"] == {"interventions": 0,
                                  "delay_cycles": 0, "refusals": 0}


def test_transient_summary_projection():
    summary = transient_summary({
        "fetched_uops": 10, "committed_uops": 6, "issued_uops": 8,
        "squashed_uops": 3, "squashes": 1, "squashes_conditional": 1,
    })
    assert summary["transient_uops"] == 4
    assert summary["squashes_conditional"] == 1
    assert summary["squashes_indirect"] == 0


def test_histogram_projection_orders_buckets():
    stats = {"spec_depth_le_1": 5, "spec_depth_le_16": 2,
             "spec_depth_gt_32": 1}
    out = histogram(stats, "spec_depth")
    assert list(out) == ["<=1", "<=2", "<=4", "<=8", "<=16", "<=32",
                         ">32"]
    assert out["<=1"] == 5 and out["<=16"] == 2 and out[">32"] == 1


def test_chrome_overlay_rides_pid_two():
    from repro.uarch.trace import PipelineTracer, chrome_trace

    program, memory = build("v1-gadget")
    tracer = PipelineTracer()
    ledger = InterventionLedger()
    simulate(program, DEFENSES["track"](), P_CORE, memory,
             tracer=tracer, ledger=ledger)
    overlay = ledger_chrome_events(ledger, label="t")
    slices = [e for e in overlay if e["ph"] == "X"]
    assert len(slices) == len(ledger.events)
    assert all(e["pid"] == 2 for e in overlay)
    metas = [e for e in overlay if e["ph"] == "M"]
    assert {m["args"]["name"] for m in metas} >= \
        {"t: defense interventions", "may_execute", "may_resolve",
         "may_wakeup"}
    merged = chrome_trace(tracer, label="t", ledger=ledger)
    pids = {e.get("pid") for e in merged["traceEvents"]}
    assert {1, 2} <= pids  # pipeline track + intervention overlay


def test_speculation_anatomy_table():
    from repro.bench.tables import speculation_anatomy

    table = speculation_anatomy(("ossl.ecadd",),
                                (("unsafe", None), ("nda", None)),
                                jobs=1)
    assert table.headers[0] == "defense"
    assert set(table.data) == {"unsafe", "nda"}
    unsafe = table.data["unsafe"]
    assert unsafe["hooks"]["execute"]["interventions"] == 0
    nda = table.data["nda"]
    assert nda["hooks"]["wakeup"]["interventions"] > 0
    assert "transient_uops" in nda["transient"]


def test_speculation_cli_json(capsys):
    from repro.cli import main

    assert main(["speculation", "--workload", "ossl.ecadd",
                 "--defense", "nda", "--json", "--jobs", "1"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["workloads"] == ["ossl.ecadd"]
    assert payload["defenses"]["nda"]["hooks"]["wakeup"][
        "interventions"] > 0


def test_speculation_cli_rejects_unknown_defense(capsys):
    from repro.cli import main

    assert main(["speculation", "--defense", "nope"]) == 2
    assert "unknown defenses" in capsys.readouterr().err


def test_speculation_cli_ledger_out(tmp_path, capsys):
    from repro.cli import main

    out = tmp_path / "overlay.json"
    assert main(["speculation", "--workload", "ossl.ecadd",
                 "--defense", "nda", "--jobs", "1",
                 "--ledger-out", str(out)]) == 0
    trace = json.loads(out.read_text())
    events = trace["traceEvents"] if isinstance(trace, dict) else trace
    assert any(e.get("pid") == 2 and e.get("ph") == "X" for e in events)
    assert "intervention events" in capsys.readouterr().out
