"""Distributed campaign tracing: recorder semantics, cross-process
propagation, the deterministic merger, and the zero-overhead contract."""

import inspect
import json
import os
import pathlib

import pytest

from repro.bench import RunSpec, clear_caches, run_batch, run_summary
from repro.bench import executor
from repro.metrics.spans import (
    Span,
    SpanRecorder,
    TRACE_SCHEMA,
    get_recorder,
    load_shards,
    merged_trace,
    nesting_violations,
    recording,
    set_recorder,
    write_merged_trace,
)

FAST = RunSpec(workload="ossl.ecadd")
FAST_SPTSB = RunSpec(workload="ossl.ecadd", defense="spt-sb")

GOLDEN = pathlib.Path(__file__).parent / "golden" \
    / "merged_trace_schema.json"


@pytest.fixture()
def isolated_cache(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.setenv("REPRO_PROGRESS", "0")
    clear_caches()
    yield tmp_path / "cache"
    clear_caches()


# ----------------------------------------------------------------------
# Recorder semantics
# ----------------------------------------------------------------------

def test_span_stack_nesting_and_attrs():
    recorder = SpanRecorder(process="p1")
    with recorder.span("outer", attrs={"k": 1}) as outer:
        with recorder.span("inner") as inner:
            assert recorder.current() is inner
        assert recorder.current() is outer
    assert recorder.current() is None
    assert inner.parent_id == outer.span_id
    assert inner.trace_id == outer.trace_id
    assert outer.parent_id is None
    assert outer.attrs == {"k": 1}
    # Children finish (and are recorded) before their parents.
    assert [span.name for span in recorder.spans] == ["inner", "outer"]
    assert all(span.end_s >= span.start_s for span in recorder.spans)


def test_finish_merges_attrs_and_is_idempotent_on_end():
    recorder = SpanRecorder(process="p1")
    span = recorder.start("work", push=True)
    end = recorder.now()
    span.end_s = end
    recorder.finish(span, outcome="ok")
    assert span.end_s == end  # finish never overwrites an explicit end
    assert span.attrs["outcome"] == "ok"
    assert recorder.current() is None


def test_wire_context_round_trip_across_recorders():
    broker = SpanRecorder(process="broker")
    parent = broker.start("spec")
    ctx = parent.context()
    assert set(ctx) == {"trace_id", "span_id"}
    # Ship ctx over the wire (it is plain JSON) to another process.
    worker = SpanRecorder(process="worker")
    child = worker.start("fabric.job",
                         parent=json.loads(json.dumps(ctx)))
    assert child.trace_id == parent.trace_id
    assert child.parent_id == parent.span_id
    rebuilt = Span.from_dict(child.to_dict())
    assert rebuilt == child


def test_explicit_none_parent_starts_a_new_trace():
    recorder = SpanRecorder()
    with recorder.span("outer") as outer:
        detached = recorder.start("root", parent=None)
    assert detached.trace_id != outer.trace_id
    assert detached.parent_id is None


def test_add_clamps_backwards_interval():
    recorder = SpanRecorder(process="p1")
    span = recorder.add("queue.wait", 10.0, 9.0)
    assert span.start_s == 10.0 and span.end_s == 10.0


def test_attach_contract_mirrors_registry():
    assert get_recorder() is None
    recorder = SpanRecorder()
    assert set_recorder(recorder) is None
    assert get_recorder() is recorder
    with recording(SpanRecorder()) as inner:
        assert get_recorder() is inner
    assert get_recorder() is recorder  # restored on exit
    assert set_recorder(None) is recorder


def test_adopt_merges_foreign_span_dicts():
    parent = SpanRecorder(process="parent")
    child = SpanRecorder(process="child")
    with child.span("fuzz.program"):
        pass
    assert parent.adopt(child.to_dicts()) == 1
    assert parent.spans[0].process == "child"


# ----------------------------------------------------------------------
# Shard files
# ----------------------------------------------------------------------

def test_shard_write_append_and_load(tmp_path):
    recorder = SpanRecorder(process="worker-a")
    with recorder.span("one"):
        pass
    path = recorder.write_shard(tmp_path)
    assert path is not None and path.name == "spans-worker-a.jsonl"
    with recorder.span("two"):
        pass
    recorder.write_shard(tmp_path, clock_offsets={"worker-a": 1.5})
    lines = path.read_text().splitlines()
    kinds = [json.loads(line)["kind"] for line in lines]
    # Meta once, each span once (append-only high-water mark), clocks.
    assert kinds == ["meta", "span", "span", "clock"]
    assert json.loads(lines[0])["schema"] == TRACE_SCHEMA
    spans, offsets = load_shards(tmp_path)
    assert sorted(span.name for span in spans) == ["one", "two"]
    assert offsets == {"worker-a": 1.5}


def test_load_shards_redirects_to_metrics_dir_and_skips_junk(tmp_path):
    metrics = tmp_path / "metrics"
    recorder = SpanRecorder(process="w")
    with recorder.span("kept"):
        pass
    shard = recorder.write_shard(metrics)
    with shard.open("a") as stream:
        stream.write("not json at all\n")
        stream.write('{"kind": "span", "name": "broken"}\n')  # no ids
    spans, _ = load_shards(tmp_path)  # spool root, not metrics/
    assert [span.name for span in spans] == ["kept"]


def test_write_shard_survives_unwritable_directory(tmp_path,
                                                   monkeypatch):
    recorder = SpanRecorder(process="w")
    with recorder.span("s"):
        pass

    def refuse(self, *args, **kwargs):
        raise OSError("read-only filesystem")

    monkeypatch.setattr(pathlib.Path, "mkdir", refuse)
    assert recorder.write_shard(tmp_path / "ro") is None
    monkeypatch.undo()
    # The high-water mark did not advance: a later write still ships it.
    path = recorder.write_shard(tmp_path)
    assert path is not None and '"name": "s"' in path.read_text()


# ----------------------------------------------------------------------
# The merger
# ----------------------------------------------------------------------

def _span(name, span_id, parent, start, end, process,
          trace="t" * 16, attrs=None):
    return Span(name=name, trace_id=trace, span_id=span_id,
                parent_id=parent, start_s=start, end_s=end,
                process=process, attrs=dict(attrs or {}))


def _sample_spans():
    """A two-process tree: the worker clock runs 2s ahead of the
    broker's, so its raw timestamps land outside the parent spec span
    until the merger corrects and clamps them."""
    return [
        _span("executor.batch", "b" * 16, None, 100.0, 110.0, "broker"),
        _span("spec", "c" * 16, "b" * 16, 101.0, 109.0, "broker",
              attrs={"workload": "ossl.ecadd"}),
        _span("fabric.job", "d" * 16, "c" * 16, 103.5, 112.5, "worker-a"),
        _span("sim", "e" * 16, "d" * 16, 104.0, 112.0, "worker-a"),
    ]


def test_merged_trace_is_deterministic_bytes():
    offsets = {"worker-a": 2.0}
    first = json.dumps(merged_trace(_sample_spans(), offsets),
                       sort_keys=True)
    second = json.dumps(merged_trace(list(reversed(_sample_spans())),
                                     offsets), sort_keys=True)
    assert first == second


def test_merged_trace_corrects_clocks_and_clamps_nesting():
    trace = merged_trace(_sample_spans(), {"worker-a": 2.0})
    assert nesting_violations(trace) == []
    slices = {e["args"]["span_id"]: e for e in trace["traceEvents"]
              if e.get("ph") == "X"}
    job = slices["d" * 16]
    spec = slices["c" * 16]
    # Shifted by the 2s offset: 103.5 → 101.5 relative to the epoch.
    assert job["args"]["clock_offset_s"] == 2.0
    assert job["ts"] >= spec["ts"]
    assert job["ts"] + job["dur"] <= spec["ts"] + spec["dur"]
    # The uncorrected raw end (112.5s) overran the spec span (109s), so
    # the residual was clamped and flagged.
    assert job["args"]["clamped"] is True
    # Distinct processes get distinct pids, named via metadata.
    assert spec["pid"] != job["pid"]
    assert set(trace["metadata"]["processes"].values()) == \
        {"broker", "worker-a"}


def test_merged_trace_without_offsets_keeps_raw_violations_clamped():
    trace = merged_trace(_sample_spans())
    # Even with no clock estimate, clamping enforces the invariant.
    assert nesting_violations(trace) == []


def test_merged_trace_dedups_by_span_id():
    spans = _sample_spans() + _sample_spans()
    trace = merged_trace(spans)
    slices = [e for e in trace["traceEvents"] if e.get("ph") == "X"]
    assert len(slices) == len(_sample_spans())


def test_merged_trace_orphan_and_unfinished_spans_are_kept():
    spans = [
        _span("orphan", "a" * 16, "0" * 16, 5.0, 6.0, "p"),
        Span(name="open", trace_id="t" * 16, span_id="f" * 16,
             parent_id=None, start_s=5.5, end_s=None, process="p"),
    ]
    trace = merged_trace(spans)
    slices = {e["name"]: e for e in trace["traceEvents"]
              if e.get("ph") == "X"}
    assert slices["orphan"]["dur"] == 1_000_000  # keeps its interval
    assert slices["open"]["args"]["unfinished"] is True
    assert slices["open"]["dur"] == 0


def test_merged_trace_cycle_does_not_recurse_forever():
    spans = [
        _span("a", "a" * 16, "b" * 16, 1.0, 2.0, "p"),
        _span("b", "b" * 16, "a" * 16, 1.0, 2.0, "p"),
    ]
    trace = merged_trace(spans)
    assert len([e for e in trace["traceEvents"]
                if e.get("ph") == "X"]) == 2


def test_empty_trace_shape():
    trace = merged_trace([])
    assert trace["traceEvents"] == []
    assert trace["metadata"]["schema"] == TRACE_SCHEMA


def test_concurrent_roots_get_distinct_lanes():
    spans = [
        _span("r1", "a" * 16, None, 1.0, 5.0, "p"),
        _span("r2", "b" * 16, None, 2.0, 6.0, "p"),  # overlaps r1
        _span("r3", "c" * 16, None, 7.0, 8.0, "p"),  # reuses a lane
    ]
    trace = merged_trace(spans)
    tids = {e["name"]: e["tid"] for e in trace["traceEvents"]
            if e.get("ph") == "X"}
    assert tids["r1"] != tids["r2"]
    assert tids["r3"] == tids["r1"]


def test_nesting_violations_detects_escape():
    trace = {"traceEvents": [
        {"ph": "X", "name": "parent", "ts": 0, "dur": 10,
         "args": {"span_id": "p", "parent_id": None}},
        {"ph": "X", "name": "child", "ts": 5, "dur": 10,
         "args": {"span_id": "c", "parent_id": "p"}},
    ]}
    problems = nesting_violations(trace)
    assert len(problems) == 1 and "escapes" in problems[0]


def test_write_merged_trace_round_trips(tmp_path):
    path = write_merged_trace(tmp_path / "trace.json", _sample_spans(),
                              {"worker-a": 2.0}, label="test")
    trace = json.loads(path.read_text())
    assert nesting_violations(trace) == []
    names = {e["args"]["name"] for e in trace["traceEvents"]
             if e.get("ph") == "M"}
    assert names == {"test: broker", "test: worker-a"}


# ----------------------------------------------------------------------
# Golden schema: the merged-trace JSON layout is pinned
# ----------------------------------------------------------------------

def _trace_schema(trace):
    """The shape (not the values) of a merged trace."""
    slices = [e for e in trace["traceEvents"] if e.get("ph") == "X"]
    metas = [e for e in trace["traceEvents"] if e.get("ph") == "M"]
    return {
        "schema": trace["metadata"]["schema"],
        "top_level_keys": sorted(trace),
        "displayTimeUnit": trace["displayTimeUnit"],
        "metadata_keys": sorted(trace["metadata"]),
        "process_metadata_keys": sorted(metas[0]) if metas else [],
        "slice_keys": sorted(slices[0]) if slices else [],
        "slice_required_args": sorted(
            k for k in ("trace_id", "span_id", "parent_id", "process")
            if all(k in e["args"] for e in slices)),
    }


def test_merged_trace_schema_golden():
    schema = _trace_schema(merged_trace(_sample_spans(),
                                        {"worker-a": 2.0}))
    if os.environ.get("REPRO_UPDATE_GOLDEN") == "1":
        GOLDEN.parent.mkdir(parents=True, exist_ok=True)
        GOLDEN.write_text(json.dumps(schema, indent=2, sort_keys=True)
                          + "\n")
    assert GOLDEN.exists(), (
        "golden schema missing — regenerate with "
        "REPRO_UPDATE_GOLDEN=1 PYTHONPATH=src python -m pytest "
        "tests/test_spans.py -k golden")
    assert schema == json.loads(GOLDEN.read_text()), (
        "the merged-trace layout changed; if intentional, bump "
        "TRACE_SCHEMA in repro/metrics/spans.py and regenerate the "
        "golden with REPRO_UPDATE_GOLDEN=1")


# ----------------------------------------------------------------------
# Zero-overhead contract
# ----------------------------------------------------------------------

def test_core_step_contains_no_tracing_code():
    """The per-cycle hot loop must never know spans exist: tracing
    attaches at batch/spec/run granularity only."""
    from repro.uarch.pipeline import Core

    source = inspect.getsource(Core.step)
    for needle in ("span", "Span", "recorder", "Recorder", "trace_ctx"):
        assert needle not in source
    assert "recorder" not in inspect.signature(Core.step).parameters


def test_traced_results_identical_to_detached(isolated_cache,
                                              monkeypatch, tmp_path):
    detached = run_summary(FAST)
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache2"))
    clear_caches()
    with recording(SpanRecorder()) as recorder:
        traced = run_summary(FAST)
    assert traced == detached
    assert {span.name for span in recorder.spans} >= \
        {"cache.lookup", "sim", "cache.write"}


# ----------------------------------------------------------------------
# Executor instrumentation: batch, cache hits, serial and pool paths
# ----------------------------------------------------------------------

def test_serial_batch_records_spec_spans(isolated_cache):
    with recording(SpanRecorder()) as recorder:
        run_batch([FAST, FAST_SPTSB], jobs=1)
    by_name = {}
    for span in recorder.spans:
        by_name.setdefault(span.name, []).append(span)
    batch = by_name["executor.batch"][0]
    assert batch.attrs["specs"] == 2
    assert batch.attrs["simulated"] == 2
    specs = by_name["spec"]
    assert len(specs) == 2
    assert all(span.parent_id == batch.span_id for span in specs)
    assert {span.attrs["defense"] for span in specs} == \
        {"unsafe", "spt-sb"}


def test_cache_hits_record_zero_or_short_spec_spans(isolated_cache):
    run_batch([FAST], jobs=1)  # populate memory + disk caches
    with recording(SpanRecorder()) as recorder:
        run_batch([FAST], jobs=1)
    spec = [s for s in recorder.spans if s.name == "spec"][0]
    assert spec.attrs["cache"] == "memory"
    assert spec.duration_s == 0.0
    from repro.bench.executor import clear_summary_cache

    clear_summary_cache()
    with recording(SpanRecorder()) as recorder:
        run_batch([FAST], jobs=1)
    spec = [s for s in recorder.spans if s.name == "spec"][0]
    assert spec.attrs["cache"] == "disk"


def test_pool_spans_propagate_to_workers(isolated_cache):
    """The canonical cross-process assertion: worker.run spans recorded
    in pool children nest (via the wire context) under the parent's
    attempt spans, which nest under spec spans, under the batch."""
    with recording(SpanRecorder()) as recorder:
        run_batch([FAST, FAST_SPTSB], jobs=2)
    spans = {span.span_id: span for span in recorder.spans}
    batch = [s for s in spans.values() if s.name == "executor.batch"][0]
    specs = [s for s in spans.values() if s.name == "spec"]
    attempts = [s for s in spans.values() if s.name == "attempt"]
    workers = [s for s in spans.values() if s.name == "worker.run"]
    sims = [s for s in spans.values() if s.name == "sim"]
    assert len(specs) == len(attempts) == len(workers) == len(sims) == 2
    for spec in specs:
        assert spec.parent_id == batch.span_id
    attempt_ids = {span.span_id for span in attempts}
    spec_ids = {span.span_id for span in specs}
    for attempt in attempts:
        assert attempt.parent_id in spec_ids
        assert attempt.attrs["attempt"] == 1
    for worker in workers:
        assert worker.parent_id in attempt_ids
        assert worker.process != batch.process  # recorded child-side
        assert worker.trace_id == batch.trace_id
    for sim in sims:
        assert spans[sim.parent_id].name == "worker.run"
    # The merged timeline of the whole tree is well-nested.
    assert nesting_violations(merged_trace(recorder.spans)) == []


def _crash_once_traced_worker(spec, timeout_s, trace_ctx=None):
    marker = pathlib.Path(os.environ["REPRO_TEST_MARKER_DIR"]) \
        / spec.workload.replace("/", "_")
    if not marker.exists():
        marker.write_text("crashed once")
        os._exit(3)
    return executor._worker_run(spec, timeout_s, trace_ctx)


def test_trace_survives_broken_pool_rebuild(isolated_cache, monkeypatch,
                                            tmp_path):
    """A worker crash breaks the pool; the rebuilt pool's retry attempt
    must parent under the *same* spec span, with attempt attrs counting
    up and the failed attempt marked."""
    markers = tmp_path / "markers"
    markers.mkdir()
    monkeypatch.setenv("REPRO_TEST_MARKER_DIR", str(markers))
    with recording(SpanRecorder()) as recorder:
        results = run_batch([FAST, FAST_SPTSB], jobs=2, retries=3,
                            worker=_crash_once_traced_worker)
    assert len(results) == 2
    specs = [s for s in recorder.spans if s.name == "spec"]
    attempts = [s for s in recorder.spans if s.name == "attempt"]
    assert len(specs) == 2
    for spec in specs:
        mine = sorted((a for a in attempts
                       if a.parent_id == spec.span_id),
                      key=lambda a: a.attrs["attempt"])
        # Every spec crashed its first execution, so success took >= 2
        # submissions, all under one spec span, numbered contiguously.
        assert len(mine) >= 2
        assert [a.attrs["attempt"] for a in mine] == \
            list(range(1, len(mine) + 1))
        assert mine[-1].attrs.get("error") is None
        assert all(a.attrs.get("error") for a in mine[:-1])


def _legacy_two_arg_worker(spec, timeout_s):
    return executor._worker_run(spec, timeout_s)


def test_untraced_pool_accepts_legacy_two_arg_workers(isolated_cache):
    """Injected workers with the pre-tracing 2-argument signature keep
    working when no recorder is attached (the trace_ctx argument is
    only passed to the pool while tracing)."""
    results = run_batch([FAST, FAST_SPTSB], jobs=2,
                        worker=_legacy_two_arg_worker)
    assert len(results) == 2


def test_worker_run_traced_returns_span_payloads(isolated_cache):
    ctx = {"trace_id": "a" * 16, "span_id": "b" * 16}
    outcome = executor._worker_run(FAST, None, ctx)
    assert len(outcome) == 5
    status, _, _, _, payloads = outcome
    assert status == "ok"
    run = [p for p in payloads if p["name"] == "worker.run"][0]
    assert run["trace_id"] == "a" * 16
    assert run["parent_id"] == "b" * 16
    assert run["attrs"]["status"] == "ok"
    assert get_recorder() is None  # restored after the call


def test_worker_run_untraced_keeps_four_tuple(isolated_cache):
    outcome = executor._worker_run(FAST, None)
    assert len(outcome) == 4


# ----------------------------------------------------------------------
# Fuzzing campaign instrumentation
# ----------------------------------------------------------------------

def _campaign_config(n_programs=2):
    from repro.bench.runner import DEFENSES
    from repro.contracts import Contract
    from repro.fuzzing import CampaignConfig

    return CampaignConfig(defense_factory=DEFENSES["unsafe"],
                          contract=Contract.UNPROT_SEQ,
                          instrumentation="rand",
                          n_programs=n_programs, pairs_per_program=1,
                          program_size=20, seed=11,
                          defense_name="unsafe")


def test_campaign_serial_records_program_spans():
    from repro.fuzzing import run_campaign

    with recording(SpanRecorder()) as recorder:
        run_campaign(_campaign_config(), jobs=1)
    campaign = [s for s in recorder.spans
                if s.name == "fuzz.campaign"][0]
    programs = [s for s in recorder.spans if s.name == "fuzz.program"]
    assert len(programs) == 2
    assert all(p.parent_id == campaign.span_id for p in programs)
    from repro.fuzzing.campaign import _program_seeds

    assert sorted(p.attrs["program_seed"] for p in programs) == \
        sorted(_program_seeds(_campaign_config()))
    assert campaign.attrs["tests"] >= 1


def test_campaign_pool_adopts_program_spans():
    from repro.fuzzing import run_campaign

    detached = run_campaign(_campaign_config(3), jobs=2)
    with recording(SpanRecorder()) as recorder:
        traced = run_campaign(_campaign_config(3), jobs=2)
    assert traced.to_dict() == detached.to_dict()
    campaign = [s for s in recorder.spans
                if s.name == "fuzz.campaign"][0]
    programs = [s for s in recorder.spans if s.name == "fuzz.program"]
    assert len(programs) == 3
    assert all(p.parent_id == campaign.span_id for p in programs)
    assert any(p.process != campaign.process for p in programs)


# ----------------------------------------------------------------------
# Reporter correlation
# ----------------------------------------------------------------------

def test_reporter_events_carry_trace_ids(tmp_path):
    from repro.forensics import CampaignReporter

    with recording(SpanRecorder()) as recorder:
        with recorder.span("fuzz.cli") as root:
            with CampaignReporter(tmp_path / "events.jsonl") as reporter:
                reporter._emit("probe", value=1)
    event = json.loads((tmp_path / "events.jsonl").read_text())
    assert event["trace_id"] == root.trace_id
    assert event["span_id"] == root.span_id


def test_reporter_events_untouched_without_recorder(tmp_path):
    from repro.forensics import CampaignReporter

    with CampaignReporter(tmp_path / "events.jsonl") as reporter:
        reporter._emit("probe", value=1)
    event = json.loads((tmp_path / "events.jsonl").read_text())
    assert "trace_id" not in event and "span_id" not in event
