"""ProtCC pass outputs, anchored on the paper's Fig. 3 example."""

import random

import pytest

from repro.arch import Memory, run_program
from repro.isa import Op, SP, assemble
from repro.protcc import compile_program

FIG3 = """
main:
    movi r0, 0x3000
    movi r3, 0x4000
    call foo
    halt
.func foo
foo:
    load r1, [r0]        ; x = *p
    movi r2, 0           ; y = 0
    cmpi r1, 0
    blt skip
    load r2, [r3 + r1]   ; y = A[x]
skip:
    ret
.endfunc
"""


def fig3_compiled(clazz):
    program = assemble(FIG3).linked()
    compiled = compile_program(program, {"foo": clazz},
                               default_class="arch")
    foo = compiled.program.function_named("foo")
    body = compiled.program.instructions[foo.start:foo.end]
    return compiled, body


def test_arch_is_noop():
    compiled, body = fig3_compiled("arch")
    assert compiled.prot_prefixes == 0
    assert compiled.inserted_moves == 0


def test_cts_matches_paper_prose():
    # SV-A2: Rp, Rx, Ry(line 3) public; Ry(line 6) secret.
    compiled, body = fig3_compiled("cts")
    loads = [i for i in body if i.op is Op.LOAD]
    assert not loads[0].prot          # x feeds a transmitter: public
    assert loads[1].prot              # y = A[x] is secret-typed
    movis = [i for i in body if i.op is Op.MOVI]
    assert not movis[0].prot          # y = 0 publicly typed
    identity = [i for i in body if i.op is Op.MOV and i.rd == i.ra]
    assert any(m.rd == 0 for m in identity)  # unprotect argument Rp
    assert any(m.rd == 3 for m in identity)  # unprotect argument A-base


def test_ct_matches_paper_prose():
    # SV-A3: Rp bound-to-leak at entry; Rx declassified on the
    # not-taken edge; the final load's output protected.
    compiled, body = fig3_compiled("ct")
    loads = [i for i in body if i.op is Op.LOAD]
    assert loads[0].prot              # Rx protected at definition
    assert loads[1].prot              # Ry protected
    identity = [i for i in body if i.op is Op.MOV and i.rd == i.ra]
    assert any(m.rd == 0 for m in identity)   # entry: Rp
    assert any(m.rd == 1 for m in identity)   # edge: Rx newly leak-bound
    movis = [i for i in body if i.op is Op.MOVI]
    assert not movis[0].prot          # y = 0 is constant (past-leaked)


def test_unr_protects_everything_but_derived_constants():
    compiled, body = fig3_compiled("unr")
    loads = [i for i in body if i.op is Op.LOAD]
    assert all(i.prot for i in loads)
    movis = [i for i in body if i.op is Op.MOVI]
    assert not movis[0].prot          # constant zero is unprotectable
    assert compiled.inserted_moves == 0


@pytest.mark.parametrize("clazz", ["arch", "cts", "ct", "unr", "rand"])
def test_semantics_preserved(clazz):
    program = assemble(FIG3).linked()
    mem = Memory()
    mem.write_word(0x3000, 40)
    for index in range(64):
        mem.write_word(0x4000 + index * 8, index * 3)
    base = run_program(program, mem)
    compiled = compile_program(program, {"foo": clazz},
                               default_class="arch",
                               rng=random.Random(1))
    result = run_program(compiled.program, mem)
    assert result.final_regs == base.final_regs
    assert result.halt_reason == base.halt_reason


def test_cts_multi_dest_fixup():
    # A PROT-prefixed POP with a publicly-typed SP gets a declassifying
    # identity move for SP right after it.
    src = """
    main:
        movi sp, 0x8000
        call f
        halt
    .func f
    f:
        push r1
        pop r2
        store [r3], r2
        ret
    .endfunc
    """
    program = assemble(src).linked()
    compiled = compile_program(program, {"f": "cts"}, default_class="arch")
    insts = compiled.program.instructions
    pops = [i for i, inst in enumerate(insts) if inst.op is Op.POP]
    if insts[pops[0]].prot:
        follow = insts[pops[0] + 1]
        assert follow.op is Op.MOV and follow.rd == follow.ra == SP


def test_rand_pass_deterministic():
    program = assemble(FIG3).linked()
    a = compile_program(program, "rand", rng=random.Random(7))
    b = compile_program(program, "rand", rng=random.Random(7))
    assert a.program.instructions == b.program.instructions


def test_ct_branch_flags_unprotected():
    # A compare whose flags feed only a branch leaves flags
    # bound-to-leak: unprefixed (threat model: branches fully transmit
    # their flags operand).
    compiled, body = fig3_compiled("ct")
    cmps = [i for i in body if i.op is Op.CMPI]
    assert not cmps[0].prot
