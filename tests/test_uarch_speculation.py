"""Speculation-state queries (paper SII-B2): ATCOMMIT vs CONTROL."""

from repro.isa import assemble
from repro.uarch import Core, P_CORE
from repro.uarch.config import SpeculationModel


def make_core(model, src, memory=None):
    config = P_CORE.replace(speculation_model=model)
    return Core(assemble(src).linked(), None, config, memory)


SRC = """
    movi r1, 0x9000
    load r2, [r1]
    cmpi r2, 0
    beq out
    addi r3, r3, 1
out:
    halt
"""


def test_atcommit_head_is_nonspeculative():
    core = make_core(SpeculationModel.ATCOMMIT, SRC)
    # The front end takes frontend_delay cycles to fill the ROB.
    for _ in range(8):
        core.step()
    head = core.rob.head
    assert head is not None
    assert core.seq_nonspeculative(head.seq)
    tail = core.rob.entries[-1]
    if tail is not head:
        assert not core.seq_nonspeculative(tail.seq)


def test_atcommit_committed_sequences_nonspeculative():
    core = make_core(SpeculationModel.ATCOMMIT, SRC)
    core.run()
    assert core.seq_nonspeculative(0)


def test_atcommit_empty_rob_everything_nonspeculative():
    core = make_core(SpeculationModel.ATCOMMIT, "halt\n")
    assert core.seq_nonspeculative(12345)


def test_control_branchless_code_never_speculative():
    src = "movi r1, 1\nadd r2, r1, r1\nmul r3, r2, r2\nhalt\n"
    core = make_core(SpeculationModel.CONTROL, src)
    for _ in range(8):
        core.step()
    # With no branches in flight, everything counts as non-speculative.
    for uop in core.rob:
        assert core.seq_nonspeculative(uop.seq)


def test_control_pending_branch_shields_younger():
    core = make_core(SpeculationModel.CONTROL, SRC)
    for _ in range(7):
        core.step()
    branches = [u for u in core.rob if u.is_branch and not u.resolved]
    if branches:
        branch = branches[0]
        assert not core.seq_nonspeculative(branch.seq + 1)
        assert core.seq_nonspeculative(branch.seq)


def test_control_speculation_query_is_pure():
    # Regression: the CONTROL-model query used to prune resolved
    # branches from the in-flight list *inside* the read-only query,
    # so asking "is seq X speculative?" mutated speculation state.
    core = make_core(SpeculationModel.CONTROL, SRC)
    for _ in range(50):
        core.step()
        if core._inflight_branches:
            break
    assert core._inflight_branches, "expected an in-flight branch"
    front = core._inflight_branches[0]
    front.resolved = True  # resolved but not yet pruned
    before = list(core._inflight_branches)
    core.seq_nonspeculative(front.seq + 100)
    core.seq_nonspeculative(0)
    assert list(core._inflight_branches) == before
    front.resolved = False


def test_control_query_skips_resolved_branches():
    core = make_core(SpeculationModel.CONTROL, SRC)
    for _ in range(50):
        core.step()
        if core._inflight_branches:
            break
    front = core._inflight_branches[0]
    assert not core.seq_nonspeculative(front.seq + 1)
    front.resolved = True
    # With the only branch resolved, younger sequences are shielded by
    # nothing and the query must say non-speculative.
    assert core.seq_nonspeculative(front.seq + 1)
    front.resolved = False


def test_control_cheaper_than_atcommit_under_sptsb():
    from repro.defenses import SPTSB
    from repro.uarch import simulate
    from repro.workloads import get_workload

    w = get_workload("ossl.dh")
    atc = simulate(w.program, SPTSB(),
                   P_CORE.replace(
                       speculation_model=SpeculationModel.ATCOMMIT),
                   w.memory, w.regs)
    ctl = simulate(w.program, SPTSB(),
                   P_CORE.replace(
                       speculation_model=SpeculationModel.CONTROL),
                   w.memory, w.regs)
    assert ctl.cycles <= atc.cycles
