"""Hypothesis property tests on core data structures and invariants."""

from hypothesis import given, settings, strategies as st

from repro.arch import Memory
from repro.arch.semantics import MASK64, alu, div_timing_class
from repro.isa import Cond, Op, encode_flags, eval_cond
from repro.uarch import Cache
from repro.uarch.config import CacheConfig

u64 = st.integers(min_value=0, max_value=MASK64)


@given(addr=st.integers(min_value=0, max_value=(1 << 32) - 16), value=u64)
def test_memory_word_roundtrip(addr, value):
    memory = Memory()
    memory.write_word(addr, value)
    assert memory.read_word(addr) == value


@given(addr=st.integers(min_value=0, max_value=(1 << 32) - 16), value=u64)
def test_memory_bytes_compose_word(addr, value):
    memory = Memory()
    memory.write_word(addr, value)
    recomposed = sum(memory.read_byte(addr + i) << (8 * i)
                     for i in range(8))
    assert recomposed == value


@given(a=u64, b=u64)
def test_alu_results_fit_64_bits(a, b):
    for op in (Op.ADD, Op.SUB, Op.MUL, Op.AND, Op.OR, Op.XOR, Op.SHL,
               Op.SHR, Op.DIV, Op.REM):
        assert 0 <= alu(op, a, b) <= MASK64


@given(a=u64, b=u64)
def test_div_rem_identity(a, b):
    if b != 0:
        assert alu(Op.DIV, a, b) * b + alu(Op.REM, a, b) == a


@given(a=u64, b=u64)
def test_flags_trichotomy(a, b):
    flags = encode_flags(a, b)
    eq = eval_cond(Cond.EQ, flags)
    lt = eval_cond(Cond.LT, flags)
    gt = eval_cond(Cond.GT, flags)
    assert [eq, lt, gt].count(True) == 1
    assert eval_cond(Cond.LE, flags) == (lt or eq)
    assert eval_cond(Cond.GE, flags) == (not lt)
    assert eval_cond(Cond.NE, flags) == (not eq)
    assert eval_cond(Cond.B, flags) == (a < b)


@given(a=u64, b=u64)
def test_div_timing_bounded(a, b):
    assert 0 <= div_timing_class(a, b) <= 9


@settings(max_examples=30)
@given(addresses=st.lists(st.integers(min_value=0, max_value=1 << 20),
                          min_size=1, max_size=200))
def test_cache_capacity_invariant(addresses):
    cache = Cache(CacheConfig(4 * 64, 2, 3))  # 2 sets x 2 ways
    for addr in addresses:
        cache.lookup(addr)
        cache.fill(addr)
    assert len(cache.tag_state()) <= 4
    # Most recently filled line is always present.
    assert cache.contains(addresses[-1])


@settings(max_examples=30)
@given(addresses=st.lists(st.integers(min_value=0, max_value=1 << 16),
                          min_size=2, max_size=100))
def test_cache_hit_after_fill(addresses):
    cache = Cache(CacheConfig(64 * 64, 4, 3))
    for addr in addresses:
        cache.fill(addr)
        assert cache.lookup(addr)
