"""Hypothesis property tests on core data structures and invariants."""

from hypothesis import given, settings, strategies as st

from repro.arch import Memory
from repro.arch.semantics import MASK64, alu, div_timing_class
from repro.isa import Cond, Op, encode_flags, eval_cond
from repro.uarch import Cache
from repro.uarch.config import CacheConfig

u64 = st.integers(min_value=0, max_value=MASK64)


@given(addr=st.integers(min_value=0, max_value=(1 << 32) - 16), value=u64)
def test_memory_word_roundtrip(addr, value):
    memory = Memory()
    memory.write_word(addr, value)
    assert memory.read_word(addr) == value


@given(addr=st.integers(min_value=0, max_value=(1 << 32) - 16), value=u64)
def test_memory_bytes_compose_word(addr, value):
    memory = Memory()
    memory.write_word(addr, value)
    recomposed = sum(memory.read_byte(addr + i) << (8 * i)
                     for i in range(8))
    assert recomposed == value


@given(a=u64, b=u64)
def test_alu_results_fit_64_bits(a, b):
    for op in (Op.ADD, Op.SUB, Op.MUL, Op.AND, Op.OR, Op.XOR, Op.SHL,
               Op.SHR, Op.DIV, Op.REM):
        assert 0 <= alu(op, a, b) <= MASK64


@given(a=u64, b=u64)
def test_div_rem_identity(a, b):
    if b != 0:
        assert alu(Op.DIV, a, b) * b + alu(Op.REM, a, b) == a


@given(a=u64, b=u64)
def test_flags_trichotomy(a, b):
    flags = encode_flags(a, b)
    eq = eval_cond(Cond.EQ, flags)
    lt = eval_cond(Cond.LT, flags)
    gt = eval_cond(Cond.GT, flags)
    assert [eq, lt, gt].count(True) == 1
    assert eval_cond(Cond.LE, flags) == (lt or eq)
    assert eval_cond(Cond.GE, flags) == (not lt)
    assert eval_cond(Cond.NE, flags) == (not eq)
    assert eval_cond(Cond.B, flags) == (a < b)


@given(a=u64, b=u64)
def test_div_timing_bounded(a, b):
    assert 0 <= div_timing_class(a, b) <= 9


@settings(max_examples=30)
@given(addresses=st.lists(st.integers(min_value=0, max_value=1 << 20),
                          min_size=1, max_size=200))
def test_cache_capacity_invariant(addresses):
    cache = Cache(CacheConfig(4 * 64, 2, 3))  # 2 sets x 2 ways
    for addr in addresses:
        cache.lookup(addr)
        cache.fill(addr)
    assert len(cache.tag_state()) <= 4
    # Most recently filled line is always present.
    assert cache.contains(addresses[-1])


@settings(max_examples=30)
@given(addresses=st.lists(st.integers(min_value=0, max_value=1 << 16),
                          min_size=2, max_size=100))
def test_cache_hit_after_fill(addresses):
    cache = Cache(CacheConfig(64 * 64, 4, 3))
    for addr in addresses:
        cache.fill(addr)
        assert cache.lookup(addr)


# ======================================================================
# Pipeline invariants on seeded random programs, audited live on both
# the fast-path and the reference engine.
# ======================================================================

import pytest

from repro.fuzzing.generator import generate_program
from repro.fuzzing.inputs import generate_input
from repro.uarch.config import P_CORE
from repro.uarch.pipeline import Core

import random as _random


class AuditCore(Core):
    """A Core that checks structural invariants as it runs:

    * ROB commits strictly in sequence (rename) order.
    * Store-to-load forwarding never crosses a younger conflicting
      store: the forwarded store is older than the load, writes the
      same word, and no resolved store in between overlaps the load.
    * A squash leaves no live wrong-path uop in the IQ, the LSQ, or
      the fetch buffer.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.commit_seqs = []

    def _commit_uop(self, uop):
        if self.commit_seqs:
            assert uop.seq > self.commit_seqs[-1], \
                f"out-of-order commit: {uop.seq} after {self.commit_seqs[-1]}"
        self.commit_seqs.append(uop.seq)
        super()._commit_uop(uop)

    def _execute_load(self, uop):
        latency = super()._execute_load(uop)
        store = uop.forwarded_from
        if store is not None:
            assert store.seq < uop.seq, "forwarding from a younger store"
            assert store.mem_addr == uop.mem_addr, \
                "forwarding from a different word"
            for other in self.lsq.stores:
                if (store.seq < other.seq < uop.seq
                        and other.mem_addr is not None
                        and abs(other.mem_addr - uop.mem_addr) < 8):
                    raise AssertionError(
                        "forwarding crossed an intervening conflicting "
                        f"store (seqs {store.seq} < {other.seq} "
                        f"< {uop.seq})")
        return latency

    def _squash_after(self, branch):
        super()._squash_after(branch)
        for queue_name in ("loads", "stores"):
            for uop in getattr(self.lsq, queue_name):
                assert uop.seq <= branch.seq or uop.squashed, \
                    f"wrong-path uop {uop.seq} left in LSQ {queue_name}"
        for _, uop in self._ready_q:
            assert uop.seq <= branch.seq or uop.squashed, \
                f"wrong-path uop {uop.seq} live in ready queue"
        for uop in self._blocked:
            assert uop.seq <= branch.seq or uop.squashed, \
                f"wrong-path uop {uop.seq} live in blocked list"
        assert not self.fetch_buffer, "fetch buffer not cleared by squash"


def _audit_run(seed, defense_name, fast):
    from repro.bench.runner import DEFENSES
    from repro.protcc import compile_program

    program = generate_program(seed, 40)
    compiled = compile_program(
        program, "arch", rng=_random.Random(seed ^ 0xC0DE)).program
    test_input = generate_input(_random.Random(seed ^ 0xF00D))
    core = AuditCore(compiled, DEFENSES[defense_name](), P_CORE,
                     test_input.build_memory(), test_input.build_regs(),
                     fast_path=fast)
    result = core.run()
    # Every committed uop went through the audited commit path.
    assert len(core.commit_seqs) == result.stats["committed_uops"]
    return result


@pytest.mark.parametrize("defense_name", ["unsafe", "track", "spt"])
@pytest.mark.parametrize("seed", [3, 17, 91])
def test_pipeline_invariants_fast_engine(defense_name, seed):
    _audit_run(seed, defense_name, fast=True)


@pytest.mark.parametrize("defense_name", ["unsafe", "track", "spt"])
@pytest.mark.parametrize("seed", [3, 17, 91])
def test_pipeline_invariants_reference_engine(defense_name, seed):
    _audit_run(seed, defense_name, fast=False)


def test_pipeline_invariants_on_spectre_gadget():
    from repro.fixtures import build

    for fast in (True, False):
        program, memory = build("v1-gadget")
        core = AuditCore(program, None, P_CORE, memory, fast_path=fast)
        result = core.run()
        assert result.halt_reason == "halt"
        assert core.commit_seqs == sorted(core.commit_seqs)
