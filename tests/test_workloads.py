"""Workload registry: every benchmark halts, matches the sequential
machine on the O3 core, and survives its own ProtCC instrumentation."""

import pytest

from repro.arch import run_program
from repro.protcc import CLASSES, compile_program
from repro.uarch import simulate
from repro.workloads import Workload, get_workload, workload_names

ALL = workload_names()


def test_registry_nonempty_and_suites():
    assert len(ALL) >= 38
    suites = {get_workload(n).suite for n in ALL}
    assert suites == {"spec2017", "parsec", "parsec-mt", "arch-wasm",
                      "cts-crypto", "ct-crypto", "unr-crypto", "nginx"}


def test_suite_filter():
    nginx = workload_names("nginx")
    assert all(name.startswith("nginx.") for name in nginx)
    assert len(nginx) == 5


def test_unknown_workload():
    with pytest.raises(KeyError):
        get_workload("quake3")


@pytest.mark.parametrize("name", ALL)
def test_workload_halts_and_matches_o3(name):
    w = get_workload(name)
    seq = run_program(w.program, w.memory, w.regs)
    assert seq.halt_reason == "halt", name
    assert 200 < seq.instruction_count < 60_000, name
    hw = simulate(w.program, None, memory=w.memory, regs=w.regs)
    assert hw.halt_reason == "halt"
    assert hw.final_regs == seq.final_regs
    assert hw.committed_pcs == [s.pc for s in seq.steps]
    assert hw.memory == seq.memory


@pytest.mark.parametrize("name", ALL)
def test_workload_survives_own_instrumentation(name):
    w = get_workload(name)
    seq = run_program(w.program, w.memory, w.regs)
    compiled = compile_program(w.program, w.classes)
    result = run_program(compiled.program, w.memory, w.regs)
    assert result.final_regs == seq.final_regs, name
    assert result.halt_reason == "halt"


def test_classes_valid():
    for name in ALL:
        w = get_workload(name)
        if isinstance(w.classes, str):
            assert w.classes in CLASSES
        else:
            assert set(w.classes.values()) <= set(CLASSES)
            assert w.is_multiclass


def test_baselines_assigned():
    for name in ALL:
        assert get_workload(name).baseline in ("STT", "SPT", "SPT-SB")


def test_workloads_cached():
    assert get_workload("mcf.s") is get_workload("mcf.s")
