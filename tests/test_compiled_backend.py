"""The compiled simulation backend: engine selection, artifact-cache
invalidation, fallback behaviour, and metrics.

Cycle-identity of the compiled engine against the reference
interpreter is proven by the three-way differential harness
(``tests/test_equivalence.py`` runs a grid subset; ``repro diff`` and
the CI ``diff-threeway`` job run the full sweep).  This module covers
everything *around* that proof: that the content-addressed compile
cache misses exactly when it must, that auto-selection and the
documented fallbacks pick the right engine, and that the backend
reports its compile costs.
"""

import pytest

from repro.bench.runner import DEFENSES
from repro.defenses import ProtDelay, ProtTrack, Unsafe
from repro.fixtures import build
from repro.metrics import MetricsRegistry, attached
from repro.uarch import P_CORE, simulate
from repro.uarch.compiled import (
    CompiledCore,
    CompileUnsupported,
    clear_compile_cache,
    compile_key,
    compile_step,
    generate_source,
)
from repro.uarch.pipeline import ENGINES
from repro.uarch.refcore import parse_engines, run_engines
from repro.uarch.trace import PipelineTracer


@pytest.fixture()
def v1_program():
    return build("v1-gadget")[0]


@pytest.fixture(autouse=True)
def _fresh_compile_cache(tmp_path, monkeypatch):
    """Isolate every test from the repo's persistent artifact cache."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    clear_compile_cache()
    yield
    clear_compile_cache()


# ---------------------------------------------------------------------
# Cache-key invalidation: anything behavioural must miss.
# ---------------------------------------------------------------------

def test_compile_key_stable_for_equal_triples(v1_program):
    key_a = compile_key(v1_program, P_CORE, ProtTrack())
    key_b = compile_key(v1_program, P_CORE, ProtTrack())
    assert key_a == key_b


def test_compile_key_misses_on_simulator_source_change(
        v1_program, monkeypatch):
    before = compile_key(v1_program, P_CORE, Unsafe())
    monkeypatch.setenv("REPRO_CACHE_SALT", "edited-pipeline.py")
    after = compile_key(v1_program, P_CORE, Unsafe())
    assert before != after


def test_compile_key_misses_on_defense_param_change(v1_program):
    keys = {
        compile_key(v1_program, P_CORE, ProtTrack()),
        compile_key(v1_program, P_CORE, ProtTrack(predictor_entries=64)),
        compile_key(v1_program, P_CORE, ProtTrack(use_predictor=False)),
        compile_key(v1_program, P_CORE, ProtDelay()),
        compile_key(v1_program, P_CORE, ProtDelay(selective_wakeup=False)),
    }
    assert len(keys) == 5, "behavioural defense params must not share keys"


def test_compile_key_misses_on_core_config_change(v1_program):
    keys = {
        compile_key(v1_program, P_CORE, Unsafe()),
        compile_key(v1_program, P_CORE.replace(rob_size=24), Unsafe()),
        compile_key(v1_program, P_CORE.replace(width=2), Unsafe()),
        compile_key(v1_program, P_CORE.replace(buggy_squash_notify=True),
                    Unsafe()),
    }
    assert len(keys) == 4, "core-config fields must not share keys"


def test_compile_key_misses_on_program_change(v1_program):
    other = build("div-channel")[0]
    assert compile_key(v1_program, P_CORE, Unsafe()) \
        != compile_key(other, P_CORE, Unsafe())


# ---------------------------------------------------------------------
# compile_step: memory cache, disk artifacts, counters.
# ---------------------------------------------------------------------

def test_compile_step_cache_traffic(v1_program, tmp_path):
    registry = MetricsRegistry()
    with attached(registry):
        first = compile_step(v1_program, P_CORE, ProtTrack())
        second = compile_step(v1_program, P_CORE, ProtTrack())
        # Drop only the in-process cache: the next call must reload the
        # on-disk artifact instead of regenerating the source.
        clear_compile_cache()
        third = compile_step(v1_program, P_CORE, ProtTrack())
    counters = registry.snapshot()["counters"]
    assert counters["uarch.compile_cache_misses"] == 1
    assert counters["uarch.compile_cache_hits"] == 1
    assert counters["uarch.compile_cache_disk_hits"] == 1
    assert first is second  # memory hit returns the same function
    assert callable(third)
    key = compile_key(v1_program, P_CORE, ProtTrack())
    artifact = tmp_path / "cache" / "compiled" / f"{key}.py"
    assert artifact.is_file(), "miss must persist the generated source"
    assert "def run(core):" in artifact.read_text()


def test_compile_timer_observed(v1_program):
    registry = MetricsRegistry()
    with attached(registry):
        compile_step(v1_program, P_CORE, Unsafe())
    timers = registry.snapshot()["timers"]
    assert timers["uarch.compile_seconds"]["count"] == 1


# ---------------------------------------------------------------------
# Engine selection and fallbacks.
# ---------------------------------------------------------------------

def _compiled_runs(registry) -> int:
    return registry.snapshot()["counters"].get("uarch.compiled_runs", 0)


def test_auto_engine_picks_compiled():
    program, memory = build("v1-gadget")
    registry = MetricsRegistry()
    with attached(registry):
        result = simulate(program, ProtTrack(), P_CORE, memory)
    assert result.halt_reason == "halt"
    assert _compiled_runs(registry) == 1


def test_tracer_pins_the_interpreter():
    program, memory = build("v1-gadget")
    registry = MetricsRegistry()
    tracer = PipelineTracer()
    with attached(registry):
        traced = simulate(program, ProtTrack(), P_CORE, memory,
                          tracer=tracer)
    assert _compiled_runs(registry) == 0
    assert tracer.uops, "the tracer must actually have recorded events"
    assert traced.halt_reason == "halt"


def test_no_compile_env_pins_the_interpreter(monkeypatch):
    program, memory = build("v1-gadget")
    monkeypatch.setenv("REPRO_NO_COMPILE", "1")
    registry = MetricsRegistry()
    with attached(registry):
        simulate(program, ProtTrack(), P_CORE, memory)
    assert _compiled_runs(registry) == 0


def test_explicit_compiled_engine_with_tracer_falls_back():
    program, memory = build("v1-gadget")
    tracer = PipelineTracer()
    fallback = simulate(program, ProtTrack(), P_CORE, memory,
                        tracer=tracer, engine="compiled")
    reference = simulate(program, ProtTrack(), P_CORE,
                         build("v1-gadget")[1], engine="refcore")
    assert fallback.cycles == reference.cycles
    assert fallback.stats == reference.stats


def test_compiled_core_rejects_tracer():
    program, memory = build("v1-gadget")
    with pytest.raises(CompileUnsupported):
        CompiledCore(program, ProtTrack(), P_CORE, memory,
                     tracer=PipelineTracer())


def test_unknown_engine_rejected(v1_program):
    with pytest.raises(ValueError):
        simulate(v1_program, Unsafe(), P_CORE, engine="hyperspeed")


def test_engines_constant_covers_cli_choices():
    assert set(ENGINES) == {"auto", "ref", "refcore", "fast", "compiled"}


def test_parse_engines():
    assert parse_engines("refcore,compiled") == ("refcore", "compiled")
    with pytest.raises(ValueError):
        parse_engines("refcore,warp")
    with pytest.raises(ValueError):
        parse_engines("compiled")  # a single non-reference engine


def test_compiled_cycles_per_sec_gauge():
    program, memory = build("v1-gadget")
    registry = MetricsRegistry()
    with attached(registry):
        simulate(program, Unsafe(), P_CORE, memory, engine="compiled")
    gauges = registry.snapshot()["gauges"]
    assert gauges.get("uarch.compiled_cycles_per_sec", 0) > 0
    assert gauges.get("uarch.sim_cycles_per_sec", 0) > 0


# ---------------------------------------------------------------------
# Three-way equivalence smoke (the full sweep lives in `repro diff`).
# ---------------------------------------------------------------------

@pytest.mark.parametrize("defense", ["unsafe", "track", "delay", "stt"])
def test_threeway_fixture_equivalence(defense):
    program, _ = build("v1-gadget")
    _, report = run_engines(
        program, DEFENSES[defense],
        memory_factory=lambda: build("v1-gadget")[1],
        label=f"v1-gadget/{defense}")
    assert report.identical, report.render()


def test_generated_source_is_deterministic(v1_program):
    first = generate_source(v1_program, P_CORE, ProtTrack())
    second = generate_source(v1_program, P_CORE, ProtTrack())
    assert first == second
