"""Multi-core simulation (paper SVIII-A4): shared memory + L3, private
L1/L2 with write-invalidation, hybrid P/E scheduling."""

import pytest

from repro.arch import run_program
from repro.arch.executor import STACK_TOP
from repro.defenses import ProtTrack, SPTSB, Unsafe
from repro.uarch import MultiCore, TID_REG, simulate_mt
from repro.uarch.multicore import STACK_STRIDE
from repro.workloads import get_workload

MT_NAMES = ("blackscholes.mt", "swaptions.mt", "canneal.mt")


@pytest.mark.parametrize("name", MT_NAMES)
def test_all_threads_halt(name):
    w = get_workload(name)
    result = simulate_mt(w.program, Unsafe, w.memory, threads=4, p_cores=2)
    assert result.halt_reasons == ["halt"] * 4
    assert result.cycles == max(result.per_thread_cycles)


@pytest.mark.parametrize("name", MT_NAMES)
def test_threads_match_sequential_shards(name):
    # Shards are disjoint: each thread's committed work must equal its
    # own single-thread sequential run.
    w = get_workload(name)
    mc = MultiCore(w.program, Unsafe, w.memory, threads=4, p_cores=2)
    mc.run()
    for tid, core in enumerate(mc.cores):
        seq = run_program(w.program, w.memory,
                          {TID_REG: tid,
                           15: STACK_TOP + tid * STACK_STRIDE})
        hw = core._result()
        assert hw.final_regs == seq.final_regs, (name, tid)
        assert hw.committed_pcs == [s.pc for s in seq.steps]


def test_false_sharing_generates_invalidations():
    w = get_workload("blackscholes.mt")
    result = simulate_mt(w.program, Unsafe, w.memory, threads=4, p_cores=2)
    assert result.invalidations > 0


def test_single_thread_has_no_invalidations():
    w = get_workload("blackscholes.mt")
    result = simulate_mt(w.program, Unsafe, w.memory, threads=1)
    assert result.invalidations == 0


def test_hybrid_scheduling_p_cores_faster():
    w = get_workload("swaptions.mt")
    result = simulate_mt(w.program, Unsafe, w.memory, threads=4, p_cores=2)
    p_time = max(result.per_thread_cycles[:2])
    e_time = max(result.per_thread_cycles[2:])
    assert p_time <= e_time


def test_defenses_order_preserved_mt():
    w = get_workload("blackscholes.mt")
    base = simulate_mt(w.program, Unsafe, w.memory, threads=4, p_cores=2)
    track = simulate_mt(w.program, ProtTrack, w.memory, threads=4,
                        p_cores=2)
    sptsb = simulate_mt(w.program, SPTSB, w.memory, threads=4, p_cores=2)
    assert base.cycles <= track.cycles <= sptsb.cycles


def test_shared_l3_is_shared():
    w = get_workload("canneal.mt")
    mc = MultiCore(w.program, Unsafe, w.memory, threads=2, p_cores=2)
    mc.run()
    assert mc.cores[0].caches.l3 is mc.cores[1].caches.l3


def test_thread_count_validation():
    w = get_workload("canneal.mt")
    with pytest.raises(ValueError):
        MultiCore(w.program, Unsafe, w.memory, threads=0)
