"""Multi-core simulation (paper SVIII-A4): shared memory + L3, private
L1/L2 with write-invalidation, hybrid P/E scheduling."""

import pytest

from repro.arch import run_program
from repro.arch.executor import STACK_TOP
from repro.defenses import ProtTrack, SPTSB, Unsafe
from repro.uarch import MultiCore, TID_REG, simulate_mt
from repro.uarch.multicore import STACK_STRIDE
from repro.workloads import get_workload

MT_NAMES = ("blackscholes.mt", "swaptions.mt", "canneal.mt")


@pytest.mark.parametrize("name", MT_NAMES)
def test_all_threads_halt(name):
    w = get_workload(name)
    result = simulate_mt(w.program, Unsafe, w.memory, threads=4, p_cores=2)
    assert result.halt_reasons == ["halt"] * 4
    assert result.cycles == max(result.per_thread_cycles)


@pytest.mark.parametrize("name", MT_NAMES)
def test_threads_match_sequential_shards(name):
    # Shards are disjoint: each thread's committed work must equal its
    # own single-thread sequential run.
    w = get_workload(name)
    mc = MultiCore(w.program, Unsafe, w.memory, threads=4, p_cores=2)
    mc.run()
    for tid, core in enumerate(mc.cores):
        seq = run_program(w.program, w.memory,
                          {TID_REG: tid,
                           15: STACK_TOP + tid * STACK_STRIDE})
        hw = core._result()
        assert hw.final_regs == seq.final_regs, (name, tid)
        assert hw.committed_pcs == [s.pc for s in seq.steps]


def test_false_sharing_generates_invalidations():
    w = get_workload("blackscholes.mt")
    result = simulate_mt(w.program, Unsafe, w.memory, threads=4, p_cores=2)
    assert result.invalidations > 0


def test_single_thread_has_no_invalidations():
    w = get_workload("blackscholes.mt")
    result = simulate_mt(w.program, Unsafe, w.memory, threads=1)
    assert result.invalidations == 0


def test_hybrid_scheduling_p_cores_faster():
    w = get_workload("swaptions.mt")
    result = simulate_mt(w.program, Unsafe, w.memory, threads=4, p_cores=2)
    p_time = max(result.per_thread_cycles[:2])
    e_time = max(result.per_thread_cycles[2:])
    assert p_time <= e_time


def test_defenses_order_preserved_mt():
    w = get_workload("blackscholes.mt")
    base = simulate_mt(w.program, Unsafe, w.memory, threads=4, p_cores=2)
    track = simulate_mt(w.program, ProtTrack, w.memory, threads=4,
                        p_cores=2)
    sptsb = simulate_mt(w.program, SPTSB, w.memory, threads=4, p_cores=2)
    assert base.cycles <= track.cycles <= sptsb.cycles


def test_shared_l3_is_shared():
    w = get_workload("canneal.mt")
    mc = MultiCore(w.program, Unsafe, w.memory, threads=2, p_cores=2)
    mc.run()
    assert mc.cores[0].caches.l3 is mc.cores[1].caches.l3


def test_thread_count_validation():
    w = get_workload("canneal.mt")
    with pytest.raises(ValueError):
        MultiCore(w.program, Unsafe, w.memory, threads=0)


# ----------------------------------------------------------------------
# Speculation-observatory telemetry on the multi-core substrate
# ----------------------------------------------------------------------

def test_per_core_telemetry_is_isolated():
    # Each core owns its stats dict and defense instance: telemetry
    # from one thread must never bleed into a sibling's counters.
    w = get_workload("blackscholes.mt")
    mc = MultiCore(w.program, ProtTrack, w.memory, threads=4, p_cores=2)
    mc.run()
    assert len({id(core.stats) for core in mc.cores}) == 4
    assert len({id(core.defense) for core in mc.cores}) == 4
    results = [core._result() for core in mc.cores]
    for result in results:
        stats = result.stats
        assert stats["fetched_uops"] >= stats["committed_uops"] > 0
        assert stats["issued_uops"] >= stats["committed_uops"]
        # _result is idempotent: private accounting keys never escape.
        assert not [k for k in stats if k.startswith("_")]
    # Shards differ, so per-core transient behaviour may too; at
    # minimum the totals are per-core, not one shared accumulator.
    total = sum(r.stats["fetched_uops"] for r in results)
    assert all(r.stats["fetched_uops"] < total for r in results)


def test_per_core_interventions_stay_per_defense_instance():
    w = get_workload("blackscholes.mt")
    mc = MultiCore(w.program, ProtTrack, w.memory, threads=2, p_cores=2)
    mc.run()
    results = [core._result() for core in mc.cores]
    for result in results:
        stats = result.stats
        assert stats["defense_exec_interventions"] >= 0
        # Every episode spans at least one cycle.
        assert stats["defense_exec_delay_cycles"] >= \
            stats["defense_exec_interventions"]
    # The cores run the same program on disjoint shards under separate
    # defense instances; each one's episode counters reconcile with its
    # own refusal counters, not a pooled total.
    for result in results:
        assert result.stats["defense_delayed_transmitters"] >= \
            result.stats["defense_exec_interventions"]


def test_shared_l3_counters_are_shared_while_l1d_is_private():
    w = get_workload("canneal.mt")
    mc = MultiCore(w.program, Unsafe, w.memory, threads=2, p_cores=2)
    mc.run()
    results = [core._result() for core in mc.cores]
    # One shared L3: every per-core export reports the same (global)
    # L3 counters...
    assert results[0].stats["l3_hits"] == results[1].stats["l3_hits"]
    assert results[0].stats["l3_misses"] == results[1].stats["l3_misses"]
    # ...backed by the same object, while the private L1Ds diverge.
    assert mc.cores[0].caches.l3 is mc.cores[1].caches.l3
    assert mc.cores[0].caches.l1d is not mc.cores[1].caches.l1d
    l1d = [(r.stats["l1d_hits"], r.stats["l1d_misses"]) for r in results]
    assert all(hits + misses > 0 for hits, misses in l1d)


def test_invalidations_counted_on_multicore_result():
    w = get_workload("blackscholes.mt")
    result = simulate_mt(w.program, ProtTrack, w.memory, threads=4,
                         p_cores=2)
    assert result.invalidations >= 0
    assert result.threads == 4
