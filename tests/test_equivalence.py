"""Property-based correctness: on random programs, the out-of-order
core's committed behaviour must equal the sequential reference machine,
for every defense, under every speculation model — Spectre defenses may
slow execution down but never change architectural results."""

import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.arch import run_program
from repro.defenses import (
    AccessDelay,
    AccessTrack,
    ProtDelay,
    ProtTrack,
    SPT,
    SPTSB,
    Unsafe,
)
from repro.fuzzing import generate_program
from repro.fuzzing.inputs import generate_input
from repro.protcc import compile_program
from repro.uarch import E_CORE, P_CORE, simulate
from repro.uarch.config import SpeculationModel

DEFENSES = {
    "unsafe": Unsafe,
    "nda": AccessDelay,
    "stt": AccessTrack,
    "spt": SPT,
    "spt-sb": SPTSB,
    "delay": ProtDelay,
    "track": ProtTrack,
}


def assert_equivalent(program, memory, regs, defense, config=P_CORE):
    seq = run_program(program, memory, regs)
    assert seq.halt_reason == "halt"
    hw = simulate(program, defense, config, memory, regs,
                  max_cycles=2_000_000)
    assert hw.halt_reason == "halt"
    assert hw.final_regs == seq.final_regs
    assert hw.committed_pcs == [s.pc for s in seq.steps]
    assert hw.memory == seq.memory


def fuzz_case(seed):
    program = generate_program(seed)
    test_input = generate_input(random.Random(seed ^ 0xF00D))
    return program, test_input.build_memory(), test_input.build_regs()


@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_unsafe_core_equivalent_on_random_programs(seed):
    program, memory, regs = fuzz_case(seed)
    assert_equivalent(program, memory, regs, Unsafe())


@pytest.mark.parametrize("name", sorted(DEFENSES))
@pytest.mark.parametrize("seed", [3, 17])
def test_defenses_preserve_architecture(name, seed):
    program, memory, regs = fuzz_case(seed)
    assert_equivalent(program, memory, regs, DEFENSES[name]())


@pytest.mark.parametrize("name", ["track", "delay"])
def test_protean_on_instrumented_random_programs(name, seed=9):
    program, memory, regs = fuzz_case(seed)
    compiled = compile_program(program, "rand", rng=random.Random(seed))
    assert_equivalent(compiled.program, memory, regs, DEFENSES[name]())


@pytest.mark.parametrize("seed", [2, 8])
def test_e_core_equivalent(seed):
    program, memory, regs = fuzz_case(seed)
    assert_equivalent(program, memory, regs, Unsafe(), E_CORE)


@pytest.mark.parametrize("seed", [4, 11])
def test_control_model_equivalent(seed):
    program, memory, regs = fuzz_case(seed)
    config = P_CORE.replace(speculation_model=SpeculationModel.CONTROL)
    assert_equivalent(program, memory, regs, AccessTrack(), config)


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=10_000),
       clazz=st.sampled_from(["arch", "cts", "ct", "unr", "rand"]))
def test_protcc_preserves_semantics_on_random_programs(seed, clazz):
    program = generate_program(seed, size=25)
    test_input = generate_input(random.Random(seed))
    memory = test_input.build_memory()
    regs = test_input.build_regs()
    base = run_program(program, memory, regs)
    compiled = compile_program(program, clazz, rng=random.Random(seed))
    result = run_program(compiled.program, memory, regs)
    assert result.final_regs == base.final_regs
    assert result.halt_reason == base.halt_reason
    # Memory must match except the stack region: instrumentation shifts
    # PCs, so pushed *return addresses* legitimately differ.
    from repro.arch.executor import STACK_TOP

    def data_bytes(seq_result):
        return {addr: value
                for addr, value in seq_result.memory.snapshot().items()
                if value and not STACK_TOP - 0x2000 <= addr < STACK_TOP}

    assert data_bytes(result) == data_bytes(base)


@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_determinism(seed):
    program, memory, regs = fuzz_case(seed)
    a = simulate(program, ProtTrack(), P_CORE, memory, regs)
    b = simulate(program, ProtTrack(), P_CORE, memory, regs)
    assert a.cycles == b.cycles
    assert a.adversary_cache_state == b.adversary_cache_state
    assert a.timing_trace == b.timing_trace
