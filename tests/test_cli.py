"""The artifact-style command line (python -m repro)."""

import subprocess
import sys

from repro.cli import main


def run_cli(args):
    return subprocess.run([sys.executable, "-m", "repro", *args],
                          capture_output=True, text=True, timeout=600)


def test_help():
    proc = run_cli(["--help"])
    assert proc.returncode == 0
    assert "table-v" in proc.stdout


def test_workloads_listing(capsys):
    assert main(["workloads"]) == 0
    out = capsys.readouterr().out
    assert "nginx.c1r1" in out and "milc.w" in out


def test_table_v_subset(capsys):
    assert main(["table-v", "--suite", "unr-crypto"]) == 0
    out = capsys.readouterr().out
    assert "ossl.bnexp" in out and "geomean" in out


def test_figure_6_subset(capsys):
    assert main(["figure-6", "--bench", "mcf.s"]) == 0
    out = capsys.readouterr().out
    assert "mcf.s" in out and "Track-ARCH" in out


def test_requires_command():
    proc = run_cli([])
    assert proc.returncode != 0


def test_table_v_jobs_flag(capsys):
    assert main(["table-v", "--suite", "unr-crypto", "--jobs", "2"]) == 0
    out = capsys.readouterr().out
    assert "ossl.bnexp" in out and "geomean" in out


def test_cache_subcommand(capsys):
    assert main(["cache"]) == 0
    out = capsys.readouterr().out
    assert "cache dir" in out and "entries" in out


def test_fuzz_subcommand(capsys):
    assert main(["fuzz", "--programs", "1", "--pairs", "1",
                 "--jobs", "1"]) == 0
    out = capsys.readouterr().out
    assert "violations" in out


def test_fuzz_rejects_unknown_defense(capsys):
    assert main(["fuzz", "--defense", "no-such-defense"]) == 2


def test_fuzz_rejects_unknown_mitigation(capsys):
    assert main(["fuzz", "--mitigation", "retpoline"]) == 2
    assert "unknown mitigation" in capsys.readouterr().err


def test_fuzz_rejects_mitigation_under_cts_seq(capsys):
    assert main(["fuzz", "--mitigation", "fence",
                 "--contract", "cts-seq"]) == 2
    assert "cts-seq" in capsys.readouterr().err


def test_fuzz_mitigation_smoke(capsys):
    assert main(["fuzz", "--defense", "unsafe", "--mitigation", "fence",
                 "--contract", "arch-seq", "--instrument", "arch",
                 "--programs", "1", "--pairs", "1", "--jobs", "1"]) == 0
    out = capsys.readouterr().out
    assert "unsafe + fence" in out and "0 violations" in out


def _fake_campaign(violations):
    from repro.fuzzing import CampaignResult

    sites = [(11, 0, "cache_tlb")] * violations
    return CampaignResult(tests=2, violations=violations,
                          violation_sites=sites)


def test_fuzz_exits_nonzero_for_protected_defense_violations(
        capsys, monkeypatch):
    import repro.fuzzing

    monkeypatch.setattr(repro.fuzzing, "run_campaign",
                        lambda config, jobs=None, on_program=None, fabric=None:
                        _fake_campaign(violations=2))
    code = main(["fuzz", "--defense", "track", "--programs", "1",
                 "--pairs", "1"])
    assert code == 1
    captured = capsys.readouterr()
    assert "FAIL" in captured.err and "track" in captured.err


def test_fuzz_unsafe_violations_exit_zero(capsys, monkeypatch):
    import repro.fuzzing

    monkeypatch.setattr(repro.fuzzing, "run_campaign",
                        lambda config, jobs=None, on_program=None, fabric=None:
                        _fake_campaign(violations=2))
    assert main(["fuzz", "--defense", "unsafe", "--programs", "1",
                 "--pairs", "1"]) == 0


def test_fuzz_clean_protected_defense_exits_zero(capsys, monkeypatch):
    import repro.fuzzing

    monkeypatch.setattr(repro.fuzzing, "run_campaign",
                        lambda config, jobs=None, on_program=None, fabric=None:
                        _fake_campaign(violations=0))
    assert main(["fuzz", "--defense", "track", "--programs", "1",
                 "--pairs", "1"]) == 0


def test_fuzz_secure_mitigation_violations_exit_nonzero(
        capsys, monkeypatch):
    # fence is in SECURE_MITIGATIONS: a violation under it is a bug in
    # the pass, so the CLI must fail even on the unsafe core.
    import repro.fuzzing

    monkeypatch.setattr(repro.fuzzing, "run_campaign",
                        lambda config, jobs=None, on_program=None, fabric=None:
                        _fake_campaign(violations=2))
    code = main(["fuzz", "--defense", "unsafe", "--mitigation", "fence",
                 "--programs", "1", "--pairs", "1"])
    assert code == 1
    captured = capsys.readouterr()
    assert "claims contract security" in captured.err


def test_fuzz_mask_mitigation_violations_exit_zero(capsys, monkeypatch):
    # mask is best-effort by design; finding leaks under it is the
    # expected (and desired) fuzzer outcome, not a failure.
    import repro.fuzzing

    monkeypatch.setattr(repro.fuzzing, "run_campaign",
                        lambda config, jobs=None, on_program=None, fabric=None:
                        _fake_campaign(violations=2))
    assert main(["fuzz", "--defense", "unsafe", "--mitigation", "mask",
                 "--programs", "1", "--pairs", "1"]) == 0


def test_fuzz_report_dir_and_explain_roundtrip(tmp_path, capsys):
    """End-to-end forensics: an unsafe-core campaign emits a minimized
    witness that `repro explain` can name the transmitter from."""
    import json

    report_dir = tmp_path / "forensics"
    # Seed 7's first generated program violates on the unsafe core.
    assert main(["fuzz", "--programs", "1", "--pairs", "1", "--seed", "7",
                 "--report-dir", str(report_dir), "--max-checks", "60",
                 "--jobs", "1"]) == 0
    out = capsys.readouterr().out
    assert "forensics:" in out

    assert (report_dir / "REPORT.md").exists()
    events = [json.loads(line) for line in
              (report_dir / "events.jsonl").read_text().splitlines()]
    assert [e["event"] for e in events] == \
        ["campaign_start", "program", "campaign_end"]

    witnesses = sorted(report_dir.glob("witness-*.json"))
    witnesses = [p for p in witnesses
                 if not p.name.endswith(".explain.json")]
    assert witnesses
    payload = json.loads(witnesses[0].read_text())
    # Minimization produced a strictly smaller reproducer.
    assert len(payload["instructions"]) < payload["original_len"]
    assert payload["minimized"] is True

    assert main(["explain", str(witnesses[0])]) == 0
    out = capsys.readouterr().out
    assert "divergence:" in out
    assert "transmitter" in out
    assert "pc" in out


def test_explain_rejects_garbage_witness(tmp_path, capsys):
    bad = tmp_path / "bad.json"
    bad.write_text("{not json")
    assert main(["explain", str(bad)]) == 2
    assert "cannot load witness" in capsys.readouterr().err


def test_bench_suite_subset(capsys, tmp_path):
    report = tmp_path / "report.json"
    assert main(["bench", "--quick", "--only", "figure-5",
                 "--report", str(report)]) == 0
    out = capsys.readouterr().out
    assert "Figure 5" in out
    assert report.exists()


def test_stats_subcommand(capsys):
    assert main(["stats", "ossl.ecadd"]) == 0
    out = capsys.readouterr().out
    assert "issue-slot breakdown" in out
    assert "l1d" in out and "(commit)" in out


def test_stats_json_output(capsys):
    import json

    assert main(["stats", "ossl.ecadd", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["cycles"] > 0
    assert "stall_frontend" in payload["stats"]


def test_stats_rejects_unknown_defense(capsys):
    assert main(["stats", "ossl.ecadd", "--defense", "nope"]) == 2


def test_trace_subcommand_emits_loadable_chrome_json(tmp_path, capsys):
    import json

    out_path = tmp_path / "trace.json"
    # A SPEC-like workload: acceptance requires the trace to load.
    assert main(["trace", "mcf.s", "--out", str(out_path)]) == 0
    payload = json.loads(out_path.read_text())
    events = payload["traceEvents"]
    assert events
    slices = [e for e in events if e.get("ph") == "X"]
    assert slices
    for event in slices:
        assert {"name", "ph", "ts", "dur", "pid", "tid"} <= set(event)


def test_trace_text_format(tmp_path, capsys):
    out_path = tmp_path / "trace.txt"
    assert main(["trace", "ossl.ecadd", "--fmt", "text",
                 "--out", str(out_path)]) == 0
    text = out_path.read_text()
    assert "F" in text and "C" in text


def test_diff_subcommand_identical(capsys):
    assert main(["diff", "--programs", "1", "--defense", "unsafe",
                 "track", "--core", "P", "--no-fixtures"]) == 0
    out = capsys.readouterr().out
    assert "identical" in out
    assert "0 divergent" in out


def test_diff_subcommand_fixtures(capsys):
    assert main(["diff", "--programs", "0", "--core", "P"]) == 0
    out = capsys.readouterr().out
    assert "identical" in out


def test_diff_rejects_unknown_defense(capsys):
    assert main(["diff", "--defense", "no-such-defense"]) == 2
    err = capsys.readouterr().err
    assert "unknown defenses" in err


def test_diff_engine_subset_and_timing(capsys, tmp_path):
    report = tmp_path / "diff-report.txt"
    assert main(["diff", "--programs", "1", "--defense", "unsafe",
                 "--core", "P", "--no-fixtures",
                 "--engines", "refcore,compiled",
                 "--report", str(report)]) == 0
    out = capsys.readouterr().out
    assert "(refcore,compiled)" in out
    assert "slowest:" in out          # the per-case timing table
    assert "identical" in report.read_text()


def test_diff_rejects_unknown_engine(capsys):
    assert main(["diff", "--engines", "refcore,warp"]) == 2
    err = capsys.readouterr().err
    assert "bad --engines" in err


# ----------------------------------------------------------------------
# Tracing surface: --trace-out, trace-merge, top
# ----------------------------------------------------------------------

def test_bench_trace_out_writes_merged_trace(tmp_path, capsys):
    import json

    trace_file = tmp_path / "bench-trace.json"
    assert main(["bench", "--quick", "--only", "figure-5",
                 "--trace-out", str(trace_file)]) == 0
    assert "campaign trace written" in capsys.readouterr().out
    trace = json.loads(trace_file.read_text())
    names = {event["name"] for event in trace["traceEvents"]
             if event.get("ph") == "X"}
    assert "bench.cli" in names
    assert "spec" in names


def test_fuzz_trace_out_writes_merged_trace(tmp_path, capsys):
    import json

    trace_file = tmp_path / "fuzz-trace.json"
    assert main(["fuzz", "--programs", "1", "--pairs", "1",
                 "--jobs", "1", "--trace-out", str(trace_file)]) == 0
    trace = json.loads(trace_file.read_text())
    names = {event["name"] for event in trace["traceEvents"]
             if event.get("ph") == "X"}
    assert {"fuzz.cli", "fuzz.campaign", "fuzz.program"} <= names


def test_trace_merge_without_shards_exits_1(tmp_path, capsys):
    assert main(["trace-merge", str(tmp_path),
                 "--out", str(tmp_path / "t.json")]) == 1
    assert "no span shards" in capsys.readouterr().err


def test_trace_merge_rebuilds_trace_from_shards(tmp_path, capsys):
    import json

    from repro.metrics.spans import SpanRecorder

    recorder = SpanRecorder(process="w1")
    with recorder.span("fabric.job"):
        pass
    assert recorder.write_shard(tmp_path) is not None
    out_file = tmp_path / "merged.json"
    assert main(["trace-merge", str(tmp_path),
                 "--out", str(out_file)]) == 0
    assert "merged 1 spans from 1 process(es)" in \
        capsys.readouterr().out
    trace = json.loads(out_file.read_text())
    slices = [event["name"] for event in trace["traceEvents"]
              if event.get("ph") == "X"]
    assert slices == ["fabric.job"]


def test_top_missing_spool_exits_2(tmp_path, capsys):
    assert main(["top", "--spool", str(tmp_path / "nope")]) == 2
    assert "no spool" in capsys.readouterr().err


def test_top_acceptance_renders_state_from_real_worker(tmp_path, capsys):
    """The acceptance criterion: ``repro top`` renders live campaign
    state from a spool a real ``repro work`` subprocess drained."""
    from repro.bench import RunSpec
    from repro.bench.fabric import Broker

    spool_dir = tmp_path / "spool"
    with Broker(spool_dir) as broker:
        broker.submit_specs([RunSpec(workload="ossl.ecadd")])
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "work", "--spool",
         str(spool_dir), "--idle-timeout", "0.5", "--poll", "0.05",
         "--name", "acceptance-worker"],
        capture_output=True, text=True, timeout=600)
    assert proc.returncode == 0, proc.stderr
    assert main(["top", "--spool", str(spool_dir), "--once"]) == 0
    out = capsys.readouterr().out
    assert "repro top" in out
    assert "1 done" in out
    assert "acceptance-worker" in out
