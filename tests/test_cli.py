"""The artifact-style command line (python -m repro)."""

import subprocess
import sys

import pytest

from repro.cli import main


def run_cli(args):
    return subprocess.run([sys.executable, "-m", "repro", *args],
                          capture_output=True, text=True, timeout=600)


def test_help():
    proc = run_cli(["--help"])
    assert proc.returncode == 0
    assert "table-v" in proc.stdout


def test_workloads_listing(capsys):
    assert main(["workloads"]) == 0
    out = capsys.readouterr().out
    assert "nginx.c1r1" in out and "milc.w" in out


def test_table_v_subset(capsys):
    assert main(["table-v", "--suite", "unr-crypto"]) == 0
    out = capsys.readouterr().out
    assert "ossl.bnexp" in out and "geomean" in out


def test_figure_6_subset(capsys):
    assert main(["figure-6", "--bench", "mcf.s"]) == 0
    out = capsys.readouterr().out
    assert "mcf.s" in out and "Track-ARCH" in out


def test_requires_command():
    proc = run_cli([])
    assert proc.returncode != 0


def test_table_v_jobs_flag(capsys):
    assert main(["table-v", "--suite", "unr-crypto", "--jobs", "2"]) == 0
    out = capsys.readouterr().out
    assert "ossl.bnexp" in out and "geomean" in out


def test_cache_subcommand(capsys):
    assert main(["cache"]) == 0
    out = capsys.readouterr().out
    assert "cache dir" in out and "entries" in out


def test_fuzz_subcommand(capsys):
    assert main(["fuzz", "--programs", "1", "--pairs", "1",
                 "--jobs", "1"]) == 0
    out = capsys.readouterr().out
    assert "violations" in out


def test_fuzz_rejects_unknown_defense(capsys):
    assert main(["fuzz", "--defense", "no-such-defense"]) == 2


def test_bench_suite_subset(capsys, tmp_path):
    report = tmp_path / "report.json"
    assert main(["bench", "--quick", "--only", "figure-5",
                 "--report", str(report)]) == 0
    out = capsys.readouterr().out
    assert "Figure 5" in out
    assert report.exists()
