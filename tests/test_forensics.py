"""Leak forensics: witness capture/serialization, delta-debugging
minimization, divergence localization, and transmitter explanation."""

import json
from types import SimpleNamespace

import pytest

from repro.contracts import (
    AdversaryModel,
    Contract,
    Divergence,
    TestInput,
    Verdict,
    check_contract_pair,
    first_divergence,
    observe_labeled,
)
from repro.defenses import ProtTrack, Unsafe
from repro.forensics import (
    CampaignReporter,
    LeakWitness,
    WitnessError,
    capture_witness,
    explain_witness,
    minimize_witness,
    write_forensics_report,
)
from repro.fuzzing import CampaignConfig, run_campaign
from repro.isa import assemble
from repro.uarch import P_CORE

# The Spectre-v1 shape from test_contracts, padded with removable junk
# so minimization has something to delete.
LEAKY_PADDED = """
main:
    movi r1, 0x1000
    movi r9, 0x20000
    movi r2, 0x80000
    load r8, [r9]
    load r8, [r9 + r8 + 64]
    test r8, r8
    beq safe
    load r3, [r1 + 800]
    shli r3, r3, 9
    load r4, [r2 + r3]
safe:
    addi r6, r6, 1
    addi r6, r6, 2
    addi r6, r6, 3
    addi r6, r6, 4
    addi r6, r6, 5
    addi r6, r6, 6
    halt
"""


def leaky_witness():
    program = assemble(LEAKY_PADDED).linked()
    input_a = TestInput(memory_words=((0x1000 + 800, 3),))
    input_b = TestInput(memory_words=((0x1000 + 800, 57),))
    outcome = check_contract_pair(program, Unsafe, Contract.ARCH_SEQ,
                                  input_a, input_b)
    assert outcome.verdict is Verdict.VIOLATION
    return capture_witness(program, Contract.ARCH_SEQ, input_a, input_b,
                           outcome, defense="unsafe")


# ----------------------------------------------------------------------
# Witness capture and serialization
# ----------------------------------------------------------------------

def test_witness_roundtrip_and_replay(tmp_path):
    witness = leaky_witness()
    path = witness.save(tmp_path / "w.json")
    loaded = LeakWitness.load(path)
    assert loaded.to_dict() == witness.to_dict()
    assert loaded.program().instructions == witness.program().instructions
    # The witness is self-contained: replaying it reproduces the leak.
    outcome = loaded.verify()
    assert outcome.verdict is Verdict.VIOLATION
    assert outcome.adversary is loaded.adversary_enum()


def test_witness_records_divergence_and_asm():
    witness = leaky_witness()
    assert witness.divergence is not None
    divergence = witness.divergence_obj()
    assert divergence.kind in ("cache_tag", "tlb_page", "cycles",
                               "stage_time")
    assert divergence.label in witness.divergence_obj().describe()
    assert "load r3" in witness.asm
    assert witness.original_len == len(witness.instructions)


def test_witness_rejects_unknown_schema_and_fields(tmp_path):
    witness = leaky_witness()
    payload = witness.to_dict()
    payload["schema"] = 99
    with pytest.raises(WitnessError, match="schema"):
        LeakWitness.from_dict(payload)
    payload["schema"] = witness.schema
    payload["mystery"] = 1
    with pytest.raises(WitnessError, match="mystery"):
        LeakWitness.from_dict(payload)
    with pytest.raises(WitnessError, match="cannot read"):
        LeakWitness.load(tmp_path / "missing.json")


def test_witness_unknown_defense_is_an_error():
    witness = leaky_witness()
    witness.defense = "not-a-defense"
    with pytest.raises(WitnessError, match="unknown defense"):
        witness.verify()


# ----------------------------------------------------------------------
# Divergence localization
# ----------------------------------------------------------------------

def _cache_result(tags, cycles=10, timing=()):
    empty = frozenset()
    return SimpleNamespace(adversary_cache_state=(frozenset(tags), empty,
                                                  empty, empty),
                           cycles=cycles, timing_trace=list(timing))


def test_first_divergence_localizes_cache_tag():
    a = _cache_result({(1, 0x40), (2, 0x80)})
    b = _cache_result({(1, 0x40)})
    divergence = first_divergence(a, b, AdversaryModel.CACHE_TLB)
    assert divergence.kind == "cache_tag"
    assert divergence.location == ("l1d", 2, 0x80)
    assert (divergence.value_a, divergence.value_b) == ("present", "absent")
    assert "l1d set 2" in divergence.label
    # Round-trips through its dict form.
    assert Divergence.from_dict(divergence.to_dict()) == divergence


def test_first_divergence_localizes_stage_timing():
    a = SimpleNamespace(cycles=20, timing_trace=[(4, 1, 2, 3, 5, 8)],
                        adversary_cache_state=None)
    b = SimpleNamespace(cycles=20, timing_trace=[(4, 1, 2, 3, 6, 8)],
                        adversary_cache_state=None)
    divergence = first_divergence(a, b, AdversaryModel.TIMING)
    assert divergence.kind == "stage_time"
    assert divergence.location == (0, 4, "complete")
    assert (divergence.value_a, divergence.value_b) == (5, 6)


def test_first_divergence_none_when_identical():
    a = _cache_result({(1, 0x40)})
    b = _cache_result({(1, 0x40)})
    assert first_divergence(a, b, AdversaryModel.CACHE_TLB) is None


def test_observe_labeled_covers_both_models():
    a = _cache_result({(3, 0x11)}, cycles=7, timing=[(2, 1, 2, 3, 4, 5)])
    cache_elements = observe_labeled(a, AdversaryModel.CACHE_TLB)
    assert [e.kind for e in cache_elements] == ["cache_tag"]
    timing_elements = observe_labeled(a, AdversaryModel.TIMING)
    assert timing_elements[0].kind == "cycles"
    assert timing_elements[0].value == 7
    assert {e.location[2] for e in timing_elements[1:]} == \
        {"fetch", "rename", "issue", "complete", "commit"}


# ----------------------------------------------------------------------
# Minimization
# ----------------------------------------------------------------------

def test_minimize_shrinks_witness_strictly():
    witness = leaky_witness()
    minimized = minimize_witness(witness, max_checks=120)
    assert minimized.minimized
    assert len(minimized.instructions) < len(witness.instructions)
    assert minimized.original_len == len(witness.instructions)
    # Still a self-contained reproducer with up-to-date metadata.
    assert minimized.verify().verdict is Verdict.VIOLATION
    assert minimized.divergence is not None
    assert minimized.asm.count("\n") < witness.asm.count("\n")
    assert minimized.meta["minimize_checks"] <= 120 + 1


def test_minimize_refuses_non_reproducing_witness():
    witness = leaky_witness()
    # Same input on both sides: nothing to distinguish.
    witness.input_b = dict(witness.input_a)
    with pytest.raises(WitnessError, match="does not reproduce"):
        minimize_witness(witness, max_checks=10)


def test_minimize_narrows_input_diff():
    witness = leaky_witness()
    minimized = minimize_witness(witness, max_checks=120)
    assert len(minimized.differing_memory_words()) \
        <= len(witness.differing_memory_words())


# ----------------------------------------------------------------------
# Explanation: the paper's two root-caused channels (SVII-B4b)
# ----------------------------------------------------------------------

def _security_asm(name):
    from tests import test_security

    return getattr(test_security, name)


def test_explain_div_channel_names_div_transmitter():
    program = assemble(_security_asm("DIV_CHANNEL")).linked()
    config = P_CORE.replace(div_is_transmitter=True)
    input_a = TestInput(memory_words=((0x18020, 2),))
    input_b = TestInput(memory_words=((0x18020, 1 << 40),))
    outcome = check_contract_pair(
        program, Unsafe, Contract.ARCH_SEQ, input_a, input_b, config,
        adversaries=(AdversaryModel.TIMING,))
    assert outcome.verdict is Verdict.VIOLATION
    witness = capture_witness(program, Contract.ARCH_SEQ, input_a, input_b,
                              outcome, defense="unsafe", config=config)
    explanation = explain_witness(witness)
    assert explanation.transmitter is not None
    assert explanation.transmitter.op == "div"
    assert "div" in explanation.headline()
    rendered = explanation.render()
    assert f"pc {explanation.transmitter.pc}" in rendered
    assert "0x18020" in rendered  # secret provenance
    assert explanation.secret_load is not None


def test_explain_squash_bug_names_wrong_path_transmitter():
    program = assemble(_security_asm("SQUASH_BUG")).linked()
    config = P_CORE.replace(buggy_squash_notify=True)
    input_a = TestInput(memory_words=((0x18008, 0),))
    input_b = TestInput(memory_words=((0x18008, 1),))
    outcome = check_contract_pair(
        program, ProtTrack, Contract.ARCH_SEQ, input_a, input_b, config,
        adversaries=(AdversaryModel.CACHE_TLB,))
    assert outcome.verdict is Verdict.VIOLATION
    witness = capture_witness(program, Contract.ARCH_SEQ, input_a, input_b,
                              outcome, defense="track", config=config)
    explanation = explain_witness(witness)
    assert explanation.transmitter is not None
    assert explanation.transmitter.squashed
    assert "wrong-path" in explanation.headline()
    # The wrong-path probe loads live at 0x50000/0x51000.
    assert explanation.transmitter.mem_addr in (0x50000, 0x51000)
    assert "wrong-path" in explanation.render()
    assert explanation.window_branch is not None


def test_explain_requires_a_distinguishing_witness():
    witness = leaky_witness()
    witness.input_b = dict(witness.input_a)
    with pytest.raises(WitnessError, match="indistinguishable"):
        explain_witness(witness)


# ----------------------------------------------------------------------
# Campaign integration: witness capture stays deterministic
# ----------------------------------------------------------------------

def _campaign_config(**overrides):
    defaults = dict(defense_factory=Unsafe, contract=Contract.UNPROT_SEQ,
                    instrumentation="rand", n_programs=3,
                    pairs_per_program=1, seed=7, defense_name="unsafe",
                    collect_witnesses=True)
    defaults.update(overrides)
    return CampaignConfig(**defaults)


def test_campaign_witnesses_bit_identical_across_jobs():
    serial = run_campaign(_campaign_config(), jobs=1)
    parallel = run_campaign(_campaign_config(), jobs=3)
    assert serial.violations >= 1
    assert len(serial.witnesses) == serial.violations
    assert serial.witnesses == parallel.witnesses
    assert (serial.tests, serial.violation_sites,
            serial.invalid_nonterminating, serial.invalid_distinguishable,
            serial.invalid_hw_timeout) == \
           (parallel.tests, parallel.violation_sites,
            parallel.invalid_nonterminating,
            parallel.invalid_distinguishable, parallel.invalid_hw_timeout)


def test_campaign_witnesses_are_loadable_and_ordered():
    result = run_campaign(_campaign_config(), jobs=1)
    assert [(w["program_seed"], w["pair_index"]) for w in result.witnesses] \
        == [(seed, pair) for seed, pair, _ in result.violation_sites]
    witness = LeakWitness.from_dict(result.witnesses[0])
    assert witness.defense == "unsafe"
    assert witness.instrumentation == "rand"
    assert witness.verify().verdict is Verdict.VIOLATION


def test_campaign_on_program_hook_sees_every_program():
    seen = []
    run_campaign(_campaign_config(collect_witnesses=False), jobs=1,
                 on_program=lambda seed, partial: seen.append(seed))
    assert len(seen) == 3


# ----------------------------------------------------------------------
# Report emission + telemetry log
# ----------------------------------------------------------------------

def test_write_forensics_report_emits_artifacts(tmp_path):
    result = run_campaign(_campaign_config(n_programs=1), jobs=1)
    assert result.witnesses
    written = write_forensics_report(result, tmp_path, minimize=False)
    names = [p.name for p in written]
    assert "REPORT.md" in names
    witness_files = [p for p in written if p.name.startswith("witness-")
                     and not p.name.endswith(".explain.json")]
    assert len(witness_files) == len(result.witnesses)
    loaded = LeakWitness.load(witness_files[0])
    assert loaded.verify().verdict is Verdict.VIOLATION
    report = (tmp_path / "REPORT.md").read_text()
    assert "transmitter" in report
    assert "```asm" in report
    assert "Overhead anatomy" not in report  # only when a table is given


def test_write_forensics_report_appends_anatomy_section(tmp_path):
    result = run_campaign(_campaign_config(n_programs=1), jobs=1)
    write_forensics_report(result, tmp_path, minimize=False,
                           explain=False,
                           anatomy="defense  exec_n\n-------  ------\n"
                                   "stt      42")
    report = (tmp_path / "REPORT.md").read_text()
    assert "## Overhead anatomy" in report
    assert "stt      42" in report


def test_campaign_reporter_writes_jsonl(tmp_path):
    config = _campaign_config(collect_witnesses=False)
    with CampaignReporter(tmp_path / "events.jsonl") as reporter:
        reporter.campaign_start(config, jobs=1)
        result = run_campaign(config, jobs=1,
                              on_program=reporter.on_program)
        reporter.campaign_end(result)
    lines = [json.loads(line) for line in
             (tmp_path / "events.jsonl").read_text().splitlines()]
    events = [line["event"] for line in lines]
    assert events[0] == "campaign_start"
    assert events.count("program") == 3
    assert events[-1] == "campaign_end"
    program_events = [line for line in lines if line["event"] == "program"]
    assert all("wall_time" in line and "invalid_hw_timeout" in line
               for line in program_events)
    assert lines[-1]["violations"] == result.violations
