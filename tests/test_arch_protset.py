"""Architectural ProtSet semantics (paper SIV-B)."""

from repro.arch import ArchProtSet, Memory, run_program
from repro.arch.protset import ArchProtSet
from repro.isa import NUM_REGS, SP, assemble


def trace_protset(src, memory=None, regs=None):
    result = run_program(assemble(src).linked(), memory, regs)
    protset = ArchProtSet()
    for step in result.steps:
        protset.apply(step)
    return protset, result


def test_everything_starts_protected():
    p = ArchProtSet()
    assert all(p.reg_protected(r) for r in range(NUM_REGS))
    assert p.mem_protected(0x1234)


def test_prot_prefix_protects_output():
    p, _ = trace_protset("prot movi r1, 1\nhalt\n")
    assert p.reg_protected(1)


def test_unprefixed_write_unprotects_output():
    p, _ = trace_protset("movi r1, 1\nhalt\n")
    assert not p.reg_protected(1)


def test_unprefixed_load_unprotects_memory_and_dest():
    mem = Memory()
    mem.write_word(0x100, 9)
    p, _ = trace_protset("movi r1, 0x100\nload r2, [r1]\nhalt\n", mem)
    assert not p.reg_protected(2)
    assert not p.word_protected(0x100)


def test_prot_load_protects_dest_but_not_memory():
    mem = Memory()
    mem.write_word(0x100, 9)
    p, _ = trace_protset("movi r1, 0x100\nprot load r2, [r1]\nhalt\n", mem)
    assert p.reg_protected(2)
    assert p.word_protected(0x100)  # classifying reads is futile (SIV-A)


def test_store_labels_memory_by_data_protection():
    p, _ = trace_protset("""
        movi r1, 0x100
        prot movi r2, 7
        store [r1], r2
        movi r3, 8
        store [r1 + 8], r3
        halt
    """)
    assert p.word_protected(0x100)
    assert not p.word_protected(0x108)


def test_store_reprotects_previously_unprotected_bytes():
    p, _ = trace_protset("""
        movi r1, 0x100
        movi r2, 1
        store [r1], r2
        prot movi r3, 2
        store [r1], r3
        halt
    """)
    assert p.word_protected(0x100)


def test_identity_move_unprotects():
    p, _ = trace_protset("prot movi r1, 5\nmov r1, r1\nhalt\n")
    assert not p.reg_protected(1)


def test_call_pushes_unprotected_return_address():
    p, r = trace_protset("""
        movi sp, 0x8000
        call f
        halt
    f:
        ret
    """)
    assert not p.word_protected(0x8000 - 8)


def test_push_protection_follows_data():
    p, _ = trace_protset("""
        movi sp, 0x8000
        prot movi r1, 3
        push r1
        halt
    """)
    assert p.word_protected(0x8000 - 8)
    assert not p.reg_protected(SP)


def test_copy_independent():
    p = ArchProtSet()
    q = p.copy()
    q.protected_regs.discard(1)
    assert p.reg_protected(1)
