"""Benchmark harness: run specs, caching, normalization, rendering."""

import pytest

from repro.bench import (
    CLASS_BASELINE,
    DEFENSES,
    RunSpec,
    compiled,
    geomean,
    norm_runtime,
    protean_norm,
    render_table,
    run,
)
from repro.uarch.config import L1DTagMode, SpeculationModel


def test_defense_registry():
    for name in ("unsafe", "nda", "stt", "spt", "spt-sb", "delay",
                 "track", "delay-raw", "track-raw"):
        assert DEFENSES[name]() is not None


def test_class_baseline_map():
    assert CLASS_BASELINE == {"arch": "stt", "cts": "spt", "ct": "spt",
                              "unr": "spt-sb"}


def test_runspec_core_config_knobs():
    spec = RunSpec(workload="mcf.s", l1d_tags="none",
                   speculation="control", buggy_squash=True,
                   div_transmitter=False, core="E")
    config = spec.core_config()
    assert config.l1d_tag_mode is L1DTagMode.NONE
    assert config.speculation_model is SpeculationModel.CONTROL
    assert config.buggy_squash_notify
    assert not config.div_is_transmitter
    assert config.name == "E-core"


def test_runspec_predictor_entries():
    spec = RunSpec(workload="mcf.s", defense="track",
                   predictor_entries="inf")
    defense = spec.defense_instance()
    assert defense.predictor.entries is None
    spec2 = RunSpec(workload="mcf.s", defense="track",
                    predictor_entries=64)
    assert spec2.defense_instance().predictor.entries == 64


def test_run_caching():
    a = run(RunSpec(workload="ossl.dh"))
    b = run(RunSpec(workload="ossl.dh"))
    assert a is b


def test_norm_runtime_unsafe_is_one():
    assert norm_runtime("ossl.dh", "unsafe") == 1.0


def test_norm_runtime_sptsb_above_one():
    assert norm_runtime("ossl.dh", "spt-sb") > 1.1


def test_protean_norm_uses_auto_classes():
    value = protean_norm("ossl.dh", "track")
    assert 0.9 < value < norm_runtime("ossl.dh", "spt-sb")


def test_compiled_cache_and_instrument_kinds():
    base = compiled("ossl.dh", None)
    assert base.prot_prefixes == 0
    auto = compiled("ossl.dh", "auto")
    assert auto.prot_prefixes > 0
    unr = compiled("ossl.dh", "unr")
    assert compiled("ossl.dh", "unr") is unr


def test_geomean():
    assert geomean([1.0, 4.0]) == pytest.approx(2.0)
    assert geomean([2.0]) == 2.0


def test_render_table():
    text = render_table("T", ["a", "b"], [["x", 1.5], ["yy", 2.0]])
    assert "T" in text and "1.500" in text and "yy" in text


def test_geomean_rejects_empty_input():
    with pytest.raises(ValueError, match="empty"):
        geomean([])


def test_geomean_rejects_nonpositive_values():
    with pytest.raises(ValueError, match="positive"):
        geomean([1.0, 0.0, 2.0])
    with pytest.raises(ValueError, match="positive"):
        geomean([2.0, -1.0])
