"""Multi-core simulation (paper SVIII-A4, Tab. III).

The paper simulates multi-threaded PARSEC end-to-end on a full Alder
Lake configuration: 8 P-cores + 8 E-cores, private L1/L2, one shared
LLC, directory-based MESI.  This module provides the equivalent
substrate: N cores stepping in lockstep over one shared address space,
each with private L1D/L2 (kept coherent by write-invalidation broadcast
at store commit — the observable effect of MESI for our timing-and-tags
model, in which data always comes from the shared backing memory) and a
shared L3.

Threads are data-parallel in the PARSEC style: every core runs the same
program with its thread id in a register, sharding the data space.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..arch.executor import STACK_TOP
from ..arch.memory import Memory
from ..isa.program import Program
from .caches import Cache
from .config import CoreConfig, E_CORE, P_CORE
from .pipeline import Core, DEFAULT_MAX_CYCLES

#: Register that carries the thread id into each thread's code.
TID_REG = 13

#: Per-thread stack spacing within the shared address space.
STACK_STRIDE = 0x10000


@dataclass
class MultiCoreResult:
    """Outcome of a multi-threaded run."""

    cycles: int                       # wall clock: slowest thread
    per_thread_cycles: List[int]
    halt_reasons: List[str]
    memory: Memory
    invalidations: int
    per_thread_instructions: List[int] = field(default_factory=list)

    @property
    def threads(self) -> int:
        return len(self.per_thread_cycles)


class MultiCore:
    """N cores over one address space with a shared L3."""

    def __init__(
        self,
        program: Program,
        defense_factory,
        memory: Optional[Memory] = None,
        threads: int = 4,
        p_cores: int = 8,
        p_config: CoreConfig = P_CORE,
        e_config: CoreConfig = E_CORE,
        regs: Optional[Dict[int, int]] = None,
        max_cycles: int = DEFAULT_MAX_CYCLES,
    ) -> None:
        if threads < 1:
            raise ValueError("need at least one thread")
        self.memory = memory.copy() if memory is not None else Memory()
        self.shared_l3 = Cache(p_config.l3)
        self.invalidations = 0
        self.max_cycles = max_cycles
        self.cores: List[Core] = []
        for tid in range(threads):
            # Hybrid scheduling: the first p_cores threads land on
            # P-cores, the rest on E-cores (Tab. III's 8P + 8E).
            config = p_config if tid < p_cores else e_config
            thread_regs = dict(regs or {})
            thread_regs[TID_REG] = tid
            thread_regs.setdefault(15, STACK_TOP + tid * STACK_STRIDE)
            core = Core(
                program,
                defense_factory(),
                config,
                memory=self.memory,
                regs=thread_regs,
                max_cycles=max_cycles,
                shared_memory=True,
                shared_l3=self.shared_l3,
                store_commit_listener=self._on_store_commit,
            )
            self.cores.append(core)

    def _on_store_commit(self, writer: Core, addr: int) -> None:
        """Write-invalidation broadcast: the observable MESI effect."""
        for core in self.cores:
            if core is not writer:
                if core.caches.l1d.contains(addr):
                    self.invalidations += 1
                core.caches.invalidate(addr)

    def run(self) -> MultiCoreResult:
        """Step all cores in lockstep until every thread halts."""
        cycle = 0
        while cycle < self.max_cycles:
            all_halted = True
            for core in self.cores:
                if not core.halted:
                    core.step()
                    all_halted = all_halted and core.halted
            if all_halted:
                break
            cycle += 1
        results = [core._result() for core in self.cores]
        return MultiCoreResult(
            cycles=max(r.cycles for r in results),
            per_thread_cycles=[r.cycles for r in results],
            halt_reasons=[r.halt_reason for r in results],
            memory=self.memory,
            invalidations=self.invalidations,
            per_thread_instructions=[r.instructions for r in results],
        )


def simulate_mt(program: Program, defense_factory, memory=None,
                threads: int = 4, **kwargs) -> MultiCoreResult:
    """Run a data-parallel program across ``threads`` cores."""
    return MultiCore(program, defense_factory, memory, threads,
                     **kwargs).run()
