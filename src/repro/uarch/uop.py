"""Dynamic micro-op: one in-flight instance of an instruction.

Carries renamed operands, execution state, per-stage timestamps (the
timing adversary's observation, paper SVII-B1d), and the per-uop slots
that ProtISA and the defense policies annotate.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..isa.instruction import Instruction


class Uop:
    """An in-flight micro-op."""

    __slots__ = (
        "seq", "pc", "inst", "predicted_next",
        # instruction-class predicates, copied from ``inst`` at
        # construction (plain attributes: the scheduler reads them
        # millions of times per run and property indirection showed up
        # in profiles)
        "is_branch", "is_load", "is_store",
        # renamed operands: (arch_reg, phys_reg) pairs
        "psrcs", "pdests", "old_pdests",
        # transmitter-sensitive physical operands, memoized by
        # ``Defense.execute_sensitive_pregs`` / ``resolve_sensitive_pregs``
        # (``psrcs`` never changes after rename)
        "exec_sensitive", "resolve_sensitive",
        # lifecycle
        "in_rob", "issued", "executed", "completed", "committed", "squashed",
        # execution results
        "result_values", "actual_next", "taken",
        "mem_addr", "mem_value", "store_data",
        "forwarded_from",
        # memory-protection observation (ProtISA LSQ tag, paper SIV-C2b)
        "lsq_prot",
        # branch bookkeeping
        "mispredicted", "resolution_pending", "resolved",
        # wakeup gating (AccessDelay/ProtDelay and ProtTrack fallbacks)
        "wakeup_pending",
        # scheduler bookkeeping
        "unready_count", "in_iq", "bp_snapshot", "bp_index",
        # defense annotations
        "yrot", "predicted_no_access", "actual_access",
        # observability: why the scheduler last refused this uop, and
        # which hierarchy level serviced its memory access
        "block_reason", "mem_level",
        # timestamps
        "fetch_cycle", "rename_cycle", "issue_cycle", "complete_cycle",
        "commit_cycle", "squash_cycle",
        # open defense-intervention episodes (-1 = none): the cycle the
        # hook first refused this uop, cleared when the hook allows it
        "exec_block_cycle", "resolve_block_cycle", "wakeup_block_cycle",
    )

    def __init__(self, seq: int, pc: int, inst: Instruction,
                 predicted_next: int, fetch_cycle: int) -> None:
        self.seq = seq
        self.pc = pc
        self.inst = inst
        self.predicted_next = predicted_next
        self.is_branch: bool = inst.is_branch
        self.is_load: bool = inst.is_load
        self.is_store: bool = inst.is_store

        self.psrcs: Tuple[Tuple[int, int], ...] = ()
        self.pdests: Tuple[Tuple[int, int], ...] = ()
        self.old_pdests: Tuple[Tuple[int, int], ...] = ()
        self.exec_sensitive: Optional[Tuple[int, ...]] = None
        self.resolve_sensitive: Optional[Tuple[int, ...]] = None

        self.in_rob = False
        self.issued = False
        self.executed = False
        self.completed = False
        self.committed = False
        self.squashed = False

        self.result_values: Tuple[Tuple[int, int], ...] = ()
        self.actual_next: Optional[int] = None
        self.taken: Optional[bool] = None
        self.mem_addr: Optional[int] = None
        self.mem_value: Optional[int] = None
        self.store_data: Optional[int] = None
        self.forwarded_from: Optional["Uop"] = None

        self.lsq_prot: Optional[bool] = None

        self.mispredicted = False
        self.resolution_pending = False
        self.resolved = False

        self.wakeup_pending = False

        self.unready_count = 0
        self.in_iq = False
        self.bp_snapshot = None
        self.bp_index = None

        self.yrot: Optional[int] = None
        self.predicted_no_access = False
        self.actual_access: Optional[bool] = None

        self.block_reason: Optional[str] = None
        self.mem_level: Optional[str] = None

        self.fetch_cycle = fetch_cycle
        self.rename_cycle = -1
        self.issue_cycle = -1
        self.complete_cycle = -1
        self.commit_cycle = -1
        self.squash_cycle = -1
        self.exec_block_cycle = -1
        self.resolve_block_cycle = -1
        self.wakeup_block_cycle = -1

    # ------------------------------------------------------------------

    def __lt__(self, other: "Uop") -> bool:
        # Program (rename) order: lets uop lists sort without a key.
        return self.seq < other.seq

    def phys_for(self, arch_reg: int) -> Optional[int]:
        """Physical register holding this uop's read of ``arch_reg``."""
        for areg, preg in self.psrcs:
            if areg == arch_reg:
                return preg
        return None

    def timing_observation(self) -> Tuple[int, int, int, int, int, int]:
        """Per-stage timing exposed to the timing adversary."""
        return (self.pc, self.fetch_cycle, self.rename_cycle,
                self.issue_cycle, self.complete_cycle, self.commit_cycle)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        from ..isa.assembler import format_instruction

        state = ("committed" if self.committed else
                 "squashed" if self.squashed else
                 "completed" if self.completed else
                 "issued" if self.issued else "waiting")
        return (f"Uop(seq={self.seq}, pc={self.pc}, "
                f"{format_instruction(self.inst)!r}, {state})")
