"""Pipeline observability: per-uop event tracing and trace export.

A :class:`PipelineTracer` hooks the core at two points — uop creation at
fetch and the end of every cycle — and records enough to reconstruct
each uop's walk through the pipeline from the per-stage timestamps the
:class:`~repro.uarch.uop.Uop` already carries (fetch/rename/issue/
complete/commit/squash cycles).  Tracing is strictly opt-in: a core
built without a tracer pays only an ``is not None`` test per cycle.

Two export formats:

* :func:`chrome_trace` — a Chrome-trace-format JSON dict (Perfetto and
  ``chrome://tracing`` load it directly): one complete ``"ph": "X"``
  slice per pipeline stage per uop, plus ROB/IQ/LQ/SQ occupancy counter
  tracks sampled every ``occupancy_interval`` cycles.
* :func:`text_pipeline` — a Konata-style ASCII pipeline view, one row
  per uop with stage letters at their cycle columns (``F`` fetch,
  ``r`` rename, ``i`` issue, ``c`` complete, ``C`` commit, ``x``
  squash).
"""

from __future__ import annotations

import heapq
import json
import pathlib
from typing import Dict, List, Optional, Tuple, Union

from .uop import Uop

#: Stage slices emitted per uop: (label, start attribute, end attribute).
_STAGES = (
    ("fetch", "fetch_cycle", "rename_cycle"),
    ("rename", "rename_cycle", "issue_cycle"),
    ("execute", "issue_cycle", "complete_cycle"),
    ("commit-wait", "complete_cycle", "commit_cycle"),
)


class PipelineTracer:
    """Records per-uop pipeline events and periodic occupancy samples.

    ``max_uops`` bounds memory: once reached, later uops are counted in
    ``dropped`` instead of recorded (the trace covers the program's
    head, which is what pipeline debugging usually wants).
    """

    def __init__(self, max_uops: Optional[int] = 100_000,
                 occupancy_interval: int = 64) -> None:
        self.uops: List[Uop] = []
        self.dropped = 0
        self.max_uops = max_uops
        self.occupancy_interval = max(1, occupancy_interval)
        #: (cycle, rob, iq, lq, sq) samples.
        self.occupancy: List[Tuple[int, int, int, int, int]] = []
        #: Cycles the core actually stepped with this tracer attached.
        #: An attached tracer disables the core's fast paths, so a
        #: traced run must see every cycle: ``cycles_seen`` equal to
        #: the run's ``CoreResult.cycles`` proves no fast-forwarded
        #: window skipped past the tracer.
        self.cycles_seen = 0

    # -- core hooks --------------------------------------------------------

    def on_fetch(self, uop: Uop) -> None:
        if self.max_uops is not None and len(self.uops) >= self.max_uops:
            self.dropped += 1
            return
        self.uops.append(uop)

    def on_cycle(self, core) -> None:
        self.cycles_seen += 1
        if core.cycle % self.occupancy_interval == 0:
            lq, sq = core.lsq.occupancy
            self.occupancy.append(
                (core.cycle, len(core.rob), core.iq_count, lq, sq))


def _uop_end(uop: Uop) -> int:
    """Last cycle this uop was alive in the pipeline."""
    candidates = [uop.commit_cycle, uop.squash_cycle, uop.complete_cycle,
                  uop.issue_cycle, uop.rename_cycle, uop.fetch_cycle]
    return max(c for c in candidates if c >= 0)


def _assign_lanes(uops: List[Uop]) -> Dict[int, int]:
    """Interval-partition uops onto display lanes (Perfetto "threads")
    so concurrent uops never overlap on one track."""
    lanes: Dict[int, int] = {}
    free: List[Tuple[int, int]] = []  # (free-from cycle, lane)
    next_lane = 0
    for uop in uops:  # already in fetch (seq) order
        start = uop.fetch_cycle
        if free and free[0][0] <= start:
            _, lane = heapq.heappop(free)
        else:
            lane = next_lane
            next_lane += 1
        lanes[uop.seq] = lane
        heapq.heappush(free, (_uop_end(uop) + 1, lane))
    return lanes


def _asm(uop: Uop) -> str:
    from ..isa.assembler import format_instruction

    return format_instruction(uop.inst)


def chrome_trace(tracer: PipelineTracer, label: str = "repro",
                 ledger=None) -> Dict:
    """Project a recorded trace into Chrome trace format (JSON dict).

    Passing an :class:`~repro.uarch.speculation.InterventionLedger`
    merges the defense-intervention overlay (pid 2: one lane per
    gating hook) into the same timeline as the pipeline slices."""
    events: List[Dict] = [
        {"name": "process_name", "ph": "M", "pid": 0, "tid": 0,
         "args": {"name": f"{label}: pipeline"}},
        {"name": "process_name", "ph": "M", "pid": 1, "tid": 0,
         "args": {"name": f"{label}: occupancy"}},
    ]
    lanes = _assign_lanes(tracer.uops)
    for uop in tracer.uops:
        lane = lanes[uop.seq]
        for stage, start_attr, end_attr in _STAGES:
            start = getattr(uop, start_attr)
            if start < 0:
                break  # never reached this stage
            end = getattr(uop, end_attr)
            if end < 0:
                # Stage never finished: squashed (or still in flight at
                # halt); close the slice at the squash/last-seen cycle.
                end = _uop_end(uop)
            events.append({
                "name": stage,
                "cat": "squashed" if uop.squashed else "committed",
                "ph": "X",
                "ts": start,
                "dur": max(end - start, 1),
                "pid": 0,
                "tid": lane,
                "args": {"seq": uop.seq, "pc": uop.pc, "asm": _asm(uop),
                         "squashed": uop.squashed,
                         "mem_level": uop.mem_level,
                         "block_reason": uop.block_reason},
            })
    for name, index in (("ROB", 1), ("IQ", 2), ("LQ", 3), ("SQ", 4)):
        for sample in tracer.occupancy:
            events.append({
                "name": name, "ph": "C", "ts": sample[0],
                "pid": 1, "tid": 0, "args": {name: sample[index]},
            })
    if ledger is not None:
        from .speculation import ledger_chrome_events

        events.extend(ledger_chrome_events(ledger, label))
    return {
        "traceEvents": events,
        "displayTimeUnit": "ns",  # 1 "ns" == 1 core cycle
        "metadata": {"tool": "repro.uarch.trace",
                     "dropped_uops": tracer.dropped},
    }


def write_chrome_trace(path: Union[str, pathlib.Path],
                       tracer: PipelineTracer,
                       label: str = "repro",
                       ledger=None) -> pathlib.Path:
    """Write a Perfetto-loadable JSON trace file."""
    path = pathlib.Path(path)
    path.write_text(json.dumps(chrome_trace(tracer, label, ledger=ledger)))
    return path


# ----------------------------------------------------------------------
# Uop-stream differencing (leak forensics)
# ----------------------------------------------------------------------

def timing_signature(uop: Uop) -> Tuple:
    """Everything about a uop's pipeline walk that a co-resident timing
    adversary could in principle resolve: identity plus every per-stage
    timestamp and the squash outcome."""
    return (uop.pc, uop.fetch_cycle, uop.rename_cycle, uop.issue_cycle,
            uop.complete_cycle, uop.commit_cycle, uop.squash_cycle,
            uop.squashed)


def first_uop_divergence(uops_a: List[Uop],
                         uops_b: List[Uop]) -> Optional[int]:
    """Index of the first position where two traced uop streams differ
    in :func:`timing_signature` (or where one stream ends early); None
    if the streams are timing-identical."""
    for index, (a, b) in enumerate(zip(uops_a, uops_b)):
        if timing_signature(a) != timing_signature(b):
            return index
    if len(uops_a) != len(uops_b):
        return min(len(uops_a), len(uops_b))
    return None


#: (stage letter, timestamp attribute) for the text pipeline view.
_TEXT_MARKS = (("F", "fetch_cycle"), ("r", "rename_cycle"),
               ("i", "issue_cycle"), ("c", "complete_cycle"),
               ("C", "commit_cycle"), ("x", "squash_cycle"))


def text_pipeline(tracer: PipelineTracer, max_rows: int = 64,
                  max_cols: int = 160) -> str:
    """A Konata-style ASCII pipeline view of the first uops recorded."""
    uops = tracer.uops[:max_rows]
    if not uops:
        return "(empty trace)"
    origin = min(u.fetch_cycle for u in uops)
    lines = [f"cycle origin: {origin}   "
             "(F fetch, r rename, i issue, c complete, C commit, x squash)"]
    for uop in uops:
        end = min(_uop_end(uop) - origin, max_cols - 1)
        row = [" "] * (end + 1)
        start = uop.fetch_cycle - origin
        for col in range(start, end + 1):
            row[col] = "."
        for letter, attr in _TEXT_MARKS:
            cycle = getattr(uop, attr)
            if cycle >= 0:
                col = cycle - origin
                if 0 <= col < max_cols:
                    row[col] = letter
        label = f"{uop.seq:>5} pc={uop.pc:<4} {_asm(uop):<24}"
        lines.append(f"{label} |{''.join(row)}")
    if len(tracer.uops) > max_rows:
        lines.append(f"... {len(tracer.uops) - max_rows} more uops "
                     f"recorded ({tracer.dropped} dropped)")
    return "\n".join(lines)
