"""The compiled simulation backend: specialize, generate, ``exec``.

:class:`~repro.uarch.pipeline.Core` is a general interpreter — every
cycle it re-dispatches on opcode enums, re-reads configuration
attributes, and re-asks the defense questions whose answers were fixed
the moment the (program, core config, defense) triple was chosen.  This
module partial-evaluates that triple away: :func:`generate_source`
emits one flat ``run(core)`` function in which

* every ``CoreConfig`` scalar (width, latencies, queue capacities,
  speculation model, the squash-notification bug) is a literal,
* per-PC decode metadata (opcode kind, operand positions, immediates,
  targets, PROT prefixes) lives in module-level tuples indexed by PC,
  and the execute dispatch is an ``if``/``elif`` chain over only the
  opcodes the program actually contains — dead branches are elided,
* defense hooks the mechanism does not override are dropped entirely,
  along with the machinery that only exists to service them (a defense
  that never refuses ``may_resolve`` on a core without the buggy
  squash port cannot populate the pending-resolution list, so neither
  the retry loop nor its fast-forward cache check is emitted),
* all hot scalars (cycle, sequence counter, event counters, retry-cache
  fields) are function locals instead of attribute loads.

The generated function mutates the same ``Core`` state objects (PRF,
ROB, LSQ, caches, branch predictor, defense) the interpreter does and
writes every scalar back on exit, so ``Core._result()`` — and therefore
the bit-identical :class:`CoreResult` contract checked by the three-way
``repro diff`` — is shared with the other engines.

Compiled artifacts are content-addressed exactly like the bench result
cache: program fingerprint + full config + defense identity/params +
simulator-source hash (see :func:`compile_key`).  Artifacts are cached
in-process and on disk under ``<bench cache>/compiled/``.
"""

from __future__ import annotations

import os
import time
from typing import Dict, List, Optional, Tuple

from ..isa.operations import Cond, Op
from ..isa.registers import FLAGS, SP
from .config import CoreConfig, P_CORE, SpeculationModel
from .pipeline import (
    Core,
    CoreResult,
    DEFAULT_MAX_CYCLES,
    DEFAULT_NO_PROGRESS_LIMIT,
    _SQUASH_CAUSE,
)

#: Bump when the generator's output changes shape: invalidates every
#: cached artifact (the simulator-source hash usually also changes, but
#: the version makes intent explicit and survives hash collisions of
#: whitespace-only edits).
CODEGEN_VERSION = 2

#: Stable opcode -> kind-integer mapping used by the generated decode
#: tables (enum definition order; append-only by ISA convention).
KIND_OF: Dict[Op, int] = {op: i for i, op in enumerate(Op)}

_COND_CODE: Dict[Cond, int] = {c: i for i, c in enumerate(Cond)}

#: Condition-code -> inline flags test (flags bit 0 = ZF, 1 = signed
#: LT, 2 = unsigned B), mirroring ``eval_cond``.
_COND_EXPR = {
    _COND_CODE[Cond.EQ]: "(fl & 1) != 0",
    _COND_CODE[Cond.NE]: "(fl & 1) == 0",
    _COND_CODE[Cond.LT]: "(fl & 2) != 0",
    _COND_CODE[Cond.LE]: "(fl & 3) != 0",
    _COND_CODE[Cond.GT]: "(fl & 3) == 0",
    _COND_CODE[Cond.GE]: "(fl & 2) == 0",
    _COND_CODE[Cond.B]: "(fl & 4) != 0",
    _COND_CODE[Cond.AE]: "(fl & 4) == 0",
}

_M64 = "0xFFFFFFFFFFFFFFFF"
_MADDR = "0xFFFFFFFF"
_SBIT = "0x8000000000000000"
_NEVER_LIT = str(1 << 62)

#: ``uop.block_reason`` -> full stall-counter key (the generated code
#: skips the ``f"stall_{cause}"`` formatting the interpreter pays).
_B2C_LITERAL = ("{'defense_execute': 'stall_defense_transmitter', "
                "'div_busy': 'stall_div_busy', "
                "'disambiguation': 'stall_mem_disambiguation', "
                "'mfence': 'stall_dependency', "
                "'defense_resolution': 'stall_defense_resolution', "
                "'squash_notify': 'stall_squash_notify'}")


class CompileUnsupported(RuntimeError):
    """The (core, run) shape cannot use the compiled backend."""


# =====================================================================
# Defense traits: which hooks the generated code must call.
# =====================================================================


class DefenseTraits:
    """Compile-time facts about a defense instance.

    A hook is *live* when the class overrides the base
    :class:`~repro.defenses.base.Defense` implementation; dead hooks
    (base-class no-ops / always-allow) are elided from the generated
    source together with any machinery only they can trigger.
    """

    _HOOKS = ("on_rename", "may_execute", "may_resolve", "may_wakeup",
              "on_load_executed", "on_commit", "on_squash",
              "execute_recheck_seq", "resolve_recheck_seq",
              "wakeup_recheck_seq")

    def __init__(self, defense) -> None:
        from ..defenses.base import Defense

        cls = type(defense)
        for hook in self._HOOKS:
            live = getattr(cls, hook) is not getattr(Defense, hook)
            setattr(self, hook, live)
        self.load_sensitive = bool(defense.recheck_loads())

    def key(self) -> Tuple:
        return tuple(getattr(self, h) for h in self._HOOKS) + (
            self.load_sensitive,)


# =====================================================================
# Content-addressed artifact cache
# =====================================================================

_MEM_CACHE: Dict[str, object] = {}
_MEM_CACHE_LIMIT = 256


def compile_key(program, config: CoreConfig, defense) -> str:
    """Content hash of everything the generated source depends on.

    Mirrors the bench-cache keying discipline
    (:func:`repro.bench.executor.spec_cache_key`): the program
    fingerprint, the complete core configuration, the defense identity
    (class + constructor params + hook traits), the codegen version,
    and the versioned simulator-source hash — so editing any simulator
    package, any defense parameter, or any config field misses.
    """
    from ..bench.executor import _hash, code_version_hash, program_fingerprint

    traits = DefenseTraits(defense)
    defense_sig = (type(defense).__module__, type(defense).__qualname__,
                   repr(defense.compile_params()), traits.key())
    return _hash(
        f"compiled-v{CODEGEN_VERSION}".encode(),
        program_fingerprint(program).encode(),
        repr(config).encode(),
        repr(defense_sig).encode(),
        code_version_hash().encode(),
    )


def artifact_dir():
    from ..bench.executor import cache_dir

    return cache_dir() / "compiled"


def clear_compile_cache() -> None:
    """Drop the in-process compiled-function cache (tests)."""
    _MEM_CACHE.clear()


def compile_cache_info() -> Dict[str, int]:
    path = artifact_dir()
    on_disk = len(list(path.glob("*.py"))) if path.is_dir() else 0
    return {"memory": len(_MEM_CACHE), "disk": on_disk}


def compile_step(program, config: CoreConfig, defense, metrics=None):
    """Return the compiled ``run(core)`` function for the triple,
    consulting the in-memory and on-disk artifact caches."""
    from ..bench.executor import cache_enabled
    from ..metrics.registry import get_registry

    if metrics is None:
        metrics = get_registry()
    key = compile_key(program, config, defense)
    fn = _MEM_CACHE.get(key)
    if fn is not None:
        if metrics is not None:
            metrics.counter("uarch.compile_cache_hits").inc()
        return fn

    start = time.perf_counter()
    source = None
    disk = cache_enabled()
    path = artifact_dir() / f"{key}.py" if disk else None
    if disk and path.is_file():
        try:
            source = path.read_text()
        except OSError:
            source = None
    from_disk = source is not None
    if source is None:
        source = generate_source(program, config, defense)
        if disk:
            try:
                path.parent.mkdir(parents=True, exist_ok=True)
                tmp = path.with_suffix(f".tmp{os.getpid()}")
                tmp.write_text(source)
                tmp.replace(path)
            except OSError:
                pass
    namespace: Dict[str, object] = {"__name__": f"repro.uarch._compiled_{key[:12]}"}
    code = compile(source, f"<repro-compiled:{key[:12]}>", "exec")
    exec(code, namespace)  # noqa: S102 - our own generated source
    fn = namespace["run"]
    if len(_MEM_CACHE) >= _MEM_CACHE_LIMIT:
        _MEM_CACHE.clear()
    _MEM_CACHE[key] = fn
    if metrics is not None:
        if from_disk:
            metrics.counter("uarch.compile_cache_disk_hits").inc()
        else:
            metrics.counter("uarch.compile_cache_misses").inc()
        metrics.timer("uarch.compile_seconds").observe(
            time.perf_counter() - start)
    return fn


# =====================================================================
# Source generation
# =====================================================================


class _Emitter:
    """Indentation-tracking line buffer."""

    def __init__(self) -> None:
        self.lines: List[str] = []
        self.level = 0

    def __call__(self, text: str = "") -> None:
        if not text:
            self.lines.append("")
            return
        pad = "    " * self.level
        for line in text.split("\n"):
            self.lines.append(pad + line if line else "")

    def indent(self) -> None:
        self.level += 1

    def dedent(self) -> None:
        self.level -= 1

    def source(self) -> str:
        return "\n".join(self.lines) + "\n"


def _fmt_tuple(values) -> str:
    items = ", ".join(repr(v) for v in values)
    if len(values) == 1:
        return f"({items},)"
    return f"({items})"


def generate_source(program, config: CoreConfig, defense) -> str:
    """Generate the specialized module source for one triple.

    Deterministic in (program instructions, config, defense traits):
    no timestamps, hashes, or environment state are embedded, so the
    golden test can pin the output byte-for-byte.
    """
    if not program.is_linked:
        program = program.linked()
    traits = DefenseTraits(defense)
    insts = program.instructions
    plen = len(insts)
    if plen == 0:
        raise CompileUnsupported("empty program")

    # ---- decode columns ----------------------------------------------
    kinds, nd, dests, srcs = [], [], [], []
    imm_raw, imm_m64, tgt, condc, prot, hasrb = [], [], [], [], [], []
    ismem, isbr, isctrl, isld, isst, isdiv = [], [], [], [], [], []
    sqk = []  # per-PC squash-cause stats key ('' for non-branch PCs)
    for inst in insts:
        kinds.append(KIND_OF[inst.op])
        d = inst.dest_regs()
        nd.append(len(d))
        dests.append(tuple(d))
        srcs.append(tuple(inst.src_regs()))
        imm_raw.append(inst.imm)
        imm_m64.append(inst.imm & ((1 << 64) - 1))
        tgt.append(inst.target if isinstance(inst.target, int) else -1)
        condc.append(_COND_CODE.get(inst.cond, -1))
        prot.append(bool(inst.prot))
        hasrb.append(inst.rb is not None)
        ismem.append(bool(inst.is_mem))
        isbr.append(bool(inst.is_branch))
        isctrl.append(bool(inst.is_control))
        isld.append(bool(inst.is_load))
        isst.append(bool(inst.is_store))
        isdiv.append(bool(inst.is_div))
        sqk.append(_SQUASH_CAUSE.get(inst.op, ""))

    present = set(kinds)
    kind_counts = {k: kinds.count(k) for k in present}

    has_branches = any(isbr)
    has_loads = any(isld)
    has_stores = any(isst)
    has_divs = any(isdiv)
    has_mfence = KIND_OF[Op.MFENCE] in present
    has_halt = KIND_OF[Op.HALT] in present
    has_br = KIND_OF[Op.BR] in present
    has_ctrl = any(isctrl)

    ctrl = config.speculation_model is SpeculationModel.CONTROL
    buggy = bool(config.buggy_squash_notify)
    load_sens = traits.load_sensitive
    h_exec = traits.may_execute
    # Machinery liveness: what can actually happen on this triple.
    res_possible = has_branches and (traits.may_resolve or buggy)
    wake_possible = traits.may_wakeup
    blockable = h_exec or has_mfence or has_divs or has_loads

    width = config.width
    fbuf_cap = 2 * width
    alu_lat = config.alu_latency
    mul_lat = config.mul_latency

    # ---- condition strings (shared by stage + fast-forward) ----------
    def issue_ok() -> str:
        parts = ["is_valid", "is_squash == evt_squash",
                 "is_div == evt_div", "cycle < is_retry"]
        if ctrl:
            parts.append("is_resolve == evt_resolve")
        parts.append("(not is_hasdis or is_store == evt_store)")
        if load_sens:
            parts.append("is_load == evt_load")
        parts.append("robq and robq[0].seq < is_barrier")
        return "(" + "\n        and ".join(parts) + ")"

    def res_ok() -> str:
        parts = ["rs_valid", "rs_squash == evt_squash",
                 "rs_resolve == evt_resolve"]
        if load_sens:
            parts.append("rs_load == evt_load")
        parts.append("robq and robq[0].seq < rs_barrier")
        return "(" + "\n        and ".join(parts) + ")"

    def wake_ok() -> str:
        parts = ["wk_valid", "wk_squash == evt_squash"]
        if ctrl:
            parts.append("wk_resolve == evt_resolve")
        if load_sens:
            parts.append("wk_load == evt_load")
        parts.append("robq and robq[0].seq < wk_barrier")
        return "(" + "\n        and ".join(parts) + ")"

    s = _Emitter()
    s(f'"""Specialized pipeline for one (program, config, defense) triple.')
    s("")
    s("Generated by repro.uarch.compiled.generate_source; do not edit.")
    s(f"program: {plen} instructions")
    s(f"config: {config.name} (width={width}, "
      f"model={config.speculation_model.value}, buggy_squash={buggy})")
    s(f"defense: {type(defense).__module__}.{type(defense).__qualname__} "
      f"(live hooks: {', '.join(h for h in DefenseTraits._HOOKS if getattr(traits, h)) or 'none'})")
    s('"""')
    s("from collections import deque")
    s("from heapq import heappush, heappop")
    s("")
    s("from repro.uarch.uop import Uop")
    if has_branches:
        s("from repro.uarch.pipeline import hist_key as _hist")
    s("")
    s("# Per-PC decode columns (kind = Op enum index).")
    s(f"K = {_fmt_tuple(kinds)}")
    s(f"ND = {_fmt_tuple(nd)}")
    s(f"DESTS = {_fmt_tuple(dests)}")
    s(f"SRCS = {_fmt_tuple(srcs)}")
    s(f"IMM = {_fmt_tuple(imm_raw)}")
    s(f"IMMM = {_fmt_tuple(imm_m64)}")
    s(f"TGT = {_fmt_tuple(tgt)}")
    s(f"CONDC = {_fmt_tuple(condc)}")
    s(f"PROT = {_fmt_tuple(prot)}")
    s(f"HASRB = {_fmt_tuple(hasrb)}")
    s(f"ISMEM = {_fmt_tuple(ismem)}")
    s(f"ISBR = {_fmt_tuple(isbr)}")
    s(f"ISCTRL = {_fmt_tuple(isctrl)}")
    s(f"ISLD = {_fmt_tuple(isld)}")
    s(f"ISST = {_fmt_tuple(isst)}")
    s(f"ISDIV = {_fmt_tuple(isdiv)}")
    s(f"SQK = {_fmt_tuple(sqk)}")
    s("")
    s(f"_B2C = {_B2C_LITERAL}")
    s("")
    s("")
    s("def run(core):")
    s.indent()

    # ---- prologue ----------------------------------------------------
    s("program = core.program")
    s("insts = program.instructions")
    s("d = core.defense")
    s("dstats = d.stats")
    s("stats = core.stats")
    s("prf = core.prf")
    s("pvals = prf.values")
    s("pready = prf.ready")
    s("pprot = prf.prot")
    s("prf_freeq = prf._free")
    s("prf_free = prf.free")
    s("rmap = core.rename_map.mapping")
    s("arch_values = core.arch_values")
    s("robq = core.rob.entries")
    s("lq = core.lsq.loads")
    s("sq = core.lsq.stores")
    s("caches = core.caches")
    s("c_access = caches.access")
    s("mem_write = core.memory.write_word")
    if has_loads:
        s("mem_read = core.memory.read_word")
        s("t_word_prot = core.mem_tags.word_protected")
        s("t_clear = core.mem_tags.clear_word")
    if has_stores:
        s("t_set = core.mem_tags.set_word")
    s("bp = core.bp")
    s("bp_predict = bp.predict_next")
    s("bp_snapshot = bp.snapshot")
    if has_branches:
        s("bp_train = bp.train")
        s("bp_restore = bp.restore")
    s("committed_list = core.committed")
    s("waiters = core._waiters")
    s("wheel = core._wheel")
    s("wtimes = core._wheel_times")
    s("ready_q = core._ready_q")
    s("producer_of = core._producer_of")
    s("fbuf = core.fetch_buffer")
    s("maxc = core.max_cycles")
    s("limit = core.no_progress_limit")
    # Live defense hook bindings only.
    if traits.on_rename:
        s("d_on_rename = d.on_rename")
    if h_exec:
        s("d_may_exec = d.may_execute")
    if traits.may_resolve:
        s("d_may_res = d.may_resolve")
    if wake_possible:
        s("d_may_wake = d.may_wakeup")
    if traits.on_load_executed:
        s("d_on_loadexec = d.on_load_executed")
    if traits.on_commit:
        s("d_on_commit = d.on_commit")
    if traits.on_squash:
        s("d_on_squash = d.on_squash")
    if h_exec and traits.execute_recheck_seq:
        s("d_exec_recheck = d.execute_recheck_seq")
    if res_possible and traits.may_resolve and traits.resolve_recheck_seq:
        s("d_res_recheck = d.resolve_recheck_seq")
    if wake_possible and traits.wakeup_recheck_seq:
        s("d_wake_recheck = d.wakeup_recheck_seq")
    s("")
    s("# hot scalars, written back on exit")
    s("cycle = core.cycle")
    s("seqc = core.seq_counter")
    s("fpc = core.fetch_pc")
    s("fstall = core.fetch_stalled_until")
    s("fblocked = core.fetch_blocked")
    s("halted = core.halted")
    s("halt_reason = core.halt_reason")
    s("divbusy = core.div_busy_until")
    s("iq_count = core.iq_count")
    s("last_commit = core._last_commit_cycle")
    s("rename_block = None")
    s("disamb_blocker = core._disamb_blocker")
    s("blocked = core._blocked")
    s("pend_wake = core._pending_wakeup")
    s("pend_res = core._pending_resolution")
    s("evt_squash = core._evt_squash")
    s("evt_resolve = core._evt_resolve")
    s("evt_div = core._evt_div")
    s("evt_store = core._evt_store")
    s("evt_load = core._evt_load")
    s("is_valid = core._issue_valid")
    s("is_squash = core._issue_squash")
    s("is_resolve = core._issue_resolve")
    s("is_div = core._issue_div")
    s("is_store = core._issue_store")
    s("is_load = core._issue_load")
    s("is_hasdis = core._issue_has_disamb")
    s("is_barrier = core._issue_barrier")
    s("is_retry = core._issue_retry_cycle")
    s("blocked_refusals = core._blocked_refusals")
    s("rs_valid = core._res_valid")
    s("rs_squash = core._res_squash")
    s("rs_resolve = core._res_resolve")
    s("rs_load = core._res_load")
    s("rs_barrier = core._res_barrier")
    s("rs_live = core._res_live")
    s("rs_refused = core._res_refused")
    s("wk_valid = core._wake_valid")
    s("wk_squash = core._wake_squash")
    s("wk_resolve = core._wake_resolve")
    s("wk_load = core._wake_load")
    s("wk_barrier = core._wake_barrier")
    s("ff_cycles = core._ff_cycles")
    s("ff_jumps = core._ff_jumps")
    s("")

    # ---- do_wakeup ---------------------------------------------------
    s("def do_wakeup(u):")
    s.indent()
    if wake_possible:
        s("if u.wakeup_block_cycle >= 0:")
        s.indent()
        s("wb = u.wakeup_block_cycle")
        s("u.wakeup_block_cycle = -1")
        s("dstats['wakeup_delay_cycles'] += cycle - wb")
        s("stats['_open_wakeup'] -= 1")
        s("stats['_open_wakeup_sum'] -= wb")
        s.dedent()
    s("u.wakeup_pending = False")
    s("for _, preg in u.pdests:")
    s.indent()
    s("pready[preg] = True")
    s("ws = waiters.pop(preg, None)")
    s("if ws:")
    s.indent()
    s("for w in ws:")
    s.indent()
    s("if w.squashed or w.issued:")
    s("    continue")
    s("w.unready_count -= 1")
    s("if w.unready_count == 0:")
    s("    heappush(ready_q, (w.seq, w))")
    s.dedent()
    s.dedent()
    s.dedent()
    s.dedent()
    s("")

    # ---- execute dispatch (emitted at two sites) ---------------------
    def emit_exec_dispatch(fail: str, success: str) -> None:
        """Emit the per-kind execute dispatch for uop ``u``.

        ``fail``/``success`` are the control-flow tails for refusal and
        issue (either ``return False``/``return True`` inside the
        ``try_exec`` closure, or ``continue``-based inline forms in the
        hot ready-queue loop).
        """
        def gate() -> None:
            if h_exec:
                s("if not d_may_exec(u):")
                s.indent()
                s("dstats['delayed_transmitters'] += 1")
                s("if u.exec_block_cycle < 0:")
                s.indent()
                s("u.exec_block_cycle = cycle")
                s("dstats['exec_interventions'] += 1")
                s("stats['_open_exec'] += 1")
                s("stats['_open_exec_sum'] += cycle")
                s.dedent()
                s("u.block_reason = 'defense_execute'")
                s(fail)
                s.dedent()
                # Close at the gate-allow (before any structural scan),
                # mirroring Core._try_execute.
                s("if u.exec_block_cycle >= 0:")
                s.indent()
                s("eb = u.exec_block_cycle")
                s("u.exec_block_cycle = -1")
                s("dstats['exec_delay_cycles'] += cycle - eb")
                s("stats['_open_exec'] -= 1")
                s("stats['_open_exec_sum'] -= eb")
                s.dedent()

        def fwd_scan() -> None:
            # LSQ memory disambiguation (LoadStoreQueue.forwarding_store)
            s("best = None")
            s("stall_st = None")
            s("for st in sq:")
            s.indent()
            s("if st.seq >= u.seq:")
            s("    continue")
            s("sma = st.mem_addr")
            s("if sma is None:")
            s("    stall_st = st")
            s("    break")
            s("delta = sma - addr")
            s("if -8 < delta < 8:")
            s.indent()
            s("if sma != addr:")
            s("    stall_st = st")
            s("    break")
            s("if best is None or st.seq > best.seq:")
            s("    best = st")
            s.dedent()
            s.dedent()
            s("if stall_st is not None:")
            s.indent()
            s("disamb_blocker = stall_st")
            s("u.block_reason = 'disambiguation'")
            s(fail)
            s.dedent()
            s("if best is not None:")
            s.indent()
            s("value = best.store_data")
            s(f"latency = {config.store_forward_latency}")
            s("u.lsq_prot = best.lsq_prot")
            s("u.forwarded_from = best")
            s("u.mem_level = 'sq'")
            s.dedent()
            s("else:")
            s.indent()
            s("latency = c_access(addr)")
            s("value = mem_read(addr)")
            s("u.lsq_prot = t_word_prot(addr)")
            s("u.mem_level = caches.last_level")
            s.dedent()
            s("u.mem_value = value")

        # Order the chain hottest-kind first.
        issue_kinds = [k for k in sorted(present,
                                         key=lambda k: -kind_counts[k])
                       if k not in (KIND_OF[Op.NOP], KIND_OF[Op.HALT],
                                    KIND_OF[Op.JMP])]
        first = True
        for k in issue_kinds:
            op = list(Op)[k]
            s(f"{'if' if first else 'elif'} k == {k}:  # {op.name}")
            first = False
            s.indent()
            if op is Op.MFENCE:
                s("if not robq or robq[0].seq != u.seq:")
                s.indent()
                s("u.block_reason = 'mfence'")
                s(fail)
                s.dedent()
                s("latency = 1")
                # Release the frontend stall this fence imposed at
                # fetch (Core._try_execute mirror).
                s("fblocked = False")
            elif op in (Op.DIV, Op.REM):
                s("if cycle < divbusy:")
                s.indent()
                s("u.block_reason = 'div_busy'")
                s(fail)
                s.dedent()
                gate()
                s("ps = u.psrcs")
                s("a = pvals[ps[0][1]]")
                s("b = pvals[ps[1][1]]")
                s("if b == 0:")
                s.indent()
                s(f"v = {_M64}" if op is Op.DIV else "v = a")
                s(f"latency = {config.div_base_latency}")
                s.dedent()
                s("else:")
                s.indent()
                s("q = a // b")
                if op is Op.DIV:
                    s(f"v = q & {_M64}")
                else:
                    s("v = a - q * b")
                s(f"latency = {config.div_base_latency + 1} "
                  "+ q.bit_length() // 8")
                s.dedent()
                s("pvals[u.pdests[0][1]] = v")
                s("u.result_values = ((DESTS[pc][0], v),)")
                s("divbusy = cycle + latency")
            elif op in (Op.LOAD, Op.POP, Op.RET):
                gate()
                if op is Op.LOAD:
                    s("ps = u.psrcs")
                    s("if HASRB[pc]:")
                    s(f"    addr = (pvals[ps[0][1]] + pvals[ps[1][1]]"
                      f" + IMM[pc]) & {_MADDR}")
                    s("else:")
                    s(f"    addr = (pvals[ps[0][1]] + IMM[pc]) & {_MADDR}")
                else:
                    s("sp = pvals[u.psrcs[0][1]]")
                    s(f"addr = sp & {_MADDR}")
                s("u.mem_addr = addr")
                fwd_scan()
                if op is Op.LOAD:
                    s(f"v = value & {_M64}")
                    s("pvals[u.pdests[0][1]] = v")
                    s("u.result_values = ((DESTS[pc][0], v),)")
                elif op is Op.POP:
                    s(f"v2 = (sp + 8) & {_M64}")
                    s("rd = DESTS[pc][0]")
                    s(f"v1 = v2 if rd == {SP} else value & {_M64}")
                    s("pd = u.pdests")
                    s("pvals[pd[0][1]] = v1")
                    s("pvals[pd[1][1]] = v2")
                    s(f"u.result_values = ((rd, v1), ({SP}, v2))")
                else:  # RET
                    s(f"v2 = (sp + 8) & {_M64}")
                    s("pvals[u.pdests[0][1]] = v2")
                    s(f"u.result_values = (({SP}, v2),)")
                    s("u.taken = True")
                    s("u.actual_next = value")
                if traits.on_load_executed:
                    s("d_on_loadexec(u)")
            elif op in (Op.STORE, Op.PUSH, Op.CALL):
                gate()
                if op is Op.STORE:
                    s("ps = u.psrcs")
                    s("if HASRB[pc]:")
                    s(f"    addr = (pvals[ps[0][1]] + pvals[ps[1][1]]"
                      f" + IMM[pc]) & {_MADDR}")
                    s("    dp = ps[2][1]")
                    s("else:")
                    s(f"    addr = (pvals[ps[0][1]] + IMM[pc]) & {_MADDR}")
                    s("    dp = ps[1][1]")
                    s("u.mem_addr = addr")
                    s("u.store_data = pvals[dp]")
                    s("u.lsq_prot = pprot[dp]")
                elif op is Op.PUSH:
                    s("ps = u.psrcs")
                    s("sp = pvals[ps[0][1]]")
                    s(f"nsp = (sp - 8) & {_M64}")
                    s(f"addr = nsp & {_MADDR}")
                    s("u.mem_addr = addr")
                    s("dp = ps[1][1]")
                    s("u.store_data = pvals[dp]")
                    s("u.lsq_prot = pprot[dp]")
                    s("pvals[u.pdests[0][1]] = nsp")
                    s(f"u.result_values = (({SP}, nsp),)")
                else:  # CALL
                    s("sp = pvals[u.psrcs[0][1]]")
                    s(f"nsp = (sp - 8) & {_M64}")
                    s(f"addr = nsp & {_MADDR}")
                    s("u.mem_addr = addr")
                    s("u.store_data = pc + 1")
                    s("u.lsq_prot = PROT[pc]")
                    s("pvals[u.pdests[0][1]] = nsp")
                    s(f"u.result_values = (({SP}, nsp),)")
                    s("u.taken = True")
                    s("u.actual_next = TGT[pc]")
                s("c_access(addr)")
                s("latency = 1")
            elif op is Op.MOVI:
                gate()
                s("v = IMMM[pc]")
                s("pvals[u.pdests[0][1]] = v")
                s("u.result_values = ((DESTS[pc][0], v),)")
                s(f"latency = {alu_lat}")
            elif op is Op.MOV:
                gate()
                s("v = pvals[u.psrcs[0][1]]")
                s("pvals[u.pdests[0][1]] = v")
                s("u.result_values = ((DESTS[pc][0], v),)")
                s(f"latency = {alu_lat}")
            elif op in (Op.CMP, Op.TEST, Op.CMPI):
                gate()
                if op is Op.CMPI:
                    s("a = pvals[u.psrcs[0][1]]")
                    s("b = IMMM[pc]")
                else:
                    s("ps = u.psrcs")
                    s("a = pvals[ps[0][1]]")
                    s("b = pvals[ps[1][1]]")
                if op is Op.TEST:
                    s("t = a & b")
                    s("fl = 1 if t == 0 else 0")
                    s(f"if t >= {_SBIT}:")
                    s("    fl |= 2")
                else:
                    s("fl = 1 if a == b else 0")
                    s(f"if (a ^ {_SBIT}) < (b ^ {_SBIT}):")
                    s("    fl |= 2")
                    s("if a < b:")
                    s("    fl |= 4")
                s("pvals[u.pdests[0][1]] = fl")
                s(f"u.result_values = (({FLAGS}, fl),)")
                s(f"latency = {alu_lat}")
            elif op is Op.BR:
                gate()
                s("fl = pvals[u.psrcs[0][1]]")
                s("c = CONDC[pc]")
                conds = sorted({condc[i] for i in range(plen)
                                if kinds[i] == k})
                cfirst = True
                for cc in conds:
                    s(f"{'if' if cfirst else 'elif'} c == {cc}:"
                      f"  # {list(Cond)[cc].name}")
                    s(f"    tk = {_COND_EXPR[cc]}")
                    cfirst = False
                s("u.taken = tk")
                s("u.actual_next = TGT[pc] if tk else pc + 1")
                s(f"latency = {alu_lat}")
            elif op is Op.JMPI:
                gate()
                s("u.taken = True")
                s("u.actual_next = pvals[u.psrcs[0][1]]")
                s(f"latency = {alu_lat}")
            elif op in (Op.ADD, Op.SUB, Op.AND, Op.OR, Op.XOR, Op.SHL,
                        Op.SHR, Op.MUL):
                gate()
                s("ps = u.psrcs")
                s("a = pvals[ps[0][1]]")
                s("b = pvals[ps[1][1]]")
                expr = {
                    Op.ADD: f"(a + b) & {_M64}",
                    Op.SUB: f"(a - b) & {_M64}",
                    Op.AND: "a & b",
                    Op.OR: "a | b",
                    Op.XOR: "a ^ b",
                    Op.SHL: f"(a << (b & 63)) & {_M64}",
                    Op.SHR: "a >> (b & 63)",
                    Op.MUL: f"(a * b) & {_M64}",
                }[op]
                s(f"v = {expr}")
                s("pvals[u.pdests[0][1]] = v")
                s("u.result_values = ((DESTS[pc][0], v),)")
                s(f"latency = {mul_lat if op is Op.MUL else alu_lat}")
            elif op in (Op.ADDI, Op.SUBI, Op.ANDI, Op.ORI, Op.XORI,
                        Op.SHLI, Op.SHRI, Op.MULI):
                gate()
                s("a = pvals[u.psrcs[0][1]]")
                s("b = IMMM[pc]")
                expr = {
                    Op.ADDI: f"(a + b) & {_M64}",
                    Op.SUBI: f"(a - b) & {_M64}",
                    Op.ANDI: "a & b",
                    Op.ORI: "a | b",
                    Op.XORI: "a ^ b",
                    Op.SHLI: f"(a << (b & 63)) & {_M64}",
                    Op.SHRI: "a >> (b & 63)",
                    Op.MULI: f"(a * b) & {_M64}",
                }[op]
                s(f"v = {expr}")
                s("pvals[u.pdests[0][1]] = v")
                s("u.result_values = ((DESTS[pc][0], v),)")
                s(f"latency = {mul_lat if op is Op.MULI else alu_lat}")
            else:  # pragma: no cover - decode table covers all issue ops
                s("raise AssertionError('unreachable kind')")
            s.dedent()
        if not first:
            s("else:  # pragma: no cover")
            s("    raise AssertionError('unhandled kind %d' % k)")
        # shared issue tail
        s("u.block_reason = None")
        s("u.issued = True")
        s("u.in_iq = False")
        s("iq_count -= 1")
        s("u.issue_cycle = cycle")
        s("stats['issued_uops'] += 1")
        ev = []
        if has_loads:
            ev.append(("if", "ISLD[pc]", "evt_load += 1"))
        if has_stores:
            ev.append(("elif" if ev else "if", "ISST[pc]",
                       "evt_store += 1"))
        if has_divs:
            ev.append(("elif" if ev else "if", "ISDIV[pc]",
                       "evt_div += 1"))
        for kw, cond, body in ev:
            s(f"{kw} {cond}:")
            s(f"    {body}")
        s("done = cycle + (latency if latency > 1 else 1)")
        s("bkt = wheel.get(done)")
        s("if bkt is None:")
        s.indent()
        s("wheel[done] = [u]")
        s("heappush(wtimes, done)")
        s.dedent()
        s("else:")
        s("    bkt.append(u)")
        s(success)

    # try_exec closure (cold path: blocked-list retry).
    if blockable:
        s("def try_exec(u):")
        s.indent()
        s("nonlocal divbusy, iq_count, disamb_blocker, "
          "evt_load, evt_store, evt_div"
          + (", fblocked" if has_mfence else ""))
        s("pc = u.pc")
        s("k = K[pc]")
        emit_exec_dispatch(fail="return False", success="return True")
        s.dedent()
        s("")

    # ---- attempt_res closure -----------------------------------------
    if has_branches:
        s("def attempt_res(u):")
        s.indent()
        s("nonlocal evt_resolve, evt_squash, rs_valid, iq_count, "
          "fpc, fstall, fblocked")
        if traits.may_resolve:
            s("if not d_may_res(u):")
            s.indent()
            s("dstats['delayed_resolutions'] += 1")
            s("if u.resolve_block_cycle < 0:")
            s.indent()
            s("u.resolve_block_cycle = cycle")
            s("dstats['resolve_interventions'] += 1")
            s("stats['_open_resolve'] += 1")
            s("stats['_open_resolve_sum'] += cycle")
            s.dedent()
            s("u.block_reason = 'defense_resolution'")
            s("u.resolution_pending = True")
            s("pend_res.append(u)")
            s("rs_valid = False")
            s("return")
            s.dedent()
            # Close before the buggy-squash-port check: bug-port hold
            # time is never charged to the defense (Core mirror).
            s("if u.resolve_block_cycle >= 0:")
            s.indent()
            s("rb = u.resolve_block_cycle")
            s("u.resolve_block_cycle = -1")
            s("dstats['resolve_delay_cycles'] += cycle - rb")
            s("stats['_open_resolve'] -= 1")
            s("stats['_open_resolve_sum'] -= rb")
            s.dedent()
        if buggy:
            s("for o in pend_res:")
            s.indent()
            s("if (o.seq < u.seq and not o.squashed and o.executed")
            s("        and o.actual_next != o.predicted_next):")
            s.indent()
            s("u.block_reason = 'squash_notify'")
            s("u.resolution_pending = True")
            s("pend_res.append(u)")
            s("rs_valid = False")
            s("return")
            s.dedent()
            s.dedent()
        s("evt_resolve += 1")
        s("dep = stats['_spec_depth']")
        s("stats[_hist('spec_depth', dep)] += 1")
        s("stats['_spec_depth'] = dep - 1")
        s("u.block_reason = None")
        s("u.resolved = True")
        s("u.resolution_pending = False")
        s("infl = core._inflight_branches")
        s("while infl and (infl[0].squashed or infl[0].resolved):")
        s("    infl.popleft()")
        s("bp_train(u.pc, u.inst, True if u.taken else False, "
          "u.actual_next, u.bp_index)")
        s("if u.actual_next != u.predicted_next:")
        s.indent()
        s("u.mispredicted = True")
        s("# squash everything younger (youngest-first rollback)")
        s("evt_squash += 1")
        s("stats['squashes'] += 1")
        s("stats[SQK[u.pc]] += 1")
        s("bseq = u.seq")
        s("n_sq = 0")
        s("while robq and robq[-1].seq > bseq:")
        s.indent()
        s("y = robq.pop()")
        s("y.in_rob = False")
        s("n_sq += 1")
        s("y.squashed = True")
        s("y.squash_cycle = cycle")
        s("if ISBR[y.pc] and not y.resolved:")
        s("    stats['_spec_depth'] -= 1")
        if h_exec:
            s("if y.exec_block_cycle >= 0:")
            s.indent()
            s("eb = y.exec_block_cycle")
            s("y.exec_block_cycle = -1")
            s("dstats['exec_delay_cycles'] += cycle - eb")
            s("stats['_open_exec'] -= 1")
            s("stats['_open_exec_sum'] -= eb")
            s.dedent()
        if traits.may_resolve:
            s("if y.resolve_block_cycle >= 0:")
            s.indent()
            s("rb = y.resolve_block_cycle")
            s("y.resolve_block_cycle = -1")
            s("dstats['resolve_delay_cycles'] += cycle - rb")
            s("stats['_open_resolve'] -= 1")
            s("stats['_open_resolve_sum'] -= rb")
            s.dedent()
        if wake_possible:
            s("if y.wakeup_block_cycle >= 0:")
            s.indent()
            s("wb = y.wakeup_block_cycle")
            s("y.wakeup_block_cycle = -1")
            s("dstats['wakeup_delay_cycles'] += cycle - wb")
            s("stats['_open_wakeup'] -= 1")
            s("stats['_open_wakeup_sum'] -= wb")
            s.dedent()
        s("for pd, opd in zip(y.pdests, y.old_pdests):")
        s("    rmap[pd[0]] = opd[1]")
        s("for _, pg in y.pdests:")
        s("    prf_free(pg)")
        if has_loads:
            s("if y.is_load:")
            s.indent()
            s("try:")
            s("    lq.remove(y)")
            s("except ValueError:")
            s("    pass")
            s.dedent()
        if has_stores:
            s("if y.is_store:")
            s.indent()
            s("try:")
            s("    sq.remove(y)")
            s("except ValueError:")
            s("    pass")
            s.dedent()
        s("if y.in_iq:")
        s.indent()
        s("y.in_iq = False")
        s("iq_count -= 1")
        s.dedent()
        if traits.on_squash:
            s("d_on_squash(y)")
        s.dedent()
        s("stats['squashed_uops'] += n_sq")
        s("stats[_hist('squash_cascade', n_sq)] += 1")
        s("for _, fu in fbuf:")
        s.indent()
        s("fu.squashed = True")
        s("fu.squash_cycle = cycle")
        s.dedent()
        s("fbuf.clear()")
        s("core._inflight_branches = deque(")
        s("    b for b in core._inflight_branches if not b.squashed)")
        s("infl = core._inflight_branches")
        s("while infl and (infl[0].squashed or infl[0].resolved):")
        s("    infl.popleft()")
        s("snap = u.bp_snapshot")
        s("if snap is not None:")
        s.indent()
        s("bp_restore(snap)")
        if has_br:
            s(f"if K[u.pc] == {KIND_OF[Op.BR]}:  # BR")
            s.indent()
            s("if (u.predicted_next != u.pc + 1) != "
              "(True if u.taken else False):")
            s("    bp.direction.history ^= 1")
            s.dedent()
        s.dedent()
        s("fpc = u.actual_next")
        s(f"fstall = cycle + {config.redirect_penalty}")
        s("fblocked = False")
        s.dedent()  # mispredict branch
        s.dedent()  # attempt_res
        s("")

    # ---- stall classification ----------------------------------------
    s("def uop_stall(u):")
    s.indent()
    s("if u.issued:")
    s.indent()
    if has_divs:
        s("if ISDIV[u.pc]:")
        s("    return 'stall_div_busy'")
    s("ml = u.mem_level")
    s("if ml == 'l2' or ml == 'l3' or ml == 'mem':")
    s("    return 'stall_cache_miss'")
    s("return 'stall_exec_latency'")
    s.dedent()
    s("br = u.block_reason")
    s("if br is not None:")
    s("    return _B2C.get(br)")
    s("return None")
    s.dedent()
    s("")
    s("def classify(head):")
    s.indent()
    s("if head is None:")
    s.indent()
    s("if cycle < fstall:")
    s("    return 'stall_fetch_redirect'")
    s(f"if not fbuf and not 0 <= fpc < {plen}:")
    s("    return 'stall_no_progress'")
    s("return 'stall_frontend'")
    s.dedent()
    s("if head.is_branch and head.completed and not head.resolved:")
    s("    return _B2C.get(head.block_reason, 'stall_defense_resolution')")
    s("if head.issued:")
    s("    return uop_stall(head) or 'stall_exec_latency'")
    s("if head.unready_count > 0:")
    s.indent()
    s("for _, pg in head.psrcs:")
    s.indent()
    s("if pready[pg]:")
    s("    continue")
    s("producer = producer_of.get(pg)")
    s("if producer is None or producer.squashed:")
    s("    continue")
    s("if producer.wakeup_pending:")
    s("    return 'stall_defense_wakeup'")
    s("cause = uop_stall(producer)")
    s("if cause is not None:")
    s("    return cause")
    s.dedent()
    s("if rename_block is not None:")
    s("    return rename_block")
    s("return 'stall_dependency'")
    s.dedent()
    s("return uop_stall(head) or 'stall_issue_bw'")
    s.dedent()
    s("")
    s("def rename_blocked(u):")
    s.indent()
    s("pc = u.pc")
    cond = [f"len(robq) >= {config.rob_size}",
            f"len(prf_freeq) < ND[pc]"]
    if has_loads:
        cond.append(f"(ISLD[pc] and len(lq) >= {config.lq_size})")
    if has_stores:
        cond.append(f"(ISST[pc] and len(sq) >= {config.sq_size})")
    cond.append(f"iq_count >= {config.iq_size}")
    s("return (" + "\n        or ".join(cond) + ")")
    s.dedent()
    s("")

    # ---- main loop ---------------------------------------------------
    s("while not halted and cycle < maxc:")
    s.indent()
    s("if limit is not None and cycle - last_commit >= limit:")
    s("    break")
    s("")
    s("# ---- commit ----")
    s("committed_n = 0")
    s("cause = None")
    s(f"for _ in range({width}):")
    s.indent()
    s("if robq:")
    s.indent()
    s("head = robq[0]")
    s("if not head.completed or (head.is_branch and not head.resolved):")
    s.indent()
    s("cause = classify(head)")
    s("break")
    s.dedent()
    s.dedent()
    s("else:")
    s.indent()
    s("cause = classify(None)")
    s("break")
    s.dedent()
    s("last_commit = cycle")
    s("hpc = head.pc")
    if has_halt:
        s(f"if K[hpc] == {KIND_OF[Op.HALT]}:  # HALT")
        s.indent()
        s("head.committed = True")
        s("head.commit_cycle = cycle")
        s("committed_list.append(head)")
        s("robq.popleft()")
        s("head.in_rob = False")
        s("halted = True")
        s("halt_reason = 'halt'")
        s("committed_n += 1")
        s("break")
        s.dedent()
    if has_stores:
        s("if ISST[hpc]:")
        s.indent()
        s("ma = head.mem_addr")
        s("mem_write(ma, head.store_data)")
        s("c_access(ma)")
        s("t_set(ma, True if head.lsq_prot else False)")
        s.dedent()
    if has_loads:
        s("if ISLD[hpc] and not PROT[hpc]:")
        s("    t_clear(head.mem_addr)")
    s("for areg, value in head.result_values:")
    s("    arch_values[areg] = value")
    s("for _, old_pg in head.old_pdests:")
    s("    prf_free(old_pg)")
    if has_branches:
        s("if ISBR[hpc]:")
        s.indent()
        s("stats['committed_branches'] += 1")
        s("if head.mispredicted:")
        s("    stats['mispredicted_branches'] += 1")
        s.dedent()
    if traits.on_commit:
        s("d_on_commit(head)")
    s("head.committed = True")
    s("head.commit_cycle = cycle")
    s("committed_list.append(head)")
    s("robq.popleft()")
    s("head.in_rob = False")
    if has_loads:
        s("if ISLD[hpc]:")
        s.indent()
        s("try:")
        s("    lq.remove(head)")
        s("except ValueError:")
        s("    pass")
        s.dedent()
    if has_stores:
        s("if ISST[hpc]:")
        s.indent()
        s("try:")
        s("    sq.remove(head)")
        s("except ValueError:")
        s("    pass")
        s.dedent()
    if has_branches:
        s("if ISBR[hpc]:")
        s.indent()
        s("infl = core._inflight_branches")
        s("while infl and (infl[0].squashed or infl[0].resolved):")
        s("    infl.popleft()")
        s.dedent()
    s("next_pc = head.actual_next if ISCTRL[hpc] else hpc + 1")
    s(f"if not 0 <= next_pc < {plen}:")
    s.indent()
    s("halted = True")
    s(f"halt_reason = 'off_end' if next_pc == {plen} else 'bad_pc'")
    s.dedent()
    s("committed_n += 1")
    s("if halted:")
    s("    break")
    s.dedent()  # commit for
    s("")
    s("if not halted:")
    s.indent()

    # ---- complete stage ----------------------------------------------
    s("# ---- complete / wakeup / resolve ----")
    s("bkt = wheel.pop(cycle, None)")
    s("if bkt is not None:")
    s.indent()
    s("for u in bkt:")
    s.indent()
    s("if u.squashed:")
    s("    continue")
    s("u.executed = True")
    s("u.complete_cycle = cycle")
    s("u.completed = True")
    if has_branches:
        s("if u.is_branch:")
        s("    attempt_res(u)")
    s("if u.pdests:")
    s.indent()
    if wake_possible:
        s("if d_may_wake(u):")
        s("    do_wakeup(u)")
        s("else:")
        s.indent()
        s("dstats['delayed_wakeups'] += 1")
        s("if u.wakeup_block_cycle < 0:")
        s.indent()
        s("u.wakeup_block_cycle = cycle")
        s("dstats['wakeup_interventions'] += 1")
        s("stats['_open_wakeup'] += 1")
        s("stats['_open_wakeup_sum'] += cycle")
        s.dedent()
        s("u.wakeup_pending = True")
        s("pend_wake.append(u)")
        s("wk_valid = False")
        s.dedent()
    else:
        s("do_wakeup(u)")
    s.dedent()
    s.dedent()
    s.dedent()
    s("")

    # ---- retry pending -----------------------------------------------
    if res_possible:
        s("# ---- pending-resolution retry ----")
        s("if pend_res:")
        s.indent()
        s(f"if {res_ok()}:")
        s.indent()
        s("stats['delayed_resolution_cycles'] += rs_live")
        s("dstats['delayed_resolutions'] += rs_refused")
        s.dedent()
        s("else:")
        s.indent()
        s("rs_valid = False")
        s("squash0 = evt_squash")
        s("resolve0 = evt_resolve")
        s("load0 = evt_load")
        s("refused0 = dstats['delayed_resolutions']")
        s("live = 0")
        s("pending = pend_res")
        s("pending.sort()")
        s("pend_res = []")
        s("for u in pending:")
        s.indent()
        s("if u.squashed or u.resolved:")
        s("    continue")
        s("live += 1")
        s("stats['delayed_resolution_cycles'] += 1")
        s("attempt_res(u)")
        s.dedent()
        s("if (pend_res and squash0 == evt_squash")
        s("        and resolve0 == evt_resolve and load0 == evt_load):")
        s.indent()
        s(f"barrier = {_NEVER_LIT}")
        s("for u in pend_res:")
        s.indent()
        if traits.may_resolve:
            s("if u.block_reason == 'defense_resolution':")
            s.indent()
            if traits.resolve_recheck_seq:
                s("seq = d_res_recheck(u)")
                s("if seq is None:")
                s("    seq = robq[0].seq + 1")
            else:
                s("seq = robq[0].seq + 1")
            s("if seq < barrier:")
            s("    barrier = seq")
            s.dedent()
        else:
            s("pass  # squash_notify entries need no barrier")
        s.dedent()
        s("rs_valid = True")
        s("rs_squash = squash0")
        s("rs_resolve = resolve0")
        s("rs_load = load0")
        s("rs_barrier = barrier")
        s("rs_live = live")
        s("rs_refused = dstats['delayed_resolutions'] - refused0")
        s.dedent()
        s.dedent()
        s.dedent()
        s("")
    if wake_possible:
        s("# ---- pending-wakeup retry ----")
        s("if pend_wake:")
        s.indent()
        s(f"if not {wake_ok()}:")
        s.indent()
        s("wk_valid = False")
        s("squash0 = evt_squash")
        s("resolve0 = evt_resolve")
        s("load0 = evt_load")
        s("pending = pend_wake")
        s("pend_wake = []")
        s("for u in pending:")
        s.indent()
        s("if u.squashed:")
        s("    continue")
        s("if d_may_wake(u):")
        s("    do_wakeup(u)")
        s("else:")
        s("    pend_wake.append(u)")
        s.dedent()
        s("if (pend_wake and squash0 == evt_squash")
        s("        and resolve0 == evt_resolve and load0 == evt_load):")
        s.indent()
        s(f"barrier = {_NEVER_LIT}")
        s("head_next = robq[0].seq + 1 if robq else 0")
        s("for u in pend_wake:")
        s.indent()
        if traits.wakeup_recheck_seq:
            s("seq = d_wake_recheck(u)")
            s("if seq is None:")
            s("    seq = head_next")
        else:
            s("seq = head_next")
        s("if seq < barrier:")
        s("    barrier = seq")
        s.dedent()
        s("wk_valid = True")
        s("wk_squash = squash0")
        s("wk_resolve = resolve0")
        s("wk_load = load0")
        s("wk_barrier = barrier")
        s.dedent()
        s.dedent()
        s.dedent()
        s("")

    # ---- issue stage -------------------------------------------------
    s("# ---- issue ----")
    s("issued = 0")
    if blockable:
        s("if blocked:")
        s.indent()
        s(f"if {issue_ok()}:")
        s.indent()
        s("dstats['delayed_transmitters'] += blocked_refusals")
        s.dedent()
        s("else:")
        s.indent()
        s("is_valid = False")
        s("squash0 = evt_squash")
        s("resolve0 = evt_resolve")
        s("div0 = evt_div")
        s("store0 = evt_store")
        s("load0 = evt_load")
        s("refused0 = dstats['delayed_transmitters']")
        s(f"barrier = {_NEVER_LIT}")
        s("unknown = False")
        s("has_disamb = False")
        s(f"retry_cycle = {_NEVER_LIT}")
        s("blocked.sort()")
        s("still_b = []")
        s("for u in blocked:")
        s.indent()
        s("if u.squashed or u.issued:")
        s("    continue")
        s(f"if issued < {width} and try_exec(u):")
        s.indent()
        s("issued += 1")
        s("continue")
        s.dedent()
        s("still_b.append(u)")
        s("reason = u.block_reason")
        chain: List[Tuple[str, List[str]]] = []
        if h_exec:
            body = []
            if traits.execute_recheck_seq:
                body += ["seq = d_exec_recheck(u)",
                         "if seq is None:",
                         "    unknown = True",
                         "elif seq < barrier:",
                         "    barrier = seq"]
            else:
                body += ["unknown = True"]
            chain.append(("reason == 'defense_execute'", body))
        if has_loads:
            chain.append(("reason == 'disambiguation'",
                          ["has_disamb = True",
                           "if (disamb_blocker is not None",
                           "        and disamb_blocker.seq < barrier):",
                           "    barrier = disamb_blocker.seq"]))
        if has_mfence:
            chain.append(("reason == 'mfence'",
                          ["if u.seq < barrier:",
                           "    barrier = u.seq"]))
        for i, (cnd, body) in enumerate(chain):
            s(f"{'if' if i == 0 else 'elif'} {cnd}:")
            s.indent()
            for line in body:
                s(line)
            s.dedent()
        if has_divs:
            if chain:
                s("else:  # div_busy")
                s("    retry_cycle = divbusy")
            else:
                s("retry_cycle = divbusy")
        s.dedent()  # for u in blocked
        s("blocked = still_b")
        s(f"if (still_b and issued < {width}")
        s("        and squash0 == evt_squash and resolve0 == evt_resolve")
        s("        and div0 == evt_div and store0 == evt_store")
        s("        and load0 == evt_load):")
        s.indent()
        s("if unknown:")
        s.indent()
        s("seq = robq[0].seq + 1")
        s("if seq < barrier:")
        s("    barrier = seq")
        s.dedent()
        s("is_valid = True")
        s("is_squash = squash0")
        s("is_resolve = resolve0")
        s("is_div = div0")
        s("is_store = store0")
        s("is_load = load0")
        s("is_hasdis = has_disamb")
        s("is_barrier = barrier")
        s("is_retry = retry_cycle")
        s("blocked_refusals = dstats['delayed_transmitters'] - refused0")
        s.dedent()
        s.dedent()  # else (cache not ok)
        s.dedent()  # if blocked
    s(f"while issued < {width} and ready_q:")
    s.indent()
    s("u = heappop(ready_q)[1]")
    s("if u.squashed or u.issued:")
    s("    continue")
    s("pc = u.pc")
    s("k = K[pc]")
    if blockable:
        fail = "blocked.append(u)\nis_valid = False\ncontinue"
    else:  # pragma: no cover - nothing in this program can block
        fail = "continue"
    emit_exec_dispatch(fail=fail, success="issued += 1")
    s.dedent()
    s("")

    # ---- rename stage ------------------------------------------------
    s("# ---- rename / dispatch ----")
    s("rename_block = None")
    s(f"for _ in range({width}):")
    s.indent()
    s("if not fbuf:")
    s("    break")
    s("entry = fbuf[0]")
    s("if entry[0] > cycle:")
    s("    break")
    s("u = entry[1]")
    s("pc = u.pc")
    s(f"if len(robq) >= {config.rob_size}:")
    s.indent()
    s("rename_block = 'stall_rob_full'")
    s("break")
    s.dedent()
    s("n_d = ND[pc]")
    s("if len(prf_freeq) < n_d:")
    s.indent()
    s("rename_block = 'stall_prf_starved'")
    s("break")
    s.dedent()
    if has_loads:
        s(f"if ISLD[pc] and len(lq) >= {config.lq_size}:")
        s.indent()
        s("rename_block = 'stall_lsq_full'")
        s("break")
        s.dedent()
    if has_stores:
        s(f"if ISST[pc] and len(sq) >= {config.sq_size}:")
        s.indent()
        s("rename_block = 'stall_lsq_full'")
        s("break")
        s.dedent()
    s(f"if iq_count >= {config.iq_size}:")
    s.indent()
    s("rename_block = 'stall_iq_full'")
    s("break")
    s.dedent()
    s("del fbuf[0]")
    s("u.rename_cycle = cycle")
    s("u.psrcs = tuple((a, rmap[a]) for a in SRCS[pc])")
    s("if n_d:")
    s.indent()
    s("pr = PROT[pc]")
    s("pd_l = []")
    s("opd_l = []")
    s("for a in DESTS[pc]:")
    s.indent()
    s("pg = prf_freeq.popleft()")
    s("opd_l.append((a, rmap[a]))")
    s("rmap[a] = pg")
    s("pready[pg] = False")
    s("pprot[pg] = pr")
    s("pd_l.append((a, pg))")
    s("producer_of[pg] = u")
    s.dedent()
    s("u.pdests = tuple(pd_l)")
    s("u.old_pdests = tuple(opd_l)")
    s.dedent()
    if traits.on_rename:
        s("d_on_rename(u)")
    s("u.in_rob = True")
    s("robq.append(u)")
    if has_loads:
        s("if ISLD[pc]:")
        s("    lq.append(u)")
    if has_stores:
        s("if ISST[pc]:")
        s("    sq.append(u)")
    if has_branches:
        s("if ISBR[pc]:")
        s.indent()
        s("core._inflight_branches.append(u)")
        s("stats['_spec_depth'] += 1")
        s.dedent()
    rename_done = [KIND_OF[op] for op in (Op.NOP, Op.HALT, Op.JMP)
                   if KIND_OF[op] in present]
    if rename_done:
        s("k = K[pc]")
        cnd = " or ".join(f"k == {k}" for k in rename_done)
        s(f"if {cnd}:  # rename-complete ops")
        s.indent()
        s("u.executed = True")
        s("u.completed = True")
        s("u.resolved = True")
        if KIND_OF[Op.JMP] in present:
            s(f"u.actual_next = TGT[pc] if k == {KIND_OF[Op.JMP]} "
              "else pc + 1")
        else:
            s("u.actual_next = pc + 1")
        s("u.complete_cycle = cycle")
        s("continue")
        s.dedent()
    s("u.in_iq = True")
    s("iq_count += 1")
    s("n_un = 0")
    s("for pg in {p for _, p in u.psrcs}:")
    s.indent()
    s("if not pready[pg]:")
    s.indent()
    s("n_un += 1")
    s("ws = waiters.get(pg)")
    s("if ws is None:")
    s("    waiters[pg] = [u]")
    s("else:")
    s("    ws.append(u)")
    s.dedent()
    s.dedent()
    s("u.unready_count = n_un")
    s("if not n_un:")
    s("    heappush(ready_q, (u.seq, u))")
    s.dedent()  # rename for
    s("")

    # ---- fetch stage -------------------------------------------------
    s("# ---- fetch ----")
    s("if not fblocked and cycle >= fstall:")
    s.indent()
    s(f"for _ in range({width}):")
    s.indent()
    s(f"if len(fbuf) >= {fbuf_cap}:")
    s("    break")
    s("pc = fpc")
    s(f"if not 0 <= pc < {plen}:")
    s("    break")
    s("inst = insts[pc]")
    if has_ctrl:
        # predict_next is pure ``pc + 1`` for every non-control op
        # (no predictor state mutates), so the call is gated on the
        # decode column and only control PCs pay for it.
        s("if ISCTRL[pc]:")
        s.indent()
        s("pred = bp_predict(pc, inst)")
        s("u = Uop(seqc, pc, inst, pred, cycle)")
        s("u.bp_snapshot = bp_snapshot()")
        if has_br:
            s(f"if K[pc] == {KIND_OF[Op.BR]}:  # BR")
            s("    u.bp_index = bp.last_br_index")
        s.dedent()
        s("else:")
        s.indent()
        s("pred = pc + 1")
        s("u = Uop(seqc, pc, inst, pred, cycle)")
        s.dedent()
    else:
        s("pred = pc + 1")
        s("u = Uop(seqc, pc, inst, pred, cycle)")
    s("seqc += 1")
    s(f"fbuf.append((cycle + {config.frontend_delay}, u))")
    if has_halt:
        s(f"if K[pc] == {KIND_OF[Op.HALT]}:  # HALT")
        s.indent()
        s("fblocked = True")
        s("break")
        s.dedent()
    if has_mfence:
        # Serializing fence: frontend stops until the fence executes
        # at the ROB head (Core._fetch_stage mirror).
        s(f"if K[pc] == {KIND_OF[Op.MFENCE]}:  # MFENCE")
        s.indent()
        s("fblocked = True")
        s("fpc = pred")
        s("break")
        s.dedent()
    s("fpc = pred")
    if has_ctrl:
        s("if pred != pc + 1:")
        s("    break  # one taken control transfer per cycle")
    s.dedent()
    s.dedent()
    s.dedent()  # if not halted
    s("")

    # ---- per-cycle stall accounting ----------------------------------
    s(f"shortfall = {width} - committed_n")
    s("if shortfall > 0:")
    s.indent()
    s("if halted:")
    s("    cause = 'stall_drain'")
    s("stats[cause if cause is not None else 'stall_frontend'] "
      "+= shortfall")
    s.dedent()
    s("cycle += 1")
    s("")

    # ---- fast forward ------------------------------------------------
    s("# ---- fast-forward over provably idle cycles ----")
    s("if not halted:")
    s.indent()
    s("head = robq[0] if robq else None")
    s("if ((head is None or not head.completed")
    s("        or (head.is_branch and not head.resolved))")
    s("        and not ready_q):")
    s.indent()
    s("ok = True")
    if res_possible:
        s("res_live_ff = 0")
        s("res_refused_ff = 0")
    if blockable:
        s("blocked_ref_ff = 0")
    if res_possible:
        s("if pend_res:")
        s.indent()
        s(f"if {res_ok()}:")
        s.indent()
        s("res_live_ff = rs_live")
        s("res_refused_ff = rs_refused")
        s.dedent()
        s("else:")
        s("    ok = False")
        s.dedent()
    if wake_possible:
        s(f"if ok and pend_wake and not {wake_ok()}:")
        s("    ok = False")
    if blockable:
        s("if ok and blocked:")
        s.indent()
        s(f"if {issue_ok()}:")
        s("    blocked_ref_ff = blocked_refusals")
        s("else:")
        s("    ok = False")
        s.dedent()
    s(f"if (ok and not fblocked and len(fbuf) < {fbuf_cap}")
    s(f"        and 0 <= fpc < {plen} and fstall <= cycle):")
    s("    ok = False  # fetch would deliver next cycle")
    s("if ok:")
    s.indent()
    s("target = maxc")
    s("if limit is not None:")
    s.indent()
    s("t = last_commit + limit")
    s("if t < target:")
    s("    target = t")
    s.dedent()
    s("if cycle < fstall < target:")
    s("    target = fstall")
    if blockable:
        s(f"if blocked and is_retry != {_NEVER_LIT} and is_retry < target:")
        s("    target = is_retry")
    s("while wtimes and wtimes[0] not in wheel:")
    s("    heappop(wtimes)")
    s("if wtimes:")
    s.indent()
    s("wt = wtimes[0]")
    s("if wt <= cycle:")
    s("    ok = False  # a completion is due")
    s("elif wt < target:")
    s("    target = wt")
    s.dedent()
    s("if ok and fbuf:")
    s.indent()
    s("entry = fbuf[0]")
    s("if not rename_blocked(entry[1]):")
    s.indent()
    s("if entry[0] <= cycle:")
    s("    ok = False  # rename would dispatch")
    s("elif entry[0] < target:")
    s("    target = entry[0]")
    s.dedent()
    s.dedent()
    s("if ok and target > cycle:")
    s.indent()
    s("span = target - cycle")
    s(f"stats[classify(head)] += {width} * span")
    if res_possible:
        s("if res_live_ff:")
        s("    stats['delayed_resolution_cycles'] += span * res_live_ff")
        s("if res_refused_ff:")
        s("    dstats['delayed_resolutions'] += span * res_refused_ff")
    if blockable:
        s("if blocked_ref_ff:")
        s("    dstats['delayed_transmitters'] += span * blocked_ref_ff")
    s("cycle = target")
    s("ff_cycles += span")
    s("ff_jumps += 1")
    s.dedent()
    s.dedent()  # if ok
    s.dedent()  # if idle-shaped
    s.dedent()  # if not halted
    s.dedent()  # while

    # ---- epilogue ----------------------------------------------------
    s("")
    s("if not halted:")
    s.indent()
    s("if (limit is not None and cycle < maxc")
    s("        and cycle - last_commit >= limit):")
    s("    halt_reason = 'no_progress'")
    s("else:")
    s("    halt_reason = 'timeout'")
    s.dedent()
    s("")
    s("core.cycle = cycle")
    s("core.seq_counter = seqc")
    s("core.fetch_pc = fpc")
    s("core.fetch_stalled_until = fstall")
    s("core.fetch_blocked = fblocked")
    s("core.halted = halted")
    s("core.halt_reason = halt_reason")
    s("core.div_busy_until = divbusy")
    s("core.iq_count = iq_count")
    s("core._last_commit_cycle = last_commit")
    s("core._rename_block = rename_block")
    s("core._disamb_blocker = disamb_blocker")
    s("core._blocked = blocked")
    s("core._pending_wakeup = pend_wake")
    s("core._pending_resolution = pend_res")
    s("core._evt_squash = evt_squash")
    s("core._evt_resolve = evt_resolve")
    s("core._evt_div = evt_div")
    s("core._evt_store = evt_store")
    s("core._evt_load = evt_load")
    s("core._issue_valid = is_valid")
    s("core._issue_squash = is_squash")
    s("core._issue_resolve = is_resolve")
    s("core._issue_div = is_div")
    s("core._issue_store = is_store")
    s("core._issue_load = is_load")
    s("core._issue_has_disamb = is_hasdis")
    s("core._issue_barrier = is_barrier")
    s("core._issue_retry_cycle = is_retry")
    s("core._blocked_refusals = blocked_refusals")
    s("core._res_valid = rs_valid")
    s("core._res_squash = rs_squash")
    s("core._res_resolve = rs_resolve")
    s("core._res_load = rs_load")
    s("core._res_barrier = rs_barrier")
    s("core._res_live = rs_live")
    s("core._res_refused = rs_refused")
    s("core._wake_valid = wk_valid")
    s("core._wake_squash = wk_squash")
    s("core._wake_resolve = wk_resolve")
    s("core._wake_load = wk_load")
    s("core._wake_barrier = wk_barrier")
    s("core._ff_cycles = ff_cycles")
    s("core._ff_jumps = ff_jumps")
    s.dedent()
    return s.source()


# =====================================================================
# The compiled core
# =====================================================================


class CompiledCore(Core):
    """A :class:`Core` whose run loop is the generated specialization.

    Shares ``__init__`` state construction and ``_result()`` with the
    interpreter, so the :class:`CoreResult` contract is identical by
    construction everywhere outside the cycle loop — and the three-way
    differential harness proves the loop itself.
    """

    def __init__(
        self,
        program,
        defense=None,
        config: CoreConfig = P_CORE,
        memory=None,
        regs=None,
        max_cycles: int = DEFAULT_MAX_CYCLES,
        tracer=None,
        metrics=None,
        no_progress_limit: Optional[int] = DEFAULT_NO_PROGRESS_LIMIT,
        **kwargs,
    ) -> None:
        if tracer is not None:
            raise CompileUnsupported(
                "PipelineTracer requires the per-cycle interpreter")
        if kwargs.pop("ledger", None) is not None:
            raise CompileUnsupported(
                "InterventionLedger requires the per-cycle interpreter")
        if kwargs.get("store_commit_listener") is not None \
                or kwargs.get("shared_memory") or kwargs.get("shared_l3"):
            raise CompileUnsupported(
                "multi-core sharing requires the interpreter")
        kwargs.pop("fast_path", None)
        super().__init__(program, defense, config, memory, regs,
                         max_cycles, tracer=None, metrics=metrics,
                         fast_path=True,
                         no_progress_limit=no_progress_limit, **kwargs)
        self._compiled_run = compile_step(self.program, config,
                                          self.defense,
                                          metrics=self.metrics)

    def run(self) -> CoreResult:
        metrics = self.metrics
        host_start = time.perf_counter() if metrics is not None else 0.0
        self._compiled_run(self)
        if metrics is not None:
            elapsed = time.perf_counter() - host_start
            metrics.counter("uarch.sim_cycles").inc(self.cycle)
            metrics.counter("uarch.runs").inc()
            metrics.counter("uarch.compiled_runs").inc()
            metrics.timer("uarch.run_seconds").observe(elapsed)
            if self._ff_jumps:
                metrics.counter("uarch.fast_forward_cycles").inc(
                    self._ff_cycles)
                metrics.counter("uarch.fast_forward_jumps").inc(
                    self._ff_jumps)
            if elapsed > 0:
                rate = self.cycle / elapsed
                metrics.gauge("uarch.sim_cycles_per_sec").set(rate)
                metrics.gauge("uarch.compiled_cycles_per_sec").set(rate)
            self._record_speculation_metrics(metrics)
        return self._result()


def compiled_enabled() -> bool:
    """Whether engine auto-selection may pick the compiled backend."""
    return not os.environ.get("REPRO_NO_COMPILE")
