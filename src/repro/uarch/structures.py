"""Back-end structures: physical register file, rename map, ROB, LSQ.

The rename map supports exact rollback by walking squashed uops in
reverse order and restoring their saved previous mappings — the same
walk restores ProtISA's rename-map protection bits, which travel with
the physical registers.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, Tuple

from ..isa.registers import NUM_REGS
from .uop import Uop


class PhysRegFile:
    """Values, ready bits, and the per-physical-register tag planes that
    ProtISA (``prot``) and the defenses (``yrot``, ``public``) use."""

    __slots__ = ("num_regs", "values", "ready", "prot", "yrot", "public",
                 "_free")

    def __init__(self, num_regs: int) -> None:
        if num_regs <= NUM_REGS:
            raise ValueError("need more physical than architectural regs")
        self.num_regs = num_regs
        self.values: List[int] = [0] * num_regs
        self.ready: List[bool] = [False] * num_regs
        #: ProtISA protection tag, set at rename from the PROT prefix.
        self.prot: List[bool] = [False] * num_regs
        #: Youngest root of taint (uop seq) or None — see defenses.
        self.yrot: List[Optional[int]] = [None] * num_regs
        #: SPT's "already architecturally transmitted" flag.
        self.public: List[bool] = [False] * num_regs
        self._free: Deque[int] = deque(range(NUM_REGS, num_regs))

    def allocate(self) -> Optional[int]:
        if not self._free:
            return None
        return self._free.popleft()

    def free(self, preg: int) -> None:
        self.ready[preg] = False
        self.yrot[preg] = None
        self.public[preg] = False
        self.prot[preg] = False
        self._free.append(preg)

    @property
    def free_count(self) -> int:
        return len(self._free)


class RenameMap:
    """Architectural to physical register mapping."""

    __slots__ = ("mapping",)

    def __init__(self) -> None:
        # Identity mapping at reset: arch reg i lives in phys reg i.
        self.mapping: List[int] = list(range(NUM_REGS))

    def lookup(self, arch_reg: int) -> int:
        return self.mapping[arch_reg]

    def update(self, arch_reg: int, phys_reg: int) -> int:
        """Map ``arch_reg`` to ``phys_reg``; return the old mapping."""
        old = self.mapping[arch_reg]
        self.mapping[arch_reg] = phys_reg
        return old

    def rollback(self, uop: Uop) -> None:
        """Undo one uop's rename (call in youngest-first order)."""
        for (arch_reg, _new), (_, old) in zip(uop.pdests, uop.old_pdests):
            self.mapping[arch_reg] = old


class ReorderBuffer:
    """In-order window of in-flight uops."""

    __slots__ = ("capacity", "entries")

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self.entries: Deque[Uop] = deque()

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self):
        return iter(self.entries)

    @property
    def full(self) -> bool:
        return len(self.entries) >= self.capacity

    @property
    def head(self) -> Optional[Uop]:
        return self.entries[0] if self.entries else None

    def push(self, uop: Uop) -> None:
        if self.full:
            raise OverflowError("ROB overflow")
        uop.in_rob = True
        self.entries.append(uop)

    def pop_head(self) -> Uop:
        uop = self.entries.popleft()
        uop.in_rob = False
        return uop

    def squash_younger_than(self, seq: int) -> List[Uop]:
        """Remove and return all uops younger than ``seq`` (youngest
        first, the order rename rollback needs)."""
        squashed: List[Uop] = []
        while self.entries and self.entries[-1].seq > seq:
            uop = self.entries.pop()
            uop.in_rob = False
            squashed.append(uop)
        return squashed


class LoadStoreQueue:
    """Split load/store queues with age-ordered search."""

    __slots__ = ("lq_capacity", "sq_capacity", "loads", "stores")

    def __init__(self, lq_capacity: int, sq_capacity: int) -> None:
        self.lq_capacity = lq_capacity
        self.sq_capacity = sq_capacity
        self.loads: Deque[Uop] = deque()
        self.stores: Deque[Uop] = deque()

    def can_insert(self, uop: Uop) -> bool:
        if uop.is_load and len(self.loads) >= self.lq_capacity:
            return False
        if uop.is_store and len(self.stores) >= self.sq_capacity:
            return False
        return True

    @property
    def occupancy(self) -> Tuple[int, int]:
        """(load-queue, store-queue) entry counts, for the tracer."""
        return (len(self.loads), len(self.stores))

    def insert(self, uop: Uop) -> None:
        if uop.is_load:
            self.loads.append(uop)
        if uop.is_store:
            self.stores.append(uop)

    def forwarding_store(self, load: Uop) -> Tuple[str, Optional[Uop]]:
        """Memory disambiguation for an executing load.

        Returns one of:

        * ``("stall", blocker)`` — an older store's address (or exact
          overlap) is unresolved; the load must wait.
        * ``("forward", store)`` — youngest older store to the same
          word; forward its data.
        * ``("memory", None)`` — no conflict; read the cache hierarchy.
        """
        assert load.mem_addr is not None
        best: Optional[Uop] = None
        for store in self.stores:
            if store.seq >= load.seq:
                continue
            if store.mem_addr is None:
                if not store.issued and not store.executed:
                    return ("stall", store)
                return ("stall", store)
            overlap = abs(store.mem_addr - load.mem_addr) < 8
            if not overlap:
                continue
            if store.mem_addr != load.mem_addr:
                return ("stall", store)  # partial overlap: wait for commit
            if best is None or store.seq > best.seq:
                best = store
        if best is not None:
            return ("forward", best)
        return ("memory", None)

    def remove(self, uop: Uop) -> None:
        if uop.is_load:
            try:
                self.loads.remove(uop)
            except ValueError:
                pass
        if uop.is_store:
            try:
                self.stores.remove(uop)
            except ValueError:
                pass
