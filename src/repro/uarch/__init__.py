"""repro.uarch — the speculative out-of-order core (the gem5 stand-in):
configs, caches, branch prediction, back-end structures, pipeline."""

from .config import (
    CacheConfig,
    CoreConfig,
    E_CORE,
    L1DTagMode,
    P_CORE,
    SpeculationModel,
)
from .caches import Cache, CacheHierarchy, TLB
from .branch_predictor import BranchPredictor
from .pipeline import Core, CoreResult, STALL_CAUSES, simulate
from .refcore import (
    DiffReport,
    ReferenceCore,
    assert_identical,
    compare_results,
    run_pair,
)
from .multicore import MultiCore, MultiCoreResult, TID_REG, simulate_mt
from .speculation import (
    InterventionEvent,
    InterventionLedger,
    intervention_summary,
    ledger_chrome_events,
    transient_summary,
)
from .trace import (
    PipelineTracer,
    chrome_trace,
    text_pipeline,
    write_chrome_trace,
)
from .uop import Uop

__all__ = [
    "CacheConfig", "CoreConfig", "E_CORE", "L1DTagMode", "P_CORE",
    "SpeculationModel",
    "Cache", "CacheHierarchy", "TLB",
    "BranchPredictor",
    "Core", "CoreResult", "STALL_CAUSES", "simulate",
    "DiffReport", "ReferenceCore", "assert_identical", "compare_results",
    "run_pair",
    "MultiCore", "MultiCoreResult", "TID_REG", "simulate_mt",
    "InterventionEvent", "InterventionLedger", "intervention_summary",
    "ledger_chrome_events", "transient_summary",
    "PipelineTracer", "chrome_trace", "text_pipeline", "write_chrome_trace",
    "Uop",
]
