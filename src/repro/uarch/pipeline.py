"""The speculative out-of-order core.

A simplified but structurally faithful gem5-O3-style pipeline:
fetch (predicted path) -> rename/dispatch -> event-driven issue ->
execute -> complete/resolve -> in-order commit, with exact squash
rollback.  Speculation past unresolved branches is what opens Spectre
windows; transient loads modulate the cache hierarchy; defenses gate
execution, resolution, and wakeup through the hooks in
:class:`repro.defenses.base.Defense`.

ProtISA support (paper SIV-C) is always present: rename-map protection
bits flow onto physical registers at rename, LSQ entries take a
protection bit at execute, and the L1D byte tags are updated at commit.
Defenses that ignore ProtISA simply never read these planes.
"""

from __future__ import annotations

import heapq
import os
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

from ..arch.memory import Memory
from ..arch.semantics import (
    MASK64,
    alu,
    compare_flags,
    div_timing_class,
    effective_address,
)
from ..arch.executor import STACK_TOP
from ..isa.operations import (
    FLAG_WRITERS,
    IMM_ALU_OPS,
    Op,
    REG_ALU_OPS,
    eval_cond,
)
from ..isa.program import Program
from ..isa.registers import FLAGS, NUM_REGS, SP
from .branch_predictor import BranchPredictor
from .caches import CacheHierarchy
from .config import CoreConfig, P_CORE, SpeculationModel
from .structures import LoadStoreQueue, PhysRegFile, RenameMap, ReorderBuffer
from .uop import Uop

#: Safety valve for runaway simulations.
DEFAULT_MAX_CYCLES = 3_000_000

#: Abort a run after this many cycles without a single commit.  A wedged
#: machine (dead frontend, deadlocked defense gate) used to burn the full
#: ``max_cycles`` before reporting ``timeout``; no legitimate workload in
#: the suite ever goes remotely this long between commits (worst-case
#: gaps are a few chained memory latencies, well under 1000 cycles).
DEFAULT_NO_PROGRESS_LIMIT = 10_000

#: Sentinel for "no scheduled re-probe cycle" in the issue-retry cache.
_NEVER = 1 << 62

#: Stall-cause taxonomy: every cycle, the commit-width shortfall
#: (``width - committed_this_cycle`` slots) is attributed to exactly one
#: of these, so the ``stall_*`` counters satisfy the exact invariant
#: ``sum(stall_*) == width * cycles - committed_uops``.  A top-down-style
#: breakdown: frontend starvation, backend structural pressure, true
#: dependencies, execution latency, and the three defense gates.
STALL_CAUSES = (
    "frontend",            # ROB empty, frontend still filling the buffer
    "fetch_redirect",      # ROB empty during a squash redirect penalty
    "drain",               # slots after the halting commit of a cycle
    "rob_full",            # rename blocked: reorder buffer full
    "iq_full",             # rename blocked: issue queue full
    "lsq_full",            # rename blocked: load or store queue full
    "prf_starved",         # rename blocked: no free physical registers
    "dependency",          # head waits on an unresolved data dependency
    "issue_bw",            # head ready but lost issue-bandwidth arbitration
    "exec_latency",        # head (or its producer) executing, short-latency
    "cache_miss",          # head (or its producer) waiting on L2/L3/memory
    "div_busy",            # the unpipelined divider is occupied
    "mem_disambiguation",  # load stalled on an older unresolved store
    "defense_transmitter", # defense refused may_execute (delayed transmitter)
    "defense_wakeup",      # producer completed, defense holds its wakeup
    "defense_resolution",  # head branch completed, defense holds resolution
    "squash_notify",       # head branch blocked by the buggy squash port
    "no_progress",         # machine provably wedged (dead frontend, empty ROB)
)

#: ``uop.block_reason`` / rename-block values -> stall-cause names.
#: ``defense_execute`` (a refused ``may_execute``) replaced the old
#: ambiguous ``"defense"`` alias: each of the three defense hooks now
#: has its own unambiguous block-reason value.
_BLOCK_TO_CAUSE = {
    "defense_execute": "defense_transmitter",
    "div_busy": "div_busy",
    "disambiguation": "mem_disambiguation",
    "mfence": "dependency",
    "defense_resolution": "defense_resolution",
    "squash_notify": "squash_notify",
}

#: Hierarchy levels that count as a cache miss for stall attribution.
_MISS_LEVELS = frozenset(("l2", "l3", "mem"))

#: Squash-cause taxonomy: exactly the three resolvable branch kinds
#: (``is_branch`` is BR/JMPI/RET; JMP is rename-complete and CALL's
#: target is architectural, so neither can mispredict).
_SQUASH_CAUSE = {
    Op.BR: "squashes_conditional",
    Op.JMPI: "squashes_indirect",
    Op.RET: "squashes_return",
}

#: Power-of-two bucket edges shared by the speculation-depth and
#: squash-cascade histograms (``*_le_<edge>`` keys plus one ``*_gt_32``
#: overflow bucket).
HIST_EDGES = (1, 2, 4, 8, 16, 32)


def hist_key(prefix: str, value: int) -> str:
    """Stats key of the histogram bucket ``value`` falls into."""
    for edge in HIST_EDGES:
        if value <= edge:
            return f"{prefix}_le_{edge}"
    return f"{prefix}_gt_{HIST_EDGES[-1]}"


@dataclass
class CoreResult:
    """Outcome of a simulated run."""

    cycles: int
    halt_reason: str
    committed_pcs: List[int]
    final_regs: Tuple[int, ...]
    memory: Memory
    timing_trace: List[Tuple[int, int, int, int, int, int]]
    adversary_cache_state: Tuple
    #: (pc, address) of every committed memory access, in program order
    #: (AMuLeT*'s false-positive filter compares these, paper SVII-B1e).
    committed_accesses: List[Tuple[int, int]] = field(default_factory=list)
    stats: Dict[str, int] = field(default_factory=dict)

    @property
    def instructions(self) -> int:
        return len(self.committed_pcs)

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0


class Core:
    """One out-of-order core running one linked program to completion."""

    def __init__(
        self,
        program: Program,
        defense=None,
        config: CoreConfig = P_CORE,
        memory: Optional[Memory] = None,
        regs: Optional[Dict[int, int]] = None,
        max_cycles: int = DEFAULT_MAX_CYCLES,
        shared_memory: bool = False,
        shared_l3=None,
        store_commit_listener=None,
        tracer=None,
        metrics=None,
        ledger=None,
        fast_path: Optional[bool] = None,
        no_progress_limit: Optional[int] = DEFAULT_NO_PROGRESS_LIMIT,
    ) -> None:
        from ..defenses.base import Unsafe
        from ..metrics.registry import get_registry
        from ..protisa.tags import MemoryProtectionTags

        if not program.is_linked:
            program = program.linked()
        self.program = program
        self.config = config
        self.defense = defense if defense is not None else Unsafe()
        if memory is None:
            self.memory = Memory()
        elif shared_memory:
            self.memory = memory  # multi-core: one address space
        else:
            self.memory = memory.copy()
        self.max_cycles = max_cycles
        self._store_commit_listener = store_commit_listener
        #: Optional :class:`repro.uarch.trace.PipelineTracer`.  ``None``
        #: (the default) keeps tracing strictly zero-overhead: the hot
        #: loop only ever pays an ``is not None`` check.
        self.tracer = tracer
        #: Optional :class:`repro.uarch.speculation.InterventionLedger`.
        #: Same contract as the tracer: ``None`` (the default) is the
        #: zero-overhead path — ``step`` itself never consults it; the
        #: episode helpers it hangs off are only reached behind
        #: per-uop ``>= 0`` guards.
        self.ledger = ledger
        #: Optional :class:`repro.metrics.MetricsRegistry` (defaults to
        #: the process-attached one).  Host-throughput accounting
        #: happens once per :meth:`run`, never inside :meth:`step`, so
        #: the per-cycle path pays nothing for it.
        self.metrics = metrics if metrics is not None else get_registry()

        self.prf = PhysRegFile(config.num_phys_regs)
        self.rename_map = RenameMap()
        self.arch_values: List[int] = [0] * NUM_REGS
        self.arch_values[SP] = STACK_TOP
        if regs:
            for index, value in regs.items():
                self.arch_values[index] = value & MASK64
        for index in range(NUM_REGS):
            self.prf.values[index] = self.arch_values[index]
            self.prf.ready[index] = True
            # Startup code wrote the initial registers with unprefixed
            # instructions, so they begin architecturally unprotected.
            self.prf.prot[index] = False

        self.mem_tags = MemoryProtectionTags(config.l1d_tag_mode)
        self.caches = CacheHierarchy(config, self.mem_tags.on_l1d_eviction,
                                     shared_l3=shared_l3)
        self.mem_tags.attach_l1d(self.caches.l1d)
        self.bp = BranchPredictor(config.bp_table_bits,
                                  config.bp_history_bits,
                                  config.btb_entries, config.ras_entries)

        self.rob = ReorderBuffer(config.rob_size)
        self.lsq = LoadStoreQueue(config.lq_size, config.sq_size)
        self.iq_count = 0

        self._ready_q: List[Tuple[int, Uop]] = []
        self._blocked: List[Uop] = []
        self._waiters: Dict[int, List[Uop]] = {}
        self._wheel: Dict[int, List[Uop]] = {}
        #: Min-heap over the live ``_wheel`` keys (lazily pruned): the
        #: next completion event, so fast-forward never scans the dict.
        self._wheel_times: List[int] = []
        self._pending_wakeup: List[Uop] = []
        self._pending_resolution: List[Uop] = []
        #: Rename-order queue of unresolved branches (CONTROL model).
        #: Resolved/squashed heads are pruned at resolve/squash/commit —
        #: never inside the ``seq_nonspeculative`` query, which is pure.
        self._inflight_branches: Deque[Uop] = deque()
        #: preg -> uop that will write it (stall attribution follows the
        #: head's unready operands to their producers through this map).
        self._producer_of: Dict[int, Uop] = {}
        #: Why rename last stalled this cycle (None if it didn't) — the
        #: structural-pressure refinement of "dependency" attribution.
        self._rename_block: Optional[str] = None

        self.cycle = 0
        self.seq_counter = 0
        self.fetch_pc = program.entry
        self.fetch_stalled_until = 0
        self.fetch_blocked = False
        self.fetch_buffer: List[Tuple[int, Uop]] = []  # (ready_cycle, uop)

        self.halted = False
        self.halt_reason = "timeout"
        self.committed: List[Uop] = []
        self.div_busy_until = 0

        #: No-forward-progress early abort (None disables it): a run
        #: with no commit for this many cycles stops with
        #: ``halt_reason="no_progress"`` instead of spinning to
        #: ``max_cycles``.  Checked identically by the fast and
        #: reference engines.
        self.no_progress_limit = no_progress_limit
        self._last_commit_cycle = 0

        # -- fast path -------------------------------------------------
        # ``fast_path=None`` resolves to on-by-default, overridable with
        # REPRO_NO_FAST_PATH=1; an attached tracer always forces the
        # per-cycle reference path so traces stay cycle-exact.
        if fast_path is None:
            fast_path = not os.environ.get("REPRO_NO_FAST_PATH")
        self.fast_path = bool(fast_path)
        # An attached ledger also pins the per-cycle reference path, so
        # every intervention event carries an exact cycle stamp.
        self._fast = self.fast_path and tracer is None and ledger is None
        self._ctrl = config.speculation_model is SpeculationModel.CONTROL
        self._load_sensitive = self.defense.recheck_loads()
        # Event counters: each retry cache snapshots the counters whose
        # events could flip its all-refused answers, and is consulted
        # only while those counters are unchanged.  Commits deliberately
        # bump nothing: their only effect on the gating hooks is the
        # monotone advance of the ROB head seq, which each cache bounds
        # with a *barrier* — the smallest head seq at which any cached
        # refusal could flip (from the defenses' ``*_recheck_seq``
        # stability hints plus the structural thresholds the core knows:
        # an MFENCE waits for its own seq, a disambiguation stall for
        # its blocking store's).  Between events, below the barrier, the
        # retry loops would re-ask the same pure questions and get the
        # same answers, so the fast path replays their counter side
        # effects from the caches instead of re-probing.
        self._evt_squash = 0
        self._evt_resolve = 0
        self._evt_div = 0
        self._evt_store = 0
        self._evt_load = 0
        # Blocked-issue retry cache.
        self._issue_valid = False
        self._issue_squash = 0
        self._issue_resolve = 0
        self._issue_div = 0
        self._issue_store = 0
        self._issue_load = 0
        self._issue_has_disamb = False
        self._issue_barrier = 0
        self._issue_retry_cycle = _NEVER
        self._blocked_refusals = 0
        # Pending-resolution retry cache.
        self._res_valid = False
        self._res_squash = 0
        self._res_resolve = 0
        self._res_load = 0
        self._res_barrier = 0
        self._res_live = 0
        self._res_refused = 0
        # Pending-wakeup retry cache.
        self._wake_valid = False
        self._wake_squash = 0
        self._wake_resolve = 0
        self._wake_load = 0
        self._wake_barrier = 0
        #: Blocking store recorded by the last disambiguation stall.
        self._disamb_blocker: Optional[Uop] = None
        #: Fast-forward telemetry (cycles skipped / jumps taken).
        self._ff_cycles = 0
        self._ff_jumps = 0

        self.stats = {
            "squashes": 0,
            "squashed_uops": 0,
            "committed_branches": 0,
            "mispredicted_branches": 0,
            "delayed_resolution_cycles": 0,
            "issued_uops": 0,
            "squashes_conditional": 0,
            "squashes_indirect": 0,
            "squashes_return": 0,
            # Private accumulators (popped/folded by _result, never
            # exported): current speculation-window depth plus, per
            # defense hook, the count and start-cycle sum of episodes
            # still open — so end-of-run fold-in is O(1), no ROB scan.
            "_spec_depth": 0,
            "_open_exec": 0,
            "_open_exec_sum": 0,
            "_open_resolve": 0,
            "_open_resolve_sum": 0,
            "_open_wakeup": 0,
            "_open_wakeup_sum": 0,
        }
        for cause in STALL_CAUSES:
            self.stats[f"stall_{cause}"] = 0
        for prefix in ("spec_depth", "squash_cascade"):
            for edge in HIST_EDGES:
                self.stats[f"{prefix}_le_{edge}"] = 0
            self.stats[f"{prefix}_gt_{HIST_EDGES[-1]}"] = 0
        self.defense.attach(self)

    # ==================================================================
    # Speculation-state queries (paper SII-B2)
    # ==================================================================

    def seq_nonspeculative(self, seq: int) -> bool:
        """Whether the uop with sequence number ``seq`` is past its
        speculation window under the configured model.

        This is a pure query: defenses call it any number of times per
        cycle (taint checks fan out over operands) and the answer must
        not depend on call order.  Pruning of resolved/squashed branches
        happens in :meth:`_prune_resolved_branches`, at the resolution,
        squash, and commit sites.
        """
        if self.config.speculation_model is SpeculationModel.ATCOMMIT:
            head = self.rob.head
            return head is None or seq <= head.seq
        # CONTROL: speculative until all prior branches have resolved.
        for branch in self._inflight_branches:
            if branch.squashed or branch.resolved:
                continue
            return branch.seq >= seq
        return True

    def _prune_resolved_branches(self) -> None:
        """Drop resolved/squashed heads of the in-flight branch queue
        (the one explicit place the queue shrinks)."""
        branches = self._inflight_branches
        while branches and (branches[0].squashed or branches[0].resolved):
            branches.popleft()

    # ==================================================================
    # Main loop
    # ==================================================================

    def run(self) -> CoreResult:
        metrics = self.metrics
        host_start = time.perf_counter() if metrics is not None else 0.0
        limit = self.no_progress_limit
        fast = self._fast
        while not self.halted and self.cycle < self.max_cycles:
            if limit is not None \
                    and self.cycle - self._last_commit_cycle >= limit:
                break
            self.step()
            if fast and not self.halted:
                self._fast_forward()
        if not self.halted:
            if (limit is not None and self.cycle < self.max_cycles
                    and self.cycle - self._last_commit_cycle >= limit):
                self.halt_reason = "no_progress"
            else:
                self.halt_reason = "timeout"
        if metrics is not None:
            elapsed = time.perf_counter() - host_start
            metrics.counter("uarch.sim_cycles").inc(self.cycle)
            metrics.counter("uarch.runs").inc()
            metrics.timer("uarch.run_seconds").observe(elapsed)
            if self._ff_jumps:
                metrics.counter("uarch.fast_forward_cycles").inc(
                    self._ff_cycles)
                metrics.counter("uarch.fast_forward_jumps").inc(
                    self._ff_jumps)
            if elapsed > 0:
                metrics.gauge("uarch.sim_cycles_per_sec").set(
                    self.cycle / elapsed)
            self._record_speculation_metrics(metrics)
        return self._result()

    def _record_speculation_metrics(self, metrics) -> None:
        """Publish the observatory aggregates to an attached registry
        (once per run; shared by every engine's ``run``)."""
        dstats = self.defense.stats
        stats = self.stats
        interventions = (dstats["exec_interventions"]
                         + dstats["resolve_interventions"]
                         + dstats["wakeup_interventions"])
        if interventions:
            delay = 0
            for hook in ("exec", "resolve", "wakeup"):
                delay += (dstats[f"{hook}_delay_cycles"]
                          + self.cycle * stats[f"_open_{hook}"]
                          - stats[f"_open_{hook}_sum"])
            metrics.counter("uarch.defense_interventions").inc(
                interventions)
            metrics.counter("uarch.defense_delay_cycles").inc(delay)
        transient = self.seq_counter - len(self.committed)
        if transient > 0:
            metrics.counter("uarch.transient_uops").inc(transient)

    def _fast_forward(self) -> None:
        """Jump ``self.cycle`` over a provably idle window.

        A window is idle when one ``step()`` could not commit, complete,
        resolve, wake, issue, rename, or fetch anything before the
        earliest candidate event cycle, *and* the epoch caches prove
        that every retry loop would just repeat its last all-refused
        pass.  For each skipped cycle the bulk accounting applies
        exactly what the per-cycle path would have: one stall cause
        times ``width``, the pending-resolution counters, and the
        blocked-transmitter refusals.  Never active when a tracer is
        attached (``self._fast`` is False), so traces stay cycle-exact.
        """
        head = self.rob.head
        if head is not None and head.completed \
                and (not head.is_branch or head.resolved):
            return  # a commit is due next cycle
        if self._ready_q:
            return
        res_live = res_refused = blocked_refusals = 0
        if self._pending_resolution:
            if not self._res_cache_ok():
                return
            res_live = self._res_live
            res_refused = self._res_refused
        if self._pending_wakeup and not self._wake_cache_ok():
            return
        if self._blocked:
            if not self._issue_cache_ok():
                return
            blocked_refusals = self._blocked_refusals
        cycle = self.cycle
        config = self.config
        fetch_live = (not self.fetch_blocked
                      and len(self.fetch_buffer) < 2 * config.width
                      and 0 <= self.fetch_pc < len(self.program))
        if fetch_live and self.fetch_stalled_until <= cycle:
            return  # fetch would deliver next cycle
        candidates = [self.max_cycles]
        if self.no_progress_limit is not None:
            candidates.append(
                self._last_commit_cycle + self.no_progress_limit)
        if self.fetch_stalled_until > cycle:
            # Also a classification boundary: the head-None stall cause
            # distinguishes in-redirect from post-redirect cycles.
            candidates.append(self.fetch_stalled_until)
        if self._blocked and self._issue_retry_cycle != _NEVER:
            # The cache-ok check above guarantees cycle < retry cycle.
            candidates.append(self._issue_retry_cycle)
        times = self._wheel_times
        wheel = self._wheel
        while times and times[0] not in wheel:
            heapq.heappop(times)
        if times:
            if times[0] <= cycle:
                return  # a completion is due
            candidates.append(times[0])
        if self.fetch_buffer:
            ready_cycle, uop = self.fetch_buffer[0]
            if not self._rename_blocked_for(uop):
                if ready_cycle <= cycle:
                    return  # rename would dispatch
                candidates.append(ready_cycle)
        target = min(candidates)
        if target <= cycle:
            return
        span = target - cycle
        cause = self._classify_stall(head)
        self.stats[f"stall_{cause}"] += config.width * span
        if res_live:
            self.stats["delayed_resolution_cycles"] += span * res_live
        if res_refused:
            self.defense.stats["delayed_resolutions"] += span * res_refused
        if blocked_refusals:
            self.defense.stats["delayed_transmitters"] += \
                span * blocked_refusals
        self.cycle = target
        self._ff_cycles += span
        self._ff_jumps += 1

    def _rename_blocked_for(self, uop: Uop) -> bool:
        """Mirror of the structural checks in :meth:`_rename_stage`
        (resources only free at commit/squash, so during an idle window
        the answer is constant)."""
        return (self.rob.full
                or self.prf.free_count < len(uop.inst.dest_regs())
                or not self.lsq.can_insert(uop)
                or self.iq_count >= self.config.iq_size)

    # -- retry-cache validity ------------------------------------------
    #
    # A cache certifies "the last full pass refused everything, and
    # nothing that could change any answer has happened since": its
    # event-counter snapshots still match (squash always; resolution
    # when the CONTROL speculation model makes `nonspeculative` depend
    # on branches; store/divider/load issue where the blocked set or
    # mechanism is sensitive to them) and the ROB head has not reached
    # the barrier seq at which the earliest refusal could flip.

    def _issue_cache_ok(self) -> bool:
        if (not self._issue_valid
                or self._issue_squash != self._evt_squash
                or self._issue_div != self._evt_div
                or self.cycle >= self._issue_retry_cycle):
            return False
        if self._ctrl and self._issue_resolve != self._evt_resolve:
            return False
        if self._issue_has_disamb and self._issue_store != self._evt_store:
            return False
        if self._load_sensitive and self._issue_load != self._evt_load:
            return False
        head = self.rob.head
        return head is not None and head.seq < self._issue_barrier

    def _res_cache_ok(self) -> bool:
        # Resolution events always matter here: a pending branch held by
        # the buggy squash port unblocks when its older blocker resolves.
        if (not self._res_valid
                or self._res_squash != self._evt_squash
                or self._res_resolve != self._evt_resolve):
            return False
        if self._load_sensitive and self._res_load != self._evt_load:
            return False
        head = self.rob.head
        return head is not None and head.seq < self._res_barrier

    def _wake_cache_ok(self) -> bool:
        if (not self._wake_valid
                or self._wake_squash != self._evt_squash):
            return False
        if self._ctrl and self._wake_resolve != self._evt_resolve:
            return False
        if self._load_sensitive and self._wake_load != self._evt_load:
            return False
        head = self.rob.head
        return head is not None and head.seq < self._wake_barrier

    def step(self) -> None:
        committed, cause = self._commit_stage()
        if not self.halted:
            self._complete_stage()
            self._retry_pending()
            self._issue_stage()
            self._rename_stage()
            self._fetch_stage()
        shortfall = self.config.width - committed
        if shortfall > 0:
            if self.halted:
                cause = "drain"  # slots after the halting commit
            self.stats[f"stall_{cause or 'frontend'}"] += shortfall
        if self.tracer is not None:
            self.tracer.on_cycle(self)
        self.cycle += 1

    def _result(self) -> CoreResult:
        stats = dict(self.stats)
        stats.pop("_spec_depth")
        stats.update(self.caches.stats())
        stats["committed_uops"] = len(self.committed)
        stats["fetched_uops"] = self.seq_counter
        for key, value in self.defense.stats.items():
            stats[f"defense_{key}"] = value
        # Fold episodes still open at end of run (wrong-path uops at
        # halt, max_cycles aborts) into the per-hook delay totals:
        # each open episode contributes (end_cycle - start), and the
        # private aggregates hold count and sum(start) — so the fold is
        # O(1) on the *copied* dict, keeping _result idempotent.
        cycle = self.cycle
        for hook in ("exec", "resolve", "wakeup"):
            n = stats.pop(f"_open_{hook}")
            start_sum = stats.pop(f"_open_{hook}_sum")
            if n:
                stats[f"defense_{hook}_delay_cycles"] += \
                    cycle * n - start_sum
        if self.ledger is not None:
            self.ledger.finish(self)
        committed = [u for u in self.committed if u.inst.op is not Op.HALT]
        return CoreResult(
            cycles=self.cycle,
            halt_reason=self.halt_reason,
            committed_pcs=[u.pc for u in committed],
            final_regs=tuple(self.arch_values),
            memory=self.memory,
            timing_trace=[u.timing_observation() for u in committed],
            adversary_cache_state=self.caches.adversary_state(),
            committed_accesses=[(u.pc, u.mem_addr) for u in committed
                                if u.mem_addr is not None],
            stats=stats,
        )

    # ==================================================================
    # Fetch
    # ==================================================================

    def _fetch_stage(self) -> None:
        if self.fetch_blocked or self.cycle < self.fetch_stalled_until:
            return
        program_len = len(self.program)
        for _ in range(self.config.width):
            if len(self.fetch_buffer) >= 2 * self.config.width:
                return
            pc = self.fetch_pc
            if not 0 <= pc < program_len:
                return  # stalled until a squash redirects us
            inst = self.program[pc]
            predicted_next = self.bp.predict_next(pc, inst)
            uop = Uop(self.seq_counter, pc, inst, predicted_next, self.cycle)
            if self.tracer is not None:
                self.tracer.on_fetch(uop)
            if inst.is_control:
                uop.bp_snapshot = self.bp.snapshot()
                if inst.op is Op.BR:
                    uop.bp_index = self.bp.last_br_index
            self.seq_counter += 1
            self.fetch_buffer.append(
                (self.cycle + self.config.frontend_delay, uop))
            if inst.op is Op.HALT:
                self.fetch_blocked = True
                return
            if inst.op is Op.MFENCE:
                # Serializing fence (the LFENCE analogue the software
                # mitigation passes rely on): the frontend stops here
                # until the fence executes — which _try_execute only
                # permits at the ROB head — so younger wrong-path work
                # is never even fetched past it.  A squash clears the
                # block like any other frontend redirect.
                self.fetch_blocked = True
                self.fetch_pc = predicted_next
                return
            self.fetch_pc = predicted_next
            if predicted_next != pc + 1:
                return  # one taken control transfer per cycle

    # ==================================================================
    # Rename / dispatch
    # ==================================================================

    def _rename_stage(self) -> None:
        config = self.config
        self._rename_block = None
        for _ in range(config.width):
            if not self.fetch_buffer:
                return
            ready_cycle, uop = self.fetch_buffer[0]
            if ready_cycle > self.cycle:
                return
            inst = uop.inst
            dests = inst.dest_regs()
            if self.rob.full:
                self._rename_block = "rob_full"
                return
            if self.prf.free_count < len(dests):
                self._rename_block = "prf_starved"
                return
            if not self.lsq.can_insert(uop):
                self._rename_block = "lsq_full"
                return
            if self.iq_count >= config.iq_size:
                self._rename_block = "iq_full"
                return
            self.fetch_buffer.pop(0)
            uop.rename_cycle = self.cycle

            # Rename sources, carrying ProtISA's rename-map protection
            # tags onto the physical operands (paper SIV-E).
            uop.psrcs = tuple(
                (areg, self.rename_map.lookup(areg))
                for areg in inst.src_regs())

            # Rename destinations; the new rename-map entry's protection
            # bit is the PROT prefix (paper SIV-C1).
            pdests: List[Tuple[int, int]] = []
            old_pdests: List[Tuple[int, int]] = []
            for areg in dests:
                preg = self.prf.allocate()
                assert preg is not None
                old = self.rename_map.update(areg, preg)
                self.prf.ready[preg] = False
                self.prf.prot[preg] = inst.prot
                pdests.append((areg, preg))
                old_pdests.append((areg, old))
            uop.pdests = tuple(pdests)
            uop.old_pdests = tuple(old_pdests)
            for _, preg in pdests:
                self._producer_of[preg] = uop

            self.defense.on_rename(uop)
            self.rob.push(uop)
            if inst.is_mem:
                self.lsq.insert(uop)
            if uop.is_branch:
                self._inflight_branches.append(uop)
                self.stats["_spec_depth"] += 1

            if inst.op in (Op.NOP, Op.HALT, Op.JMP):
                # No execution needed; JMP's target is always correct.
                uop.executed = True
                uop.completed = True
                uop.resolved = True
                uop.actual_next = (inst.target if inst.op is Op.JMP
                                   else uop.pc + 1)
                uop.complete_cycle = self.cycle
                continue

            # Enter the issue queue.
            uop.in_iq = True
            self.iq_count += 1
            unique_pregs = {preg for _, preg in uop.psrcs}
            unready = [p for p in unique_pregs if not self.prf.ready[p]]
            uop.unready_count = len(unready)
            for preg in unready:
                self._waiters.setdefault(preg, []).append(uop)
            if uop.unready_count == 0:
                heapq.heappush(self._ready_q, (uop.seq, uop))

    # ==================================================================
    # Issue / execute
    # ==================================================================

    def _issue_stage(self) -> None:
        width = self.config.width
        issued = 0

        # Retry previously blocked uops first (oldest first).
        if self._blocked:
            if self._issue_cache_ok():
                # No relevant event since the last full pass: every
                # blocked uop would be re-probed and refused for the
                # same reason (the gating hooks are pure queries of
                # event-driven state), so replay the per-cycle defense
                # refusals without re-asking.
                self.defense.stats["delayed_transmitters"] += \
                    self._blocked_refusals
            else:
                self._issue_valid = False
                fast = self._fast
                defense = self.defense
                squash0, resolve0 = self._evt_squash, self._evt_resolve
                div0, store0 = self._evt_div, self._evt_store
                load0 = self._evt_load
                refused0 = defense.stats["delayed_transmitters"]
                barrier = _NEVER
                unknown = has_disamb = False
                retry_cycle = _NEVER
                self._blocked.sort()
                still_blocked: List[Uop] = []
                for uop in self._blocked:
                    if uop.squashed or uop.issued:
                        continue
                    if issued < width and self._try_execute(uop):
                        issued += 1
                        continue
                    still_blocked.append(uop)
                    if not fast:
                        continue
                    reason = uop.block_reason
                    if reason == "defense_execute":
                        seq = defense.execute_recheck_seq(uop)
                        if seq is None:
                            unknown = True
                        elif seq < barrier:
                            barrier = seq
                    elif reason == "disambiguation":
                        has_disamb = True
                        blocker = self._disamb_blocker
                        if blocker is not None and blocker.seq < barrier:
                            barrier = blocker.seq
                    elif reason == "mfence":
                        if uop.seq < barrier:
                            barrier = uop.seq
                    else:  # div_busy
                        retry_cycle = self.div_busy_until
                self._blocked = still_blocked
                if (fast and still_blocked and issued < width
                        and squash0 == self._evt_squash
                        and resolve0 == self._evt_resolve
                        and div0 == self._evt_div
                        and store0 == self._evt_store
                        and load0 == self._evt_load):
                    # Refusal-only pass (any issues were event-free ALU
                    # ops that no gate observes, and `issued < width`
                    # proves every entry really was probed): the pass
                    # outcome repeats until an event or the barrier.
                    if unknown:
                        seq = self.rob.head.seq + 1
                        if seq < barrier:
                            barrier = seq
                    self._issue_valid = True
                    self._issue_squash = squash0
                    self._issue_resolve = resolve0
                    self._issue_div = div0
                    self._issue_store = store0
                    self._issue_load = load0
                    self._issue_has_disamb = has_disamb
                    self._issue_barrier = barrier
                    self._issue_retry_cycle = retry_cycle
                    self._blocked_refusals = (
                        defense.stats["delayed_transmitters"] - refused0)

        while issued < width and self._ready_q:
            _, uop = heapq.heappop(self._ready_q)
            if uop.squashed or uop.issued:
                continue
            if self._try_execute(uop):
                issued += 1
            else:
                self._blocked.append(uop)
                self._issue_valid = False  # blocked set changed

    def _try_execute(self, uop: Uop) -> bool:
        """Attempt to execute; returns False if structurally or
        policy-blocked (the uop stays in the blocked list)."""
        inst = uop.inst
        if inst.op is Op.MFENCE:
            head = self.rob.head
            if head is None or head.seq != uop.seq:
                uop.block_reason = "mfence"
                return False
            latency = 1
            # The frontend stalled at this fence when it was fetched
            # (at most one such blocker exists: fetch stops behind it);
            # executing — only possible at the ROB head, hence
            # non-speculatively — releases it.
            self.fetch_blocked = False
        elif inst.is_div:
            if self.cycle < self.div_busy_until:
                uop.block_reason = "div_busy"
                return False  # the divider is not pipelined
            if not self.defense.may_execute(uop):
                self.defense.stats["delayed_transmitters"] += 1
                if uop.exec_block_cycle < 0:
                    self._open_exec_episode(uop)
                uop.block_reason = "defense_execute"
                return False
            if uop.exec_block_cycle >= 0:
                self._close_exec_episode(uop)
            latency = self._execute_div(uop)
            self.div_busy_until = self.cycle + latency
        elif inst.is_load:
            if not self.defense.may_execute(uop):
                self.defense.stats["delayed_transmitters"] += 1
                if uop.exec_block_cycle < 0:
                    self._open_exec_episode(uop)
                uop.block_reason = "defense_execute"
                return False
            # Close at the gate-allow, not at issue: a post-allow
            # disambiguation stall is not the defense's doing.
            if uop.exec_block_cycle >= 0:
                self._close_exec_episode(uop)
            maybe_latency = self._execute_load(uop)
            if maybe_latency is None:
                uop.block_reason = "disambiguation"
                return False  # memory disambiguation stall
            latency = maybe_latency
        elif inst.is_store:
            if not self.defense.may_execute(uop):
                self.defense.stats["delayed_transmitters"] += 1
                if uop.exec_block_cycle < 0:
                    self._open_exec_episode(uop)
                uop.block_reason = "defense_execute"
                return False
            if uop.exec_block_cycle >= 0:
                self._close_exec_episode(uop)
            latency = self._execute_store(uop)
        else:
            if not self.defense.may_execute(uop):
                self.defense.stats["delayed_transmitters"] += 1
                if uop.exec_block_cycle < 0:
                    self._open_exec_episode(uop)
                uop.block_reason = "defense_execute"
                return False
            if uop.exec_block_cycle >= 0:
                self._close_exec_episode(uop)
            latency = self._execute_simple(uop)

        uop.block_reason = None
        uop.issued = True
        uop.in_iq = False
        self.iq_count -= 1
        uop.issue_cycle = self.cycle
        self.stats["issued_uops"] += 1
        # Typed issue events for the retry caches.  Plain ALU/branch
        # issues bump nothing: no gating hook observes their effects
        # (they only write register values and ready bits).
        if inst.is_load:
            self._evt_load += 1
        elif inst.is_store:
            self._evt_store += 1
        elif inst.is_div:
            self._evt_div += 1
        done_at = self.cycle + max(1, latency)
        bucket = self._wheel.get(done_at)
        if bucket is None:
            self._wheel[done_at] = [uop]
            heapq.heappush(self._wheel_times, done_at)
        else:
            bucket.append(uop)
        return True

    # -- functional execution --------------------------------------------

    def _src_value(self, uop: Uop, arch_reg: int) -> int:
        for areg, preg in uop.psrcs:
            if areg == arch_reg:
                return self.prf.values[preg]
        raise KeyError(f"uop does not read register {arch_reg}")

    def _set_results(self, uop: Uop, values: Dict[int, int]) -> None:
        results = []
        for areg, preg in uop.pdests:
            value = values[areg] & MASK64
            self.prf.values[preg] = value
            results.append((areg, value))
        uop.result_values = tuple(results)

    def _execute_simple(self, uop: Uop) -> int:
        inst = uop.inst
        op = inst.op
        config = self.config
        if op is Op.MOVI:
            self._set_results(uop, {inst.rd: inst.imm & MASK64})
            return config.alu_latency
        if op is Op.MOV:
            self._set_results(uop, {inst.rd: self._src_value(uop, inst.ra)})
            return config.alu_latency
        if op in REG_ALU_OPS:
            result = alu(op, self._src_value(uop, inst.ra),
                         self._src_value(uop, inst.rb))
            self._set_results(uop, {inst.rd: result})
            return (config.mul_latency if op is Op.MUL
                    else config.alu_latency)
        if op in IMM_ALU_OPS:
            result = alu(op, self._src_value(uop, inst.ra), inst.imm & MASK64)
            self._set_results(uop, {inst.rd: result})
            return (config.mul_latency if op is Op.MULI
                    else config.alu_latency)
        if op in FLAG_WRITERS:
            b = inst.imm & MASK64 if op is Op.CMPI \
                else self._src_value(uop, inst.rb)
            self._set_results(
                uop, {FLAGS: compare_flags(op, self._src_value(uop, inst.ra),
                                           b)})
            return config.alu_latency
        if op is Op.BR:
            flags = self._src_value(uop, FLAGS)
            uop.taken = eval_cond(inst.cond, flags)
            uop.actual_next = inst.target if uop.taken else uop.pc + 1
            return config.alu_latency
        if op is Op.JMPI:
            uop.taken = True
            uop.actual_next = self._src_value(uop, inst.ra)
            return config.alu_latency
        raise ValueError(f"cannot execute {op!r}")  # pragma: no cover

    def _execute_div(self, uop: Uop) -> int:
        inst = uop.inst
        a = self._src_value(uop, inst.ra)
        b = self._src_value(uop, inst.rb)
        self._set_results(uop, {inst.rd: alu(inst.op, a, b)})
        # Operand-dependent latency: the divider side channel.
        return self.config.div_base_latency + div_timing_class(a, b)

    def _load_address(self, uop: Uop) -> int:
        inst = uop.inst
        if inst.op is Op.LOAD:
            base = self._src_value(uop, inst.ra)
            index = self._src_value(uop, inst.rb) if inst.rb is not None \
                else 0
            return effective_address(base, index, inst.imm)
        # POP / RET read through the stack pointer.
        return effective_address(self._src_value(uop, SP), 0, 0)

    def _execute_load(self, uop: Uop) -> Optional[int]:
        inst = uop.inst
        uop.mem_addr = self._load_address(uop)
        status, store = self.lsq.forwarding_store(uop)
        if status == "stall":
            self._disamb_blocker = store
            return None
        if status == "forward":
            assert store is not None
            value = store.store_data
            latency = self.config.store_forward_latency
            uop.lsq_prot = store.lsq_prot
            uop.forwarded_from = store
            uop.mem_level = "sq"
        else:
            latency = self.caches.access(uop.mem_addr)
            value = self.memory.read_word(uop.mem_addr)
            uop.lsq_prot = self.mem_tags.word_protected(uop.mem_addr)
            uop.mem_level = self.caches.last_level
        uop.mem_value = value

        if inst.op is Op.LOAD:
            self._set_results(uop, {inst.rd: value})
        elif inst.op is Op.POP:
            sp = self._src_value(uop, SP)
            self._set_results(uop, {inst.rd: value, SP: (sp + 8) & MASK64})
        elif inst.op is Op.RET:
            sp = self._src_value(uop, SP)
            self._set_results(uop, {SP: (sp + 8) & MASK64})
            uop.taken = True
            uop.actual_next = value
        self.defense.on_load_executed(uop)
        return latency

    def _execute_store(self, uop: Uop) -> int:
        inst = uop.inst
        if inst.op is Op.STORE:
            base = self._src_value(uop, inst.ra)
            index = self._src_value(uop, inst.rb) if inst.rb is not None \
                else 0
            uop.mem_addr = effective_address(base, index, inst.imm)
            uop.store_data = self._src_value(uop, inst.rd)
            data_preg = uop.phys_for(inst.rd)
            uop.lsq_prot = self.prf.prot[data_preg]
        elif inst.op is Op.PUSH:
            sp = self._src_value(uop, SP)
            new_sp = (sp - 8) & MASK64
            uop.mem_addr = effective_address(new_sp, 0, 0)
            uop.store_data = self._src_value(uop, inst.ra)
            data_preg = uop.phys_for(inst.ra)
            uop.lsq_prot = self.prf.prot[data_preg]
            self._set_results(uop, {SP: new_sp})
        else:  # CALL pushes its (public, constant) return address.
            sp = self._src_value(uop, SP)
            new_sp = (sp - 8) & MASK64
            uop.mem_addr = effective_address(new_sp, 0, 0)
            uop.store_data = uop.pc + 1
            uop.lsq_prot = uop.inst.prot
            self._set_results(uop, {SP: new_sp})
            uop.taken = True
            uop.actual_next = uop.inst.target
        # Stores probe the hierarchy at execute (translation/RFO): a
        # transient store's address modulates the caches.
        self.caches.access(uop.mem_addr)
        return 1

    # ==================================================================
    # Completion, wakeup, branch resolution
    # ==================================================================

    def _complete_stage(self) -> None:
        for uop in self._wheel.pop(self.cycle, ()):
            if uop.squashed:
                continue
            uop.executed = True
            uop.complete_cycle = self.cycle
            uop.completed = True
            if uop.is_branch:
                self._attempt_resolution(uop)
            if uop.pdests:
                if self.defense.may_wakeup(uop):
                    self._do_wakeup(uop)
                else:
                    self.defense.stats["delayed_wakeups"] += 1
                    if uop.wakeup_block_cycle < 0:
                        self._open_wakeup_episode(uop)
                    uop.wakeup_pending = True
                    self._pending_wakeup.append(uop)
                    self._wake_valid = False  # pending set changed

    # -- defense-intervention episodes ---------------------------------
    #
    # One episode spans first-refusal -> allow (or squash / end of run)
    # for one uop at one hook.  Episodes only ever open at a *real* hook
    # refusal and close at a real allow (or the squash rollback), so the
    # fast path's bulk refusal replay — which never re-asks the hooks —
    # is automatically episode-correct: the episode stays open across
    # the replayed window and the delay accrues through the cycle jump.

    def _open_exec_episode(self, uop: Uop) -> None:
        uop.exec_block_cycle = self.cycle
        self.defense.stats["exec_interventions"] += 1
        self.stats["_open_exec"] += 1
        self.stats["_open_exec_sum"] += self.cycle

    def _close_exec_episode(self, uop: Uop) -> None:
        start = uop.exec_block_cycle
        uop.exec_block_cycle = -1
        self.defense.stats["exec_delay_cycles"] += self.cycle - start
        self.stats["_open_exec"] -= 1
        self.stats["_open_exec_sum"] -= start
        if self.ledger is not None:
            self.ledger.record(self, uop, "execute", start)

    def _open_resolve_episode(self, uop: Uop) -> None:
        uop.resolve_block_cycle = self.cycle
        self.defense.stats["resolve_interventions"] += 1
        self.stats["_open_resolve"] += 1
        self.stats["_open_resolve_sum"] += self.cycle

    def _close_resolve_episode(self, uop: Uop) -> None:
        start = uop.resolve_block_cycle
        uop.resolve_block_cycle = -1
        self.defense.stats["resolve_delay_cycles"] += self.cycle - start
        self.stats["_open_resolve"] -= 1
        self.stats["_open_resolve_sum"] -= start
        if self.ledger is not None:
            self.ledger.record(self, uop, "resolve", start)

    def _open_wakeup_episode(self, uop: Uop) -> None:
        uop.wakeup_block_cycle = self.cycle
        self.defense.stats["wakeup_interventions"] += 1
        self.stats["_open_wakeup"] += 1
        self.stats["_open_wakeup_sum"] += self.cycle

    def _close_wakeup_episode(self, uop: Uop) -> None:
        start = uop.wakeup_block_cycle
        uop.wakeup_block_cycle = -1
        self.defense.stats["wakeup_delay_cycles"] += self.cycle - start
        self.stats["_open_wakeup"] -= 1
        self.stats["_open_wakeup_sum"] -= start
        if self.ledger is not None:
            self.ledger.record(self, uop, "wakeup", start)

    def _do_wakeup(self, uop: Uop) -> None:
        if uop.wakeup_block_cycle >= 0:
            self._close_wakeup_episode(uop)
        uop.wakeup_pending = False
        for _, preg in uop.pdests:
            self.prf.ready[preg] = True
            for waiter in self._waiters.pop(preg, ()):
                if waiter.squashed or waiter.issued:
                    continue
                waiter.unready_count -= 1
                if waiter.unready_count == 0:
                    heapq.heappush(self._ready_q, (waiter.seq, waiter))

    def _retry_pending(self) -> None:
        if self._pending_resolution:
            if self._res_cache_ok():
                # No relevant event since the last pass: every pending
                # branch would be counted and refused identically.
                self.stats["delayed_resolution_cycles"] += self._res_live
                self.defense.stats["delayed_resolutions"] += \
                    self._res_refused
            else:
                self._res_valid = False
                squash0, resolve0 = self._evt_squash, self._evt_resolve
                load0 = self._evt_load
                refused0 = self.defense.stats["delayed_resolutions"]
                live = 0
                pending = self._pending_resolution
                pending.sort()
                self._pending_resolution = []
                for uop in pending:
                    if uop.squashed or uop.resolved:
                        continue
                    live += 1
                    self.stats["delayed_resolution_cycles"] += 1
                    self._attempt_resolution(uop)
                if (self._fast and self._pending_resolution
                        and squash0 == self._evt_squash
                        and resolve0 == self._evt_resolve
                        and load0 == self._evt_load):
                    barrier = _NEVER
                    defense = self.defense
                    for uop in self._pending_resolution:
                        # "squash_notify" entries flip only when their
                        # older blocker resolves or squashes — event
                        # counters cover those; no barrier needed.
                        if uop.block_reason == "defense_resolution":
                            seq = defense.resolve_recheck_seq(uop)
                            if seq is None:
                                seq = self.rob.head.seq + 1
                            if seq < barrier:
                                barrier = seq
                    self._res_valid = True
                    self._res_squash = squash0
                    self._res_resolve = resolve0
                    self._res_load = load0
                    self._res_barrier = barrier
                    self._res_live = live
                    self._res_refused = (
                        self.defense.stats["delayed_resolutions"]
                        - refused0)
        if self._pending_wakeup:
            if self._wake_cache_ok():
                return  # all would be refused again; no counters here
            self._wake_valid = False
            squash0, resolve0 = self._evt_squash, self._evt_resolve
            load0 = self._evt_load
            pending = self._pending_wakeup
            self._pending_wakeup = []
            for uop in pending:
                if uop.squashed:
                    continue
                if self.defense.may_wakeup(uop):
                    self._do_wakeup(uop)
                else:
                    self._pending_wakeup.append(uop)
            if (self._fast and self._pending_wakeup
                    and squash0 == self._evt_squash
                    and resolve0 == self._evt_resolve
                    and load0 == self._evt_load):
                barrier = _NEVER
                defense = self.defense
                head = self.rob.head
                head_next = head.seq + 1 if head is not None else 0
                for uop in self._pending_wakeup:
                    seq = defense.wakeup_recheck_seq(uop)
                    if seq is None:
                        seq = head_next
                    if seq < barrier:
                        barrier = seq
                self._wake_valid = True
                self._wake_squash = squash0
                self._wake_resolve = resolve0
                self._wake_load = load0
                self._wake_barrier = barrier

    def _attempt_resolution(self, uop: Uop) -> None:
        """Try to resolve a branch: broadcast its outcome and squash on a
        misprediction.  Defenses may delay this (the squash signal is a
        transmitter)."""
        if not self.defense.may_resolve(uop):
            self.defense.stats["delayed_resolutions"] += 1
            if uop.resolve_block_cycle < 0:
                self._open_resolve_episode(uop)
            uop.block_reason = "defense_resolution"
            uop.resolution_pending = True
            self._pending_resolution.append(uop)
            self._res_valid = False  # pending set changed
            return
        # The defense allowed the resolution: close its episode before
        # the buggy-squash-port check, so bug-port hold time is never
        # charged to the defense (may_resolve re-refusing later opens a
        # legitimate second episode).
        if uop.resolve_block_cycle >= 0:
            self._close_resolve_episode(uop)
        if self.config.buggy_squash_notify and self._buggy_blocked(uop):
            uop.block_reason = "squash_notify"
            uop.resolution_pending = True
            self._pending_resolution.append(uop)
            self._res_valid = False  # pending set changed
            return
        self._evt_resolve += 1
        depth = self.stats["_spec_depth"]
        self.stats[hist_key("spec_depth", depth)] += 1
        self.stats["_spec_depth"] = depth - 1
        uop.block_reason = None
        uop.resolved = True
        uop.resolution_pending = False
        self._prune_resolved_branches()
        # Train at resolution (as the gem5 O3 CPU does): prompt updates
        # under early resolution, stale ones when a defense delays the
        # branch.  Occasional wrong-path training self-corrects.
        self.bp.train(uop.pc, uop.inst, bool(uop.taken), uop.actual_next,
                      uop.bp_index)
        if uop.actual_next != uop.predicted_next:
            uop.mispredicted = True
            self._squash_after(uop)

    def _buggy_blocked(self, uop: Uop) -> bool:
        """The STT-inherited pending-squash bug (paper SVII-B4b): an
        older executed-but-unresolvable (tainted/protected) branch that
        *mispredicted* wins the per-cycle squash notification and blocks
        this younger branch from initiating its own squash."""
        for other in self._pending_resolution:
            if (other.seq < uop.seq and not other.squashed
                    and other.executed
                    and other.actual_next != other.predicted_next):
                return True
        return False

    # ==================================================================
    # Squash
    # ==================================================================

    def _squash_after(self, branch: Uop) -> None:
        self._evt_squash += 1
        stats = self.stats
        stats["squashes"] += 1
        stats[_SQUASH_CAUSE[branch.inst.op]] += 1
        squashed = self.rob.squash_younger_than(branch.seq)
        stats["squashed_uops"] += len(squashed)
        stats[hist_key("squash_cascade", len(squashed))] += 1
        for uop in squashed:  # youngest first: exact rename rollback
            uop.squashed = True
            uop.squash_cycle = self.cycle
            if uop.is_branch and not uop.resolved:
                stats["_spec_depth"] -= 1
            if uop.exec_block_cycle >= 0:
                self._close_exec_episode(uop)
            if uop.resolve_block_cycle >= 0:
                self._close_resolve_episode(uop)
            if uop.wakeup_block_cycle >= 0:
                self._close_wakeup_episode(uop)
            self.rename_map.rollback(uop)
            for _, preg in uop.pdests:
                self.prf.free(preg)
            if uop.inst.is_mem:
                self.lsq.remove(uop)
            if uop.in_iq:
                uop.in_iq = False
                self.iq_count -= 1
            self.defense.on_squash(uop)
        for _, uop in self.fetch_buffer:
            uop.squashed = True
            uop.squash_cycle = self.cycle
        self.fetch_buffer.clear()
        self._inflight_branches = deque(
            b for b in self._inflight_branches if not b.squashed)
        self._prune_resolved_branches()
        if branch.bp_snapshot is not None:
            # Repair wrong-path corruption of the speculative front-end
            # state (global history, RAS), correcting the mispredicted
            # branch's own history bit to its actual direction.
            self.bp.restore(branch.bp_snapshot)
            if branch.inst.op is Op.BR:
                predicted_taken = branch.predicted_next != branch.pc + 1
                if predicted_taken != bool(branch.taken):
                    self.bp.direction.history ^= 1
        self.fetch_pc = branch.actual_next
        self.fetch_stalled_until = self.cycle + self.config.redirect_penalty
        self.fetch_blocked = False

    # ==================================================================
    # Commit
    # ==================================================================

    def _commit_stage(self) -> Tuple[int, Optional[str]]:
        """Commit up to ``width`` uops; on an early stop, classify why
        (the per-cycle stall cause ``step`` charges the shortfall to)."""
        committed = 0
        for _ in range(self.config.width):
            head = self.rob.head
            if (head is None or not head.completed
                    or (head.is_branch and not head.resolved)):
                return committed, self._classify_stall(head)
            self._commit_uop(head)
            committed += 1
            if self.halted:
                break
        return committed, None

    # -- stall-cause attribution ------------------------------------------

    def _classify_stall(self, head: Optional[Uop]) -> str:
        """Attribute this cycle's commit shortfall to one cause, judged
        at commit time (before the later stages mutate the state)."""
        if head is None:
            # Empty ROB: the frontend is not delivering.
            if self.cycle < self.fetch_stalled_until:
                return "fetch_redirect"
            if (not self.fetch_buffer
                    and not 0 <= self.fetch_pc < len(self.program)):
                # Empty ROB and a dead frontend with no redirect coming:
                # nothing in flight can ever change this state.  The
                # no-progress early abort ends such runs.
                return "no_progress"
            return "frontend"
        if head.is_branch and head.completed and not head.resolved:
            # Executed branch whose resolution (squash signal) is held.
            return _BLOCK_TO_CAUSE.get(head.block_reason,
                                       "defense_resolution")
        if head.issued:
            return self._uop_stall(head) or "exec_latency"
        if head.unready_count > 0:
            cause = self._operand_stall(head)
            if cause is not None:
                return cause
            if self._rename_block is not None:
                # The machine is also structurally backpressured; charge
                # the dependency wait to the structural bottleneck.
                return self._rename_block
            return "dependency"
        # Ready but never picked: lost issue arbitration or refused.
        return self._uop_stall(head) or "issue_bw"

    def _uop_stall(self, uop: Uop) -> Optional[str]:
        """Why an in-flight, uncommitted uop has not completed yet."""
        if uop.issued:
            if uop.inst.is_div:
                return "div_busy"
            if uop.mem_level in _MISS_LEVELS:
                return "cache_miss"
            return "exec_latency"
        if uop.block_reason is not None:
            return _BLOCK_TO_CAUSE.get(uop.block_reason)
        return None

    def _operand_stall(self, head: Uop) -> Optional[str]:
        """Follow the head's unready operands to their producers."""
        prf = self.prf
        for _, preg in head.psrcs:
            if prf.ready[preg]:
                continue
            producer = self._producer_of.get(preg)
            if producer is None or producer.squashed:
                continue
            if producer.wakeup_pending:
                return "defense_wakeup"
            cause = self._uop_stall(producer)
            if cause is not None:
                return cause
        return None

    def _commit_uop(self, uop: Uop) -> None:
        # Commits bump no event counter: the retry caches bound commit
        # effects with head-seq barriers (see __init__).
        self._last_commit_cycle = self.cycle
        inst = uop.inst
        if inst.op is Op.HALT:
            uop.committed = True
            uop.commit_cycle = self.cycle
            self.committed.append(uop)
            self.rob.pop_head()
            self.halted = True
            self.halt_reason = "halt"
            return

        if inst.is_store:
            # Stores update memory (and the L1D protection bits) at
            # commit; wrong-path stores never reach here.
            self.memory.write_word(uop.mem_addr, uop.store_data)
            self.caches.access(uop.mem_addr)
            self.mem_tags.set_word(uop.mem_addr, bool(uop.lsq_prot))
            if self._store_commit_listener is not None:
                self._store_commit_listener(self, uop.mem_addr)
        if inst.is_load and not inst.prot:
            # Loads with unprotected outputs unprotect the bytes they
            # accessed (paper SIV-C2b).
            self.mem_tags.clear_word(uop.mem_addr)

        for areg, value in uop.result_values:
            self.arch_values[areg] = value
        for _, old_preg in uop.old_pdests:
            self.prf.free(old_preg)

        if uop.is_branch:
            self.stats["committed_branches"] += 1
            if uop.mispredicted:
                self.stats["mispredicted_branches"] += 1

        self.defense.on_commit(uop)
        uop.committed = True
        uop.commit_cycle = self.cycle
        self.committed.append(uop)
        self.rob.pop_head()
        if inst.is_mem:
            self.lsq.remove(uop)
        if uop.is_branch:
            # A committing branch is resolved and the oldest in flight,
            # so pruning from the front removes it.
            self._prune_resolved_branches()

        next_pc = uop.actual_next if inst.is_control else uop.pc + 1
        if not 0 <= next_pc < len(self.program):
            self.halted = True
            self.halt_reason = ("off_end" if next_pc == len(self.program)
                                else "bad_pc")


#: Engine names accepted by :func:`simulate` (and the CLI ``--engine``
#: flags).  ``refcore`` is an alias kept for symmetry with ``repro diff``
#: output labels.
ENGINES = ("auto", "ref", "refcore", "fast", "compiled")


def simulate(program: Program, defense=None, config: CoreConfig = P_CORE,
             memory: Optional[Memory] = None,
             regs: Optional[Dict[int, int]] = None,
             max_cycles: int = DEFAULT_MAX_CYCLES,
             tracer=None, metrics=None, ledger=None,
             fast_path: Optional[bool] = None,
             no_progress_limit: Optional[int] = DEFAULT_NO_PROGRESS_LIMIT,
             engine: Optional[str] = None,
             ) -> CoreResult:
    """Run ``program`` to completion on a fresh core.

    ``engine`` picks the execution backend:

    * ``None`` / ``"auto"`` — the compiled backend when nothing pins the
      interpreter (no tracer, no ledger, no explicit ``fast_path``, and
      ``REPRO_NO_COMPILE`` unset); otherwise the interpreted core with
      its usual fast-path default.
    * ``"ref"`` / ``"refcore"`` — the interpreter with every fast path
      off (the differential harness's trust anchor).
    * ``"fast"`` — the interpreter with the fast paths on.
    * ``"compiled"`` — the specializing backend
      (:mod:`repro.uarch.compiled`), falling back to the interpreter for
      shapes it refuses (attached tracer or ledger, empty program).
    """
    if engine is None or engine == "auto":
        want_compiled = (fast_path is None and tracer is None
                         and ledger is None
                         and not os.environ.get("REPRO_NO_COMPILE"))
    elif engine in ("ref", "refcore"):
        fast_path, want_compiled = False, False
    elif engine == "fast":
        fast_path, want_compiled = True, False
    elif engine == "compiled":
        want_compiled = True
    else:
        raise ValueError(f"unknown engine {engine!r}; expected one of "
                         f"{', '.join(ENGINES)}")
    if want_compiled:
        from .compiled import CompiledCore, CompileUnsupported

        try:
            return CompiledCore(program, defense, config, memory, regs,
                                max_cycles, tracer=tracer, metrics=metrics,
                                ledger=ledger,
                                no_progress_limit=no_progress_limit).run()
        except CompileUnsupported:
            pass  # fall back to the interpreter
    return Core(program, defense, config, memory, regs, max_cycles,
                tracer=tracer, metrics=metrics, ledger=ledger,
                fast_path=fast_path,
                no_progress_limit=no_progress_limit).run()
