"""The speculative out-of-order core.

A simplified but structurally faithful gem5-O3-style pipeline:
fetch (predicted path) -> rename/dispatch -> event-driven issue ->
execute -> complete/resolve -> in-order commit, with exact squash
rollback.  Speculation past unresolved branches is what opens Spectre
windows; transient loads modulate the cache hierarchy; defenses gate
execution, resolution, and wakeup through the hooks in
:class:`repro.defenses.base.Defense`.

ProtISA support (paper SIV-C) is always present: rename-map protection
bits flow onto physical registers at rename, LSQ entries take a
protection bit at execute, and the L1D byte tags are updated at commit.
Defenses that ignore ProtISA simply never read these planes.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..arch.memory import Memory
from ..arch.semantics import (
    MASK64,
    alu,
    compare_flags,
    div_timing_class,
    effective_address,
)
from ..arch.executor import STACK_TOP
from ..isa.operations import (
    FLAG_WRITERS,
    IMM_ALU_OPS,
    Op,
    REG_ALU_OPS,
    eval_cond,
)
from ..isa.program import Program
from ..isa.registers import FLAGS, NUM_REGS, SP
from .branch_predictor import BranchPredictor
from .caches import CacheHierarchy
from .config import CoreConfig, P_CORE, SpeculationModel
from .structures import LoadStoreQueue, PhysRegFile, RenameMap, ReorderBuffer
from .uop import Uop

#: Safety valve for runaway simulations.
DEFAULT_MAX_CYCLES = 3_000_000


@dataclass
class CoreResult:
    """Outcome of a simulated run."""

    cycles: int
    halt_reason: str
    committed_pcs: List[int]
    final_regs: Tuple[int, ...]
    memory: Memory
    timing_trace: List[Tuple[int, int, int, int, int, int]]
    adversary_cache_state: Tuple
    #: (pc, address) of every committed memory access, in program order
    #: (AMuLeT*'s false-positive filter compares these, paper SVII-B1e).
    committed_accesses: List[Tuple[int, int]] = field(default_factory=list)
    stats: Dict[str, int] = field(default_factory=dict)

    @property
    def instructions(self) -> int:
        return len(self.committed_pcs)

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0


class Core:
    """One out-of-order core running one linked program to completion."""

    def __init__(
        self,
        program: Program,
        defense=None,
        config: CoreConfig = P_CORE,
        memory: Optional[Memory] = None,
        regs: Optional[Dict[int, int]] = None,
        max_cycles: int = DEFAULT_MAX_CYCLES,
        shared_memory: bool = False,
        shared_l3=None,
        store_commit_listener=None,
    ) -> None:
        from ..defenses.base import Unsafe
        from ..protisa.tags import MemoryProtectionTags

        if not program.is_linked:
            program = program.linked()
        self.program = program
        self.config = config
        self.defense = defense if defense is not None else Unsafe()
        if memory is None:
            self.memory = Memory()
        elif shared_memory:
            self.memory = memory  # multi-core: one address space
        else:
            self.memory = memory.copy()
        self.max_cycles = max_cycles
        self._store_commit_listener = store_commit_listener

        self.prf = PhysRegFile(config.num_phys_regs)
        self.rename_map = RenameMap()
        self.arch_values: List[int] = [0] * NUM_REGS
        self.arch_values[SP] = STACK_TOP
        if regs:
            for index, value in regs.items():
                self.arch_values[index] = value & MASK64
        for index in range(NUM_REGS):
            self.prf.values[index] = self.arch_values[index]
            self.prf.ready[index] = True
            # Startup code wrote the initial registers with unprefixed
            # instructions, so they begin architecturally unprotected.
            self.prf.prot[index] = False

        self.mem_tags = MemoryProtectionTags(config.l1d_tag_mode)
        self.caches = CacheHierarchy(config, self.mem_tags.on_l1d_eviction,
                                     shared_l3=shared_l3)
        self.mem_tags.attach_l1d(self.caches.l1d)
        self.bp = BranchPredictor(config.bp_table_bits,
                                  config.bp_history_bits,
                                  config.btb_entries, config.ras_entries)

        self.rob = ReorderBuffer(config.rob_size)
        self.lsq = LoadStoreQueue(config.lq_size, config.sq_size)
        self.iq_count = 0

        self._ready_q: List[Tuple[int, Uop]] = []
        self._blocked: List[Uop] = []
        self._waiters: Dict[int, List[Uop]] = {}
        self._wheel: Dict[int, List[Uop]] = {}
        self._pending_wakeup: List[Uop] = []
        self._pending_resolution: List[Uop] = []
        self._inflight_branches: List[Uop] = []

        self.cycle = 0
        self.seq_counter = 0
        self.fetch_pc = program.entry
        self.fetch_stalled_until = 0
        self.fetch_blocked = False
        self.fetch_buffer: List[Tuple[int, Uop]] = []  # (ready_cycle, uop)

        self.halted = False
        self.halt_reason = "timeout"
        self.committed: List[Uop] = []
        self.div_busy_until = 0

        self.stats = {
            "squashes": 0,
            "squashed_uops": 0,
            "committed_branches": 0,
            "mispredicted_branches": 0,
            "delayed_resolution_cycles": 0,
        }
        self.defense.attach(self)

    # ==================================================================
    # Speculation-state queries (paper SII-B2)
    # ==================================================================

    def seq_nonspeculative(self, seq: int) -> bool:
        """Whether the uop with sequence number ``seq`` is past its
        speculation window under the configured model."""
        if self.config.speculation_model is SpeculationModel.ATCOMMIT:
            head = self.rob.head
            return head is None or seq <= head.seq
        # CONTROL: speculative until all prior branches have resolved.
        branches = self._inflight_branches
        while branches and (branches[0].squashed or branches[0].resolved):
            branches.pop(0)
        return not branches or branches[0].seq >= seq

    # ==================================================================
    # Main loop
    # ==================================================================

    def run(self) -> CoreResult:
        while not self.halted and self.cycle < self.max_cycles:
            self.step()
        if not self.halted:
            self.halt_reason = "timeout"
        return self._result()

    def step(self) -> None:
        self._commit_stage()
        if self.halted:
            return
        self._complete_stage()
        self._retry_pending()
        self._issue_stage()
        self._rename_stage()
        self._fetch_stage()
        self.cycle += 1

    def _result(self) -> CoreResult:
        stats = dict(self.stats)
        stats.update({
            "l1d_hits": self.caches.l1d.hits,
            "l1d_misses": self.caches.l1d.misses,
            "l2_misses": self.caches.l2.misses,
        })
        for key, value in self.defense.stats.items():
            stats[f"defense_{key}"] = value
        committed = [u for u in self.committed if u.inst.op is not Op.HALT]
        return CoreResult(
            cycles=self.cycle,
            halt_reason=self.halt_reason,
            committed_pcs=[u.pc for u in committed],
            final_regs=tuple(self.arch_values),
            memory=self.memory,
            timing_trace=[u.timing_observation() for u in committed],
            adversary_cache_state=self.caches.adversary_state(),
            committed_accesses=[(u.pc, u.mem_addr) for u in committed
                                if u.mem_addr is not None],
            stats=stats,
        )

    # ==================================================================
    # Fetch
    # ==================================================================

    def _fetch_stage(self) -> None:
        if self.fetch_blocked or self.cycle < self.fetch_stalled_until:
            return
        program_len = len(self.program)
        for _ in range(self.config.width):
            if len(self.fetch_buffer) >= 2 * self.config.width:
                return
            pc = self.fetch_pc
            if not 0 <= pc < program_len:
                return  # stalled until a squash redirects us
            inst = self.program[pc]
            predicted_next = self.bp.predict_next(pc, inst)
            uop = Uop(self.seq_counter, pc, inst, predicted_next, self.cycle)
            if inst.is_control:
                uop.bp_snapshot = self.bp.snapshot()
                if inst.op is Op.BR:
                    uop.bp_index = self.bp.last_br_index
            self.seq_counter += 1
            self.fetch_buffer.append(
                (self.cycle + self.config.frontend_delay, uop))
            if inst.op is Op.HALT:
                self.fetch_blocked = True
                return
            self.fetch_pc = predicted_next
            if predicted_next != pc + 1:
                return  # one taken control transfer per cycle

    # ==================================================================
    # Rename / dispatch
    # ==================================================================

    def _rename_stage(self) -> None:
        config = self.config
        for _ in range(config.width):
            if not self.fetch_buffer:
                return
            ready_cycle, uop = self.fetch_buffer[0]
            if ready_cycle > self.cycle:
                return
            inst = uop.inst
            dests = inst.dest_regs()
            if (self.rob.full or self.prf.free_count < len(dests)
                    or not self.lsq.can_insert(uop)
                    or self.iq_count >= config.iq_size):
                return
            self.fetch_buffer.pop(0)
            uop.rename_cycle = self.cycle

            # Rename sources, carrying ProtISA's rename-map protection
            # tags onto the physical operands (paper SIV-E).
            uop.psrcs = tuple(
                (areg, self.rename_map.lookup(areg))
                for areg in inst.src_regs())

            # Rename destinations; the new rename-map entry's protection
            # bit is the PROT prefix (paper SIV-C1).
            pdests: List[Tuple[int, int]] = []
            old_pdests: List[Tuple[int, int]] = []
            for areg in dests:
                preg = self.prf.allocate()
                assert preg is not None
                old = self.rename_map.update(areg, preg)
                self.prf.ready[preg] = False
                self.prf.prot[preg] = inst.prot
                pdests.append((areg, preg))
                old_pdests.append((areg, old))
            uop.pdests = tuple(pdests)
            uop.old_pdests = tuple(old_pdests)

            self.defense.on_rename(uop)
            self.rob.push(uop)
            if inst.is_mem:
                self.lsq.insert(uop)
            if uop.is_branch:
                self._inflight_branches.append(uop)

            if inst.op in (Op.NOP, Op.HALT, Op.JMP):
                # No execution needed; JMP's target is always correct.
                uop.executed = True
                uop.completed = True
                uop.resolved = True
                uop.actual_next = (inst.target if inst.op is Op.JMP
                                   else uop.pc + 1)
                uop.complete_cycle = self.cycle
                continue

            # Enter the issue queue.
            uop.in_iq = True
            self.iq_count += 1
            unique_pregs = {preg for _, preg in uop.psrcs}
            unready = [p for p in unique_pregs if not self.prf.ready[p]]
            uop.unready_count = len(unready)
            for preg in unready:
                self._waiters.setdefault(preg, []).append(uop)
            if uop.unready_count == 0:
                heapq.heappush(self._ready_q, (uop.seq, uop))

    # ==================================================================
    # Issue / execute
    # ==================================================================

    def _issue_stage(self) -> None:
        width = self.config.width
        issued = 0

        # Retry previously blocked uops first (oldest first).
        if self._blocked:
            self._blocked.sort(key=lambda u: u.seq)
            still_blocked: List[Uop] = []
            for uop in self._blocked:
                if uop.squashed or uop.issued:
                    continue
                if issued < width and self._try_execute(uop):
                    issued += 1
                else:
                    still_blocked.append(uop)
            self._blocked = still_blocked

        while issued < width and self._ready_q:
            _, uop = heapq.heappop(self._ready_q)
            if uop.squashed or uop.issued:
                continue
            if self._try_execute(uop):
                issued += 1
            else:
                self._blocked.append(uop)

    def _try_execute(self, uop: Uop) -> bool:
        """Attempt to execute; returns False if structurally or
        policy-blocked (the uop stays in the blocked list)."""
        inst = uop.inst
        if inst.op is Op.MFENCE:
            head = self.rob.head
            if head is None or head.seq != uop.seq:
                return False
            latency = 1
        elif inst.is_div:
            if self.cycle < self.div_busy_until:
                return False  # the divider is not pipelined
            if not self.defense.may_execute(uop):
                self.defense.stats["delayed_transmitters"] += 1
                return False
            latency = self._execute_div(uop)
            self.div_busy_until = self.cycle + latency
        elif inst.is_load:
            if not self.defense.may_execute(uop):
                self.defense.stats["delayed_transmitters"] += 1
                return False
            maybe_latency = self._execute_load(uop)
            if maybe_latency is None:
                return False  # memory disambiguation stall
            latency = maybe_latency
        elif inst.is_store:
            if not self.defense.may_execute(uop):
                self.defense.stats["delayed_transmitters"] += 1
                return False
            latency = self._execute_store(uop)
        else:
            if not self.defense.may_execute(uop):
                self.defense.stats["delayed_transmitters"] += 1
                return False
            latency = self._execute_simple(uop)

        uop.issued = True
        uop.in_iq = False
        self.iq_count -= 1
        uop.issue_cycle = self.cycle
        done_at = self.cycle + max(1, latency)
        self._wheel.setdefault(done_at, []).append(uop)
        return True

    # -- functional execution --------------------------------------------

    def _src_value(self, uop: Uop, arch_reg: int) -> int:
        for areg, preg in uop.psrcs:
            if areg == arch_reg:
                return self.prf.values[preg]
        raise KeyError(f"uop does not read register {arch_reg}")

    def _set_results(self, uop: Uop, values: Dict[int, int]) -> None:
        results = []
        for areg, preg in uop.pdests:
            value = values[areg] & MASK64
            self.prf.values[preg] = value
            results.append((areg, value))
        uop.result_values = tuple(results)

    def _execute_simple(self, uop: Uop) -> int:
        inst = uop.inst
        op = inst.op
        config = self.config
        if op is Op.MOVI:
            self._set_results(uop, {inst.rd: inst.imm & MASK64})
            return config.alu_latency
        if op is Op.MOV:
            self._set_results(uop, {inst.rd: self._src_value(uop, inst.ra)})
            return config.alu_latency
        if op in REG_ALU_OPS:
            result = alu(op, self._src_value(uop, inst.ra),
                         self._src_value(uop, inst.rb))
            self._set_results(uop, {inst.rd: result})
            return (config.mul_latency if op is Op.MUL
                    else config.alu_latency)
        if op in IMM_ALU_OPS:
            result = alu(op, self._src_value(uop, inst.ra), inst.imm & MASK64)
            self._set_results(uop, {inst.rd: result})
            return (config.mul_latency if op is Op.MULI
                    else config.alu_latency)
        if op in FLAG_WRITERS:
            b = inst.imm & MASK64 if op is Op.CMPI \
                else self._src_value(uop, inst.rb)
            self._set_results(
                uop, {FLAGS: compare_flags(op, self._src_value(uop, inst.ra),
                                           b)})
            return config.alu_latency
        if op is Op.BR:
            flags = self._src_value(uop, FLAGS)
            uop.taken = eval_cond(inst.cond, flags)
            uop.actual_next = inst.target if uop.taken else uop.pc + 1
            return config.alu_latency
        if op is Op.JMPI:
            uop.taken = True
            uop.actual_next = self._src_value(uop, inst.ra)
            return config.alu_latency
        raise ValueError(f"cannot execute {op!r}")  # pragma: no cover

    def _execute_div(self, uop: Uop) -> int:
        inst = uop.inst
        a = self._src_value(uop, inst.ra)
        b = self._src_value(uop, inst.rb)
        self._set_results(uop, {inst.rd: alu(inst.op, a, b)})
        # Operand-dependent latency: the divider side channel.
        return self.config.div_base_latency + div_timing_class(a, b)

    def _load_address(self, uop: Uop) -> int:
        inst = uop.inst
        if inst.op is Op.LOAD:
            base = self._src_value(uop, inst.ra)
            index = self._src_value(uop, inst.rb) if inst.rb is not None \
                else 0
            return effective_address(base, index, inst.imm)
        # POP / RET read through the stack pointer.
        return effective_address(self._src_value(uop, SP), 0, 0)

    def _execute_load(self, uop: Uop) -> Optional[int]:
        inst = uop.inst
        uop.mem_addr = self._load_address(uop)
        status, store = self.lsq.forwarding_store(uop)
        if status == "stall":
            return None
        if status == "forward":
            assert store is not None
            value = store.store_data
            latency = self.config.store_forward_latency
            uop.lsq_prot = store.lsq_prot
            uop.forwarded_from = store
        else:
            latency = self.caches.access(uop.mem_addr)
            value = self.memory.read_word(uop.mem_addr)
            uop.lsq_prot = self.mem_tags.word_protected(uop.mem_addr)
        uop.mem_value = value

        if inst.op is Op.LOAD:
            self._set_results(uop, {inst.rd: value})
        elif inst.op is Op.POP:
            sp = self._src_value(uop, SP)
            self._set_results(uop, {inst.rd: value, SP: (sp + 8) & MASK64})
        elif inst.op is Op.RET:
            sp = self._src_value(uop, SP)
            self._set_results(uop, {SP: (sp + 8) & MASK64})
            uop.taken = True
            uop.actual_next = value
        self.defense.on_load_executed(uop)
        return latency

    def _execute_store(self, uop: Uop) -> int:
        inst = uop.inst
        if inst.op is Op.STORE:
            base = self._src_value(uop, inst.ra)
            index = self._src_value(uop, inst.rb) if inst.rb is not None \
                else 0
            uop.mem_addr = effective_address(base, index, inst.imm)
            uop.store_data = self._src_value(uop, inst.rd)
            data_preg = uop.phys_for(inst.rd)
            uop.lsq_prot = self.prf.prot[data_preg]
        elif inst.op is Op.PUSH:
            sp = self._src_value(uop, SP)
            new_sp = (sp - 8) & MASK64
            uop.mem_addr = effective_address(new_sp, 0, 0)
            uop.store_data = self._src_value(uop, inst.ra)
            data_preg = uop.phys_for(inst.ra)
            uop.lsq_prot = self.prf.prot[data_preg]
            self._set_results(uop, {SP: new_sp})
        else:  # CALL pushes its (public, constant) return address.
            sp = self._src_value(uop, SP)
            new_sp = (sp - 8) & MASK64
            uop.mem_addr = effective_address(new_sp, 0, 0)
            uop.store_data = uop.pc + 1
            uop.lsq_prot = uop.inst.prot
            self._set_results(uop, {SP: new_sp})
            uop.taken = True
            uop.actual_next = uop.inst.target
        # Stores probe the hierarchy at execute (translation/RFO): a
        # transient store's address modulates the caches.
        self.caches.access(uop.mem_addr)
        return 1

    # ==================================================================
    # Completion, wakeup, branch resolution
    # ==================================================================

    def _complete_stage(self) -> None:
        for uop in self._wheel.pop(self.cycle, ()):
            if uop.squashed:
                continue
            uop.executed = True
            uop.complete_cycle = self.cycle
            uop.completed = True
            if uop.is_branch:
                self._attempt_resolution(uop)
            if uop.pdests:
                if self.defense.may_wakeup(uop):
                    self._do_wakeup(uop)
                else:
                    self.defense.stats["delayed_wakeups"] += 1
                    uop.wakeup_pending = True
                    self._pending_wakeup.append(uop)

    def _do_wakeup(self, uop: Uop) -> None:
        uop.wakeup_pending = False
        for _, preg in uop.pdests:
            self.prf.ready[preg] = True
            for waiter in self._waiters.pop(preg, ()):
                if waiter.squashed or waiter.issued:
                    continue
                waiter.unready_count -= 1
                if waiter.unready_count == 0:
                    heapq.heappush(self._ready_q, (waiter.seq, waiter))

    def _retry_pending(self) -> None:
        if self._pending_resolution:
            pending = sorted(self._pending_resolution, key=lambda u: u.seq)
            self._pending_resolution = []
            for uop in pending:
                if uop.squashed or uop.resolved:
                    continue
                self.stats["delayed_resolution_cycles"] += 1
                self._attempt_resolution(uop)
        if self._pending_wakeup:
            pending = self._pending_wakeup
            self._pending_wakeup = []
            for uop in pending:
                if uop.squashed:
                    continue
                if self.defense.may_wakeup(uop):
                    self._do_wakeup(uop)
                else:
                    self._pending_wakeup.append(uop)

    def _attempt_resolution(self, uop: Uop) -> None:
        """Try to resolve a branch: broadcast its outcome and squash on a
        misprediction.  Defenses may delay this (the squash signal is a
        transmitter)."""
        if not self.defense.may_resolve(uop):
            self.defense.stats["delayed_resolutions"] += 1
            uop.resolution_pending = True
            self._pending_resolution.append(uop)
            return
        if self.config.buggy_squash_notify and self._buggy_blocked(uop):
            uop.resolution_pending = True
            self._pending_resolution.append(uop)
            return
        uop.resolved = True
        uop.resolution_pending = False
        # Train at resolution (as the gem5 O3 CPU does): prompt updates
        # under early resolution, stale ones when a defense delays the
        # branch.  Occasional wrong-path training self-corrects.
        self.bp.train(uop.pc, uop.inst, bool(uop.taken), uop.actual_next,
                      uop.bp_index)
        if uop.actual_next != uop.predicted_next:
            uop.mispredicted = True
            self._squash_after(uop)

    def _buggy_blocked(self, uop: Uop) -> bool:
        """The STT-inherited pending-squash bug (paper SVII-B4b): an
        older executed-but-unresolvable (tainted/protected) branch that
        *mispredicted* wins the per-cycle squash notification and blocks
        this younger branch from initiating its own squash."""
        for other in self._pending_resolution:
            if (other.seq < uop.seq and not other.squashed
                    and other.executed
                    and other.actual_next != other.predicted_next):
                return True
        return False

    # ==================================================================
    # Squash
    # ==================================================================

    def _squash_after(self, branch: Uop) -> None:
        self.stats["squashes"] += 1
        squashed = self.rob.squash_younger_than(branch.seq)
        self.stats["squashed_uops"] += len(squashed)
        for uop in squashed:  # youngest first: exact rename rollback
            uop.squashed = True
            self.rename_map.rollback(uop)
            for _, preg in uop.pdests:
                self.prf.free(preg)
            if uop.inst.is_mem:
                self.lsq.remove(uop)
            if uop.in_iq:
                uop.in_iq = False
                self.iq_count -= 1
            self.defense.on_squash(uop)
        for _, uop in self.fetch_buffer:
            uop.squashed = True
        self.fetch_buffer.clear()
        self._inflight_branches = [
            b for b in self._inflight_branches if not b.squashed]
        if branch.bp_snapshot is not None:
            # Repair wrong-path corruption of the speculative front-end
            # state (global history, RAS), correcting the mispredicted
            # branch's own history bit to its actual direction.
            self.bp.restore(branch.bp_snapshot)
            if branch.inst.op is Op.BR:
                predicted_taken = branch.predicted_next != branch.pc + 1
                if predicted_taken != bool(branch.taken):
                    self.bp.direction.history ^= 1
        self.fetch_pc = branch.actual_next
        self.fetch_stalled_until = self.cycle + self.config.redirect_penalty
        self.fetch_blocked = False

    # ==================================================================
    # Commit
    # ==================================================================

    def _commit_stage(self) -> None:
        for _ in range(self.config.width):
            head = self.rob.head
            if head is None or not head.completed:
                return
            if head.is_branch and not head.resolved:
                return  # resolution pending; _retry_pending will allow it
            self._commit_uop(head)
            if self.halted:
                return

    def _commit_uop(self, uop: Uop) -> None:
        inst = uop.inst
        if inst.op is Op.HALT:
            uop.committed = True
            uop.commit_cycle = self.cycle
            self.committed.append(uop)
            self.rob.pop_head()
            self.halted = True
            self.halt_reason = "halt"
            return

        if inst.is_store:
            # Stores update memory (and the L1D protection bits) at
            # commit; wrong-path stores never reach here.
            self.memory.write_word(uop.mem_addr, uop.store_data)
            self.caches.access(uop.mem_addr)
            self.mem_tags.set_word(uop.mem_addr, bool(uop.lsq_prot))
            if self._store_commit_listener is not None:
                self._store_commit_listener(self, uop.mem_addr)
        if inst.is_load and not inst.prot:
            # Loads with unprotected outputs unprotect the bytes they
            # accessed (paper SIV-C2b).
            self.mem_tags.clear_word(uop.mem_addr)

        for areg, value in uop.result_values:
            self.arch_values[areg] = value
        for _, old_preg in uop.old_pdests:
            self.prf.free(old_preg)

        if uop.is_branch:
            self.stats["committed_branches"] += 1
            if uop.mispredicted:
                self.stats["mispredicted_branches"] += 1

        self.defense.on_commit(uop)
        uop.committed = True
        uop.commit_cycle = self.cycle
        self.committed.append(uop)
        self.rob.pop_head()
        if inst.is_mem:
            self.lsq.remove(uop)
        if uop.is_branch and uop in self._inflight_branches:
            self._inflight_branches.remove(uop)

        next_pc = uop.actual_next if inst.is_control else uop.pc + 1
        if not 0 <= next_pc < len(self.program):
            self.halted = True
            self.halt_reason = ("off_end" if next_pc == len(self.program)
                                else "bad_pc")


def simulate(program: Program, defense=None, config: CoreConfig = P_CORE,
             memory: Optional[Memory] = None,
             regs: Optional[Dict[int, int]] = None,
             max_cycles: int = DEFAULT_MAX_CYCLES) -> CoreResult:
    """Run ``program`` to completion on a fresh core."""
    return Core(program, defense, config, memory, regs, max_cycles).run()
