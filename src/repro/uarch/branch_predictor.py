"""Branch prediction: gshare direction predictor, BTB, and RAS.

Mispredictions are what open Spectre windows, so the predictor must be
trainable by the program (attackers train it architecturally before
steering the victim).  All state is deterministic.
"""

from __future__ import annotations

from typing import List, Optional

from ..isa.instruction import Instruction
from ..isa.operations import Op


class GsharePredictor:
    """Global-history XOR PC indexed table of 2-bit counters."""

    def __init__(self, table_bits: int = 14, history_bits: int = 12):
        self.table_size = 1 << table_bits
        self.history_mask = (1 << history_bits) - 1
        self.counters: List[int] = [1] * self.table_size  # weakly not-taken
        self.history = 0
        self.last_index = 0

    def _index(self, pc: int) -> int:
        return (pc ^ self.history) % self.table_size

    def predict(self, pc: int) -> bool:
        """Predict and remember the table index used (training must hit
        the same entry, so the index travels with the branch)."""
        self.last_index = self._index(pc)
        return self.counters[self.last_index] >= 2

    def speculative_update_history(self, taken: bool) -> None:
        self.history = ((self.history << 1) | int(taken)) & self.history_mask

    def train_index(self, index: int, taken: bool) -> None:
        """Update the 2-bit counter the prediction actually read."""
        counter = self.counters[index]
        if taken and counter < 3:
            self.counters[index] = counter + 1
        elif not taken and counter > 0:
            self.counters[index] = counter - 1


class BTB:
    """Direct-mapped branch target buffer for indirect jumps."""

    def __init__(self, entries: int = 4096):
        self.entries = entries
        self._targets: List[Optional[int]] = [None] * entries
        self._tags: List[Optional[int]] = [None] * entries

    def predict(self, pc: int) -> Optional[int]:
        index = pc % self.entries
        if self._tags[index] == pc:
            return self._targets[index]
        return None

    def train(self, pc: int, target: int) -> None:
        index = pc % self.entries
        self._tags[index] = pc
        self._targets[index] = target


class ReturnAddressStack:
    """Bounded return-address stack (no checkpoint repair: a corrupted
    RAS simply causes extra mispredictions, as on real small cores)."""

    def __init__(self, entries: int = 16):
        self.entries = entries
        self._stack: List[int] = []

    def push(self, return_pc: int) -> None:
        if len(self._stack) >= self.entries:
            self._stack.pop(0)
        self._stack.append(return_pc)

    def pop(self) -> Optional[int]:
        if self._stack:
            return self._stack.pop()
        return None


class BranchPredictor:
    """Front-end prediction for all control-flow ops."""

    def __init__(self, table_bits: int = 14, history_bits: int = 12,
                 btb_entries: int = 4096, ras_entries: int = 16):
        self.direction = GsharePredictor(table_bits, history_bits)
        self.btb = BTB(btb_entries)
        self.ras = ReturnAddressStack(ras_entries)
        self.last_br_index = 0
        self.direction_mispredicts = 0
        self.target_mispredicts = 0

    def predict_next(self, pc: int, inst: Instruction) -> int:
        """Predict the next fetch PC for the instruction at ``pc``."""
        op = inst.op
        if op is Op.BR:
            taken = self.direction.predict(pc)
            self.last_br_index = self.direction.last_index
            self.direction.speculative_update_history(taken)
            return inst.target if taken else pc + 1
        if op is Op.JMP:
            return inst.target
        if op is Op.CALL:
            self.ras.push(pc + 1)
            return inst.target
        if op is Op.RET:
            predicted = self.ras.pop()
            if predicted is None:
                predicted = self.btb.predict(pc)
            return predicted if predicted is not None else pc + 1
        if op is Op.JMPI:
            predicted = self.btb.predict(pc)
            return predicted if predicted is not None else pc + 1
        return pc + 1

    def snapshot(self):
        """Checkpoint the speculative state (global history + RAS) so a
        squash can repair wrong-path corruption, as real checkpointed
        front-ends do."""
        return (self.direction.history, tuple(self.ras._stack))

    def restore(self, snap) -> None:
        self.direction.history = snap[0]
        self.ras._stack = list(snap[1])

    def train(self, pc: int, inst: Instruction, taken: bool,
              target: int, direction_index: Optional[int] = None) -> None:
        """Resolution-time training, against the entry that made the
        prediction."""
        op = inst.op
        if op is Op.BR and direction_index is not None:
            self.direction.train_index(direction_index, taken)
        elif op in (Op.JMPI, Op.RET):
            self.btb.train(pc, target)
