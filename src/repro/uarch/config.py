"""Core configurations (paper Tab. III).

Two presets model the Intel Alder Lake hybrid processor the paper
simulates: a Golden Cove-like P-core and a Gracemont-like E-core.
Structure sizes follow Tab. III; latencies are representative values for
our simplified memory hierarchy.  Absolute IPC is not meant to match
gem5 — relative defense overheads are.
"""

from __future__ import annotations

import dataclasses
import enum



class SpeculationModel(enum.Enum):
    """When an instruction stops being speculative (paper SII-B2)."""

    #: Speculative until it reaches the head of the ROB.  The strongest
    #: model; covers all speculation types, known or unknown.
    ATCOMMIT = "atcommit"

    #: Speculative until all prior branches have resolved (control-flow
    #: speculation only).
    CONTROL = "control"


class L1DTagMode(enum.Enum):
    """ProtISA memory-protection tracking variants (paper SIX-A3)."""

    #: Per-byte protection bits shadowing the L1D (the paper's design).
    L1D = "l1d"

    #: No memory protection tracking: all memory is always protected.
    NONE = "none"

    #: An idealized shadow memory that never forgets unprotection.
    PERFECT = "perfect"


@dataclasses.dataclass(frozen=True)
class CacheConfig:
    """One cache level."""

    size_bytes: int
    assoc: int
    latency: int          # cycles to return data on a hit
    line_bytes: int = 64

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.line_bytes * self.assoc)


@dataclasses.dataclass(frozen=True)
class CoreConfig:
    """A full core configuration.

    Cache capacities are scaled down ~24x from Tab. III alongside the
    ~1000x-smaller synthetic workloads, preserving the working-set /
    capacity ratios that drive miss behaviour (and thus the MLP the
    defenses destroy).  Pipeline structure sizes are kept at the
    paper's values: speculation-window depth is what Spectre defenses
    interact with, and the workloads fill it.
    """

    name: str
    width: int = 6                 # fetch/rename/issue/commit width
    rob_size: int = 512
    iq_size: int = 160
    lq_size: int = 192
    sq_size: int = 114
    num_phys_regs: int = 280
    frontend_delay: int = 4        # fetch-to-rename latency
    redirect_penalty: int = 6      # squash-to-refetch latency
    clock_ghz: float = 3.4

    l1d: CacheConfig = CacheConfig(2 * 1024, 4, 3)
    l2: CacheConfig = CacheConfig(32 * 1024, 8, 14)
    l3: CacheConfig = CacheConfig(256 * 1024, 8, 42)
    mem_latency: int = 160

    # Branch prediction
    btb_entries: int = 4096
    ras_entries: int = 16
    bp_history_bits: int = 12
    bp_table_bits: int = 14

    # Execution latencies
    alu_latency: int = 1
    mul_latency: int = 3
    div_base_latency: int = 8      # plus the operand-dependent component
    store_forward_latency: int = 2

    speculation_model: SpeculationModel = SpeculationModel.ATCOMMIT
    l1d_tag_mode: L1DTagMode = L1DTagMode.L1D

    #: Reintroduce the STT-inherited squash-notification bug that
    #: AMuLeT* found (paper SVII-B4b): an older protected/tainted
    #: mispredicted branch blocks younger unprotected branches from
    #: initiating their squash.
    buggy_squash_notify: bool = False

    #: Whether division micro-ops are treated as transmitters by the
    #: attached defense.  Disabling models pre-AMuLeT* defenses and
    #: reopens the divider timing channel.
    div_is_transmitter: bool = True

    def replace(self, **kwargs) -> "CoreConfig":
        return dataclasses.replace(self, **kwargs)


#: Golden Cove-like performance core (Tab. III).
P_CORE = CoreConfig(
    name="P-core",
    width=6,
    rob_size=512,
    iq_size=160,
    lq_size=192,
    sq_size=114,
    num_phys_regs=280,
    clock_ghz=3.4,
    l1d=CacheConfig(2 * 1024, 4, 3),
    l2=CacheConfig(32 * 1024, 8, 14),
    l3=CacheConfig(256 * 1024, 8, 42),
)

#: Gracemont-like efficiency core (Tab. III).
E_CORE = CoreConfig(
    name="E-core",
    width=5,
    rob_size=256,
    iq_size=96,
    lq_size=80,
    sq_size=50,
    num_phys_regs=213,
    clock_ghz=2.5,
    l1d=CacheConfig(1024 + 512, 3, 3),
    l2=CacheConfig(48 * 1024, 8, 16),
    l3=CacheConfig(256 * 1024, 8, 46),
)
