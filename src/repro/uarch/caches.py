"""Set-associative cache hierarchy with LRU replacement.

Three levels plus a small TLB.  The hierarchy is a *timing and
observation* model: data always comes from the backing
:class:`~repro.arch.memory.Memory`; caches decide latency and expose the
tag state that the cache-probing adversary observes (paper SVII-B2,
AMuLeT's default adversary exposes data-cache and TLB tags).

The L1D additionally carries ProtISA's per-byte protection bits
(paper SIV-C2a) via :class:`L1DProtectionTags` in
:mod:`repro.protisa.tags`; this module only manages presence/recency and
notifies an eviction listener so the tag store can forget unprotection.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Dict, FrozenSet, List, Optional, Tuple

from .config import CacheConfig, CoreConfig


class Cache:
    """One set-associative, LRU cache level (tags only)."""

    def __init__(self, config: CacheConfig,
                 eviction_listener: Optional[Callable[[int], None]] = None):
        self.config = config
        self.line_shift = config.line_bytes.bit_length() - 1
        self.num_sets = config.num_sets
        # set index -> OrderedDict of line_addr -> True (LRU order)
        self._sets: List[OrderedDict] = [OrderedDict()
                                         for _ in range(self.num_sets)]
        self._eviction_listener = eviction_listener
        self.hits = 0
        self.misses = 0

    def _set_index(self, line_addr: int) -> int:
        return line_addr % self.num_sets

    def line_addr(self, addr: int) -> int:
        return addr >> self.line_shift

    def lookup(self, addr: int) -> bool:
        """Probe without filling; refreshes LRU on hit."""
        line = self.line_addr(addr)
        entry_set = self._sets[self._set_index(line)]
        if line in entry_set:
            entry_set.move_to_end(line)
            self.hits += 1
            return True
        self.misses += 1
        return False

    def fill(self, addr: int) -> Optional[int]:
        """Insert the line holding ``addr``; return evicted line or None."""
        line = self.line_addr(addr)
        entry_set = self._sets[self._set_index(line)]
        if line in entry_set:
            entry_set.move_to_end(line)
            return None
        victim = None
        if len(entry_set) >= self.config.assoc:
            victim, _ = entry_set.popitem(last=False)
            if self._eviction_listener is not None:
                self._eviction_listener(victim)
        entry_set[line] = True
        return victim

    def contains(self, addr: int) -> bool:
        line = self.line_addr(addr)
        return line in self._sets[self._set_index(line)]

    def invalidate(self, addr: int) -> bool:
        """Drop the line holding ``addr`` (cross-core write
        invalidation); returns whether it was present."""
        line = self.line_addr(addr)
        entry_set = self._sets[self._set_index(line)]
        if line in entry_set:
            del entry_set[line]
            if self._eviction_listener is not None:
                self._eviction_listener(line)
            return True
        return False

    def tag_state(self) -> FrozenSet[Tuple[int, int]]:
        """The (set, line) tags an adversary can recover by probing."""
        state = set()
        for index, entry_set in enumerate(self._sets):
            for line in entry_set:
                state.add((index, line))
        return frozenset(state)


class TLB:
    """A tiny fully-associative LRU TLB (4 KiB pages)."""

    PAGE_SHIFT = 12

    def __init__(self, entries: int = 64):
        self.entries = entries
        self._pages: OrderedDict = OrderedDict()
        self.hits = 0
        self.misses = 0

    def access(self, addr: int) -> bool:
        page = addr >> self.PAGE_SHIFT
        if page in self._pages:
            self._pages.move_to_end(page)
            self.hits += 1
            return True
        self.misses += 1
        if len(self._pages) >= self.entries:
            self._pages.popitem(last=False)
        self._pages[page] = True
        return False

    def tag_state(self) -> FrozenSet[int]:
        return frozenset(self._pages)


class CacheHierarchy:
    """L1D -> L2 -> L3 -> memory, plus a TLB.

    ``access`` returns the latency of a load/store probe and performs
    all fills (caches are modulated even by transient accesses — that is
    the Spectre channel)."""

    def __init__(self, config: CoreConfig,
                 l1d_eviction_listener: Optional[Callable[[int], None]] = None,
                 shared_l3: Optional[Cache] = None):
        self.config = config
        self.l1d = Cache(config.l1d, l1d_eviction_listener)
        self.l2 = Cache(config.l2)
        # The L3 may be shared between the cores of a multi-core
        # configuration (paper Tab. III: one 30 MiB LLC).
        self.l3 = shared_l3 if shared_l3 is not None else Cache(config.l3)
        self.tlb = TLB()
        #: Level that serviced the most recent ``access`` ("l1d", "l2",
        #: "l3", or "mem") — stall-cause accounting reads this.
        self.last_level: Optional[str] = None

    def invalidate(self, addr: int) -> None:
        """Cross-core write invalidation of the private levels."""
        self.l1d.invalidate(addr)
        self.l2.invalidate(addr)

    def access(self, addr: int) -> int:
        """Probe the hierarchy for ``addr``; fill on miss; return latency."""
        latency = 0
        if not self.tlb.access(addr):
            latency += 8  # page walk approximation
        if self.l1d.lookup(addr):
            self.last_level = "l1d"
            return latency + self.config.l1d.latency
        if self.l2.lookup(addr):
            self.l1d.fill(addr)
            self.last_level = "l2"
            return latency + self.config.l2.latency
        if self.l3.lookup(addr):
            self.l2.fill(addr)
            self.l1d.fill(addr)
            self.last_level = "l3"
            return latency + self.config.l3.latency
        self.l3.fill(addr)
        self.l2.fill(addr)
        self.l1d.fill(addr)
        self.last_level = "mem"
        return latency + self.config.mem_latency

    def stats(self) -> Dict[str, int]:
        """Hit/miss counters for every level (the exported stats schema)."""
        return {
            "l1d_hits": self.l1d.hits,
            "l1d_misses": self.l1d.misses,
            "l2_hits": self.l2.hits,
            "l2_misses": self.l2.misses,
            "l3_hits": self.l3.hits,
            "l3_misses": self.l3.misses,
            "tlb_hits": self.tlb.hits,
            "tlb_misses": self.tlb.misses,
        }

    def adversary_state(self) -> Tuple:
        """What the cache/TLB-probing adversary recovers post-mortem.

        Includes the L3 tags: the L3 is the cross-core channel in the
        multi-core configuration (one shared LLC), so an adversary that
        can prime+probe the private levels can probe the LLC too — an
        L3-only divergence is a real leak, not noise.
        """
        return (self.l1d.tag_state(), self.l2.tag_state(),
                self.l3.tag_state(), self.tlb.tag_state())
