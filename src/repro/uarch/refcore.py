"""Lockstep differential harness: the fast-path proof layer.

The simulator's hot loop (``repro.uarch.pipeline.Core``) carries
several fast paths — idle-cycle fast-forwarding, refusal caches with
head-seq invalidation barriers, memoized decode metadata.  All of them
are *observational no-ops by construction*, and this module is the
construction's proof obligation: run the same simulation twice, once
with every fast path enabled and once on :class:`ReferenceCore` (the
plain engine with ``fast_path=False``), and assert the two
:class:`~repro.uarch.pipeline.CoreResult` outcomes are identical down
to every cycle count, stat counter, timing-trace entry, and adversary
cache line.

Since the compiled backend (:mod:`repro.uarch.compiled`) landed, the
harness is *three-way*: refcore vs the fast-path interpreter vs the
compiled specialization, every non-reference engine diffed against
:class:`ReferenceCore` independently.

Entry points:

* :func:`run_pair` / :func:`assert_identical` — one differential run.
* :func:`run_engines` — one case across an arbitrary engine subset,
  every engine diffed against the reference.
* :func:`compare_results` — the field-by-field :class:`DiffReport`.
* :func:`diff_cases` / :func:`run_case` — the randomized-program grid
  over every defense x ProtCC class x core config in the paper's
  Tables II/III, used by ``repro diff`` and the test suite.
* :func:`fixture_cases` — the security fixtures (Spectre v1, divider
  channel, squash-notification bug) under their signature configs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from .config import CoreConfig, E_CORE, P_CORE, SpeculationModel
from .pipeline import (
    Core,
    CoreResult,
    DEFAULT_MAX_CYCLES,
    DEFAULT_NO_PROGRESS_LIMIT,
    simulate,
)


class ReferenceCore(Core):
    """The reference engine: a :class:`Core` with every fast path
    pinned off, regardless of environment or constructor arguments.

    This is what the differential harness trusts: the straight-line
    cycle loop with no fast-forwarding and no refusal caches.  Keep it
    boring — any optimization added here would need its own proof.
    """

    def __init__(self, *args, **kwargs) -> None:
        kwargs["fast_path"] = False
        super().__init__(*args, **kwargs)


#: CoreResult fields the harness compares, in report order.  ``memory``
#: is excluded only because a sparse image diff is unreadable; the
#: committed-access stream and final registers pin the same behaviour.
COMPARED_FIELDS: Tuple[str, ...] = (
    "cycles", "halt_reason", "committed_pcs", "final_regs",
    "timing_trace", "adversary_cache_state", "committed_accesses",
    "stats",
)

#: Speculation-observatory stats keys every engine must emit.  The
#: stats dicts are compared in full anyway; this list exists so the
#: telemetry-parity assertion can never pass *vacuously* — an engine
#: that silently stopped emitting a counter (both sides missing) would
#: otherwise still compare equal.
REQUIRED_TELEMETRY: Tuple[str, ...] = (
    "fetched_uops", "issued_uops", "squashes",
    "squashes_conditional", "squashes_indirect", "squashes_return",
    "spec_depth_le_1", "spec_depth_gt_32",
    "squash_cascade_le_1", "squash_cascade_gt_32",
    "defense_exec_interventions", "defense_exec_delay_cycles",
    "defense_resolve_interventions", "defense_resolve_delay_cycles",
    "defense_wakeup_interventions", "defense_wakeup_delay_cycles",
)


@dataclass(frozen=True)
class FieldDiff:
    """One observable that differed between the two engines."""

    field: str
    fast: object
    ref: object

    def render(self, limit: int = 72) -> str:
        fast, ref = str(self.fast), str(self.ref)
        if len(fast) > limit:
            fast = fast[:limit] + "..."
        if len(ref) > limit:
            ref = ref[:limit] + "..."
        return f"{self.field}: fast={fast} ref={ref}"


@dataclass
class DiffReport:
    """Outcome of one fast-vs-reference comparison."""

    label: str
    diffs: List[FieldDiff] = field(default_factory=list)

    @property
    def identical(self) -> bool:
        return not self.diffs

    def render(self) -> str:
        if self.identical:
            return f"{self.label}: identical"
        lines = [f"{self.label}: {len(self.diffs)} field(s) diverge"]
        lines += ["  " + diff.render() for diff in self.diffs]
        return "\n".join(lines)

    def raise_if_different(self) -> None:
        if not self.identical:
            raise AssertionError(
                "fast path diverged from the reference engine\n"
                + self.render())


def compare_results(fast: CoreResult, ref: CoreResult,
                    label: str = "diff") -> DiffReport:
    """Field-by-field comparison; stats diffs are reported per key."""
    report = DiffReport(label=label)
    for name in COMPARED_FIELDS:
        a, b = getattr(fast, name), getattr(ref, name)
        if a == b:
            continue
        if name == "stats":
            for key in sorted(set(a) | set(b)):
                if a.get(key) != b.get(key):
                    report.diffs.append(FieldDiff(
                        f"stats[{key}]", a.get(key), b.get(key)))
        elif isinstance(a, (list, tuple)) and isinstance(b, (list, tuple)):
            if len(a) != len(b):
                report.diffs.append(FieldDiff(
                    f"len({name})", len(a), len(b)))
            for index, (x, y) in enumerate(zip(a, b)):
                if x != y:
                    report.diffs.append(FieldDiff(
                        f"{name}[{index}]", x, y))
                    break  # first divergence point is the useful one
        else:
            report.diffs.append(FieldDiff(name, a, b))
    for key in REQUIRED_TELEMETRY:
        if key not in fast.stats or key not in ref.stats:
            report.diffs.append(FieldDiff(
                f"stats[{key}] present", key in fast.stats,
                key in ref.stats))
    if fast.memory != ref.memory:
        report.diffs.append(FieldDiff("memory", "<image>", "<differs>"))
    return report


def run_pair(program, defense_factory: Callable[[], object],
             config: CoreConfig = P_CORE,
             memory_factory: Optional[Callable[[], object]] = None,
             regs: Optional[Dict[int, int]] = None,
             max_cycles: int = DEFAULT_MAX_CYCLES,
             no_progress_limit: Optional[int] = DEFAULT_NO_PROGRESS_LIMIT,
             label: str = "diff",
             ) -> Tuple[CoreResult, CoreResult, DiffReport]:
    """Run ``program`` on both engines and diff the outcomes.

    ``defense_factory`` (not an instance: defenses carry state) is
    called once per engine; likewise ``memory_factory`` when the
    program needs an initial memory image.
    """
    def once(fast: bool) -> CoreResult:
        memory = memory_factory() if memory_factory is not None else None
        return simulate(program, defense_factory(), config,
                        memory=memory, regs=dict(regs) if regs else None,
                        max_cycles=max_cycles, fast_path=fast,
                        no_progress_limit=no_progress_limit)

    fast_result = once(True)
    ref_result = once(False)
    return fast_result, ref_result, compare_results(
        fast_result, ref_result, label=label)


def assert_identical(program, defense_factory, config: CoreConfig = P_CORE,
                     **kwargs) -> CoreResult:
    """Differential run that raises on any divergence; returns the
    (verified) fast-path result."""
    fast_result, _, report = run_pair(program, defense_factory, config,
                                      **kwargs)
    report.raise_if_different()
    return fast_result


#: Engines the three-way sweep compares (the first is the reference
#: every other engine is diffed against).
DEFAULT_ENGINES: Tuple[str, ...] = ("refcore", "fast", "compiled")


def parse_engines(spec: str) -> Tuple[str, ...]:
    """Parse a ``--engines refcore,fast,compiled`` CLI value."""
    engines = tuple(name.strip() for name in spec.split(",") if name.strip())
    if not engines:
        raise ValueError("no engines given")
    for name in engines:
        if name not in DEFAULT_ENGINES:
            raise ValueError(
                f"unknown engine {name!r}; expected a subset of "
                f"{','.join(DEFAULT_ENGINES)}")
    if len(engines) < 2 and engines != ("refcore",):
        raise ValueError("need at least two engines to diff "
                         "(or just 'refcore' to only exercise the "
                         "reference)")
    return engines


def run_engines(program, defense_factory: Callable[[], object],
                config: CoreConfig = P_CORE,
                memory_factory: Optional[Callable[[], object]] = None,
                regs: Optional[Dict[int, int]] = None,
                max_cycles: int = DEFAULT_MAX_CYCLES,
                no_progress_limit: Optional[int] = DEFAULT_NO_PROGRESS_LIMIT,
                engines: Tuple[str, ...] = DEFAULT_ENGINES,
                label: str = "diff",
                ) -> Tuple[Dict[str, CoreResult], DiffReport]:
    """Run one case on every engine in ``engines`` and diff each
    non-reference engine against the first (reference) one.

    Divergent fields are reported as ``engine:field`` so a three-way
    report pinpoints *which* engine broke cycle-identity.
    """
    results: Dict[str, CoreResult] = {}
    for engine in engines:
        memory = memory_factory() if memory_factory is not None else None
        results[engine] = simulate(
            program, defense_factory(), config, memory=memory,
            regs=dict(regs) if regs else None, max_cycles=max_cycles,
            no_progress_limit=no_progress_limit, engine=engine)
    report = DiffReport(label=label)
    reference = engines[0]
    for engine in engines[1:]:
        sub = compare_results(results[engine], results[reference],
                              label=label)
        for diff in sub.diffs:
            report.diffs.append(FieldDiff(
                f"{engine}:{diff.field}", diff.fast, diff.ref))
    return results, report


# ---------------------------------------------------------------------
# The randomized grid: Tables II/III coverage.
# ---------------------------------------------------------------------

#: ProtCC instrumentation classes from the paper's Table II fuzzing
#: grid ("rand" random-prefixes; the rest are the vulnerable-code
#: classes of Table III).
INSTRUMENTS: Tuple[str, ...] = ("rand", "arch", "cts", "ct", "unr")

CORE_CONFIGS: Dict[str, CoreConfig] = {"P": P_CORE, "E": E_CORE}


@dataclass(frozen=True)
class DiffCase:
    """One cell of the differential grid (hashable, reproducible)."""

    defense: str
    instrument: str
    core: str
    seed: int

    @property
    def label(self) -> str:
        return (f"{self.defense}/{self.instrument}/{self.core}"
                f"/seed{self.seed}")

    def config(self) -> CoreConfig:
        config = CORE_CONFIGS[self.core]
        # Rotate the speculation model and the squash-notification bug
        # with the seed so the grid also sweeps the Table III hardware
        # variants without multiplying the case count.
        if self.seed % 3 == 1:
            config = config.replace(
                speculation_model=SpeculationModel.CONTROL)
        if self.seed % 4 == 2:
            config = config.replace(buggy_squash_notify=True)
        return config


def diff_cases(programs: int = 3, seed: int = 0,
               defenses: Optional[Tuple[str, ...]] = None,
               instruments: Tuple[str, ...] = INSTRUMENTS,
               cores: Tuple[str, ...] = ("P", "E"),
               ) -> Iterator[DiffCase]:
    """Enumerate the grid: every defense x instrumentation x core,
    ``programs`` seeded random programs per cell."""
    from ..bench.runner import DEFENSES

    names = defenses if defenses is not None else tuple(DEFENSES)
    for defense in names:
        for instrument in instruments:
            for core in cores:
                for index in range(programs):
                    yield DiffCase(defense, instrument, core,
                                   seed + index)


def run_case(case: DiffCase, program_size: int = 40,
             engines: Tuple[str, ...] = DEFAULT_ENGINES) -> DiffReport:
    """Run one grid cell: generate, instrument, simulate differentially
    across ``engines`` (three-way by default)."""
    from ..bench.runner import DEFENSES
    from ..fuzzing.generator import generate_program
    from ..fuzzing.inputs import generate_input
    from ..protcc import compile_program

    program = generate_program(case.seed, program_size)
    compiled = compile_program(
        program, case.instrument,
        rng=random.Random(case.seed ^ 0xC0DE)).program
    test_input = generate_input(random.Random(case.seed ^ 0xF00D))
    _, report = run_engines(
        compiled, DEFENSES[case.defense], case.config(),
        memory_factory=test_input.build_memory,
        regs=test_input.build_regs(), engines=engines, label=case.label)
    return report


def fixture_cases(engines: Tuple[str, ...] = DEFAULT_ENGINES,
                  ) -> Iterator[Tuple[str, DiffReport]]:
    """Differential runs of the security fixtures under the hardware
    configs that make each one interesting."""
    from ..bench.runner import DEFENSES
    from ..fixtures import FIXTURES, build

    configs = {
        "v1-gadget": P_CORE,
        "div-channel": P_CORE.replace(div_is_transmitter=True),
        "squash-bug": P_CORE.replace(buggy_squash_notify=True),
    }
    for name, fixture in FIXTURES.items():
        config = configs.get(name, P_CORE)
        for defense in ("unsafe", "track", "delay", "spt-sb"):
            label = f"fixture:{name}/{defense}"
            program, _ = build(name)
            _, report = run_engines(
                program, DEFENSES[defense], config,
                memory_factory=lambda n=name: build(n)[1],
                engines=engines, label=label)
            yield label, report


def mitigation_cases(engines: Tuple[str, ...] = DEFAULT_ENGINES,
                     seed: int = 0,
                     ) -> Iterator[Tuple[str, DiffReport]]:
    """Differential runs of software-mitigated binaries under the
    ``Unsafe`` hardware defense: each registered pass applied to the
    security fixtures and to one seeded generated program, across every
    engine.  Proves the mitigation passes' output (fences, poison
    threading, masked loads) executes identically on all backends."""
    from ..bench.runner import DEFENSES
    from ..fixtures import FIXTURES, build
    from ..fuzzing.generator import generate_program
    from ..fuzzing.inputs import generate_input
    from ..protcc import MITIGATIONS, mitigate_program

    test_input = generate_input(random.Random(seed ^ 0xF00D))
    generated = generate_program(seed, 40)
    for mitigation in MITIGATIONS:
        for name in FIXTURES:
            label = f"mitigation:{name}/{mitigation}"
            program, _ = build(name)
            mitigated = mitigate_program(program, mitigation).program
            _, report = run_engines(
                mitigated, DEFENSES["unsafe"], P_CORE,
                memory_factory=lambda n=name: build(n)[1],
                engines=engines, label=label)
            yield label, report
        label = f"mitigation:generated-seed{seed}/{mitigation}"
        mitigated = mitigate_program(generated, mitigation).program
        _, report = run_engines(
            mitigated, DEFENSES["unsafe"], P_CORE,
            memory_factory=test_input.build_memory,
            regs=test_input.build_regs(),
            engines=engines, label=label)
        yield label, report
