"""The speculation observatory: per-intervention defense attribution.

The always-on aggregate telemetry (``issued_uops``, per-cause squash
counters, speculation-depth and squash-cascade histograms, per-hook
``defense_*_interventions`` / ``defense_*_delay_cycles``) lives in the
core itself and costs a few dict increments at sites the pipeline
already touches.  This module holds the *opt-in* layer on top of it:
an :class:`InterventionLedger` that records one event per defense
intervention episode — which uop, at which hook, delayed how long, how
deep speculation ran, and what the taint/PROT state looked like when
the episode closed.

The attach contract mirrors :class:`~repro.uarch.trace.PipelineTracer`
exactly: a core built without a ledger pays nothing (``Core.step``
never consults it; the episode helpers reach it behind per-uop
``block_cycle >= 0`` guards that are part of the always-on accounting
anyway), and an attached ledger pins the per-cycle reference
interpreter so recorded cycle stamps are exact.

Export: :func:`ledger_chrome_events` projects the ledger onto Chrome
trace format as its own process track (pid 2), and
:func:`repro.uarch.trace.chrome_trace` accepts a ``ledger`` argument to
merge that track into a recorded pipeline timeline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from .uop import Uop

#: The three gating hooks, in pipeline order, with the stats-key stem
#: each one's episode counters use.
HOOKS: Tuple[Tuple[str, str], ...] = (
    ("execute", "exec"),
    ("resolve", "resolve"),
    ("wakeup", "wakeup"),
)

#: hook name -> the per-refusal counter the pipeline has always kept
#: (episodes count once per uop; refusals count once per retry cycle).
_REFUSAL_KEY = {
    "execute": "defense_delayed_transmitters",
    "resolve": "defense_delayed_resolutions",
    "wakeup": "defense_delayed_wakeups",
}

_BLOCK_ATTR = {
    "execute": "exec_block_cycle",
    "resolve": "resolve_block_cycle",
    "wakeup": "wakeup_block_cycle",
}


@dataclass(frozen=True)
class InterventionEvent:
    """One closed defense-intervention episode.

    ``start``/``delay`` are in core cycles; ``depth`` is the number of
    unresolved in-flight branches when the episode closed; ``tainted``
    and ``protected`` capture the YRoT / ProtISA state of the uop's
    renamed sources at close time (the defense's own view of why it
    intervened); ``closed_by`` is ``"allow"``, ``"squash"``, or
    ``"halt"`` for episodes still open when the run ended.
    """

    seq: int
    pc: int
    asm: str
    hook: str
    start: int
    delay: int
    depth: int
    tainted: bool
    protected: bool
    closed_by: str


class InterventionLedger:
    """Records every defense-intervention episode of one run.

    ``max_events`` bounds memory like the tracer's ``max_uops``: once
    reached, later events are counted in ``dropped`` instead of stored
    (the aggregate ``defense_*`` stats remain exact regardless).
    """

    def __init__(self, max_events: Optional[int] = 100_000) -> None:
        self.events: List[InterventionEvent] = []
        self.dropped = 0
        self.max_events = max_events
        self.finished = False

    # -- core hooks ----------------------------------------------------

    def record(self, core, uop: Uop, hook: str, start: int) -> None:
        """Called by the pipeline's episode-close helpers."""
        self._record(core, uop, hook, start,
                     "squash" if uop.squashed else "allow")

    def finish(self, core) -> None:
        """Flush episodes still open at end of run (idempotent).

        The aggregate stats fold these into ``*_delay_cycles`` at
        ``Core._result``; the ledger mirrors them as ``closed_by:
        "halt"`` events so the two views stay consistent.  Open
        episodes live on in-flight uops, all of which sit in the ROB.
        """
        if self.finished:
            return
        self.finished = True
        for uop in core.rob.entries:
            for hook, _ in HOOKS:
                start = getattr(uop, _BLOCK_ATTR[hook])
                if start >= 0:
                    self._record(core, uop, hook, start, "halt")

    # -- internals -----------------------------------------------------

    def _record(self, core, uop: Uop, hook: str, start: int,
                closed_by: str) -> None:
        if self.max_events is not None \
                and len(self.events) >= self.max_events:
            self.dropped += 1
            return
        from ..isa.assembler import format_instruction

        defense = core.defense
        self.events.append(InterventionEvent(
            seq=uop.seq,
            pc=uop.pc,
            asm=format_instruction(uop.inst),
            hook=hook,
            start=start,
            delay=core.cycle - start,
            depth=core.stats["_spec_depth"],
            tainted=any(defense.tainted(preg) for _, preg in uop.psrcs),
            protected=defense.protected_src(uop),
            closed_by=closed_by,
        ))

    # -- queries -------------------------------------------------------

    def by_hook(self) -> Dict[str, List[InterventionEvent]]:
        out: Dict[str, List[InterventionEvent]] = {
            hook: [] for hook, _ in HOOKS}
        for event in self.events:
            out[event.hook].append(event)
        return out

    def total_delay(self) -> int:
        return sum(event.delay for event in self.events)

    def to_dicts(self) -> List[Dict]:
        return [
            {"seq": e.seq, "pc": e.pc, "asm": e.asm, "hook": e.hook,
             "start": e.start, "delay": e.delay, "depth": e.depth,
             "tainted": e.tainted, "protected": e.protected,
             "closed_by": e.closed_by}
            for e in self.events]


# ---------------------------------------------------------------------
# Aggregate-stats projection (shared by CLI / bench tables / forensics)
# ---------------------------------------------------------------------

def intervention_summary(stats: Mapping[str, float]) -> Dict[str, Dict]:
    """Per-hook intervention anatomy from a ``CoreResult.stats`` (or
    ``RunSummary.stats``) mapping: episodes, per-retry refusals, and
    total delay cycles for each gating hook."""
    out: Dict[str, Dict] = {}
    for hook, stem in HOOKS:
        out[hook] = {
            "interventions": int(
                stats.get(f"defense_{stem}_interventions", 0)),
            "delay_cycles": int(
                stats.get(f"defense_{stem}_delay_cycles", 0)),
            "refusals": int(stats.get(_REFUSAL_KEY[hook], 0)),
        }
    return out


def transient_summary(stats: Mapping[str, float]) -> Dict[str, int]:
    """Transient-execution accounting from a stats mapping."""
    fetched = int(stats.get("fetched_uops", 0))
    committed = int(stats.get("committed_uops", 0))
    return {
        "fetched_uops": fetched,
        "issued_uops": int(stats.get("issued_uops", 0)),
        "committed_uops": committed,
        "squashed_uops": int(stats.get("squashed_uops", 0)),
        "transient_uops": max(0, fetched - committed),
        "squashes": int(stats.get("squashes", 0)),
        "squashes_conditional": int(stats.get("squashes_conditional", 0)),
        "squashes_indirect": int(stats.get("squashes_indirect", 0)),
        "squashes_return": int(stats.get("squashes_return", 0)),
    }


def histogram(stats: Mapping[str, float], prefix: str) -> Dict[str, int]:
    """Extract one bucketed histogram (``spec_depth`` or
    ``squash_cascade``) from a stats mapping, in bucket order."""
    from .pipeline import HIST_EDGES

    out: Dict[str, int] = {}
    for edge in HIST_EDGES:
        key = f"{prefix}_le_{edge}"
        out[f"<={edge}"] = int(stats.get(key, 0))
    out[f">{HIST_EDGES[-1]}"] = int(
        stats.get(f"{prefix}_gt_{HIST_EDGES[-1]}", 0))
    return out


# ---------------------------------------------------------------------
# Chrome-trace overlay (pid 2; merged by repro.uarch.trace.chrome_trace)
# ---------------------------------------------------------------------

#: Stable lane per hook on the intervention track.
_HOOK_LANE = {hook: lane for lane, (hook, _) in enumerate(HOOKS)}


def ledger_chrome_events(ledger: InterventionLedger,
                         label: str = "repro") -> List[Dict]:
    """Chrome-trace events for the intervention overlay: one complete
    slice per episode on pid 2, one lane per hook."""
    events: List[Dict] = [
        {"name": "process_name", "ph": "M", "pid": 2, "tid": 0,
         "args": {"name": f"{label}: defense interventions"}},
    ]
    for lane, (hook, _) in enumerate(HOOKS):
        events.append({
            "name": "thread_name", "ph": "M", "pid": 2, "tid": lane,
            "args": {"name": f"may_{hook}"},
        })
    for event in ledger.events:
        events.append({
            "name": f"{event.hook}:{event.asm}",
            "cat": event.closed_by,
            "ph": "X",
            "ts": event.start,
            "dur": max(event.delay, 1),
            "pid": 2,
            "tid": _HOOK_LANE[event.hook],
            "args": {"seq": event.seq, "pc": event.pc,
                     "asm": event.asm, "hook": event.hook,
                     "delay": event.delay, "depth": event.depth,
                     "tainted": event.tainted,
                     "protected": event.protected,
                     "closed_by": event.closed_by},
        })
    return events
