"""ProtISA's microarchitectural memory-protection tags (paper SIV-C2).

ProtISA cannot afford a shadow memory, so it tracks its memory ProtSet
conservatively through the LSQ and L1D only: one protection bit per L1D
byte, with everything *outside* the L1D assumed protected.  Evictions
therefore forget unprotection (a line refetched from L2 comes back fully
protected).

Three variants reproduce the paper's SIX-A3 ablation:

* ``L1D``     — the real design described above.
* ``NONE``    — no memory tags: all memory always protected.
* ``PERFECT`` — an idealized shadow memory that survives eviction.

Register-side tags (rename-map protection bits copied onto renamed
physical operands, paper SIV-C1/SIV-E) live in
:class:`repro.uarch.structures.PhysRegFile` as the ``prot`` plane and
are maintained by the pipeline's rename stage.
"""

from __future__ import annotations

from typing import Set

from ..uarch.config import L1DTagMode


class MemoryProtectionTags:
    """Per-byte memory protection bits shadowing the L1D."""

    def __init__(self, mode: L1DTagMode) -> None:
        self.mode = mode
        #: Bytes currently known to be unprotected.  Everything else is
        #: protected (the safe default).
        self._unprotected: Set[int] = set()
        self._l1d = None
        self.line_shift = 6

    def attach_l1d(self, l1d) -> None:
        """Bind to the L1D whose presence gates unprotection tracking."""
        self._l1d = l1d
        self.line_shift = l1d.line_shift

    # ------------------------------------------------------------------

    def on_l1d_eviction(self, line_addr: int) -> None:
        """Eviction callback: forget unprotection for the line's bytes."""
        if self.mode is not L1DTagMode.L1D:
            return
        base = line_addr << self.line_shift
        for offset in range(1 << self.line_shift):
            self._unprotected.discard(base + offset)

    def _may_track(self, addr: int) -> bool:
        if self.mode is L1DTagMode.NONE:
            return False
        if self.mode is L1DTagMode.PERFECT:
            return True
        return self._l1d is not None and self._l1d.contains(addr)

    # -- queries ---------------------------------------------------------

    def byte_protected(self, addr: int) -> bool:
        return addr not in self._unprotected

    def word_protected(self, addr: int) -> bool:
        """OR of the 8 accessed bytes' protection bits (paper SIV-C2b)."""
        return any(addr + i not in self._unprotected for i in range(8))

    # -- updates ----------------------------------------------------------

    def set_word(self, addr: int, protected: bool) -> None:
        """Store writeback: label written bytes per the store's LSQ bit."""
        if protected:
            for i in range(8):
                self._unprotected.discard(addr + i)
        elif self._may_track(addr):
            for i in range(8):
                self._unprotected.add(addr + i)

    def clear_word(self, addr: int) -> None:
        """Commit of a load with an unprotected output: unprotect the
        accessed bytes (paper SIV-C2b)."""
        if self._may_track(addr):
            for i in range(8):
                self._unprotected.add(addr + i)

    def unprotected_count(self) -> int:
        return len(self._unprotected)
