"""repro.protisa — microarchitectural support for ProtISA (paper SIV-C):
the memory-protection tag store shadowing the L1D.  Register-side tags
live in the physical register file's ``prot`` plane and are maintained
by the pipeline's rename stage."""

from .tags import MemoryProtectionTags

__all__ = ["MemoryProtectionTags"]
