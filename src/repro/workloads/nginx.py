"""Multi-class HTTPS-server workload (paper SVIII-B3, Fig. 1).

nginx's main executable never accesses secrets (ARCH); it delegates
secret processing to OpenSSL, which mixes all four classes.  The paper
compiles the server with ProtCC-ARCH, OpenSSL with ProtCC-UNR, and its
hottest ARCH/CTS/CT functions with their precise classes.

This stand-in has the same shape: an ARCH request-parsing loop driving
a UNR handshake (modular exponentiation), a CTS record cipher
(ChaCha-style), and a CT MAC with tag publication.  ``nginx.cXrY``
configures X clients times Y requests, mirroring Tab. V's siege
parameters.  Only SPT-SB can fully secure the base binary; Protean
targets each component individually via the class map.
"""

from __future__ import annotations

from ..arch.memory import Memory
from ..isa.builder import Builder
from ..isa.operations import Cond
from .base import Workload, emit_warm, fill_words, lcg_values, register

REQ_BASE = 0x0500_0000     # request buffer (public)
KEY_BASE = 0x0510_0000     # server private key (secret)
OUT_BASE = 0x0520_0000     # response / ciphertext buffer
SES_BASE = 0x0530_0000     # per-client session state

R_REQ, R_KEY, R_OUT, R_SES = 8, 9, 11, 12
MASK32 = 0xFFFFFFFF

#: The component class map (paper SVIII-B3): the main executable is
#: non-secret-accessing; OpenSSL-like functions carry their own class,
#: everything unlisted defaults to UNR for guaranteed security.
NGINX_CLASSES = {
    "main": "arch",
    "parse_request": "arch",
    "handshake": "unr",
    "encrypt_record": "cts",
    "mac_record": "ct",
}


def _build_nginx(clients: int, requests: int) -> Workload:
    asm = Builder()
    with asm.func("main"):
        asm.movi(R_REQ, REQ_BASE)
        asm.movi(R_KEY, KEY_BASE)
        asm.movi(R_OUT, OUT_BASE)
        asm.movi(R_SES, SES_BASE)
        emit_warm(asm, R_REQ, 64)
        asm.movi(13, 0)                     # client counter (callee-saved)
        asm.label("clients")
        asm.call("handshake")
        asm.movi(14, 0)                     # request counter
        asm.label("requests")
        asm.call("parse_request")
        asm.call("encrypt_record")
        asm.call("mac_record")
        asm.addi(14, 14, 1)
        asm.cmpi(14, requests)
        asm.br(Cond.LT, "requests")
        asm.addi(13, 13, 1)
        asm.cmpi(13, clients)
        asm.br(Cond.LT, "clients")
        asm.halt()

    # -- ARCH: request parsing (no secrets) -----------------------------
    with asm.func("parse_request"):
        asm.movi(7, 0)
        asm.movi(5, 0)                      # header hash
        asm.label("scan")
        asm.load(0, R_REQ, 7)               # request word
        asm.muli(5, 5, 31)
        asm.add(5, 5, 0)
        asm.andi(1, 0, 7)                   # token class
        asm.cmpi(1, 2)
        asm.br(Cond.NE, "not_sep")
        asm.addi(5, 5, 101)                 # separator handling
        asm.label("not_sep")
        asm.addi(7, 7, 8)
        asm.cmpi(7, 24 * 8)
        asm.br(Cond.LT, "scan")
        asm.andi(5, 5, 63 * 8)
        asm.store(R_SES, None, 8, 5)        # route selection
        asm.ret()

    # -- UNR: TLS handshake (square-and-multiply, secret branches) -------
    with asm.func("handshake"):
        asm.load(1, R_KEY, None, 0)         # private exponent (secret)
        asm.load(6, R_KEY, None, 64)        # ctx->modulus limbs (pointer)
        asm.movi(2, 5)
        asm.movi(3, 1)
        asm.movi(7, 0)
        asm.label("hs_bits")
        asm.mul(3, 3, 3)
        asm.andi(3, 3, MASK32)
        asm.andi(5, 7, 31 * 8)
        asm.load(0, 6, 5)                   # limb via loaded pointer
        asm.add(3, 3, 0)
        asm.andi(3, 3, MASK32)
        asm.shr(4, 1, 7)
        asm.andi(4, 4, 1)
        asm.cmpi(4, 1)
        asm.br(Cond.NE, "hs_skip")
        asm.mul(3, 3, 2)
        asm.andi(3, 3, MASK32)
        asm.label("hs_skip")
        asm.addi(7, 7, 1)
        asm.cmpi(7, 48)
        asm.br(Cond.LT, "hs_bits")
        asm.store(R_SES, None, 0, 3)        # session secret
        asm.ret()

    # -- CTS: record encryption (ChaCha-style, statically typeable) ------
    with asm.func("encrypt_record"):
        asm.load(1, R_SES, None, 0)         # session key (secret)
        asm.load(2, R_KEY, None, 8)
        asm.movi(7, 0)
        asm.label("rec_blocks")
        asm.movi(6, 0)
        asm.label("rec_rounds")
        asm.add(1, 1, 2)
        asm.xor(2, 2, 1)
        asm.shli(0, 2, 13)
        asm.shri(2, 2, 51)
        asm.or_(2, 2, 0)
        asm.addi(6, 6, 1)
        asm.cmpi(6, 6)
        asm.br(Cond.LT, "rec_rounds")
        asm.load(4, R_REQ, 7)               # plaintext word
        asm.xor(4, 4, 1)
        asm.store(R_OUT, 7, 0, 4)           # ciphertext
        asm.addi(7, 7, 8)
        asm.cmpi(7, 10 * 8)
        asm.br(Cond.LT, "rec_blocks")
        asm.ret()

    # -- CT: record MAC with tag publication (bound-to-leak output) ------
    with asm.func("mac_record"):
        asm.load(1, R_SES, None, 0)         # MAC key (secret)
        asm.movi(3, 0)
        asm.movi(7, 0)
        asm.label("mac_chunks")
        asm.load(4, R_OUT, 7)               # ciphertext word
        asm.add(3, 3, 4)
        asm.mul(3, 3, 1)
        asm.andi(3, 3, MASK32)
        asm.addi(7, 7, 8)
        asm.cmpi(7, 10 * 8)
        asm.br(Cond.LT, "mac_chunks")
        asm.store(R_OUT, None, 10 * 8, 3)   # publish the tag
        asm.andi(4, 3, 31 * 8)              # tag picks a response slot:
        asm.store(R_OUT, 4, 96, 3)          # bound-to-leak index
        asm.ret()

    memory = Memory()
    fill_words(memory, REQ_BASE, lcg_values(401, 64, 128))
    fill_words(memory, KEY_BASE, lcg_values(402, 8, 1 << 32))
    fill_words(memory, KEY_BASE + 0x100, lcg_values(403, 32, 1 << 16))
    memory.write_word(KEY_BASE + 64, KEY_BASE + 0x100)
    name = f"nginx.c{clients}r{requests}"
    return Workload(name=name, suite="nginx", classes=dict(NGINX_CLASSES),
                    program=asm.build(), memory=memory, baseline="SPT-SB",
                    description=f"{clients} clients x {requests} requests")


@register("nginx.c1r1")
def nginx_c1r1() -> Workload:
    return _build_nginx(1, 1)


@register("nginx.c2r2")
def nginx_c2r2() -> Workload:
    return _build_nginx(2, 2)


@register("nginx.c1r4")
def nginx_c1r4() -> Workload:
    return _build_nginx(1, 4)


@register("nginx.c4r1")
def nginx_c4r1() -> Workload:
    return _build_nginx(4, 1)


@register("nginx.c4r4")
def nginx_c4r4() -> Workload:
    return _build_nginx(4, 4)
