"""repro.workloads — synthetic benchmark suites standing in for the
paper's SPEC2017 / PARSEC / SPEC2006-Wasm / crypto / nginx workloads
(see DESIGN.md section 1 for the substitution rationale)."""

from .base import (
    DATA_BASE,
    KEY_BASE,
    OUT_BASE,
    TABLE_BASE,
    Workload,
    get_workload,
    workload_names,
)

__all__ = [
    "DATA_BASE", "KEY_BASE", "OUT_BASE", "TABLE_BASE",
    "Workload", "get_workload", "workload_names",
]
