"""PARSEC-like kernels (paper SVIII-B1, SIX-A1).

The paper's headline PARSEC result is driven by *fixed-offset stack
accesses*: SPT-SB stalls every ``mov rax, [rsp]`` and ``ret``, while
ProtCC-UNR unprotects the stack pointer and lets them run (SIX-A1's
blackscholes study).  These kernels are therefore call-heavy, with
per-element helper functions that push/pop spilled state.

Deviation from the paper: PARSEC is multi-threaded on gem5; we simulate
the per-thread kernel single-threaded (DESIGN.md section 1) — the
defense-relevant structure (stack density, transmitter mix) is
per-thread anyway.  The ``.p`` suffix mirrors Fig. 6 naming.
"""

from __future__ import annotations

from ..arch.memory import Memory
from ..isa.builder import Builder
from ..isa.operations import Cond
from .base import DATA_BASE, Workload, emit_warm, fill_words, lcg_values, register

R_DATA, R_AUX = 8, 9
AUX_BASE = DATA_BASE + 0x10000


def _parsec(name, program, memory, description) -> Workload:
    return Workload(name=name, suite="parsec", classes="arch",
                    program=program, memory=memory, baseline="STT",
                    description=description)


@register("blackscholes.p")
def blackscholes() -> Workload:
    """Per-option pricing through a stack-spilling helper call."""
    asm = Builder()
    with asm.func("main"):
        asm.movi(R_DATA, DATA_BASE)   # options: (spot, strike) pairs
        emit_warm(asm, R_DATA, 160)
        asm.movi(7, 0)
        asm.movi(5, 0)
        asm.label("options")
        asm.load(0, R_DATA, 7)        # spot
        asm.load(1, R_DATA, 7, 8)     # strike
        asm.call("price")
        asm.add(5, 5, 0)
        asm.addi(7, 7, 16)
        asm.cmpi(7, 80 * 16)
        asm.br(Cond.LT, "options")
        asm.halt()
    with asm.func("price"):
        # Spill arguments (fixed-offset stack traffic, the SPT-SB pain).
        asm.push(0)
        asm.push(1)
        asm.add(2, 0, 1)
        asm.addi(3, 1, 1)
        asm.div(2, 2, 3)              # crude moneyness ratio
        asm.muli(2, 2, 7)
        asm.pop(1)
        asm.pop(0)
        asm.sub(0, 0, 1)
        asm.add(0, 0, 2)
        asm.ret()
    memory = Memory()
    fill_words(memory, DATA_BASE, lcg_values(101, 160, 512))
    return _parsec("blackscholes.p", asm.build(), memory,
                   "option pricing, call/stack heavy")


@register("canneal.p")
def canneal() -> Workload:
    """Simulated-annealing element swaps with helper calls."""
    asm = Builder()
    with asm.func("main"):
        asm.movi(R_DATA, DATA_BASE)   # 128 placement costs
        emit_warm(asm, R_DATA, 128)
        asm.movi(0, 99991)            # rng
        asm.movi(7, 0)
        asm.label("moves")
        asm.muli(0, 0, 1103515245)
        asm.addi(0, 0, 12345)
        asm.shri(1, 0, 8)
        asm.andi(1, 1, 127 * 8)       # slot a
        asm.shri(2, 0, 20)
        asm.andi(2, 2, 127 * 8)       # slot b
        asm.call("swap_cost")
        asm.cmpi(3, 200)
        asm.br(Cond.GE, "reject")
        asm.load(4, R_DATA, 1)
        asm.load(5, R_DATA, 2)
        asm.store(R_DATA, 1, 0, 5)
        asm.store(R_DATA, 2, 0, 4)
        asm.label("reject")
        asm.addi(7, 7, 1)
        asm.cmpi(7, 160)
        asm.br(Cond.LT, "moves")
        asm.halt()
    with asm.func("swap_cost"):
        asm.push(0)
        asm.load(3, R_DATA, 1)
        asm.load(4, R_DATA, 2)
        asm.add(3, 3, 4)
        asm.andi(3, 3, 255)
        asm.pop(0)
        asm.ret()
    memory = Memory()
    fill_words(memory, DATA_BASE, lcg_values(111, 128, 256))
    return _parsec("canneal.p", asm.build(), memory,
                   "annealing swaps with helper calls")


@register("dedup.p")
def dedup() -> Workload:
    """Chunking + rolling hash with a per-chunk call."""
    asm = Builder()
    with asm.func("main"):
        asm.movi(R_DATA, DATA_BASE)   # 192-word stream
        asm.movi(R_AUX, AUX_BASE)     # 64-bucket fingerprint table
        emit_warm(asm, R_DATA, 192)
        asm.movi(7, 0)
        asm.label("chunks")
        asm.call("hash_chunk")
        asm.andi(1, 0, 63 * 8)
        asm.load(2, R_AUX, 1)         # fingerprint lookup
        asm.cmp(2, 0)
        asm.br(Cond.EQ, "dup")
        asm.store(R_AUX, 1, 0, 0)
        asm.label("dup")
        asm.addi(7, 7, 32)
        asm.cmpi(7, 176 * 8)
        asm.br(Cond.LT, "chunks")
        asm.halt()
    with asm.func("hash_chunk"):
        asm.push(5)
        asm.push(6)
        asm.movi(0, 0)
        asm.movi(6, 0)
        asm.label("roll")
        asm.add(5, 7, 6)
        asm.load(4, R_DATA, 5)
        asm.muli(0, 0, 131)
        asm.add(0, 0, 4)
        asm.addi(6, 6, 8)
        asm.cmpi(6, 32)
        asm.br(Cond.LT, "roll")
        asm.pop(6)
        asm.pop(5)
        asm.ret()
    memory = Memory()
    fill_words(memory, DATA_BASE, lcg_values(121, 192, 64))
    fill_words(memory, AUX_BASE, [0] * 64)
    return _parsec("dedup.p", asm.build(), memory,
                   "chunk fingerprinting")


@register("ferret.p")
def ferret() -> Workload:
    """Feature-distance ranking with a distance helper."""
    asm = Builder()
    with asm.func("main"):
        asm.movi(R_DATA, DATA_BASE)   # 64 x 4-word feature vectors
        asm.movi(R_AUX, AUX_BASE)     # query vector
        emit_warm(asm, R_DATA, 256)
        emit_warm(asm, R_AUX, 4)
        asm.movi(7, 0)
        asm.movi(5, 0xFFFF)           # best distance
        asm.label("vectors")
        asm.call("distance")
        asm.cmp(0, 5)
        asm.br(Cond.GE, "not_best")
        asm.mov(5, 0)
        asm.label("not_best")
        asm.addi(7, 7, 32)
        asm.cmpi(7, 60 * 32)
        asm.br(Cond.LT, "vectors")
        asm.halt()
    with asm.func("distance"):
        asm.push(6)
        asm.movi(0, 0)
        asm.movi(6, 0)
        asm.label("dims")
        asm.add(1, 7, 6)
        asm.load(2, R_DATA, 1)
        asm.load(3, R_AUX, 6)
        asm.sub(4, 2, 3)
        asm.mul(4, 4, 4)
        asm.add(0, 0, 4)
        asm.addi(6, 6, 8)
        asm.cmpi(6, 32)
        asm.br(Cond.LT, "dims")
        asm.pop(6)
        asm.ret()
    memory = Memory()
    fill_words(memory, DATA_BASE, lcg_values(131, 256, 128))
    fill_words(memory, AUX_BASE, lcg_values(132, 4, 128))
    return _parsec("ferret.p", asm.build(), memory,
                   "similarity ranking")


@register("fluidanimate.p")
def fluidanimate() -> Workload:
    """Grid-neighbour accumulation (stencil with strided loads)."""
    asm = Builder()
    with asm.func("main"):
        asm.movi(R_DATA, DATA_BASE)   # 16x12 grid of densities
        emit_warm(asm, R_DATA, 200)
        asm.movi(7, 8 * 17)           # start inside the border
        asm.label("cells")
        asm.load(0, R_DATA, 7)
        asm.load(1, R_DATA, 7, -8)
        asm.load(2, R_DATA, 7, 8)
        asm.load(3, R_DATA, 7, -128)
        asm.load(4, R_DATA, 7, 128)
        asm.add(1, 1, 2)
        asm.add(3, 3, 4)
        asm.add(1, 1, 3)
        asm.shri(1, 1, 2)
        asm.add(0, 0, 1)
        asm.shri(0, 0, 1)
        asm.store(R_DATA, 7, 0, 0)
        asm.addi(7, 7, 8)
        asm.cmpi(7, 8 * 170)
        asm.br(Cond.LT, "cells")
        asm.halt()
    memory = Memory()
    fill_words(memory, DATA_BASE, lcg_values(141, 200, 1024))
    return _parsec("fluidanimate.p", asm.build(), memory,
                   "grid stencil")


@register("swaptions.p")
def swaptions() -> Workload:
    """HJM-style path simulation: nested loops, divisions, calls."""
    asm = Builder()
    with asm.func("main"):
        asm.movi(R_DATA, DATA_BASE)
        emit_warm(asm, R_DATA, 64)
        asm.movi(7, 0)
        asm.movi(5, 0)
        asm.label("paths")
        asm.movi(6, 0)
        asm.movi(0, 1000)
        asm.label("steps")
        asm.add(1, 7, 6)
        asm.andi(1, 1, 63 * 8)
        asm.load(2, R_DATA, 1)        # rate shock
        asm.addi(2, 2, 3)
        asm.call("discount")
        asm.add(5, 5, 0)
        asm.addi(6, 6, 8)
        asm.cmpi(6, 5 * 8)
        asm.br(Cond.LT, "steps")
        asm.addi(7, 7, 8)
        asm.cmpi(7, 40 * 8)
        asm.br(Cond.LT, "paths")
        asm.halt()
    with asm.func("discount"):
        asm.push(2)
        asm.div(0, 0, 2)              # discounting division
        asm.addi(0, 0, 1)
        asm.pop(2)
        asm.ret()
    memory = Memory()
    fill_words(memory, DATA_BASE, lcg_values(151, 64, 64))
    return _parsec("swaptions.p", asm.build(), memory,
                   "path simulation with divisions")
