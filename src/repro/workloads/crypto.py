"""Cryptographic kernels for the three crypto suites (paper SVIII-B2).

* **CTS-Crypto** (vs SPT): statically-typeable constant-time kernels —
  secrets flow through ARX/boolean/multiply dataflow and never reach a
  transmitter operand.  Modelled on HACL*/libsodium/OpenSSL primitives.
* **CT-Crypto** (vs SPT): constant-time kernels with *declassification*
  patterns CTS typing forbids: outputs (tags, digests) that are
  architecturally bound to leak — compared by branches or used as store
  indices.  ProtCC-CT unprotects these at compile time; SPT has to wait
  for the first transmission to retire (paper SIX-B3).
* **UNR-Crypto** (vs SPT-SB): non-constant-time OpenSSL-style kernels
  with secret-dependent branches and table indices (square-and-multiply
  exponentiation and friends).

Secrets (keys) live in the KEY region and are brought into registers by
loads; messages are public inputs; outputs go to the OUT region.
"""

from __future__ import annotations

from ..arch.memory import Memory
from ..isa.builder import Builder
from ..isa.operations import Cond
from .base import (
    DATA_BASE,
    KEY_BASE,
    OUT_BASE,
    TABLE_BASE,
    Workload,
    emit_warm,
    fill_words,
    lcg_values,
    register,
)

R_MSG, R_KEY, R_OUT, R_TAB = 8, 9, 11, 12
MASK32 = 0xFFFFFFFF


def _crypto(name, suite, clazz, program, memory, baseline, description):
    return Workload(name=name, suite=suite, classes=clazz, program=program,
                    memory=memory, baseline=baseline,
                    description=description)


def _crypto_memory(seed: int, msg_words: int = 64, key_words: int = 8
                   ) -> Memory:
    memory = Memory()
    fill_words(memory, DATA_BASE, lcg_values(seed, msg_words, 1 << 16))
    fill_words(memory, KEY_BASE, lcg_values(seed ^ 0x5EC2E7, key_words,
                                            1 << 32))
    fill_words(memory, TABLE_BASE, lcg_values(seed ^ 0x7AB1E, 64, 1 << 16))
    # Bignum context: a pointer to the limb array, loaded at runtime
    # (OpenSSL-style indirection; the loaded pointer is protected under
    # ProtCC-UNR, making every limb access an access transmitter).
    memory.write_word(KEY_BASE + 64, TABLE_BASE)
    return memory


#: Offset (from R_OUT) of the memory-held message cursor.  Keeping the
#: cursor in memory and masking it before use reproduces the register
#: dataflow of compiled crypto code: the masked index is *lossy*, so
#: SPT cannot recognize it as already-transmitted even in steady state,
#: while ProtCC types/declassifies it publicly (paper SIX-B2/B3).
CURSOR = 0x1000


def _prologue(asm: Builder, warm_msg: int = 64) -> None:
    asm.movi(R_MSG, DATA_BASE)
    asm.movi(R_KEY, KEY_BASE)
    asm.movi(R_OUT, OUT_BASE)
    asm.movi(R_TAB, TABLE_BASE)
    if warm_msg:
        emit_warm(asm, R_MSG, warm_msg)
    asm.movi(0, 0)
    asm.store(R_OUT, None, CURSOR, 0)


def _advance_cursor(asm: Builder, masked_reg: int) -> None:
    """Advance the memory-held message cursor (post-increment pointer
    idiom) and leave the masked byte offset in ``masked_reg``.  The
    stored value also feeds the address mask, so ProtCC's secrecy
    typing publicizes the whole chain — while the mask is lossy, so SPT
    never recognizes the fresh cursor as already-transmitted."""
    asm.load(masked_reg, R_OUT, None, CURSOR)
    asm.addi(masked_reg, masked_reg, 8)
    asm.store(R_OUT, None, CURSOR, masked_reg)
    asm.andi(masked_reg, masked_reg, 0x1F8)


# ======================================================================
# CTS-Crypto: ARX / carry-less kernels, statically typeable
# ======================================================================

def _arx_round(asm: Builder, a: int, b: int, c: int, rot: int) -> None:
    """One ChaCha/Salsa-style quarter-round step on registers."""
    asm.add(a, a, b)
    asm.xor(c, c, a)
    asm.shli(0, c, rot)
    asm.shri(c, c, 64 - rot)
    asm.or_(c, c, 0)


def _stream_cipher(name: str, seed: int, rounds: int, blocks: int,
                   rots) -> Workload:
    """ChaCha20/Salsa20-style stream cipher: load key + counter state,
    run ARX rounds, XOR a message block, store ciphertext."""
    asm = Builder()
    with asm.func("main"):
        _prologue(asm)
        asm.movi(7, 0)                # block counter
        asm.label("blocks")
        asm.load(1, R_KEY, None, 0)   # key words (secret)
        asm.load(2, R_KEY, None, 8)
        asm.load(3, R_KEY, None, 16)
        asm.add(3, 3, 7)              # mix in counter
        asm.movi(6, 0)
        asm.label("rounds")
        for rot in rots:
            _arx_round(asm, 1, 2, 3, rot)
            _arx_round(asm, 2, 3, 1, rot // 2 + 1)
        asm.addi(6, 6, 1)
        asm.cmpi(6, rounds)
        asm.br(Cond.LT, "rounds")
        _advance_cursor(asm, 5)
        asm.load(4, R_MSG, 5)         # message word (public)
        asm.xor(4, 4, 1)              # keystream XOR
        asm.store(R_OUT, 5, 0, 4)     # ciphertext out (secret-typed data)
        asm.addi(7, 7, 8)
        asm.cmpi(7, blocks * 8)
        asm.br(Cond.LT, "blocks")
        asm.halt()
    return _crypto(name, "cts-crypto", "cts", asm.build(),
                   _crypto_memory(seed), "SPT",
                   f"ARX stream cipher ({rounds} rounds)")


def _mac_kernel(name: str, seed: int, chunks: int) -> Workload:
    """Poly1305-style accumulate-and-multiply MAC."""
    asm = Builder()
    with asm.func("main"):
        _prologue(asm)
        asm.load(1, R_KEY, None, 0)   # r (secret)
        asm.load(2, R_KEY, None, 8)   # s (secret)
        asm.movi(3, 0)                # accumulator h
        asm.movi(7, 0)
        asm.label("chunks")
        _advance_cursor(asm, 5)
        asm.load(4, R_MSG, 5)
        asm.add(3, 3, 4)              # h += m[i]
        asm.mul(3, 3, 1)              # h *= r
        asm.shri(0, 3, 32)            # poor-man's carry reduction
        asm.andi(3, 3, 0xFFFFFFFF)
        asm.add(3, 3, 0)
        asm.addi(7, 7, 8)
        asm.cmpi(7, chunks * 8)
        asm.br(Cond.LT, "chunks")
        asm.add(3, 3, 2)              # h += s
        asm.store(R_OUT, None, 0, 3)  # tag out
        asm.halt()
    return _crypto(name, "cts-crypto", "cts", asm.build(),
                   _crypto_memory(seed), "SPT", "accumulate-multiply MAC")


def _hash_kernel(name: str, seed: int, blocks: int, suite: str = "cts-crypto",
                 clazz: str = "cts", declassify: bool = False) -> Workload:
    """SHA-256-style schedule + compression rounds.  With
    ``declassify=True`` the digest indexes a public table afterwards
    (a bound-to-leak output: CT-class, not CTS-typeable)."""
    asm = Builder()
    with asm.func("main"):
        _prologue(asm)
        asm.load(1, R_KEY, None, 0)   # IV / HMAC key (secret)
        asm.load(2, R_KEY, None, 8)
        asm.movi(7, 0)
        asm.label("blocks")
        asm.movi(6, 0)
        asm.label("rounds")
        asm.add(0, 7, 6)
        asm.andi(0, 0, 0x1F8)
        asm.load(3, R_MSG, 0)         # schedule word
        asm.shri(4, 1, 6)
        asm.xor(4, 4, 1)
        asm.add(4, 4, 3)              # T1
        asm.add(2, 2, 4)
        asm.xor(1, 1, 2)
        asm.shri(5, 2, 11)
        asm.xor(2, 2, 5)
        asm.addi(6, 6, 8)
        asm.cmpi(6, 8 * 8)
        asm.br(Cond.LT, "rounds")
        asm.addi(7, 7, 8)
        asm.cmpi(7, blocks * 8)
        asm.br(Cond.LT, "blocks")
        asm.store(R_OUT, None, 0, 1)  # digest out
        if declassify:
            # The published digest indexes a format table: architecturally
            # bound to leak, so ProtCC-CT declassifies it at compile time.
            asm.andi(4, 1, 63 * 8)
            asm.load(5, R_TAB, 4)
            asm.store(R_OUT, None, 8, 5)
        asm.halt()
    return _crypto(name, suite, clazz, asm.build(), _crypto_memory(seed),
                   "SPT", "hash schedule + compression")


def _ladder_kernel(name: str, seed: int, bits: int) -> Workload:
    """Curve25519-style Montgomery ladder with arithmetic conditional
    swap (branch-free secret-bit handling)."""
    asm = Builder()
    with asm.func("main"):
        _prologue(asm)
        asm.load(1, R_KEY, None, 0)   # scalar (secret)
        asm.movi(2, 9)                # x1
        asm.movi(3, 1)                # x2
        asm.movi(7, 0)
        asm.label("bits")
        asm.shr(4, 1, 7)
        asm.andi(4, 4, 1)             # bit (secret)
        asm.movi(0, 0)
        asm.sub(0, 0, 4)              # mask = -bit
        asm.xor(5, 2, 3)
        asm.and_(5, 5, 0)
        asm.xor(2, 2, 5)              # conditional swap
        asm.xor(3, 3, 5)
        asm.mul(6, 2, 3)              # ladder step arithmetic
        asm.add(2, 2, 3)
        asm.mul(2, 2, 2)
        asm.andi(2, 2, MASK32)
        asm.add(3, 6, 2)
        asm.andi(3, 3, MASK32)
        asm.addi(7, 7, 1)
        asm.cmpi(7, bits)
        asm.br(Cond.LT, "bits")
        asm.store(R_OUT, None, 0, 2)
        asm.halt()
    return _crypto(name, "cts-crypto", "cts", asm.build(),
                   _crypto_memory(seed), "SPT", "Montgomery ladder")


@register("hacl.chacha20")
def hacl_chacha20() -> Workload:
    return _stream_cipher("hacl.chacha20", 301, 10, 24, (16, 12, 8, 7))


@register("hacl.curve25519")
def hacl_curve25519() -> Workload:
    return _ladder_kernel("hacl.curve25519", 302, 160)


@register("hacl.poly1305")
def hacl_poly1305() -> Workload:
    return _mac_kernel("hacl.poly1305", 303, 220)


@register("sodium.salsa20")
def sodium_salsa20() -> Workload:
    return _stream_cipher("sodium.salsa20", 304, 10, 22, (7, 9, 13, 18))


@register("sodium.sha256")
def sodium_sha256() -> Workload:
    return _hash_kernel("sodium.sha256", 305, 28)


@register("ossl.chacha20")
def ossl_chacha20() -> Workload:
    return _stream_cipher("ossl.chacha20", 306, 8, 28, (16, 12, 8, 7))


@register("ossl.curve25519")
def ossl_curve25519() -> Workload:
    return _ladder_kernel("ossl.curve25519", 307, 180)


@register("ossl.sha256")
def ossl_sha256() -> Workload:
    return _hash_kernel("ossl.sha256", 308, 30)


# ======================================================================
# CT-Crypto: constant-time with declassification patterns
# ======================================================================

@register("bearssl")
def bearssl() -> Workload:
    """Bitsliced AES-style boolean rounds + constant-time tag check.
    The computed tag is compared with a branch (architecturally bound
    to leak: fine for CT, untypeable for CTS)."""
    asm = Builder()
    with asm.func("main"):
        _prologue(asm)
        asm.load(1, R_KEY, None, 0)
        asm.load(2, R_KEY, None, 8)
        asm.movi(7, 0)
        asm.movi(5, 0)                # tag accumulator
        asm.label("blocks")
        asm.load(3, R_MSG, 7)
        # Bitsliced S-box-ish boolean layer.
        for _ in range(3):
            asm.xor(3, 3, 1)
            asm.and_(0, 3, 2)
            asm.xor(3, 3, 0)
            asm.shri(0, 3, 13)
            asm.xor(3, 3, 0)
            asm.shli(0, 3, 7)
            asm.xor(3, 3, 0)
        asm.store(R_OUT, 7, 0, 3)
        asm.add(5, 5, 3)
        asm.andi(5, 5, MASK32)
        asm.addi(7, 7, 8)
        asm.cmpi(7, 40 * 8)
        asm.br(Cond.LT, "blocks")
        # Constant-time MAC verify, then publish the comparison result:
        # the tag is bound to leak through the branch.
        asm.load(6, R_MSG, None, 41 * 8)
        asm.cmp(5, 6)
        asm.br(Cond.EQ, "tag_ok")
        asm.movi(0, 1)
        asm.store(R_OUT, None, 8, 0)
        asm.label("tag_ok")
        asm.halt()
    return _crypto("bearssl", "ct-crypto", "ct", asm.build(),
                   _crypto_memory(311), "SPT",
                   "bitsliced rounds + tag verification")


@register("ctaes")
def ctaes() -> Workload:
    """Constant-time AES-like rounds whose ciphertext words index the
    output record (bound-to-leak store indices)."""
    asm = Builder()
    with asm.func("main"):
        _prologue(asm)
        asm.load(1, R_KEY, None, 0)
        asm.movi(7, 0)
        asm.label("blocks")
        asm.load(2, R_MSG, 7)
        for _ in range(4):
            asm.xor(2, 2, 1)
            asm.shli(0, 2, 9)
            asm.shri(2, 2, 23)
            asm.or_(2, 2, 0)
            asm.mul(2, 2, 2)
            asm.andi(2, 2, MASK32)
        # The ciphertext word picks its output slot: its low bits are
        # architecturally transmitted by the store's address.
        asm.andi(3, 2, 31 * 8)
        asm.store(R_OUT, 3, 0, 2)
        asm.addi(7, 7, 8)
        asm.cmpi(7, 36 * 8)
        asm.br(Cond.LT, "blocks")
        asm.halt()
    return _crypto("ctaes", "ct-crypto", "ct", asm.build(),
                   _crypto_memory(312), "SPT",
                   "CT rounds with bound-to-leak indices")


@register("djbsort")
def djbsort() -> Workload:
    """Constant-time sorting network (arithmetic compare-exchange) over
    secret values, then publication of the sorted array."""
    asm = Builder()
    with asm.func("main"):
        _prologue(asm)
        asm.movi(7, 0)                # round
        asm.label("net_rounds")
        asm.movi(6, 0)
        asm.label("pairs")
        asm.load(1, R_MSG, 6)
        asm.load(2, R_MSG, 6, 8)
        # min/max via arithmetic (branch-free compare-exchange)
        asm.sub(3, 1, 2)
        asm.shri(4, 3, 63)            # sign bit
        asm.movi(0, 0)
        asm.sub(0, 0, 4)              # mask = a<b ? -1 : 0
        asm.and_(5, 3, 0)
        asm.sub(1, 1, 5)              # max
        asm.add(2, 2, 5)              # min
        asm.store(R_MSG, 6, 0, 2)
        asm.store(R_MSG, 6, 8, 1)
        asm.addi(6, 6, 16)
        asm.cmpi(6, 30 * 16)
        asm.br(Cond.LT, "pairs")
        asm.addi(7, 7, 1)
        asm.cmpi(7, 6)
        asm.br(Cond.LT, "net_rounds")
        asm.halt()
    return _crypto("djbsort", "ct-crypto", "ct", asm.build(),
                   _crypto_memory(313), "SPT",
                   "constant-time sorting network")


# ======================================================================
# UNR-Crypto: non-constant-time OpenSSL-style kernels
# ======================================================================

@register("ossl.bnexp")
def ossl_bnexp() -> Workload:
    """Square-and-multiply modular exponentiation: branches on secret
    key bits (the canonical non-constant-time pattern)."""
    asm = Builder()
    with asm.func("main"):
        _prologue(asm)
        asm.load(1, R_KEY, None, 0)   # exponent (secret)
        asm.load(6, R_KEY, None, 64)  # ctx->limbs (loaded pointer)
        asm.movi(2, 7)                # base
        asm.movi(3, 1)                # result
        asm.movi(7, 0)
        asm.label("bits")
        asm.mul(3, 3, 3)              # square
        asm.andi(3, 3, MASK32)
        asm.andi(5, 7, 31 * 8)
        asm.load(0, 6, 5)             # modulus limb via loaded pointer
        asm.add(3, 3, 0)              # fold in the reduction limb
        asm.andi(3, 3, MASK32)
        asm.shr(4, 1, 7)
        asm.andi(4, 4, 1)
        asm.cmpi(4, 1)
        asm.br(Cond.NE, "no_mul")     # secret-dependent branch!
        asm.mul(3, 3, 2)
        asm.andi(3, 3, MASK32)
        asm.label("no_mul")
        asm.addi(7, 7, 1)
        asm.cmpi(7, 96)
        asm.br(Cond.LT, "bits")
        asm.store(R_OUT, None, 0, 3)
        asm.halt()
    return _crypto("ossl.bnexp", "unr-crypto", "unr", asm.build(),
                   _crypto_memory(321), "SPT-SB",
                   "square-and-multiply (secret branches)")


@register("ossl.dh")
def ossl_dh() -> Workload:
    """Windowed exponentiation: secret key windows index a precomputed
    power table (secret-dependent addresses) with helper calls."""
    asm = Builder()
    with asm.func("main"):
        _prologue(asm)
        asm.load(1, R_KEY, None, 0)   # secret exponent
        asm.load(6, R_KEY, None, 64)  # ctx->powers (loaded pointer)
        asm.movi(3, 1)                # accumulator
        asm.movi(7, 0)
        asm.label("windows")
        asm.shri(5, 7, 2)
        asm.andi(5, 5, 63)
        asm.shr(4, 1, 5)
        asm.andi(4, 4, 7)             # 3-bit window (secret)
        asm.muli(4, 4, 8)
        asm.load(5, 6, 4)             # powers[window]: secret address!
        asm.call("modmul")
        asm.addi(7, 7, 3)
        asm.cmpi(7, 168)
        asm.br(Cond.LT, "windows")
        asm.store(R_OUT, None, 0, 3)
        asm.halt()
    with asm.func("modmul"):
        asm.push(5)
        asm.mul(3, 3, 5)
        asm.andi(3, 3, MASK32)
        asm.mul(3, 3, 3)
        asm.andi(3, 3, MASK32)
        asm.pop(5)
        asm.ret()
    return _crypto("ossl.dh", "unr-crypto", "unr", asm.build(),
                   _crypto_memory(322), "SPT-SB",
                   "windowed exponentiation (secret table indices)")


@register("ossl.ecadd")
def ossl_ecadd() -> Workload:
    """Branchy short-Weierstrass point addition: special-case branches
    on secret coordinates, divisions for slope computation."""
    asm = Builder()
    with asm.func("main"):
        _prologue(asm)
        asm.load(1, R_KEY, None, 0)   # x1 (secret)
        asm.load(2, R_KEY, None, 8)   # y1 (secret)
        asm.load(6, R_KEY, None, 64)  # ctx->points (loaded pointer)
        asm.movi(7, 0)
        asm.label("adds")
        asm.andi(0, 7, 31 * 8)
        asm.load(3, 6, 0)             # x2 from the point table
        asm.load(4, 6, 0, 8)          # y2
        asm.cmp(1, 3)
        asm.br(Cond.NE, "general")    # secret-dependent special case
        asm.mul(5, 1, 1)              # doubling slope numerator
        asm.muli(5, 5, 3)
        asm.jmp("slope")
        asm.label("general")
        asm.sub(5, 4, 2)              # y2 - y1
        asm.label("slope")
        asm.sub(6, 3, 1)
        asm.addi(6, 6, 3)             # avoid zero divisor
        asm.div(5, 5, 6)              # slope = num / den (secret operands)
        asm.mul(0, 5, 5)
        asm.sub(0, 0, 1)
        asm.sub(0, 0, 3)
        asm.andi(0, 0, MASK32)
        asm.mov(1, 0)                 # x3 -> x1
        asm.add(2, 2, 5)
        asm.andi(2, 2, MASK32)
        asm.addi(7, 7, 2)
        asm.cmpi(7, 140)
        asm.br(Cond.LT, "adds")
        asm.store(R_OUT, None, 0, 1)
        asm.halt()
    return _crypto("ossl.ecadd", "unr-crypto", "unr", asm.build(),
                   _crypto_memory(323), "SPT-SB",
                   "branchy point addition with secret divisions")
