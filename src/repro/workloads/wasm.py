"""ARCH-Wasm: SPEC CPU 2006-like kernels in sandboxed-WebAssembly style
(paper SVIII-B2).

Wasm sandboxing manifests as index masking before every memory access
(the linear-memory bounds guarantee), which is exactly the
non-secret-accessing (ARCH) pattern: the program never architecturally
touches anything outside its sandbox, and the defense's job is to keep
*transient* escapes from leaking.  STT's weakness here is load-load
serialization (paper SIX-B1: every ``mov ptr,[mem]; mov data,[ptr]``
pair stalls); ``milc.w`` concentrates that pattern.
"""

from __future__ import annotations

from ..arch.memory import Memory
from ..isa.builder import Builder
from ..isa.operations import Cond
from .base import DATA_BASE, Workload, emit_warm, fill_words, lcg_values, register

R_MEM = 8     # sandbox linear-memory base
MASK = 0x7F8  # 256-word sandbox


def _wasm(name, program, memory, description) -> Workload:
    return Workload(name=name, suite="arch-wasm", classes="arch",
                    program=program, memory=memory, baseline="STT",
                    description=description)


@register("bzip2.w")
def bzip2() -> Workload:
    """Move-to-front coding: lookup, shift, store."""
    asm = Builder()
    with asm.func("main"):
        asm.movi(R_MEM, DATA_BASE)
        emit_warm(asm, R_MEM, 256)
        emit_warm(asm, R_MEM, 32, 1024)
        asm.movi(7, 0)
        asm.label("symbols")
        asm.andi(0, 7, MASK)
        asm.load(1, R_MEM, 0)         # symbol
        asm.andi(2, 1, 31 * 8)
        asm.addi(2, 2, 1024)          # MTF table offset
        asm.load(3, R_MEM, 2)         # rank (load -> load)
        asm.addi(3, 3, 1)
        asm.store(R_MEM, 2, 0, 3)
        asm.addi(7, 7, 8)
        asm.cmpi(7, 360 * 8)
        asm.br(Cond.LT, "symbols")
        asm.halt()
    memory = Memory()
    fill_words(memory, DATA_BASE, lcg_values(201, 256, 256))
    fill_words(memory, DATA_BASE + 1024, [0] * 32)
    return _wasm("bzip2.w", asm.build(), memory, "move-to-front coding")


@register("mcf.w")
def mcf_w() -> Workload:
    """Sandboxed pointer chasing."""
    asm = Builder()
    with asm.func("main"):
        asm.movi(R_MEM, DATA_BASE)
        emit_warm(asm, R_MEM, 256)
        asm.movi(7, 0)
        asm.label("pass")
        asm.movi(1, 0)
        asm.movi(6, 0)
        asm.label("chase")
        asm.andi(1, 1, MASK)          # sandbox mask
        asm.load(1, R_MEM, 1)         # next = mem[cur]
        asm.addi(6, 6, 1)
        asm.cmpi(6, 120)
        asm.br(Cond.LT, "chase")
        asm.addi(7, 7, 1)
        asm.cmpi(7, 3)
        asm.br(Cond.LT, "pass")
        asm.halt()
    memory = Memory()
    order = lcg_values(211, 256, 1 << 20)
    perm = sorted(range(256), key=lambda i: (order[i], i))
    words = [0] * 256
    for position in range(256):
        words[perm[position]] = 8 * perm[(position + 1) % 256]
    fill_words(memory, DATA_BASE, words)
    return _wasm("mcf.w", asm.build(), memory, "sandboxed pointer chase")


@register("milc.w")
def milc() -> Workload:
    """Lattice QCD-style gather: index vectors loaded from memory feed
    the addresses of data loads (dense load-load dependences).  The
    hot set stays L1D-resident, so ProtISA sees it unprotected while
    STT still serializes every load-load dependence against the ROB
    head (paper SIX-B1)."""
    milc_mask = 0x7F8  # 256-word region: L1D-resident hot set
    asm = Builder()
    with asm.func("main"):
        asm.movi(R_MEM, DATA_BASE)
        emit_warm(asm, R_MEM, 256)
        asm.movi(7, 0)
        asm.movi(5, 0)
        asm.label("sites")
        asm.andi(0, 7, milc_mask)
        asm.load(1, R_MEM, 0)         # neighbour index
        asm.andi(1, 1, milc_mask)
        asm.load(2, R_MEM, 1)         # gauge link   (load -> load)
        asm.andi(2, 2, milc_mask)
        asm.load(3, R_MEM, 2)         # field value  (load -> load -> load)
        asm.add(5, 5, 3)
        asm.addi(7, 7, 8)
        asm.cmpi(7, 400 * 8)
        asm.br(Cond.LT, "sites")
        asm.halt()
    memory = Memory()
    fill_words(memory, DATA_BASE, [value * 8 % 2048
                                   for value in lcg_values(221, 256, 256)])
    return _wasm("milc.w", asm.build(), memory,
                 "triple-indirect gathers")


@register("namd.w")
def namd() -> Workload:
    """Pairwise force arithmetic (multiply-heavy, predictable)."""
    asm = Builder()
    with asm.func("main"):
        asm.movi(R_MEM, DATA_BASE)
        emit_warm(asm, R_MEM, 256)
        asm.movi(7, 0)
        asm.movi(5, 0)
        asm.label("pairs")
        asm.andi(0, 7, MASK)
        asm.load(1, R_MEM, 0)
        asm.addi(2, 0, 8)
        asm.andi(2, 2, MASK)
        asm.load(3, R_MEM, 2)
        asm.sub(4, 1, 3)
        asm.mul(4, 4, 4)
        asm.muli(4, 4, 3)
        asm.shri(4, 4, 4)
        asm.add(5, 5, 4)
        asm.addi(7, 7, 8)
        asm.cmpi(7, 300 * 8)
        asm.br(Cond.LT, "pairs")
        asm.halt()
    memory = Memory()
    fill_words(memory, DATA_BASE, lcg_values(231, 256, 512))
    return _wasm("namd.w", asm.build(), memory, "pairwise force loops")


@register("libquantum.w")
def libquantum() -> Workload:
    """Quantum gate application: conditional bit toggles over a register
    file in memory."""
    asm = Builder()
    with asm.func("main"):
        asm.movi(R_MEM, DATA_BASE)
        emit_warm(asm, R_MEM, 256)
        asm.movi(7, 0)
        asm.label("gates")
        asm.andi(0, 7, MASK)
        asm.load(1, R_MEM, 0)         # amplitude word
        asm.andi(2, 1, 4)             # control bit
        asm.cmpi(2, 0)
        asm.br(Cond.EQ, "no_flip")
        asm.xori(1, 1, 2)             # toggle target bit
        asm.store(R_MEM, 0, 0, 1)
        asm.label("no_flip")
        asm.addi(7, 7, 8)
        asm.cmpi(7, 340 * 8)
        asm.br(Cond.LT, "gates")
        asm.halt()
    memory = Memory()
    # Bias the control bit so the gate branch is ~85% predictable.
    values = [v & ~4 if v % 8 else v | 4 for v in lcg_values(241, 256, 256)]
    fill_words(memory, DATA_BASE, values)
    return _wasm("libquantum.w", asm.build(), memory,
                 "conditional bit toggles")


@register("lbm.w")
def lbm() -> Workload:
    """Lattice-Boltzmann streaming: long strided copy/accumulate."""
    asm = Builder()
    with asm.func("main"):
        asm.movi(R_MEM, DATA_BASE)
        emit_warm(asm, R_MEM, 256)
        asm.movi(7, 0)
        asm.label("stream")
        asm.andi(0, 7, MASK)
        asm.load(1, R_MEM, 0)
        asm.addi(2, 0, 128)
        asm.andi(2, 2, MASK)
        asm.load(3, R_MEM, 2)
        asm.add(1, 1, 3)
        asm.shri(1, 1, 1)
        asm.store(R_MEM, 0, 0, 1)
        asm.addi(7, 7, 8)
        asm.cmpi(7, 330 * 8)
        asm.br(Cond.LT, "stream")
        asm.halt()
    memory = Memory()
    fill_words(memory, DATA_BASE, lcg_values(251, 256, 1024))
    return _wasm("lbm.w", asm.build(), memory, "strided streaming")
