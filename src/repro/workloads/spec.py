"""SPEC CPU 2017-like general-purpose kernels (paper SVIII-B1).

Each kernel reproduces the structural behaviour of its namesake that
matters to Spectre defenses: pointer chasing (mcf), hash probing
(xalancbmk, perlbench), data-dependent tree descent (gcc), heap
maintenance (omnetpp), dense media arithmetic (x264), search with
divisions (deepsjeng, leela), pure nested loops (exchange2), and
match-length scanning with hard-to-predict exits (xz).  The ``.s``
suffix mirrors the paper's Fig. 6 naming.
"""

from __future__ import annotations

from ..arch.memory import Memory
from ..isa.builder import Builder
from ..isa.operations import Cond
from .base import DATA_BASE, Workload, emit_warm, fill_words, lcg_values, register

R_DATA, R_AUX, R_OUT = 8, 9, 11
AUX_BASE = DATA_BASE + 0x10000
OUT_BASE = DATA_BASE + 0x20000


def _spec(name: str, program, memory: Memory, description: str) -> Workload:
    return Workload(name=name, suite="spec2017", classes="arch",
                    program=program, memory=memory, baseline="STT",
                    description=description)


@register("perlbench.s")
def perlbench() -> Workload:
    """String hashing with table-dispatched handling."""
    asm = Builder()
    with asm.func("main"):
        asm.movi(R_DATA, DATA_BASE)   # 128 input words
        asm.movi(R_AUX, AUX_BASE)     # 64-entry hash table
        emit_warm(asm, R_DATA, 128)
        emit_warm(asm, R_AUX, 64)
        asm.movi(7, 0)                # outer passes
        asm.label("outer")
        asm.movi(6, 0)                # byte cursor
        asm.movi(5, 0)                # running hash
        asm.label("scan")
        asm.load(0, R_DATA, 6)
        asm.muli(5, 5, 31)
        asm.add(5, 5, 0)
        asm.andi(4, 5, 63 * 8)        # bucket
        asm.load(1, R_AUX, 4)         # probe
        asm.add(1, 1, 0)
        asm.store(R_AUX, 4, 0, 1)     # update bucket
        asm.andi(2, 0, 3)             # "opcode" dispatch
        asm.cmpi(2, 1)
        asm.br(Cond.LT, "op0")
        asm.cmpi(2, 2)
        asm.br(Cond.LT, "op1")
        asm.addi(5, 5, 17)
        asm.jmp("dispatched")
        asm.label("op0")
        asm.xori(5, 5, 0x5A)
        asm.jmp("dispatched")
        asm.label("op1")
        asm.shri(5, 5, 1)
        asm.label("dispatched")
        asm.addi(6, 6, 8)
        asm.cmpi(6, 128 * 8)
        asm.br(Cond.LT, "scan")
        asm.addi(7, 7, 1)
        asm.cmpi(7, 4)
        asm.br(Cond.LT, "outer")
        asm.halt()
    memory = Memory()
    fill_words(memory, DATA_BASE, lcg_values(11, 128, 256))
    fill_words(memory, AUX_BASE, lcg_values(12, 64))
    return _spec("perlbench.s", asm.build(), memory,
                 "string hashing + dispatch")


@register("gcc.s")
def gcc() -> Workload:
    """Binary-tree descent over array-encoded nodes (value, left, right)."""
    asm = Builder()
    with asm.func("main"):
        asm.movi(R_DATA, DATA_BASE)   # tree: 64 nodes * 3 words
        asm.movi(R_AUX, AUX_BASE)     # 48 search keys
        emit_warm(asm, R_DATA, 192)
        emit_warm(asm, R_AUX, 48)
        asm.movi(7, 0)
        asm.label("keys")
        asm.load(0, R_AUX, 7)         # key
        asm.movi(1, 0)                # node index
        asm.movi(6, 0)                # depth guard
        asm.label("descend")
        asm.muli(2, 1, 24)
        asm.load(3, R_DATA, 2)        # node value
        asm.cmp(0, 3)
        asm.br(Cond.LT, "go_left")
        asm.load(1, R_DATA, 2, 16)    # right child
        asm.jmp("stepped")
        asm.label("go_left")
        asm.load(1, R_DATA, 2, 8)     # left child
        asm.label("stepped")
        asm.addi(6, 6, 1)
        asm.cmpi(6, 6)
        asm.br(Cond.LT, "descend")
        asm.addi(7, 7, 8)
        asm.cmpi(7, 48 * 8)
        asm.br(Cond.LT, "keys")
        asm.halt()
    memory = Memory()
    nodes = []
    values = lcg_values(21, 64, 1024)
    for index in range(64):
        nodes += [values[index], (2 * index + 1) % 64, (2 * index + 2) % 64]
    fill_words(memory, DATA_BASE, nodes)
    fill_words(memory, AUX_BASE, lcg_values(22, 48, 1024))
    return _spec("gcc.s", asm.build(), memory,
                 "data-dependent tree descent")


@register("mcf.s")
def mcf() -> Workload:
    """Linked-list pointer chasing with cost accumulation."""
    asm = Builder()
    with asm.func("main"):
        asm.movi(R_DATA, DATA_BASE)   # nodes: (next_offset, cost) pairs
        emit_warm(asm, R_DATA, 224)
        asm.movi(7, 0)                # passes
        asm.label("pass")
        asm.movi(1, 0)                # current offset
        asm.movi(5, 0)                # accumulated cost
        asm.movi(6, 0)                # hop count
        asm.label("chase")
        asm.load(2, R_DATA, 1, 8)     # cost
        asm.add(5, 5, 2)
        asm.load(1, R_DATA, 1)        # next offset (load -> load)
        asm.addi(6, 6, 1)
        asm.cmpi(6, 112)
        asm.br(Cond.LT, "chase")
        asm.addi(7, 7, 1)
        asm.cmpi(7, 6)
        asm.br(Cond.LT, "pass")
        asm.halt()
    memory = Memory()
    order = lcg_values(31, 112, 112)
    perm = sorted(range(112), key=lambda i: (order[i], i))
    words = [0] * 224
    for position in range(112):
        node = perm[position]
        nxt = perm[(position + 1) % 112]
        words[2 * node] = 16 * nxt
        words[2 * node + 1] = (node * 7) % 100
    fill_words(memory, DATA_BASE, words)
    return _spec("mcf.s", asm.build(), memory,
                 "pointer chasing (load-load dependences)")


@register("omnetpp.s")
def omnetpp() -> Workload:
    """Binary-heap sift-down event queue maintenance."""
    asm = Builder()
    with asm.func("main"):
        asm.movi(R_DATA, DATA_BASE)   # 64-entry heap
        emit_warm(asm, R_DATA, 64)
        asm.movi(7, 0)
        asm.label("events")
        asm.andi(0, 7, 0x1F8)
        asm.load(1, R_DATA, 0)        # new timestamp
        asm.addi(1, 1, 13)
        asm.store(R_DATA, None, 0, 1)  # replace root
        asm.movi(2, 0)                # sift index
        asm.movi(6, 0)
        asm.label("sift")
        asm.muli(3, 2, 2)
        asm.addi(3, 3, 1)             # left child index
        asm.muli(4, 3, 8)
        asm.load(5, R_DATA, 4)        # child key
        asm.muli(0, 2, 8)
        asm.load(1, R_DATA, 0)        # parent key
        asm.cmp(5, 1)
        asm.br(Cond.GE, "done_sift")
        asm.store(R_DATA, 0, 0, 5)    # swap
        asm.store(R_DATA, 4, 0, 1)
        asm.mov(2, 3)
        asm.addi(6, 6, 1)
        asm.cmpi(6, 5)
        asm.br(Cond.LT, "sift")
        asm.label("done_sift")
        asm.addi(7, 7, 8)
        asm.cmpi(7, 220 * 8)
        asm.br(Cond.LT, "events")
        asm.halt()
    memory = Memory()
    fill_words(memory, DATA_BASE, sorted(lcg_values(41, 64, 4096)))
    return _spec("omnetpp.s", asm.build(), memory,
                 "event-queue heap maintenance")


@register("xalancbmk.s")
def xalancbmk() -> Workload:
    """Open-addressing hash-table probing."""
    asm = Builder()
    with asm.func("main"):
        asm.movi(R_DATA, DATA_BASE)   # 128-slot table: (key, value)
        asm.movi(R_AUX, AUX_BASE)     # 64 lookup keys
        emit_warm(asm, R_DATA, 256)
        emit_warm(asm, R_AUX, 64)
        asm.movi(7, 0)
        asm.movi(5, 0)                # hits accumulator
        asm.label("lookups")
        asm.load(0, R_AUX, 7)         # key
        asm.muli(1, 0, 2654435761)
        asm.andi(1, 1, 127 * 16)      # slot offset (16B entries)
        asm.movi(6, 0)
        asm.label("probe")
        asm.load(2, R_DATA, 1)        # stored key (load feeds branch)
        asm.cmp(2, 0)
        asm.br(Cond.EQ, "found")
        asm.addi(1, 1, 16)
        asm.andi(1, 1, 2047)
        asm.addi(6, 6, 1)
        asm.cmpi(6, 4)
        asm.br(Cond.LT, "probe")
        asm.jmp("next")
        asm.label("found")
        asm.load(3, R_DATA, 1, 8)
        asm.add(5, 5, 3)
        asm.label("next")
        asm.addi(7, 7, 8)
        asm.cmpi(7, 64 * 8)
        asm.br(Cond.LT, "lookups")
        asm.halt()
    memory = Memory()
    keys = lcg_values(51, 64, 512)
    table = [0] * 256
    # ~85% of lookups hit on the first probe: realistic, predictable-ish
    # branch behaviour (wildly random branches would drown the defense
    # effects in misprediction noise).
    for key in [k for i, k in enumerate(keys) if i % 8 != 0]:
        slot = (key * 2654435761 % (1 << 32)) & (127 * 16) or 16
        table[slot // 16 * 2] = key
        table[slot // 16 * 2 + 1] = key % 97
    fill_words(memory, DATA_BASE, table)
    fill_words(memory, AUX_BASE, keys)
    return _spec("xalancbmk.s", asm.build(), memory, "hash-table probing")


@register("x264.s")
def x264() -> Workload:
    """Sum-of-absolute-differences over two pixel blocks."""
    asm = Builder()
    with asm.func("main"):
        asm.movi(R_DATA, DATA_BASE)
        asm.movi(R_AUX, AUX_BASE)
        emit_warm(asm, R_DATA, 256)
        emit_warm(asm, R_AUX, 16)
        asm.movi(7, 0)
        asm.movi(5, 0)
        asm.label("blocks")
        asm.movi(6, 0)
        asm.label("sad")
        asm.add(0, 7, 6)
        asm.andi(0, 0, 255 * 8)
        asm.load(1, R_DATA, 0)
        asm.load(2, R_AUX, 6)
        asm.sub(3, 1, 2)
        asm.cmp(1, 2)
        asm.br(Cond.GE, "abs_done")
        asm.sub(3, 2, 1)
        asm.label("abs_done")
        asm.add(5, 5, 3)
        asm.addi(6, 6, 8)
        asm.cmpi(6, 16 * 8)
        asm.br(Cond.LT, "sad")
        asm.addi(7, 7, 16)
        asm.cmpi(7, 60 * 16)
        asm.br(Cond.LT, "blocks")
        asm.halt()
    memory = Memory()
    fill_words(memory, DATA_BASE, lcg_values(61, 256, 256))
    fill_words(memory, AUX_BASE, lcg_values(62, 16, 256))
    return _spec("x264.s", asm.build(), memory,
                 "dense block arithmetic (SAD)")


@register("deepsjeng.s")
def deepsjeng() -> Workload:
    """Game-tree evaluation with mobility ratios (divisions)."""
    asm = Builder()
    with asm.func("main"):
        asm.movi(R_DATA, DATA_BASE)   # 96 position words
        emit_warm(asm, R_DATA, 192)
        asm.movi(7, 0)
        asm.movi(5, 0)                # best score
        asm.label("positions")
        asm.load(0, R_DATA, 7)        # material
        asm.load(1, R_DATA, 7, 8)     # mobility
        asm.addi(1, 1, 1)
        asm.div(2, 0, 1)              # material per move
        asm.rem(3, 0, 1)
        asm.add(2, 2, 3)
        asm.cmp(2, 5)
        asm.br(Cond.LE, "no_best")
        asm.mov(5, 2)
        asm.label("no_best")
        asm.andi(4, 0, 7)
        asm.cmpi(4, 3)
        asm.br(Cond.GT, "skip_ext")
        asm.muli(5, 5, 3)
        asm.shri(5, 5, 1)
        asm.label("skip_ext")
        asm.addi(7, 7, 16)
        asm.cmpi(7, 90 * 16)
        asm.br(Cond.LT, "positions")
        asm.halt()
    memory = Memory()
    fill_words(memory, DATA_BASE, lcg_values(71, 192, 512))
    return _spec("deepsjeng.s", asm.build(), memory,
                 "search evaluation with divisions")


@register("leela.s")
def leela() -> Workload:
    """Monte-Carlo playouts: LCG moves with remainder selection."""
    asm = Builder()
    with asm.func("main"):
        asm.movi(R_DATA, DATA_BASE)   # 64-point board
        asm.movi(0, 12345)            # rng state
        asm.movi(7, 0)
        asm.label("playout")
        asm.muli(0, 0, 1103515245)
        asm.addi(0, 0, 12345)
        asm.shri(1, 0, 16)
        asm.movi(2, 63)
        asm.rem(3, 1, 2)              # move = rng % 63
        asm.muli(3, 3, 8)
        asm.load(4, R_DATA, 3)        # point state
        asm.addi(4, 4, 1)
        asm.store(R_DATA, 3, 0, 4)
        asm.andi(5, 1, 15)
        asm.cmpi(5, 0)
        asm.br(Cond.NE, "no_pass")
        asm.addi(6, 6, 1)             # pass counter
        asm.label("no_pass")
        asm.addi(7, 7, 1)
        asm.cmpi(7, 300)
        asm.br(Cond.LT, "playout")
        asm.halt()
    memory = Memory()
    fill_words(memory, DATA_BASE, [0] * 64)
    return _spec("leela.s", asm.build(), memory,
                 "Monte-Carlo playouts with rem")


@register("exchange2.s")
def exchange2() -> Workload:
    """Pure nested counting loops (branch-heavy, no memory)."""
    asm = Builder()
    with asm.func("main"):
        asm.movi(5, 0)
        asm.movi(0, 0)
        asm.label("i")
        asm.movi(1, 0)
        asm.label("j")
        asm.movi(2, 0)
        asm.label("k")
        asm.add(3, 0, 1)
        asm.xor(3, 3, 2)
        asm.andi(3, 3, 7)
        asm.cmpi(3, 4)
        asm.br(Cond.GE, "no_count")
        asm.addi(5, 5, 1)
        asm.label("no_count")
        asm.addi(2, 2, 1)
        asm.cmpi(2, 9)
        asm.br(Cond.LT, "k")
        asm.addi(1, 1, 1)
        asm.cmpi(1, 9)
        asm.br(Cond.LT, "j")
        asm.addi(0, 0, 1)
        asm.cmpi(0, 9)
        asm.br(Cond.LT, "i")
        asm.halt()
    return _spec("exchange2.s", asm.build(), Memory(),
                 "nested counting loops")


@register("xz.s")
def xz() -> Workload:
    """LZ match-length scanning with data-dependent early exits."""
    asm = Builder()
    with asm.func("main"):
        asm.movi(R_DATA, DATA_BASE)   # 192-word history
        emit_warm(asm, R_DATA, 192)
        asm.movi(7, 0)
        asm.movi(5, 0)                # total match length
        asm.label("targets")
        asm.andi(0, 7, 0x3F8)         # candidate A offset
        asm.addi(1, 0, 64 * 8)        # candidate B offset
        asm.movi(6, 0)
        asm.label("match")
        asm.load(2, R_DATA, 0)
        asm.load(3, R_DATA, 1)
        asm.cmp(2, 3)
        asm.br(Cond.NE, "mismatch")
        asm.addi(5, 5, 1)
        asm.addi(0, 0, 8)
        asm.addi(1, 1, 8)
        asm.addi(6, 6, 1)
        asm.cmpi(6, 8)
        asm.br(Cond.LT, "match")
        asm.label("mismatch")
        asm.addi(7, 7, 8)
        asm.cmpi(7, 120 * 8)
        asm.br(Cond.LT, "targets")
        asm.halt()
    memory = Memory()
    values = lcg_values(81, 192, 4)
    fill_words(memory, DATA_BASE, values)
    return _spec("xz.s", asm.build(), memory,
                 "match scanning with early exits")
