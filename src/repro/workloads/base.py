"""Workload infrastructure: the registry the benchmark harness runs.

A workload is a base (uninstrumented) program plus its inputs, tagged
with the vulnerable-code class(es) it belongs to and the secure
baseline the paper compares against on it.  ProtCC instrumentation
happens at benchmark time, so one workload serves every defense
configuration.

Workloads are *synthetic stand-ins* for the paper's suites (see
DESIGN.md section 1): each reproduces the structural property that
drives the corresponding paper result — load-load dependence density,
stack-access density, transmitter mix, branch behaviour — at a few
thousand dynamic instructions so the whole evaluation grid runs in
minutes on the Python simulator.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Union

from ..arch.memory import Memory
from ..isa.program import Program

#: Conventional data-region bases shared by the kernels.
DATA_BASE = 0x0100_0000
KEY_BASE = 0x0200_0000
OUT_BASE = 0x0300_0000
TABLE_BASE = 0x0400_0000


@dataclass
class Workload:
    """One runnable benchmark."""

    name: str
    suite: str
    #: Single class name, or a function->class map for multi-class.
    classes: Union[str, Dict[str, str]]
    program: Program
    memory: Memory
    regs: Dict[int, int] = field(default_factory=dict)
    #: The most performant applicable secure baseline (Tab. V).
    baseline: str = "SPT-SB"
    description: str = ""
    #: Thread count for data-parallel (multi-core) workloads.
    threads: int = 1

    @property
    def is_multiclass(self) -> bool:
        return isinstance(self.classes, dict)


_REGISTRY: Dict[str, Callable[[], Workload]] = {}


def register(name: str):
    """Decorator: register a zero-argument workload builder."""

    def wrap(builder: Callable[[], Workload]):
        if name in _REGISTRY:
            raise ValueError(f"duplicate workload {name!r}")
        _REGISTRY[name] = functools.lru_cache(maxsize=None)(builder)
        return builder

    return wrap


def get_workload(name: str) -> Workload:
    """Build (and cache) the named workload."""
    _ensure_loaded()
    try:
        return _REGISTRY[name]()
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; known: {sorted(_REGISTRY)}"
        ) from None


def workload_names(suite: Optional[str] = None) -> List[str]:
    """All registered workload names, optionally filtered by suite."""
    _ensure_loaded()
    names = sorted(_REGISTRY)
    if suite is None:
        return names
    return [n for n in names if get_workload(n).suite == suite]


def _ensure_loaded() -> None:
    """Import all kernel modules so their registrations run."""
    from . import crypto, nginx, parsec, parsec_mt, spec, spec_fp, wasm  # noqa: F401


def fill_words(memory: Memory, base: int, values) -> None:
    for index, value in enumerate(values):
        memory.write_word(base + 8 * index, value)


def emit_warm(asm, base_reg: int, words: int, disp: int = 0) -> None:
    """Emit an architectural warm-up pass that load-touches ``words``
    words at ``base_reg + disp``.

    This plays the role of the paper's SimPoint warm-up (SVIII-A3): it
    brings the working set into the caches *and*, under ProtISA, lets
    the unprefixed touches unprotect the region's L1D bytes so the
    measured loop sees steady-state protection tags rather than
    first-touch effects.  Clobbers r0 and r7.
    """
    from ..isa.operations import Cond

    label = asm.fresh_label("warmup")
    asm.movi(7, 0)
    asm.label(label)
    asm.load(0, base_reg, 7, disp)
    asm.addi(7, 7, 8)
    asm.cmpi(7, words * 8)
    asm.br(Cond.LT, label)


def lcg_values(seed: int, count: int, modulus: int = 1 << 16) -> List[int]:
    """Deterministic pseudo-random input data."""
    values = []
    state = seed & 0xFFFFFFFF
    for _ in range(count):
        state = (state * 1103515245 + 12345) & 0x7FFFFFFF
        values.append(state % modulus)
    return values
