"""Multi-threaded PARSEC-like kernels (paper SVIII-A4).

Data-parallel in the PARSEC style: every thread runs the same binary
with its thread id in r13 and works a disjoint shard of the data space.
Per-thread progress counters share cache lines (false sharing), so the
write-invalidation traffic of the paper's directory-based coherence
shows up without introducing data races — the final memory image stays
deterministic, which the test suite checks against per-thread
sequential runs.
"""

from __future__ import annotations

from ..arch.memory import Memory
from ..isa.builder import Builder
from ..isa.operations import Cond
from ..uarch.multicore import TID_REG
from .base import DATA_BASE, Workload, fill_words, lcg_values, register

SHARD_WORDS = 96
SHARD_BYTES = SHARD_WORDS * 8
#: One cache line of per-thread counters: deliberate false sharing.
COUNTERS_BASE = DATA_BASE + 0x80000
MAX_THREADS = 8

R_SHARD, R_CTR = 8, 9


def _mt_prologue(asm: Builder) -> None:
    """Compute this thread's shard base and counter slot from r13."""
    asm.movi(R_SHARD, DATA_BASE)
    asm.muli(0, TID_REG, SHARD_BYTES)
    asm.add(R_SHARD, R_SHARD, 0)
    asm.movi(R_CTR, COUNTERS_BASE)
    asm.muli(0, TID_REG, 8)
    asm.add(R_CTR, R_CTR, 0)
    # Warm the shard.
    warm = asm.fresh_label("warm")
    asm.movi(7, 0)
    asm.label(warm)
    asm.load(0, R_SHARD, 7)
    asm.addi(7, 7, 8)
    asm.cmpi(7, SHARD_BYTES)
    asm.br(Cond.LT, warm)


def _mt_memory(seed: int) -> Memory:
    memory = Memory()
    fill_words(memory, DATA_BASE,
               lcg_values(seed, SHARD_WORDS * MAX_THREADS, 512))
    fill_words(memory, COUNTERS_BASE, [0] * MAX_THREADS)
    return memory


def _mt(name, program, memory, description) -> Workload:
    return Workload(name=name, suite="parsec-mt", classes="arch",
                    program=program, memory=memory, baseline="STT",
                    description=description, threads=4)


@register("blackscholes.mt")
def blackscholes_mt() -> Workload:
    """Per-option pricing over a thread-private shard; a shared
    progress line creates coherence traffic."""
    asm = Builder()
    with asm.func("main"):
        _mt_prologue(asm)
        asm.movi(7, 0)
        asm.movi(5, 0)
        asm.label("options")
        asm.load(0, R_SHARD, 7)
        asm.load(1, R_SHARD, 7, 8)
        asm.call("price")
        asm.add(5, 5, 0)
        asm.store(R_CTR, None, 0, 5)   # false-sharing hot line
        asm.addi(7, 7, 16)
        asm.cmpi(7, (SHARD_WORDS // 2) * 16)
        asm.br(Cond.LT, "options")
        asm.halt()
    with asm.func("price"):
        asm.push(0)
        asm.push(1)
        asm.add(2, 0, 1)
        asm.addi(3, 1, 1)
        asm.div(2, 2, 3)
        asm.pop(1)
        asm.pop(0)
        asm.sub(0, 0, 1)
        asm.add(0, 0, 2)
        asm.ret()
    return _mt("blackscholes.mt", asm.build(), _mt_memory(501),
               "sharded option pricing (call/stack heavy)")


@register("swaptions.mt")
def swaptions_mt() -> Workload:
    """Sharded path simulation with divisions."""
    asm = Builder()
    with asm.func("main"):
        _mt_prologue(asm)
        asm.movi(7, 0)
        asm.movi(5, 0)
        asm.label("paths")
        asm.andi(0, 7, (SHARD_WORDS - 1) * 8)
        asm.load(1, R_SHARD, 0)
        asm.addi(1, 1, 3)
        asm.movi(2, 7)
        asm.div(2, 1, 2)
        asm.add(5, 5, 2)
        asm.store(R_CTR, None, 0, 5)
        asm.addi(7, 7, 8)
        asm.cmpi(7, 160 * 8)
        asm.br(Cond.LT, "paths")
        asm.halt()
    return _mt("swaptions.mt", asm.build(), _mt_memory(502),
               "sharded path simulation")


@register("canneal.mt")
def canneal_mt() -> Workload:
    """Sharded annealing moves; loads feed branches (STT-sensitive)."""
    asm = Builder()
    with asm.func("main"):
        _mt_prologue(asm)
        asm.movi(0, 17)
        asm.add(0, 0, TID_REG)       # per-thread rng seed
        asm.movi(7, 0)
        asm.label("moves")
        asm.muli(0, 0, 1103515245)
        asm.addi(0, 0, 12345)
        asm.shri(1, 0, 8)
        asm.andi(1, 1, (SHARD_WORDS - 1) * 8)
        asm.load(2, R_SHARD, 1)
        asm.cmpi(2, 256)
        asm.br(Cond.GE, "reject")
        asm.addi(2, 2, 1)
        asm.store(R_SHARD, 1, 0, 2)
        asm.label("reject")
        asm.addi(7, 7, 1)
        asm.cmpi(7, 150)
        asm.br(Cond.LT, "moves")
        asm.store(R_CTR, None, 0, 7)
        asm.halt()
    return _mt("canneal.mt", asm.build(), _mt_memory(503),
               "sharded annealing moves")
