"""SPEC CPU 2017 floating-point-suite-like kernels (paper Fig. 6).

Our ISA is integer-only, so these reproduce the FP suite's *memory and
control structure* with fixed-point arithmetic: dense solver sweeps
(bwaves), long per-point arithmetic chains (cactuBSSN), FDTD stencils
(fotonik3d), lattice streaming (lbm), neighbour-list force loops (nab),
ocean red-black relaxation (pop2), and flag-conditional atmospheric
updates (wrf).
"""

from __future__ import annotations

from ..arch.memory import Memory
from ..isa.builder import Builder
from ..isa.operations import Cond
from .base import DATA_BASE, Workload, emit_warm, fill_words, lcg_values, register

R_DATA, R_AUX = 8, 9
AUX_BASE = DATA_BASE + 0x10000


def _fp(name, program, memory, description) -> Workload:
    return Workload(name=name, suite="spec2017", classes="arch",
                    program=program, memory=memory, baseline="STT",
                    description=description)


@register("bwaves.s")
def bwaves() -> Workload:
    """Blocked solver sweep: row updates with a leading-element divide."""
    asm = Builder()
    with asm.func("main"):
        asm.movi(R_DATA, DATA_BASE)   # 16x16 matrix
        emit_warm(asm, R_DATA, 256)
        asm.movi(6, 0)                # row
        asm.label("rows")
        asm.muli(1, 6, 128)           # row base offset
        asm.load(2, R_DATA, 1)        # pivot
        asm.addi(2, 2, 3)
        asm.movi(5, 0)                # column
        asm.label("cols")
        asm.add(0, 1, 5)
        asm.load(3, R_DATA, 0)
        asm.muli(3, 3, 6)
        asm.div(3, 3, 2)              # scale by the pivot
        asm.store(R_DATA, 0, 0, 3)
        asm.addi(5, 5, 8)
        asm.cmpi(5, 128)
        asm.br(Cond.LT, "cols")
        asm.addi(6, 6, 1)
        asm.cmpi(6, 16)
        asm.br(Cond.LT, "rows")
        asm.halt()
    memory = Memory()
    fill_words(memory, DATA_BASE, lcg_values(601, 256, 256))
    return _fp("bwaves.s", asm.build(), memory,
               "blocked solver sweeps with pivot divides")


@register("cactuBSSN.s")
def cactubssn() -> Workload:
    """PDE update: a long independent arithmetic chain per grid point
    (very high ILP, few branches)."""
    asm = Builder()
    with asm.func("main"):
        asm.movi(R_DATA, DATA_BASE)
        emit_warm(asm, R_DATA, 200)
        asm.movi(7, 0)
        asm.label("points")
        asm.load(0, R_DATA, 7)
        asm.load(1, R_DATA, 7, 8)
        asm.mul(2, 0, 1)
        asm.add(3, 0, 1)
        asm.mul(4, 2, 3)
        asm.shri(4, 4, 3)
        asm.xor(5, 4, 2)
        asm.add(5, 5, 3)
        asm.mul(6, 5, 5)
        asm.shri(6, 6, 7)
        asm.add(0, 6, 4)
        asm.andi(0, 0, 0xFFFF)
        asm.store(R_DATA, 7, 0, 0)
        asm.addi(7, 7, 8)
        asm.cmpi(7, 190 * 8)
        asm.br(Cond.LT, "points")
        asm.halt()
    memory = Memory()
    fill_words(memory, DATA_BASE, lcg_values(611, 200, 1 << 12))
    return _fp("cactuBSSN.s", asm.build(), memory,
               "long arithmetic chains per grid point")


@register("fotonik3d.s")
def fotonik3d() -> Workload:
    """FDTD field update: stencil with wrapped (periodic) boundaries."""
    asm = Builder()
    with asm.func("main"):
        asm.movi(R_DATA, DATA_BASE)   # E field (128 words)
        asm.movi(R_AUX, AUX_BASE)     # H field (128 words)
        emit_warm(asm, R_DATA, 128)
        emit_warm(asm, R_AUX, 128)
        asm.movi(6, 0)                # timestep
        asm.label("steps")
        asm.movi(7, 0)
        asm.label("cells")
        asm.addi(0, 7, 8)
        asm.andi(0, 0, 127 * 8)       # periodic neighbour
        asm.load(1, R_AUX, 0)
        asm.load(2, R_AUX, 7)
        asm.sub(1, 1, 2)              # curl H
        asm.load(3, R_DATA, 7)
        asm.add(3, 3, 1)
        asm.andi(3, 3, 0xFFFF)
        asm.store(R_DATA, 7, 0, 3)
        asm.addi(7, 7, 8)
        asm.cmpi(7, 128 * 8)
        asm.br(Cond.LT, "cells")
        asm.addi(6, 6, 1)
        asm.cmpi(6, 2)
        asm.br(Cond.LT, "steps")
        asm.halt()
    memory = Memory()
    fill_words(memory, DATA_BASE, lcg_values(621, 128, 1 << 10))
    fill_words(memory, AUX_BASE, lcg_values(622, 128, 1 << 10))
    return _fp("fotonik3d.s", asm.build(), memory,
               "FDTD stencil with periodic wrap")


@register("lbm.s")
def lbm_s() -> Workload:
    """Two-array lattice streaming (collide-and-stream)."""
    asm = Builder()
    with asm.func("main"):
        asm.movi(R_DATA, DATA_BASE)   # source distribution
        asm.movi(R_AUX, AUX_BASE)     # destination distribution
        emit_warm(asm, R_DATA, 192)
        asm.movi(7, 0)
        asm.label("sites")
        asm.load(0, R_DATA, 7)
        asm.addi(1, 7, 24)
        asm.andi(1, 1, 191 * 8)
        asm.load(2, R_DATA, 1)        # streamed-in population
        asm.add(0, 0, 2)
        asm.shri(0, 0, 1)             # collision relaxation
        asm.store(R_AUX, 7, 0, 0)
        asm.addi(7, 7, 8)
        asm.cmpi(7, 190 * 8)
        asm.br(Cond.LT, "sites")
        asm.halt()
    memory = Memory()
    fill_words(memory, DATA_BASE, lcg_values(631, 192, 1 << 10))
    return _fp("lbm.s", asm.build(), memory,
               "collide-and-stream over two lattices")


@register("nab.s")
def nab() -> Workload:
    """Molecular force loop through a neighbour list (indirect loads)."""
    asm = Builder()
    with asm.func("main"):
        asm.movi(R_DATA, DATA_BASE)   # positions (128 words)
        asm.movi(R_AUX, AUX_BASE)     # neighbour list (160 indices)
        emit_warm(asm, R_DATA, 128)
        emit_warm(asm, R_AUX, 160)
        asm.movi(7, 0)
        asm.movi(5, 0)                # energy accumulator
        asm.label("pairs")
        asm.load(0, R_AUX, 7)         # neighbour index (load -> load)
        asm.andi(0, 0, 127 * 8)
        asm.load(1, R_DATA, 0)        # neighbour position
        asm.andi(2, 7, 127 * 8)
        asm.load(3, R_DATA, 2)        # own position
        asm.sub(4, 1, 3)
        asm.mul(4, 4, 4)              # r^2
        asm.addi(4, 4, 1)
        asm.movi(6, 1 << 20)
        asm.div(6, 6, 4)              # Lennard-Jones-ish 1/r^2 term
        asm.add(5, 5, 6)
        asm.addi(7, 7, 8)
        asm.cmpi(7, 150 * 8)
        asm.br(Cond.LT, "pairs")
        asm.halt()
    memory = Memory()
    fill_words(memory, DATA_BASE, lcg_values(641, 128, 1 << 10))
    fill_words(memory, AUX_BASE,
               [v * 8 % 1024 for v in lcg_values(642, 160, 128)])
    return _fp("nab.s", asm.build(), memory,
               "neighbour-list force loop with divides")


@register("pop2.s")
def pop2() -> Workload:
    """Ocean red-black relaxation: alternating strided half-sweeps."""
    asm = Builder()
    with asm.func("main"):
        asm.movi(R_DATA, DATA_BASE)   # 192-word ocean field
        emit_warm(asm, R_DATA, 192)
        asm.movi(6, 0)                # colour (0 = red, 8 = black)
        asm.label("colours")
        asm.mov(7, 6)
        asm.label("sweep")
        asm.load(0, R_DATA, 7)
        asm.addi(1, 7, 8)
        asm.andi(1, 1, 191 * 8)
        asm.load(2, R_DATA, 1)
        asm.add(0, 0, 2)
        asm.shri(0, 0, 1)
        asm.store(R_DATA, 7, 0, 0)
        asm.addi(7, 7, 16)            # stride 2: same-colour cells
        asm.cmpi(7, 190 * 8)
        asm.br(Cond.LT, "sweep")
        asm.addi(6, 6, 8)
        asm.cmpi(6, 16)
        asm.br(Cond.LT, "colours")
        asm.halt()
    memory = Memory()
    fill_words(memory, DATA_BASE, lcg_values(651, 192, 1 << 10))
    return _fp("pop2.s", asm.build(), memory,
               "red-black relaxation half-sweeps")


@register("wrf.s")
def wrf() -> Workload:
    """Atmospheric update with per-cell condition flags (data-dependent
    branches over mostly-stable weather regimes)."""
    asm = Builder()
    with asm.func("main"):
        asm.movi(R_DATA, DATA_BASE)   # 160 cells: (flags, value) pairs
        emit_warm(asm, R_DATA, 320)
        asm.movi(7, 0)
        asm.label("cells")
        asm.load(0, R_DATA, 7)        # regime flag
        asm.load(1, R_DATA, 7, 8)     # state value
        asm.andi(0, 0, 7)
        asm.cmpi(0, 6)
        asm.br(Cond.GE, "convective") # rare regime
        asm.addi(1, 1, 3)             # stable update
        asm.jmp("stored")
        asm.label("convective")
        asm.muli(1, 1, 3)
        asm.shri(1, 1, 1)
        asm.label("stored")
        asm.andi(1, 1, 0xFFFF)
        asm.store(R_DATA, 7, 8, 1)
        asm.addi(7, 7, 16)
        asm.cmpi(7, 158 * 16)
        asm.br(Cond.LT, "cells")
        asm.halt()
    memory = Memory()
    values = []
    for index, v in enumerate(lcg_values(661, 320, 1 << 10)):
        if index % 2 == 0:
            values.append(0 if v % 8 else 6)   # ~87% stable regime
        else:
            values.append(v)
    fill_words(memory, DATA_BASE, values)
    return _fp("wrf.s", asm.build(), memory,
               "flag-conditional atmospheric updates")
