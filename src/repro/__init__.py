"""Reproduction of "Protean: A Programmable Spectre Defense" (HPCA 2026).

Subpackages:

* :mod:`repro.isa`       — the PROT-prefixed micro-op ISA and tooling.
* :mod:`repro.arch`      — sequential reference machine + observer modes.
* :mod:`repro.uarch`     — the speculative out-of-order core.
* :mod:`repro.protisa`   — ProtISA's microarchitectural tag support.
* :mod:`repro.defenses`  — protection mechanisms (baselines + Protean).
* :mod:`repro.protcc`    — the ProtCC compiler passes.
* :mod:`repro.contracts` — security contracts and violation checking.
* :mod:`repro.fuzzing`   — the AMuLeT*-style fuzzer.
* :mod:`repro.forensics` — leak witnesses, minimization, explanation.
* :mod:`repro.workloads` — the synthetic benchmark suites.
* :mod:`repro.bench`     — the experiment harness (paper tables/figures).
* :mod:`repro.metrics`   — metrics registry, host profiler, run ledger.

Run ``python -m repro --help`` for the artifact-style command line.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
