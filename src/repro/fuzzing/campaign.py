"""AMuLeT*-style fuzzing campaigns (paper SVII-B2).

A campaign tests one (hardware configuration, ProtCC instrumentation,
security contract) triple: it generates random programs, instruments
them, and checks contract-equivalent input pairs for microarchitectural
distinguishability under one or more adversary models.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, List, Tuple

from ..contracts.adversary import ALL_MODELS, AdversaryModel
from ..contracts.checker import (
    CheckOutcome,
    Contract,
    Verdict,
    check_contract_pair,
)
from ..protcc import compile_program
from ..uarch.config import CoreConfig, P_CORE
from .generator import generate_program
from .inputs import generate_input, mutate_input


@dataclass
class CampaignConfig:
    """One (defense, instrumentation, contract) fuzzing cell."""

    defense_factory: Callable[[], object]
    contract: Contract
    #: ProtCC class used to instrument test programs ("arch" leaves
    #: binaries unmodified; "rand" random-prefixes them).
    instrumentation: str = "arch"
    n_programs: int = 10
    pairs_per_program: int = 4
    program_size: int = 40
    seed: int = 0
    core: CoreConfig = P_CORE
    adversaries: Tuple[AdversaryModel, ...] = ALL_MODELS
    stop_on_first_violation: bool = False


@dataclass
class CampaignResult:
    tests: int = 0
    violations: int = 0
    false_positives: int = 0
    invalid_pairs: int = 0
    #: (program seed, pair index, adversary) of each violation.
    violation_sites: List[Tuple[int, int, str]] = field(default_factory=list)

    def summary(self) -> str:
        return (f"{self.violations} violations ({self.false_positives} FP) "
                f"in {self.tests} tests "
                f"({self.invalid_pairs} pairs rejected)")


def run_campaign(config: CampaignConfig) -> CampaignResult:
    """Run one fuzzing cell to completion (or first violation)."""
    result = CampaignResult()
    master = random.Random(config.seed)
    for program_index in range(config.n_programs):
        program_seed = master.randrange(1 << 30)
        program = generate_program(program_seed, config.program_size)
        compiled = compile_program(program, config.instrumentation,
                                   rng=random.Random(program_seed ^ 0xC0DE))
        public_defs = (compiled.public_def_pcs
                       if config.contract is Contract.CTS_SEQ else None)
        input_rng = random.Random(program_seed ^ 0xF00D)
        base_input = generate_input(input_rng)
        for pair_index in range(config.pairs_per_program):
            mutated = mutate_input(input_rng, base_input,
                                   public_flips=pair_index % 3 == 2)
            outcome = check_contract_pair(
                compiled.program, config.defense_factory, config.contract,
                base_input, mutated, config.core,
                adversaries=config.adversaries,
                public_def_pcs=public_defs)
            _tally(result, outcome, program_seed, pair_index)
            if (config.stop_on_first_violation
                    and outcome.verdict is Verdict.VIOLATION):
                return result
    return result


def _tally(result: CampaignResult, outcome: CheckOutcome,
           program_seed: int, pair_index: int) -> None:
    if outcome.verdict is Verdict.INVALID_PAIR:
        result.invalid_pairs += 1
        return
    result.tests += 1
    if outcome.verdict is Verdict.VIOLATION:
        result.violations += 1
        adversary = outcome.adversary.value if outcome.adversary else "?"
        result.violation_sites.append((program_seed, pair_index, adversary))
    elif outcome.verdict is Verdict.FALSE_POSITIVE:
        result.false_positives += 1
