"""AMuLeT*-style fuzzing campaigns (paper SVII-B2).

A campaign tests one (hardware configuration, ProtCC instrumentation,
security contract) triple: it generates random programs, instruments
them, and checks contract-equivalent input pairs for microarchitectural
distinguishability under one or more adversary models.

Programs are independent test units, so a campaign parallelizes at
program granularity (``jobs=N``): every program's RNG streams are
derived from a per-program seed drawn from the master RNG *before*
fan-out, and per-program tallies are merged back in program order, so
the result is bit-identical for any job count.  That invariant extends
to forensics: witnesses are captured inside the per-program unit as
plain serializable dicts and merged in the same order.
"""

from __future__ import annotations

import dataclasses
import logging
import os
import pickle
import random
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..contracts.adversary import ALL_MODELS, AdversaryModel
from ..metrics.registry import get_registry
from ..metrics.spans import SpanRecorder, get_recorder, set_recorder
from ..contracts.checker import (
    CheckOutcome,
    Contract,
    InvalidReason,
    Verdict,
    check_contract_pair,
)
from ..protcc import compile_program, mitigate_program
from ..uarch.config import CoreConfig, P_CORE
from .generator import generate_program
from .inputs import generate_input, mutate_input

logger = logging.getLogger(__name__)


@dataclass
class CampaignConfig:
    """One (defense, instrumentation, contract) fuzzing cell."""

    defense_factory: Callable[[], object]
    contract: Contract
    #: ProtCC class used to instrument test programs ("arch" leaves
    #: binaries unmodified; "rand" random-prefixes them).
    instrumentation: str = "arch"
    #: Software mitigation pass (``repro.protcc.MITIGATIONS``) applied
    #: to the instrumented binary before fuzzing — the "is this pass
    #: contract-secure on our core?" experiment.  Incompatible with the
    #: CTS-SEQ contract (the pass would move the publicly-typed
    #: definition PCs the observer needs).
    mitigation: Optional[str] = None
    n_programs: int = 10
    pairs_per_program: int = 4
    program_size: int = 40
    seed: int = 0
    core: CoreConfig = P_CORE
    adversaries: Tuple[AdversaryModel, ...] = ALL_MODELS
    stop_on_first_violation: bool = False
    #: Harness name from ``repro.bench.runner.DEFENSES``.  When set,
    #: worker processes rebuild the factory from the name, so the cell
    #: parallelizes even if ``defense_factory`` itself (e.g. a lambda)
    #: cannot be pickled.
    defense_name: Optional[str] = None
    #: Capture a serializable ``LeakWitness`` dict for every violation
    #: (``CampaignResult.witnesses``).  Deterministic and merge-ordered,
    #: so serial and parallel runs stay bit-identical.
    collect_witnesses: bool = False


@dataclass
class CampaignResult:
    tests: int = 0
    violations: int = 0
    false_positives: int = 0
    invalid_pairs: int = 0
    #: ``invalid_pairs`` broken down by rejection reason.
    invalid_nonterminating: int = 0
    invalid_distinguishable: int = 0
    invalid_hw_timeout: int = 0
    #: (program seed, pair index, adversary) of each violation.
    violation_sites: List[Tuple[int, int, str]] = field(default_factory=list)
    #: ``LeakWitness.to_dict()`` payloads, one per violation, in
    #: violation-site order (only when ``collect_witnesses`` is set).
    witnesses: List[Dict] = field(default_factory=list)
    #: Telemetry only (never part of result identity): seconds spent.
    wall_time: float = 0.0

    def summary(self) -> str:
        rejected = f"{self.invalid_pairs} pairs rejected"
        if self.invalid_pairs:
            rejected += (f": {self.invalid_nonterminating} nonterminating, "
                         f"{self.invalid_distinguishable} "
                         f"contract-distinguishable, "
                         f"{self.invalid_hw_timeout} hw-timeout")
        return (f"{self.violations} violations ({self.false_positives} FP) "
                f"in {self.tests} tests ({rejected})")

    def to_dict(self) -> Dict:
        """Spool wire format.  ``wall_time`` is telemetry, not result
        identity, so it is excluded — two workers racing the same
        program seed must produce byte-identical payloads."""
        payload = dataclasses.asdict(self)
        del payload["wall_time"]
        payload["violation_sites"] = [list(site)
                                      for site in self.violation_sites]
        return payload

    @classmethod
    def from_dict(cls, payload: Dict) -> "CampaignResult":
        payload = dict(payload)
        payload["violation_sites"] = [tuple(site) for site
                                      in payload.get("violation_sites", [])]
        return cls(**payload)

    def merge(self, other: "CampaignResult") -> None:
        self.tests += other.tests
        self.violations += other.violations
        self.false_positives += other.false_positives
        self.invalid_pairs += other.invalid_pairs
        self.invalid_nonterminating += other.invalid_nonterminating
        self.invalid_distinguishable += other.invalid_distinguishable
        self.invalid_hw_timeout += other.invalid_hw_timeout
        self.violation_sites.extend(other.violation_sites)
        self.witnesses.extend(other.witnesses)
        self.wall_time += other.wall_time


def _resolve_factory(config: CampaignConfig) -> Callable[[], object]:
    if config.defense_factory is not None:
        return config.defense_factory
    from ..bench.runner import DEFENSES

    return DEFENSES[config.defense_name]


def _defense_name(config: CampaignConfig) -> Optional[str]:
    """The harness name witnesses record: the configured name, or a
    reverse lookup of the factory in the bench registry."""
    if config.defense_name is not None:
        return config.defense_name
    if config.defense_factory is not None:
        from ..bench.runner import DEFENSES

        for name, factory in DEFENSES.items():
            if factory is config.defense_factory:
                return name
    return None


def _program_seeds(config: CampaignConfig) -> List[int]:
    """Per-program seeds, drawn from the master RNG up front so fan-out
    order cannot perturb them."""
    master = random.Random(config.seed)
    return [master.randrange(1 << 30) for _ in range(config.n_programs)]


def _run_program(config: CampaignConfig, program_seed: int,
                 stop_on_first_violation: bool = False) -> CampaignResult:
    """Fuzz one generated program: the parallel unit of work."""
    start = time.perf_counter()
    result = CampaignResult()
    defense_factory = _resolve_factory(config)
    defense_name = _defense_name(config) if config.collect_witnesses else None
    if config.collect_witnesses and defense_name is None:
        logger.warning(
            "collect_witnesses is set but the defense factory has no "
            "registry name; witnesses will not be replayable by name")
    program = generate_program(program_seed, config.program_size)
    compiled = compile_program(program, config.instrumentation,
                               rng=random.Random(program_seed ^ 0xC0DE))
    binary = compiled.program
    if config.mitigation:
        if config.contract is Contract.CTS_SEQ:
            raise ValueError(
                "software mitigations move instruction positions, so "
                "they cannot be fuzzed under the CTS-SEQ contract "
                "(stale public-definition PCs)")
        binary = mitigate_program(binary, config.mitigation).program
    public_defs = (compiled.public_def_pcs
                   if config.contract is Contract.CTS_SEQ else None)
    input_rng = random.Random(program_seed ^ 0xF00D)
    base_input = generate_input(input_rng)
    for pair_index in range(config.pairs_per_program):
        mutated = mutate_input(input_rng, base_input,
                               public_flips=pair_index % 3 == 2)
        outcome = check_contract_pair(
            binary, defense_factory, config.contract,
            base_input, mutated, config.core,
            adversaries=config.adversaries,
            public_def_pcs=public_defs)
        _tally(result, outcome, program_seed, pair_index)
        if config.collect_witnesses and outcome.verdict is Verdict.VIOLATION:
            from ..forensics.witness import capture_witness

            witness = capture_witness(
                binary, config.contract, base_input, mutated,
                outcome, defense=defense_name, config=config.core,
                instrumentation=config.instrumentation,
                program_seed=program_seed, pair_index=pair_index,
                public_def_pcs=public_defs)
            if config.mitigation:
                witness.meta["mitigation"] = config.mitigation
            result.witnesses.append(witness.to_dict())
        if (stop_on_first_violation
                and outcome.verdict is Verdict.VIOLATION):
            break
    result.wall_time = time.perf_counter() - start
    return result


def _run_program_traced(config: CampaignConfig, program_seed: int,
                        trace_ctx: Optional[Dict]
                        ) -> Tuple[CampaignResult, List[Dict]]:
    """Pool-worker variant of :func:`_run_program` that records the
    program cell as a ``fuzz.program`` span parented under the parent
    process's campaign span, returning ``(result, span_dicts)`` for the
    parent to adopt.  Only mapped when the parent has a recorder
    attached — the untraced pool path keeps calling ``_run_program``
    directly."""
    recorder = SpanRecorder()
    previous = set_recorder(recorder)
    try:
        with recorder.span("fuzz.program",
                           attrs={"program_seed": program_seed},
                           parent=trace_ctx):
            partial = _run_program(config, program_seed)
    finally:
        set_recorder(previous)
    return partial, recorder.to_dicts()


def _picklable_config(config: CampaignConfig) -> Optional[CampaignConfig]:
    """A copy of ``config`` safe to ship to worker processes, or None
    if the cell cannot be parallelized (unpicklable factory, no name)."""
    if config.defense_name is not None:
        config = dataclasses.replace(config, defense_factory=None)
    try:
        pickle.dumps(config)
        return config
    except Exception:
        return None


def resolve_campaign_jobs(jobs: Optional[int] = None) -> int:
    """``jobs`` argument > ``REPRO_JOBS`` env > ``os.cpu_count()``.

    Delegates to the bench executor's resolver so both entry points
    share one warn-and-fallback policy for malformed ``REPRO_JOBS``."""
    from ..bench.executor import resolve_jobs

    return resolve_jobs(jobs)


#: Core configurations the fabric can ship by name (fuzz payloads are
#: JSON; a bespoke ``CoreConfig`` keeps the cell on the local path).
_CORES_BY_NAME = {P_CORE.name: P_CORE}


def _register_fabric_cores() -> Dict[str, CoreConfig]:
    from ..uarch.config import E_CORE

    _CORES_BY_NAME.setdefault(E_CORE.name, E_CORE)
    return _CORES_BY_NAME


def campaign_job_payload(config: CampaignConfig,
                         program_seed: int) -> Optional[Dict]:
    """The spool wire format for one per-program fuzzing unit, or None
    when the cell cannot be shipped as JSON (anonymous defense factory,
    bespoke core config) and must stay on the local path."""
    name = _defense_name(config)
    if name is None:
        return None
    cores = _register_fabric_cores()
    core = cores.get(config.core.name)
    if core is None or core != config.core:
        return None
    return {
        "kind_version": 1,
        "defense": name,
        "contract": config.contract.value,
        "instrumentation": config.instrumentation,
        "mitigation": config.mitigation,
        "pairs_per_program": config.pairs_per_program,
        "program_size": config.program_size,
        "core": config.core.name,
        "adversaries": [model.value for model in config.adversaries],
        "collect_witnesses": config.collect_witnesses,
        "program_seed": program_seed,
    }


def run_campaign_job(payload: Dict) -> Dict:
    """Execute one spooled per-program unit (the fabric worker entry
    point): rebuild the cell from the wire payload and run exactly the
    serial per-program function, so fabric results merge bit-identical
    to a local run.  With a span recorder attached (a fabric worker
    tracing the job), the cell records as a ``fuzz.program`` span under
    the worker's job span."""
    cores = _register_fabric_cores()
    config = CampaignConfig(
        defense_factory=None,
        defense_name=payload["defense"],
        contract=Contract(payload["contract"]),
        instrumentation=payload["instrumentation"],
        mitigation=payload.get("mitigation"),
        n_programs=1,
        pairs_per_program=payload["pairs_per_program"],
        program_size=payload["program_size"],
        core=cores[payload["core"]],
        adversaries=tuple(AdversaryModel(value)
                          for value in payload["adversaries"]),
        collect_witnesses=payload["collect_witnesses"],
    )
    recorder = get_recorder()
    if recorder is None:
        return _run_program(config, payload["program_seed"]).to_dict()
    with recorder.span("fuzz.program",
                       attrs={"program_seed": payload["program_seed"]}):
        return _run_program(config, payload["program_seed"]).to_dict()


def campaign_job(payload: Dict):
    """``(key, kind, payload)`` spool entry for one per-program unit.
    Keyed by payload content + code version, so reruns of the same cell
    dedup and a code change respools everything."""
    from ..bench.executor import _hash, canonical_json, code_version_hash
    from ..bench.fabric.broker import KIND_FUZZ

    key = _hash(canonical_json(payload).encode(),
                code_version_hash().encode())
    return key, KIND_FUZZ, payload


def run_campaign(
    config: CampaignConfig,
    jobs: Optional[int] = None,
    on_program: Optional[Callable[[int, CampaignResult], None]] = None,
    fabric: Optional[str] = None,
) -> CampaignResult:
    """Run one fuzzing cell to completion (or first violation).

    With ``jobs > 1`` programs fan out over a process pool; results are
    merged in program order and are bit-identical to a serial run.
    ``stop_on_first_violation`` cells stay serial so "first" keeps its
    sequential meaning.

    ``on_program(program_seed, partial_result)`` is invoked in the
    parent process, in program order, as each per-program result is
    merged — the campaign telemetry (JSONL event log) hook.

    With ``fabric`` (or ``REPRO_FABRIC``) set to a spool directory,
    per-program units ship through the campaign fabric instead of a
    local pool; cells that cannot be serialized fall back locally.
    """
    seeds = _program_seeds(config)
    jobs = resolve_campaign_jobs(jobs)
    if fabric is None:
        fabric = os.environ.get("REPRO_FABRIC") or None
    logger.info(
        "campaign start: contract=%s instrumentation=%s defense=%s "
        "programs=%d pairs=%d jobs=%d", config.contract.value,
        config.instrumentation, _defense_name(config) or "<anonymous>",
        config.n_programs, config.pairs_per_program, jobs)
    started = time.perf_counter()
    recorder = get_recorder()
    campaign_span = None
    if recorder is not None:
        campaign_span = recorder.start(
            "fuzz.campaign",
            attrs={"contract": config.contract.value,
                   "instrumentation": config.instrumentation,
                   "defense": _defense_name(config) or "<anonymous>",
                   "programs": config.n_programs},
            push=True)
    try:
        result = None
        if fabric and not config.stop_on_first_violation:
            result = _execute_campaign_fabric(config, seeds, fabric,
                                              on_program)
        if result is None:
            result = _execute_campaign(config, seeds, jobs, on_program)
    finally:
        if campaign_span is not None:
            attrs = {}
            if result is not None:
                attrs = {"tests": result.tests,
                         "violations": result.violations}
            recorder.finish(campaign_span, **attrs)
    _record_campaign_metrics(config, result, seeds,
                             time.perf_counter() - started)
    logger.info("campaign done: %s", result.summary())
    return result


def _execute_campaign_fabric(
    config: CampaignConfig,
    seeds: List[int],
    fabric: str,
    on_program: Optional[Callable[[int, CampaignResult], None]],
) -> Optional[CampaignResult]:
    """Shard the campaign's per-program units through the spool at
    ``fabric``; returns None (caller falls back to the local path) when
    the cell cannot be serialized."""
    import json

    from ..bench.fabric.broker import Broker

    payloads = [campaign_job_payload(config, seed) for seed in seeds]
    if any(payload is None for payload in payloads):
        logger.warning(
            "cell cannot be shipped through the fabric (anonymous "
            "defense factory or bespoke core); running locally")
        return None
    registry = get_registry()
    entries = [campaign_job(payload) for payload in payloads]
    recorder = get_recorder()
    seed_spans = {}
    traces = None
    if recorder is not None:
        for seed, (key, _, _) in zip(seeds, entries):
            seed_spans[seed] = recorder.start(
                "fuzz.program-unit",
                attrs={"program_seed": seed, "fabric": str(fabric)})
        traces = {key: seed_spans[seed].context()
                  for seed, (key, _, _) in zip(seeds, entries)}
    with Broker(fabric) as broker:
        metrics_dir = broker.spool.metrics_dir
        if recorder is None:
            broker.submit_jobs(entries, registry=registry)
            broker.wait(registry=registry)
            texts = broker.collect([key for key, _, _ in entries])
        else:
            with recorder.span("fabric.submit"):
                broker.submit_jobs(entries, registry=registry,
                                   traces=traces)
            with recorder.span("fabric.wait",
                               attrs={"jobs": len(entries)}):
                broker.wait(registry=registry)
            with recorder.span("fabric.merge"):
                texts = broker.collect([key for key, _, _ in entries])
        clock_offsets = dict(broker.clock_offsets)
    result = CampaignResult()
    for seed, (key, _, _) in zip(seeds, entries):
        partial = CampaignResult.from_dict(json.loads(texts[key]))
        result.merge(partial)
        if on_program is not None:
            on_program(seed, partial)
    if recorder is not None:
        for seed in seeds:
            recorder.finish(seed_spans[seed])
        recorder.write_shard(metrics_dir, clock_offsets=clock_offsets)
    if registry is not None:
        registry.counter("fabric.collected").inc(len(entries))
    return result


def _execute_campaign(
    config: CampaignConfig,
    seeds: List[int],
    jobs: int,
    on_program: Optional[Callable[[int, CampaignResult], None]],
) -> CampaignResult:
    recorder = get_recorder()
    if jobs > 1 and len(seeds) > 1 and not config.stop_on_first_violation:
        shipped = _picklable_config(config)
        if shipped is not None:
            result = CampaignResult()
            workers = min(jobs, len(seeds))
            with ProcessPoolExecutor(max_workers=workers) as pool:
                if recorder is None:
                    merged = zip(seeds, pool.map(_run_program,
                                                 [shipped] * len(seeds),
                                                 seeds))
                    for seed, partial in merged:
                        result.merge(partial)
                        if on_program is not None:
                            on_program(seed, partial)
                else:
                    ctx = recorder.context()
                    outcomes = pool.map(_run_program_traced,
                                        [shipped] * len(seeds), seeds,
                                        [ctx] * len(seeds))
                    for seed, (partial, payloads) in zip(seeds, outcomes):
                        recorder.adopt(payloads)
                        result.merge(partial)
                        if on_program is not None:
                            on_program(seed, partial)
            return result
        logger.info("cell is not picklable; falling back to a serial run")

    result = CampaignResult()
    for program_seed in seeds:
        if recorder is None:
            partial = _run_program(config, program_seed,
                                   config.stop_on_first_violation)
        else:
            with recorder.span("fuzz.program",
                               attrs={"program_seed": program_seed}):
                partial = _run_program(config, program_seed,
                                       config.stop_on_first_violation)
        result.merge(partial)
        if on_program is not None:
            on_program(program_seed, partial)
        if (config.stop_on_first_violation and result.violations):
            break
    return result


def _record_campaign_metrics(config: CampaignConfig,
                             result: CampaignResult,
                             seeds: List[int], wall_s: float) -> None:
    """Publish campaign throughput into the attached metrics registry
    (one ``is not None`` check per campaign; telemetry only — never
    part of result identity)."""
    registry = get_registry()
    if registry is None:
        return
    checks = result.tests + result.invalid_pairs
    counter = registry.counter
    counter("fuzz.campaigns").inc()
    counter("fuzz.programs").inc(len(seeds))
    counter("fuzz.checks").inc(checks)
    counter("fuzz.violations").inc(result.violations)
    counter("fuzz.false_positives").inc(result.false_positives)
    counter("fuzz.invalid_pairs").inc(result.invalid_pairs)
    counter("fuzz.witnesses").inc(len(result.witnesses))
    registry.timer("fuzz.campaign_seconds").observe(wall_s)
    if wall_s > 0:
        registry.gauge("fuzz.programs_per_sec").set(len(seeds) / wall_s)
        registry.gauge("fuzz.checks_per_sec").set(checks / wall_s)


def _tally(result: CampaignResult, outcome: CheckOutcome,
           program_seed: int, pair_index: int) -> None:
    if outcome.verdict is Verdict.INVALID_PAIR:
        result.invalid_pairs += 1
        if outcome.invalid_reason is InvalidReason.NONTERMINATING:
            result.invalid_nonterminating += 1
        elif outcome.invalid_reason is InvalidReason.DISTINGUISHABLE:
            result.invalid_distinguishable += 1
        elif outcome.invalid_reason is InvalidReason.HW_TIMEOUT:
            result.invalid_hw_timeout += 1
        return
    result.tests += 1
    if outcome.verdict is Verdict.VIOLATION:
        result.violations += 1
        adversary = outcome.adversary.value if outcome.adversary else "?"
        result.violation_sites.append((program_seed, pair_index, adversary))
    elif outcome.verdict is Verdict.FALSE_POSITIVE:
        result.false_positives += 1
