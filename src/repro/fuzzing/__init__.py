"""repro.fuzzing — the AMuLeT*-style security fuzzer (paper SVII-B):
random program/input generation and campaign execution."""

from .campaign import CampaignConfig, CampaignResult, run_campaign
from .generator import (
    COLD_BASE,
    HIDDEN_BASE,
    HIDDEN_WORDS,
    PROBE_BASE,
    PUBLIC_BASE,
    PUBLIC_WORDS,
    generate_program,
)
from .inputs import generate_input, mutate_input

__all__ = [
    "CampaignConfig", "CampaignResult", "run_campaign",
    "COLD_BASE", "HIDDEN_BASE", "HIDDEN_WORDS", "PROBE_BASE",
    "PUBLIC_BASE", "PUBLIC_WORDS", "generate_program",
    "generate_input", "mutate_input",
]
