"""Random test-program generation (AMuLeT*'s llvm-stress-style
generator, paper SVII-B1a).

Programs are guaranteed to terminate: loops are counted with fixed trip
counts, branches otherwise only skip forward, and calls target
non-recursive leaf functions.  Memory accesses aim at fixed regions:

* ``PUBLIC``  — architecturally read/written by the program,
* ``HIDDEN``  — reachable only by *transient* (wrong-path) code: this is
  where secrets live for contract testing,
* ``COLD``    — never-written lines used to delay branch resolution,
* ``PROBE``   — a large span transient gadgets index secret-dependently
  (the attacker's probe array).

Besides uniform instruction soup, the generator injects Spectre-shaped
gadgets (bounds-check bypass, transient division, nested tainted
branches) so that unsafe hardware actually exhibits violations — random
straight-line code alone leaks far too rarely to validate defenses.
"""

from __future__ import annotations

import random
from typing import List

from ..isa.builder import Builder
from ..isa.operations import Cond
from ..isa.program import Program

PUBLIC_BASE = 0x10000
PUBLIC_WORDS = 64
HIDDEN_BASE = 0x18000
HIDDEN_WORDS = 32
COLD_BASE = 0x30000
PROBE_BASE = 0x40000

#: Scratch data registers the generator plays with (r7 is reserved
#: as the loop counter so random writes cannot break termination).
SCRATCH = tuple(range(7))
#: Pointer registers (set up by the prologue).
R_PUBLIC, R_PROBE, R_HIDDEN = 8, 9, 10


class _Generator:
    def __init__(self, rng: random.Random, size: int) -> None:
        self.rng = rng
        self.asm = Builder()
        self.size = size
        self.cold_cursor = COLD_BASE
        self.leaf_names: List[str] = []

    # -- helpers -----------------------------------------------------------

    def reg(self) -> int:
        return self.rng.choice(SCRATCH)

    def fresh_cold_addr(self) -> int:
        addr = self.cold_cursor
        self.cold_cursor += 0x1000  # fresh line and page every time
        return addr

    # -- program assembly ----------------------------------------------------

    def build(self) -> Program:
        rng = self.rng
        asm = self.asm
        with asm.func("main"):
            asm.movi(R_PUBLIC, PUBLIC_BASE)
            asm.movi(R_PROBE, PROBE_BASE)
            asm.movi(R_HIDDEN, HIDDEN_BASE)
            for reg in SCRATCH:
                if rng.random() < 0.5:
                    asm.movi(reg, rng.randrange(256))
            # Touch a slice of the public region so first-touch effects
            # do not dominate.
            counter = 7
            asm.movi(counter, 0)
            loop = asm.fresh_label("warm")
            asm.label(loop)
            asm.load(0, R_PUBLIC, counter)
            asm.store(R_PUBLIC, counter, 0, 0)
            asm.addi(counter, counter, 8)
            asm.cmpi(counter, PUBLIC_WORDS * 8)
            asm.br(Cond.LT, loop)

            budget = self.size
            self.gadget_bounds_bypass()  # every program carries >= 1
            while budget > 0:
                budget -= self.segment(depth=0)
            asm.halt()

        for name in list(self.leaf_names):
            self.leaf(name)
        return asm.build()

    def leaf(self, name: str) -> None:
        asm = self.asm
        with asm.func(name):
            for _ in range(self.rng.randrange(2, 7)):
                self.alu_op()
            if self.rng.random() < 0.6:
                self.masked_load()
            asm.ret()

    # -- segments --------------------------------------------------------------

    def segment(self, depth: int) -> int:
        """Emit one random segment; returns its approximate cost."""
        rng = self.rng
        choices = [
            (self.straightline, 4),
            (self.masked_load, 2),
            (self.masked_store, 2),
            (self.if_else, 3),
            (self.div_op, 1),
            (self.gadget_bounds_bypass, 4),
            (self.gadget_transient_div, 2),
            (self.gadget_nested_branches, 2),
        ]
        if depth == 0:
            choices.append((self.counted_loop, 2))
            choices.append((self.call_site, 1))
        emit = rng.choices([c for c, _ in choices],
                           weights=[w for _, w in choices])[0]
        before = self.asm.here
        emit()
        return max(1, self.asm.here - before)

    def straightline(self) -> None:
        for _ in range(self.rng.randrange(2, 6)):
            self.alu_op()

    def alu_op(self) -> None:
        rng = self.rng
        asm = self.asm
        rd, ra, rb = self.reg(), self.reg(), self.reg()
        op = rng.randrange(7)
        if op == 0:
            asm.add(rd, ra, rb)
        elif op == 1:
            asm.sub(rd, ra, rb)
        elif op == 2:
            asm.xor(rd, ra, rb)
        elif op == 3:
            asm.and_(rd, ra, rb)
        elif op == 4:
            asm.mul(rd, ra, rb)
        elif op == 5:
            asm.addi(rd, ra, rng.randrange(1, 64))
        else:
            asm.shri(rd, ra, rng.randrange(1, 8))

    def masked_load(self) -> None:
        asm = self.asm
        index, dest = self.reg(), self.reg()
        scratch = (index + 1) % 7
        asm.andi(scratch, index, (PUBLIC_WORDS - 1) * 8)
        asm.load(dest, R_PUBLIC, scratch)

    def masked_store(self) -> None:
        asm = self.asm
        index, src = self.reg(), self.reg()
        scratch = (index + 1) % 7
        asm.andi(scratch, index, (PUBLIC_WORDS - 1) * 8)
        asm.store(R_PUBLIC, scratch, 0, src)

    def div_op(self) -> None:
        rd, ra, rb = self.reg(), self.reg(), self.reg()
        self.asm.div(rd, ra, rb)

    def if_else(self) -> None:
        rng = self.rng
        asm = self.asm
        asm.cmp(self.reg(), self.reg())
        cond = rng.choice(list(Cond))
        else_label = asm.fresh_label("else")
        end_label = asm.fresh_label("end")
        asm.br(cond, else_label)
        for _ in range(rng.randrange(1, 4)):
            self.alu_op()
        if rng.random() < 0.5:
            self.masked_load()
        asm.jmp(end_label)
        asm.label(else_label)
        for _ in range(rng.randrange(1, 4)):
            self.alu_op()
        asm.label(end_label)

    def counted_loop(self) -> None:
        rng = self.rng
        asm = self.asm
        counter = 7  # dedicated to keep loops well-formed
        trips = rng.randrange(2, 6)
        asm.movi(counter, trips)
        head = asm.fresh_label("loop")
        asm.label(head)
        for _ in range(rng.randrange(1, 4)):
            self.segment(depth=1)
        asm.subi(counter, counter, 1)
        asm.cmpi(counter, 0)
        asm.br(Cond.GT, head)

    def call_site(self) -> None:
        if len(self.leaf_names) < 2 and (not self.leaf_names
                                         or self.rng.random() < 0.3):
            # Leaf bodies are emitted after main.
            self.leaf_names.append(f"leaf{len(self.leaf_names)}")
        self.asm.call(self.rng.choice(self.leaf_names))

    # -- Spectre-shaped gadgets -------------------------------------------------

    def gadget_bounds_bypass(self) -> None:
        """A v1 gadget: a cold load delays the branch; the architectural
        path skips a secret-dependent double load that only wrong-path
        execution performs."""
        rng = self.rng
        asm = self.asm
        taken = asm.fresh_label("safe")
        t, a = self.reg(), self.reg()
        asm.movi(12, self.fresh_cold_addr())
        asm.load(t, 12)              # cold: resolves the branch late
        asm.test(t, t)
        asm.br(Cond.EQ, taken)       # memory is zero: architecturally taken
        # Wrong-path-only: read hidden data, leak it into the probe array.
        offset = rng.randrange(HIDDEN_WORDS) * 8
        asm.load(a, R_HIDDEN, None, offset)
        asm.shli(a, a, 6)
        asm.andi(a, a, 0xFFC0)
        asm.load(t, R_PROBE, a)
        asm.label(taken)

    def gadget_transient_div(self) -> None:
        """A wrong-path division with a hidden operand contends for the
        (non-pipelined) divider against a committed division: the
        divider timing channel AMuLeT* found (paper SVII-B4b)."""
        rng = self.rng
        asm = self.asm
        skip = asm.fresh_label("nodiv")
        t, a, b = self.reg(), self.reg(), self.reg()
        asm.movi(12, self.fresh_cold_addr())
        asm.load(t, 12)
        asm.test(t, t)
        asm.br(Cond.EQ, skip)
        offset = rng.randrange(HIDDEN_WORDS) * 8
        asm.load(a, R_HIDDEN, None, offset)
        asm.div(b, b, a)             # transient, operand-dependent latency
        asm.label(skip)
        asm.movi(13, rng.randrange(3, 60))
        asm.div(t, 13, 13)           # committed divider user

    def gadget_nested_branches(self) -> None:
        """A transient branch whose condition derives from hidden data,
        followed by a younger independent branch: the shape that excites
        the STT-inherited squash-notification bug (paper SVII-B4b)."""
        rng = self.rng
        asm = self.asm
        outer = asm.fresh_label("outer")
        inner = asm.fresh_label("inner")
        after = asm.fresh_label("after")
        t, s = self.reg(), self.reg()
        asm.movi(12, self.fresh_cold_addr())
        asm.load(t, 12)
        asm.test(t, t)
        asm.br(Cond.EQ, outer)       # architecturally taken (cold zero)
        # Wrong path: a secret-conditioned branch...
        offset = rng.randrange(HIDDEN_WORDS) * 8
        asm.load(s, R_HIDDEN, None, offset)
        asm.andi(s, s, 1)
        asm.cmpi(s, 0)
        asm.br(Cond.EQ, inner)
        self.alu_op()
        asm.label(inner)
        # ...then a younger, data-independent mispredicting branch.
        asm.cmpi(15, 0)              # sp != 0: always not-equal
        asm.br(Cond.NE, after)
        self.alu_op()
        asm.label(outer)
        self.alu_op()
        asm.label(after)


def generate_program(seed: int, size: int = 40) -> Program:
    """Generate a deterministic random test program."""
    return _Generator(random.Random(seed), size).build()
