"""Test-input generation and mutation for the fuzzer.

An input is initial memory plus initial scratch registers.  A test
*pair* keeps the registers equal and differs in memory the contract is
expected to hide: primarily the HIDDEN region (reachable only by
wrong-path code), and occasionally PUBLIC words (rejected later by the
contract-trace equality check if the observer exposes them).
"""

from __future__ import annotations

import random
from typing import List, Tuple

from ..contracts.checker import TestInput
from .generator import (
    HIDDEN_BASE,
    HIDDEN_WORDS,
    PUBLIC_BASE,
    PUBLIC_WORDS,
    SCRATCH,
)


def generate_input(rng: random.Random) -> TestInput:
    """A random victim input."""
    words: List[Tuple[int, int]] = []
    for index in range(PUBLIC_WORDS):
        words.append((PUBLIC_BASE + 8 * index, rng.randrange(1 << 16)))
    for index in range(HIDDEN_WORDS):
        words.append((HIDDEN_BASE + 8 * index, rng.randrange(1 << 16)))
    regs = tuple((reg, rng.randrange(256)) for reg in SCRATCH)
    return TestInput(tuple(words), regs)


def mutate_input(rng: random.Random, base: TestInput,
                 public_flips: bool = False) -> TestInput:
    """A contract-hidden mutation of ``base``: flip one or more HIDDEN
    words (and, if requested, a PUBLIC word — useful for observer modes
    that hide some architecturally accessed data)."""
    words = dict(base.memory_words)
    # Flip a large fraction of the hidden region so that whichever
    # offsets the program's transient gadgets read are likely covered.
    for index in range(HIDDEN_WORDS):
        addr = HIDDEN_BASE + 8 * index
        words[addr] = rng.randrange(1 << 16)
    if public_flips and rng.random() < 0.5:
        index = rng.randrange(PUBLIC_WORDS)
        addr = PUBLIC_BASE + 8 * index
        words[addr] = rng.randrange(1 << 16)
    return TestInput(tuple(sorted(words.items())), base.regs)
