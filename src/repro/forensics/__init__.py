"""repro.forensics — leak forensics for contract-violation
counterexamples: serializable witnesses, delta-debugging minimization,
tracer-backed transmitter explanation, and campaign report emission."""

from .explain import LeakExplanation, UopSummary, explain_witness
from .minimize import minimize_witness
from .report import CampaignReporter, write_forensics_report
from .witness import (
    WITNESS_SCHEMA,
    LeakWitness,
    WitnessError,
    capture_witness,
)

__all__ = [
    "LeakExplanation", "UopSummary", "explain_witness",
    "minimize_witness",
    "CampaignReporter", "write_forensics_report",
    "WITNESS_SCHEMA", "LeakWitness", "WitnessError", "capture_witness",
]
