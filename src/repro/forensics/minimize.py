"""Witness minimization: delta-debug a leak witness down to a minimal
reproducer.

Two program passes plus one input pass, every candidate re-verified by
re-running the full contract check restricted to the witness's
adversary model (:meth:`LeakWitness.verify`):

1. **NOP-ing** (ddmin-style): replace chunks of instructions with NOPs,
   halving the chunk size down to single instructions.  Length is
   preserved, so branch targets stay valid without any analysis — a
   candidate that breaks the reproduction (including one that makes the
   pair invalid or merely passes) is simply rejected.
2. **NOP dropping**: delete the accumulated NOPs outright, remapping
   every branch target, the entry point, and the public-def PCs to the
   compacted index space (a dropped target falls through to the next
   surviving instruction, which is exactly what the NOP did).
3. **Input-diff narrowing**: for each memory word where the two inputs
   disagree, try copying run A's value into run B — shrinking the
   secret diff to the words that actually carry the leak.

The whole loop is budgeted by ``max_checks`` re-verifications, since
each check costs four simulations (two sequential, two pipelined).
"""

from __future__ import annotations

import dataclasses
import logging
from typing import Dict, List, Optional

from ..contracts.checker import CheckOutcome, Verdict
from ..isa.operations import Op
from .witness import LeakWitness, WitnessError

logger = logging.getLogger(__name__)

#: One plain NOP, in witness instruction-dict form.
NOP_DICT: Dict = {"op": Op.NOP.value}

DEFAULT_MAX_CHECKS = 400


class _Budget:
    """Counts contract-check re-verifications against a ceiling."""

    def __init__(self, limit: int) -> None:
        self.limit = limit
        self.used = 0

    @property
    def exhausted(self) -> bool:
        return self.used >= self.limit

    def spend(self) -> None:
        self.used += 1


def _reproduces(witness: LeakWitness, budget: _Budget) -> Optional[CheckOutcome]:
    """Re-verify ``witness``; return the outcome if it still violates."""
    budget.spend()
    outcome = witness.verify()
    if outcome.verdict is Verdict.VIOLATION:
        return outcome
    return None


def _is_nop(payload: Dict) -> bool:
    return payload.get("op") == Op.NOP.value


def _nop_pass(witness: LeakWitness, budget: _Budget) -> LeakWitness:
    """ddmin over the instruction list, NOP-ing chunks that the
    violation survives without."""
    instructions = list(witness.instructions)
    chunk = max(len(instructions) // 2, 1)
    while chunk >= 1 and not budget.exhausted:
        start = 0
        progress = False
        while start < len(instructions) and not budget.exhausted:
            indices = [i for i in range(start, min(start + chunk,
                                                   len(instructions)))
                       if not _is_nop(instructions[i])]
            start += chunk
            if not indices:
                continue
            candidate = list(instructions)
            for i in indices:
                candidate[i] = dict(NOP_DICT)
            trial = dataclasses.replace(witness, instructions=candidate)
            if _reproduces(trial, budget) is not None:
                instructions = candidate
                progress = True
        if chunk == 1 and not progress:
            break
        chunk = max(chunk // 2, 1) if chunk > 1 else (1 if progress else 0)
    return dataclasses.replace(witness, instructions=instructions)


def _drop_nops(witness: LeakWitness, budget: _Budget) -> LeakWitness:
    """Delete NOPs, compacting PCs; keep only if the violation survives."""
    kept = [i for i, payload in enumerate(witness.instructions)
            if not _is_nop(payload)]
    if len(kept) == len(witness.instructions) or not kept:
        return witness

    def remap(pc: int) -> int:
        return sum(1 for i in kept if i < pc)

    kept_set = set(kept)
    compacted: List[Dict] = []
    for i in kept:
        payload = dict(witness.instructions[i])
        if isinstance(payload.get("target"), int):
            payload["target"] = remap(payload["target"])
        compacted.append(payload)
    public = None
    if witness.public_def_pcs is not None:
        public = [remap(pc) for pc in witness.public_def_pcs
                  if pc in kept_set]
    trial = dataclasses.replace(
        witness, instructions=compacted, entry=remap(witness.entry),
        public_def_pcs=public)
    # This single check runs even on an exhausted budget: it is the one
    # pass that actually shortens the program.
    if _reproduces(trial, budget) is None:
        return witness  # keep the NOP-padded (still valid) form
    return trial


def _narrow_input_diff(witness: LeakWitness, budget: _Budget) -> LeakWitness:
    """Copy A-values into B wherever the leak survives the merge."""
    current = witness
    for addr in witness.differing_memory_words():
        if budget.exhausted:
            break
        words_a = dict(tuple(pair) for pair in current.input_a["memory_words"])
        if addr not in words_a:
            continue  # only present in B; dropping would change layout
        words_b = [list(pair) for pair in current.input_b["memory_words"]]
        changed = False
        for pair in words_b:
            if pair[0] == addr and pair[1] != words_a[addr]:
                pair[1] = words_a[addr]
                changed = True
        if not changed:
            continue
        input_b = {"memory_words": words_b,
                   "regs": [list(p) for p in current.input_b["regs"]]}
        trial = dataclasses.replace(current, input_b=input_b)
        if _reproduces(trial, budget) is not None:
            current = trial
    return current


def minimize_witness(witness: LeakWitness,
                     max_checks: int = DEFAULT_MAX_CHECKS,
                     drop_nops: bool = True,
                     narrow_inputs: bool = True) -> LeakWitness:
    """Shrink ``witness`` to a minimal reproducer.

    Returns a new witness with ``minimized=True``, an up-to-date
    ``divergence``, and minimization stats in ``meta``.  Raises
    :class:`WitnessError` if the input witness does not reproduce its
    violation in the first place.
    """
    budget = _Budget(max_checks)
    if _reproduces(witness, budget) is None:
        raise WitnessError(
            "witness does not reproduce its violation; refusing to minimize")

    original_len = len(witness.instructions)
    original_diff = len(witness.differing_memory_words())

    current = _nop_pass(witness, budget)
    if drop_nops:
        current = _drop_nops(current, budget)
    if narrow_inputs:
        current = _narrow_input_diff(current, budget)

    # One final authoritative check: refresh the recorded divergence so
    # the witness describes the *minimized* program's leak.
    final = current.verify()
    if final.verdict is not Verdict.VIOLATION:  # pragma: no cover - safety
        raise WitnessError("minimized witness stopped reproducing")
    from ..isa.assembler import disassemble

    nop_count = sum(1 for p in current.instructions if _is_nop(p))
    minimized = dataclasses.replace(
        current,
        asm=disassemble(current.program()),
        divergence=(final.divergence.to_dict()
                    if final.divergence is not None else None),
        minimized=True,
        original_len=witness.original_len or original_len,
        meta=dict(current.meta,
                  minimize_checks=budget.used + 1,
                  minimize_nops=nop_count,
                  minimize_input_diff_before=original_diff,
                  minimize_input_diff_after=len(
                      current.differing_memory_words())),
    )
    logger.info(
        "minimized witness: %d -> %d instructions (%d NOPs), input diff "
        "%d -> %d words, %d checks",
        original_len, len(minimized.instructions), nop_count, original_diff,
        len(minimized.differing_memory_words()), budget.used + 1)
    return minimized
