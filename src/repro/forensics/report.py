"""Campaign telemetry and forensics artifact emission.

Two pieces:

* :class:`CampaignReporter` — a JSONL event log.  Pass its
  :meth:`~CampaignReporter.on_program` bound method as the
  ``on_program`` hook of :func:`repro.fuzzing.run_campaign` and every
  per-program outcome (counts + wall time) lands as one JSON line,
  bracketed by ``campaign_start`` / ``campaign_end`` events.
* :func:`write_forensics_report` — turn a finished
  ``CampaignResult`` (run with ``collect_witnesses=True``) into a
  report directory: one ``witness-*.json`` per violation (minimized
  when possible), plus a human-readable ``REPORT.md`` with the
  disassembly, the first divergent observation, and the transmitter
  explanation for each.
"""

from __future__ import annotations

import json
import logging
import pathlib
import time
from typing import Dict, List, Optional, TextIO, Union

from ..metrics.spans import get_recorder
from .explain import explain_witness
from .minimize import DEFAULT_MAX_CHECKS, minimize_witness
from .witness import LeakWitness, WitnessError

logger = logging.getLogger(__name__)


class CampaignReporter:
    """Appends one JSON object per event to ``<path>`` (JSONL).

    With a span recorder attached, every event also carries the current
    ``trace_id``/``span_id``, so JSONL telemetry lines can be joined
    against the merged campaign trace.
    """

    def __init__(self, path: Union[str, pathlib.Path]) -> None:
        self.path = pathlib.Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._stream: Optional[TextIO] = self.path.open("a")

    def _emit(self, event: str, **payload) -> None:
        if self._stream is None:  # pragma: no cover - use after close
            raise ValueError("reporter is closed")
        record = {"event": event, "time": round(time.time(), 3), **payload}
        recorder = get_recorder()
        if recorder is not None:
            ctx = recorder.context()
            if ctx is not None:
                record.setdefault("trace_id", ctx["trace_id"])
                record.setdefault("span_id", ctx["span_id"])
        self._stream.write(json.dumps(record, sort_keys=True) + "\n")
        self._stream.flush()

    def campaign_start(self, config, jobs: int) -> None:
        self._emit(
            "campaign_start",
            contract=config.contract.value,
            instrumentation=config.instrumentation,
            defense=config.defense_name,
            n_programs=config.n_programs,
            pairs_per_program=config.pairs_per_program,
            seed=config.seed,
            jobs=jobs,
        )

    def on_program(self, program_seed: int, partial) -> None:
        """``run_campaign``'s per-program telemetry hook."""
        self._emit(
            "program",
            program_seed=program_seed,
            tests=partial.tests,
            violations=partial.violations,
            false_positives=partial.false_positives,
            invalid_pairs=partial.invalid_pairs,
            invalid_nonterminating=partial.invalid_nonterminating,
            invalid_distinguishable=partial.invalid_distinguishable,
            invalid_hw_timeout=partial.invalid_hw_timeout,
            wall_time=round(partial.wall_time, 6),
        )

    def campaign_end(self, result) -> None:
        self._emit(
            "campaign_end",
            tests=result.tests,
            violations=result.violations,
            false_positives=result.false_positives,
            invalid_pairs=result.invalid_pairs,
            witnesses=len(result.witnesses),
            wall_time=round(result.wall_time, 6),
            summary=result.summary(),
        )

    def close(self) -> None:
        if self._stream is not None:
            self._stream.close()
            self._stream = None

    def __enter__(self) -> "CampaignReporter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# ----------------------------------------------------------------------
# Forensics report emission
# ----------------------------------------------------------------------

def _witness_stem(witness: LeakWitness, index: int) -> str:
    seed = witness.program_seed if witness.program_seed is not None else index
    pair = witness.pair_index if witness.pair_index is not None else 0
    return f"witness-{seed}-{pair}-{witness.adversary}"


def _witness_section(witness: LeakWitness, explanation,
                     problems: List[str]) -> List[str]:
    lines = [f"## {witness.describe()}", ""]
    if witness.minimized:
        lines.append(f"Minimized from {witness.original_len} to "
                     f"{len(witness.instructions)} instructions.")
        lines.append("")
    if explanation is not None:
        lines.append(f"**{explanation.headline()}**")
        lines.append("")
        lines.append("```")
        lines.append(explanation.render())
        lines.append("```")
    elif witness.divergence is not None:
        div = witness.divergence_obj()
        lines.append(f"First divergent observation: {div.describe()}")
    for problem in problems:
        lines.append("")
        lines.append(f"> note: {problem}")
    lines.extend(["", "```asm", witness.asm.rstrip(), "```", ""])
    return lines


def write_forensics_report(
    result,
    report_dir: Union[str, pathlib.Path],
    minimize: bool = True,
    explain: bool = True,
    max_checks: int = DEFAULT_MAX_CHECKS,
    title: str = "Leak forensics",
    anatomy: Optional[str] = None,
) -> List[pathlib.Path]:
    """Emit witness JSONs + ``REPORT.md`` for every captured witness in
    ``result`` (a ``CampaignResult`` run with ``collect_witnesses``).

    Returns the written paths (witness files first, report last).  A
    witness that fails to minimize or explain (e.g. its defense factory
    has no registry name) is still written verbatim, with the problem
    noted in the report.  ``anatomy``, when given, is a pre-rendered
    overhead-anatomy table (see
    :func:`repro.bench.tables.speculation_anatomy`) appended as its own
    section — where the fuzzed defense spends its intervention budget.
    """
    report_dir = pathlib.Path(report_dir)
    report_dir.mkdir(parents=True, exist_ok=True)
    written: List[pathlib.Path] = []
    sections: List[str] = []
    for index, payload in enumerate(result.witnesses):
        witness = LeakWitness.from_dict(payload)
        problems: List[str] = []
        if minimize:
            try:
                witness = minimize_witness(witness, max_checks=max_checks)
            except WitnessError as exc:
                problems.append(f"minimization skipped: {exc}")
                logger.warning("minimization skipped for %s: %s",
                               _witness_stem(witness, index), exc)
        explanation = None
        if explain:
            try:
                explanation = explain_witness(witness)
            except WitnessError as exc:
                problems.append(f"explanation skipped: {exc}")
                logger.warning("explanation skipped for %s: %s",
                               _witness_stem(witness, index), exc)
        path = report_dir / f"{_witness_stem(witness, index)}.json"
        witness.save(path)
        written.append(path)
        if explanation is not None:
            explanation_path = path.with_suffix(".explain.json")
            explanation_path.write_text(
                json.dumps(explanation.to_dict(), indent=2, sort_keys=True)
                + "\n")
            written.append(explanation_path)
        sections.extend(_witness_section(witness, explanation, problems))

    report = [f"# {title}", "", result.summary(), ""]
    if not result.witnesses:
        report.append("No witnesses captured (no violations, or the "
                      "campaign ran without `collect_witnesses`).")
        report.append("")
    report.extend(sections)
    if anatomy:
        report.extend(["## Overhead anatomy", "",
                       "```", anatomy.rstrip(), "```", ""])
    report_path = report_dir / "REPORT.md"
    report_path.write_text("\n".join(report))
    written.append(report_path)
    logger.info("wrote %d forensics artifacts to %s", len(written),
                report_dir)
    return written
