"""Serializable leak witnesses (the fuzzer's counterexample artifact).

A :class:`LeakWitness` packages everything needed to *re-observe* one
contract violation on a fresh machine: the instrumented program (exact
instruction encodings plus a human-readable disassembly), the input
pair, the contract, the defense harness name, the full core
configuration, the adversary model that distinguished the runs, and the
first divergent observation element.  Witnesses round-trip through JSON
(``save``/``load``) and re-verify themselves (:meth:`LeakWitness.verify`)
so minimization and explanation can trust what they are working on.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple, Union

from ..contracts.adversary import AdversaryModel, Divergence
from ..contracts.checker import CheckOutcome, Contract, TestInput
from ..isa.instruction import Instruction
from ..isa.operations import Cond, Op
from ..isa.program import Program
from ..uarch.config import CacheConfig, CoreConfig, L1DTagMode, P_CORE, SpeculationModel

#: Bumped when the witness JSON layout changes incompatibly.
WITNESS_SCHEMA = 1

#: Checker limits witnesses record so replays match the original run.
DEFAULT_FUEL = 60_000
DEFAULT_MAX_CYCLES = 400_000


class WitnessError(Exception):
    """Raised for unusable witnesses (bad schema, unresolvable defense,
    non-reproducing violation)."""


# ----------------------------------------------------------------------
# Component (de)serialization
# ----------------------------------------------------------------------

def instruction_to_dict(inst: Instruction) -> Dict:
    payload: Dict = {"op": inst.op.value}
    if inst.rd is not None:
        payload["rd"] = inst.rd
    if inst.ra is not None:
        payload["ra"] = inst.ra
    if inst.rb is not None:
        payload["rb"] = inst.rb
    if inst.imm:
        payload["imm"] = inst.imm
    if inst.target is not None:
        payload["target"] = inst.target
    if inst.cond is not None:
        payload["cond"] = inst.cond.value
    if inst.prot:
        payload["prot"] = True
    return payload


def instruction_from_dict(payload: Dict) -> Instruction:
    return Instruction(
        op=Op(payload["op"]),
        rd=payload.get("rd"),
        ra=payload.get("ra"),
        rb=payload.get("rb"),
        imm=payload.get("imm", 0),
        target=payload.get("target"),
        cond=Cond(payload["cond"]) if "cond" in payload else None,
        prot=payload.get("prot", False),
    )


def core_config_to_dict(config: CoreConfig) -> Dict:
    payload: Dict = {}
    for f in dataclasses.fields(config):
        value = getattr(config, f.name)
        if isinstance(value, CacheConfig):
            value = dataclasses.asdict(value)
        elif isinstance(value, (SpeculationModel, L1DTagMode)):
            value = value.value
        payload[f.name] = value
    return payload


def core_config_from_dict(payload: Dict) -> CoreConfig:
    kwargs = dict(payload)
    for level in ("l1d", "l2", "l3"):
        if isinstance(kwargs.get(level), dict):
            cache = dict(kwargs[level])
            cache.pop("num_sets", None)  # derived property, not a field
            kwargs[level] = CacheConfig(**cache)
    if "speculation_model" in kwargs:
        kwargs["speculation_model"] = SpeculationModel(
            kwargs["speculation_model"])
    if "l1d_tag_mode" in kwargs:
        kwargs["l1d_tag_mode"] = L1DTagMode(kwargs["l1d_tag_mode"])
    return CoreConfig(**kwargs)


def test_input_to_dict(test_input: TestInput) -> Dict:
    return {"memory_words": [list(pair) for pair in test_input.memory_words],
            "regs": [list(pair) for pair in test_input.regs]}


def test_input_from_dict(payload: Dict) -> TestInput:
    return TestInput(
        memory_words=tuple((addr, value)
                           for addr, value in payload["memory_words"]),
        regs=tuple((reg, value) for reg, value in payload["regs"]))


# ----------------------------------------------------------------------
# The witness itself
# ----------------------------------------------------------------------

@dataclass
class LeakWitness:
    """One reproducible contract violation, ready to serialize."""

    contract: str
    defense: Optional[str]
    adversary: str
    core: Dict
    instructions: List[Dict]
    entry: int
    asm: str
    input_a: Dict
    input_b: Dict
    divergence: Optional[Dict] = None
    instrumentation: Optional[str] = None
    program_seed: Optional[int] = None
    pair_index: Optional[int] = None
    public_def_pcs: Optional[List[int]] = None
    fuel: int = DEFAULT_FUEL
    max_cycles: int = DEFAULT_MAX_CYCLES
    minimized: bool = False
    #: Instruction count before minimization (== len(instructions) for
    #: unminimized witnesses).
    original_len: int = 0
    schema: int = WITNESS_SCHEMA
    #: Free-form notes (minimization stats etc.); never load-bearing.
    meta: Dict = field(default_factory=dict)

    # -- reconstruction ----------------------------------------------------

    def program(self) -> Program:
        return Program([instruction_from_dict(p) for p in self.instructions],
                       entry=self.entry)

    def inputs(self) -> Tuple[TestInput, TestInput]:
        return (test_input_from_dict(self.input_a),
                test_input_from_dict(self.input_b))

    def core_config(self) -> CoreConfig:
        return core_config_from_dict(self.core)

    def contract_enum(self) -> Contract:
        return Contract(self.contract)

    def adversary_enum(self) -> AdversaryModel:
        return AdversaryModel(self.adversary)

    def divergence_obj(self) -> Optional[Divergence]:
        if self.divergence is None:
            return None
        return Divergence.from_dict(self.divergence)

    def defense_factory(self) -> Callable[[], object]:
        if self.defense is None:
            raise WitnessError(
                "witness has no resolvable defense harness name; "
                "replay requires one of repro.bench.DEFENSES")
        from ..bench.runner import DEFENSES

        if self.defense not in DEFENSES:
            raise WitnessError(
                f"witness names unknown defense {self.defense!r}; "
                f"known: {', '.join(sorted(DEFENSES))}")
        return DEFENSES[self.defense]

    def differing_memory_words(self) -> List[int]:
        """Addresses where the two inputs disagree, sorted."""
        words_a = dict(test_input_from_dict(self.input_a).memory_words)
        words_b = dict(test_input_from_dict(self.input_b).memory_words)
        return sorted(addr for addr in set(words_a) | set(words_b)
                      if words_a.get(addr) != words_b.get(addr))

    def verify(self) -> CheckOutcome:
        """Re-run the contract check this witness claims to violate
        (restricted to the witness's own adversary model)."""
        from ..contracts.checker import check_contract_pair

        input_a, input_b = self.inputs()
        public = set(self.public_def_pcs) \
            if self.public_def_pcs is not None else None
        return check_contract_pair(
            self.program(), self.defense_factory(), self.contract_enum(),
            input_a, input_b, self.core_config(),
            adversaries=(self.adversary_enum(),),
            public_def_pcs=public,
            fuel=self.fuel, max_cycles=self.max_cycles)

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> Dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict) -> "LeakWitness":
        payload = dict(payload)
        schema = payload.get("schema", 0)
        if schema != WITNESS_SCHEMA:
            raise WitnessError(
                f"unsupported witness schema {schema!r} "
                f"(this build reads schema {WITNESS_SCHEMA})")
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise WitnessError(f"unknown witness fields: {sorted(unknown)}")
        return cls(**payload)

    def save(self, path: Union[str, pathlib.Path]) -> pathlib.Path:
        path = pathlib.Path(path)
        path.write_text(json.dumps(self.to_dict(), indent=2, sort_keys=True)
                        + "\n")
        return path

    @classmethod
    def load(cls, path: Union[str, pathlib.Path]) -> "LeakWitness":
        try:
            payload = json.loads(pathlib.Path(path).read_text())
        except (OSError, ValueError) as exc:
            raise WitnessError(f"cannot read witness {path}: {exc}") from exc
        return cls.from_dict(payload)

    def describe(self) -> str:
        origin = ""
        if self.program_seed is not None:
            origin = (f" (program seed {self.program_seed}, "
                      f"pair {self.pair_index})")
        return (f"{self.defense or '?'} vs {self.contract} under "
                f"{self.adversary}: {len(self.instructions)} instructions"
                + origin)


def capture_witness(
    program: Program,
    contract: Contract,
    input_a: TestInput,
    input_b: TestInput,
    outcome: CheckOutcome,
    *,
    defense: Optional[str] = None,
    config: CoreConfig = P_CORE,
    instrumentation: Optional[str] = None,
    program_seed: Optional[int] = None,
    pair_index: Optional[int] = None,
    public_def_pcs: Optional[set] = None,
    fuel: int = DEFAULT_FUEL,
    max_cycles: int = DEFAULT_MAX_CYCLES,
) -> LeakWitness:
    """Package a VIOLATION outcome from :func:`check_contract_pair` into
    a serializable witness."""
    from ..isa.assembler import disassemble

    if not program.is_linked:
        program = program.linked()
    adversary = outcome.adversary.value if outcome.adversary else "?"
    return LeakWitness(
        contract=contract.value,
        defense=defense,
        adversary=adversary,
        core=core_config_to_dict(config),
        instructions=[instruction_to_dict(i) for i in program.instructions],
        entry=program.entry,
        asm=disassemble(program),
        input_a=test_input_to_dict(input_a),
        input_b=test_input_to_dict(input_b),
        divergence=(outcome.divergence.to_dict()
                    if outcome.divergence is not None else None),
        instrumentation=instrumentation,
        program_seed=program_seed,
        pair_index=pair_index,
        public_def_pcs=(sorted(public_def_pcs)
                        if public_def_pcs is not None else None),
        fuel=fuel,
        max_cycles=max_cycles,
        original_len=len(program.instructions),
    )
