"""Leak explanation: replay a witness under the pipeline tracer and
name the transmitter.

Given a :class:`~repro.forensics.witness.LeakWitness`, replay both
inputs with a :class:`~repro.uarch.trace.PipelineTracer` attached, then
work backwards from the first divergent adversary observation to the
micro-op that transmitted the secret:

* **Cache/TLB divergence** — the divergent element is a concrete
  ``(level, set, line)`` tag (or TLB page) present in exactly one run;
  the transmitter is the first traced uop in that run whose memory
  access maps to that line/page.
* **Timing divergence** — align the two uop streams by fetch order and
  find the first uop whose timing signature differs between runs; if
  that uop is not itself transmitter-class (division, memory access,
  branch), scan forward for the nearest one.

The explanation also reports the speculation window (the youngest older
mispredicted branch), the PROT/taint state of the transmitter at issue,
and the secret's provenance (the earliest load reading an address where
the two inputs disagree).
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..contracts.adversary import AdversaryModel, Divergence, first_divergence
from ..uarch.config import CoreConfig
from ..uarch.pipeline import CoreResult, simulate
from ..uarch.trace import PipelineTracer, first_uop_divergence
from ..uarch.uop import Uop
from ..isa.operations import Op
from .witness import LeakWitness, WitnessError

logger = logging.getLogger(__name__)

#: Ops that can modulate a shared resource with an operand-dependent
#: latency (the divider, paper SVII-B4b).
_DIV_OPS = (Op.DIV, Op.REM)


@dataclass
class UopSummary:
    """The forensically interesting slice of one traced uop."""

    seq: int
    pc: int
    asm: str
    op: str
    squashed: bool
    prot: bool
    lsq_prot: Optional[bool]
    mem_addr: Optional[int]
    mem_level: Optional[str]
    fetch_cycle: int
    issue_cycle: int
    complete_cycle: int
    commit_cycle: int
    squash_cycle: int

    @classmethod
    def from_uop(cls, uop: Uop) -> "UopSummary":
        from ..isa.assembler import format_instruction

        return cls(
            seq=uop.seq, pc=uop.pc, asm=format_instruction(uop.inst),
            op=uop.inst.op.value, squashed=uop.squashed,
            prot=uop.inst.prot, lsq_prot=uop.lsq_prot,
            mem_addr=uop.mem_addr, mem_level=uop.mem_level,
            fetch_cycle=uop.fetch_cycle, issue_cycle=uop.issue_cycle,
            complete_cycle=uop.complete_cycle, commit_cycle=uop.commit_cycle,
            squash_cycle=uop.squash_cycle)

    @property
    def path(self) -> str:
        return "wrong-path" if self.squashed else "committed-path"

    def to_dict(self) -> Dict:
        return dict(self.__dict__)


@dataclass
class LeakExplanation:
    """Everything ``repro explain`` renders."""

    defense: Optional[str]
    contract: str
    adversary: str
    divergence: Divergence
    transmitter: Optional[UopSummary]
    #: Youngest mispredicted branch older than the transmitter (the
    #: speculation window the transmission happened under), if any.
    window_branch: Optional[UopSummary] = None
    #: Earliest load reading an address the two inputs disagree on.
    secret_load: Optional[UopSummary] = None
    #: Addresses where the input pair differs.
    secret_addrs: Tuple[int, ...] = ()
    notes: List[str] = field(default_factory=list)

    def headline(self) -> str:
        if self.transmitter is None:
            return (f"divergence at {self.divergence.label} "
                    f"(transmitter not identified)")
        t = self.transmitter
        kind = "div" if t.op in (o.value for o in _DIV_OPS) else t.op
        return (f"{kind} transmitter at pc {t.pc} ({t.path}): {t.asm}")

    def render(self) -> str:
        lines = [
            f"defense:    {self.defense or '?'}",
            f"contract:   {self.contract}",
            f"adversary:  {self.adversary}",
            f"divergence: {self.divergence.describe()}",
        ]
        if self.secret_addrs:
            addrs = ", ".join(f"0x{a:x}" for a in self.secret_addrs[:8])
            if len(self.secret_addrs) > 8:
                addrs += f", ... ({len(self.secret_addrs)} total)"
            lines.append(f"secret diff: memory words {addrs}")
        if self.secret_load is not None:
            s = self.secret_load
            lines.append(
                f"secret load: pc {s.pc} `{s.asm}` read "
                f"0x{s.mem_addr:x} at cycle {s.issue_cycle} ({s.path})")
        if self.transmitter is not None:
            t = self.transmitter
            lines.append(f"transmitter: {self.headline()}")
            completed = (f"completed {t.complete_cycle}"
                         if t.complete_cycle >= 0 else "never completed")
            detail = f"  issued at cycle {t.issue_cycle}, {completed}"
            if t.squashed:
                detail += f", squashed at {t.squash_cycle} (wrong-path fetch)"
            else:
                detail += f", committed at {t.commit_cycle}"
            lines.append(detail)
            if t.mem_addr is not None:
                level = f" via {t.mem_level}" if t.mem_level else ""
                lines.append(f"  accessed 0x{t.mem_addr:x}{level}")
            prot = "PROT" if t.prot else "unprotected"
            if t.lsq_prot is not None:
                prot += f", lsq_prot={t.lsq_prot}"
            lines.append(f"  protection state at issue: {prot}")
        else:
            lines.append("transmitter: not identified "
                         "(no traced uop maps to the divergence)")
        if self.window_branch is not None:
            b = self.window_branch
            lines.append(
                f"speculation window: branch at pc {b.pc} `{b.asm}` "
                f"mispredicted (resolved cycle {b.complete_cycle})")
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def to_dict(self) -> Dict:
        return {
            "defense": self.defense,
            "contract": self.contract,
            "adversary": self.adversary,
            "divergence": self.divergence.to_dict(),
            "headline": self.headline(),
            "transmitter": (self.transmitter.to_dict()
                            if self.transmitter else None),
            "window_branch": (self.window_branch.to_dict()
                              if self.window_branch else None),
            "secret_load": (self.secret_load.to_dict()
                            if self.secret_load else None),
            "secret_addrs": list(self.secret_addrs),
            "notes": list(self.notes),
        }


# ----------------------------------------------------------------------
# Replay + transmitter identification
# ----------------------------------------------------------------------

def _replay(witness: LeakWitness) -> Tuple[Tuple[CoreResult, PipelineTracer],
                                           Tuple[CoreResult, PipelineTracer]]:
    program = witness.program()
    factory = witness.defense_factory()
    config = witness.core_config()
    input_a, input_b = witness.inputs()
    runs = []
    for test_input in (input_a, input_b):
        tracer = PipelineTracer()
        result = simulate(program, factory(), config,
                          test_input.build_memory(), test_input.build_regs(),
                          max_cycles=witness.max_cycles, tracer=tracer)
        runs.append((result, tracer))
    return runs[0], runs[1]


def _line_shift(config: CoreConfig, level: str) -> int:
    cache = getattr(config, level)
    return cache.line_bytes.bit_length() - 1


def _find_cache_transmitter(divergence: Divergence, config: CoreConfig,
                            uops: List[Uop]) -> Optional[Uop]:
    """First uop whose access maps onto the divergent tag/page."""
    if divergence.kind == "cache_tag":
        level, _set_index, line = divergence.location
        shift = _line_shift(config, level)
        for uop in uops:
            if uop.mem_addr is not None and (uop.mem_addr >> shift) == line:
                return uop
    elif divergence.kind == "tlb_page":
        page = divergence.location[0]
        for uop in uops:
            if uop.mem_addr is not None and (uop.mem_addr >> 12) == page:
                return uop
    return None


def _is_transmitter_class(uop: Uop) -> bool:
    return (uop.inst.op in _DIV_OPS or uop.is_load or uop.is_store
            or uop.is_branch)


def _find_timing_transmitter(uops_a: List[Uop],
                             uops_b: List[Uop]) -> Optional[Uop]:
    """First uop whose pipeline timing differs between the runs; if it
    is a bystander (plain ALU op delayed by the real transmitter), scan
    forward for the nearest transmitter-class uop at or before it."""
    index = first_uop_divergence(uops_a, uops_b)
    if index is None:
        return None
    origin = uops_a[index] if index < len(uops_a) else None
    if origin is None:
        return None
    if _is_transmitter_class(origin):
        return origin
    # The origin was merely *delayed*; the culprit is a transmitter-class
    # uop still in flight — look backwards first (older, e.g. a division
    # holding its unit), then forward.
    for uop in reversed(uops_a[:index]):
        if _is_transmitter_class(uop) and uop.complete_cycle < 0:
            return uop
    for uop in uops_a[index + 1:]:
        if _is_transmitter_class(uop):
            return uop
    return origin


def _speculation_window(uops: List[Uop],
                        transmitter: Uop) -> Optional[Uop]:
    """Youngest mispredicted branch older than the transmitter."""
    window = None
    for uop in uops:
        if uop.seq >= transmitter.seq:
            break
        if uop.is_branch and uop.mispredicted:
            window = uop
    return window


def _secret_provenance(uops: List[Uop],
                       secret_addrs: Tuple[int, ...]) -> Optional[Uop]:
    """Earliest load whose word overlaps the input-pair diff."""
    words = {addr >> 3 for addr in secret_addrs}
    for uop in uops:
        if uop.is_load and uop.mem_addr is not None \
                and (uop.mem_addr >> 3) in words:
            return uop
    return None


def explain_witness(witness: LeakWitness) -> LeakExplanation:
    """Replay ``witness`` under tracing and identify the transmitter."""
    (result_a, tracer_a), (result_b, tracer_b) = _replay(witness)
    adversary = witness.adversary_enum()
    divergence = first_divergence(result_a, result_b, adversary)
    if divergence is None:
        raise WitnessError(
            "replayed runs are indistinguishable under the witness's "
            "adversary; nothing to explain")

    notes: List[str] = []
    config = witness.core_config()
    if adversary is AdversaryModel.CACHE_TLB:
        # The tag is "present" in one run and "absent" in the other;
        # hunt in the run that has it.
        haystack = tracer_a.uops if divergence.value_a != "absent" \
            else tracer_b.uops
        transmitter = _find_cache_transmitter(divergence, config, haystack)
        witness_uops = haystack
    else:
        transmitter = _find_timing_transmitter(tracer_a.uops, tracer_b.uops)
        witness_uops = tracer_a.uops
    if tracer_a.dropped or tracer_b.dropped:
        notes.append(f"tracer dropped {tracer_a.dropped + tracer_b.dropped} "
                     "uops; transmitter search may be incomplete")

    secret_addrs = tuple(witness.differing_memory_words())
    window = None
    if transmitter is not None:
        window = _speculation_window(witness_uops, transmitter)
        if transmitter.squashed and window is None:
            notes.append("transmitter was squashed but no mispredicted "
                         "branch precedes it in the trace")
    secret_load = _secret_provenance(witness_uops, secret_addrs)

    explanation = LeakExplanation(
        defense=witness.defense,
        contract=witness.contract,
        adversary=adversary.value,
        divergence=divergence,
        transmitter=(UopSummary.from_uop(transmitter)
                     if transmitter else None),
        window_branch=UopSummary.from_uop(window) if window else None,
        secret_load=(UopSummary.from_uop(secret_load)
                     if secret_load else None),
        secret_addrs=secret_addrs,
        notes=notes,
    )
    logger.info("explained witness: %s", explanation.headline())
    return explanation
