"""Security-contract violation checking (paper SII-C, SVII-B).

A microarchitecture *violates* a contract if two victim executions with
equal contract traces (computed on the sequential reference machine
under an observer mode) are distinguishable under an adversary model.

The checker also implements AMuLeT*'s automated false-positive
filtering (paper SVII-B1e): a detected divergence whose committed
instruction streams differ in PCs or accessed addresses indicates
*sequential* (not transient) leakage — a generator/contract artifact,
not a defense bug.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Set, Tuple

from ..arch.executor import run_program
from ..arch.memory import Memory
from ..arch.observers import ObserverMode, contract_trace
from ..uarch.config import CoreConfig, P_CORE
from ..uarch.pipeline import CoreResult, simulate
from .adversary import AdversaryModel, Divergence, first_divergence, observe


class Contract(enum.Enum):
    """The SEQ-execution-mode contracts the paper evaluates (Tab. II)."""

    ARCH_SEQ = "arch-seq"
    CTS_SEQ = "cts-seq"
    CT_SEQ = "ct-seq"
    UNPROT_SEQ = "unprot-seq"

    @property
    def observer(self) -> ObserverMode:
        return {
            Contract.ARCH_SEQ: ObserverMode.ARCH,
            Contract.CTS_SEQ: ObserverMode.CTS,
            Contract.CT_SEQ: ObserverMode.CT,
            Contract.UNPROT_SEQ: ObserverMode.UNPROT,
        }[self]


class Verdict(enum.Enum):
    #: The input pair is contract-distinguishable: not a valid test.
    INVALID_PAIR = "invalid_pair"
    #: Adversary observations match: no leak observed.
    PASS = "pass"
    #: Divergence whose committed streams differ: sequential artifact.
    FALSE_POSITIVE = "false_positive"
    #: Transient leakage: a genuine contract violation.
    VIOLATION = "violation"


class InvalidReason(enum.Enum):
    """Why an input pair was rejected (the ``INVALID_PAIR`` breakdown
    campaign telemetry reports)."""

    #: One victim run exhausted its sequential fuel.
    NONTERMINATING = "nonterminating"
    #: The contract traces differ: the contract itself exposes the diff.
    DISTINGUISHABLE = "contract-distinguishable"
    #: The microarchitectural simulation hit its cycle limit.
    HW_TIMEOUT = "hw-timeout"


@dataclass(frozen=True)
class TestInput:
    """One victim input: initial memory words and registers."""

    memory_words: Tuple[Tuple[int, int], ...] = ()
    regs: Tuple[Tuple[int, int], ...] = ()

    def build_memory(self) -> Memory:
        memory = Memory()
        for addr, value in self.memory_words:
            memory.write_word(addr, value)
        return memory

    def build_regs(self) -> Dict[int, int]:
        return dict(self.regs)


@dataclass
class CheckOutcome:
    verdict: Verdict
    adversary: Optional[AdversaryModel] = None
    detail: str = ""
    #: Set for INVALID_PAIR verdicts: the rejection reason.
    invalid_reason: Optional[InvalidReason] = None
    #: Set for VIOLATION / FALSE_POSITIVE verdicts: the first adversary
    #: observation element the two runs disagree on.
    divergence: Optional[Divergence] = None


def check_contract_pair(
    program,
    defense_factory: Callable[[], object],
    contract: Contract,
    input_a: TestInput,
    input_b: TestInput,
    config: CoreConfig = P_CORE,
    adversaries: Tuple[AdversaryModel, ...] = (AdversaryModel.CACHE_TLB,
                                               AdversaryModel.TIMING),
    public_def_pcs: Optional[Set[int]] = None,
    fuel: int = 60_000,
    max_cycles: int = 400_000,
) -> CheckOutcome:
    """Run one AMuLeT*-style test: two inputs, one contract, one or more
    adversary models."""
    seq_a = run_program(program, input_a.build_memory(),
                        input_a.build_regs(), fuel=fuel)
    seq_b = run_program(program, input_b.build_memory(),
                        input_b.build_regs(), fuel=fuel)
    if seq_a.halt_reason == "fuel" or seq_b.halt_reason == "fuel":
        return CheckOutcome(Verdict.INVALID_PAIR, detail="nonterminating",
                            invalid_reason=InvalidReason.NONTERMINATING)

    trace_a = contract_trace(seq_a, contract.observer, public_def_pcs)
    trace_b = contract_trace(seq_b, contract.observer, public_def_pcs)
    if trace_a != trace_b:
        return CheckOutcome(Verdict.INVALID_PAIR,
                            detail="contract-distinguishable inputs",
                            invalid_reason=InvalidReason.DISTINGUISHABLE)

    hw_a = simulate(program, defense_factory(), config,
                    input_a.build_memory(), input_a.build_regs(),
                    max_cycles=max_cycles)
    hw_b = simulate(program, defense_factory(), config,
                    input_b.build_memory(), input_b.build_regs(),
                    max_cycles=max_cycles)
    # "no_progress" is the early-abort flavour of a timeout: the core
    # proved the machine wedged instead of burning max_cycles.
    if (hw_a.halt_reason in ("timeout", "no_progress")
            or hw_b.halt_reason in ("timeout", "no_progress")):
        return CheckOutcome(Verdict.INVALID_PAIR, detail="hw timeout",
                            invalid_reason=InvalidReason.HW_TIMEOUT)

    for adversary in adversaries:
        if observe(hw_a, adversary) != observe(hw_b, adversary):
            divergence = first_divergence(hw_a, hw_b, adversary)
            if _is_false_positive(hw_a, hw_b):
                return CheckOutcome(Verdict.FALSE_POSITIVE, adversary,
                                    "sequential divergence in committed "
                                    "streams", divergence=divergence)
            detail = f"distinguishable under {adversary.value}"
            if divergence is not None:
                detail += f"; first divergence: {divergence.label}"
            return CheckOutcome(Verdict.VIOLATION, adversary, detail,
                                divergence=divergence)
    return CheckOutcome(Verdict.PASS)


def _is_false_positive(a: CoreResult, b: CoreResult) -> bool:
    """AMuLeT*'s post-processing filter: committed microcode sequences
    differing in PCs or accessed addresses indicate sequential leakage
    (paper SVII-B1e)."""
    return (a.committed_pcs != b.committed_pcs
            or a.committed_accesses != b.committed_accesses)
