"""Adversary models (paper SII-C, SVII-B1d).

An adversary model defines what an attacker can recover from a victim's
microarchitectural execution.  Two models match AMuLeT / AMuLeT*:

* ``CACHE_TLB`` — the default AMuLeT adversary: post-mortem data-cache
  and TLB tag state (prime-and-probe style recovery).
* ``TIMING``    — the new AMuLeT* adversary: the cycle at which each
  committed instruction reaches each pipeline stage plus total runtime.
  This is the model that surfaced the division-latency channel and the
  squash-notification bug on gem5.
"""

from __future__ import annotations

import enum
from typing import Tuple

from ..uarch.pipeline import CoreResult


class AdversaryModel(enum.Enum):
    CACHE_TLB = "cache_tlb"
    TIMING = "timing"


def observe(result: CoreResult, model: AdversaryModel) -> Tuple:
    """Project a finished run into the adversary's view."""
    if model is AdversaryModel.CACHE_TLB:
        return result.adversary_cache_state
    if model is AdversaryModel.TIMING:
        return (result.cycles, tuple(result.timing_trace))
    raise ValueError(f"unknown adversary model: {model!r}")


ALL_MODELS = (AdversaryModel.CACHE_TLB, AdversaryModel.TIMING)
