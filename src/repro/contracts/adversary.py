"""Adversary models (paper SII-C, SVII-B1d).

An adversary model defines what an attacker can recover from a victim's
microarchitectural execution.  Two models match AMuLeT / AMuLeT*:

* ``CACHE_TLB`` — the default AMuLeT adversary: post-mortem data-cache
  and TLB tag state (prime-and-probe style recovery).
* ``TIMING``    — the new AMuLeT* adversary: the cycle at which each
  committed instruction reaches each pipeline stage plus total runtime.
  This is the model that surfaced the division-latency channel and the
  squash-notification bug on gem5.

Besides the opaque :func:`observe` projection the checker compares for
equality, :func:`observe_labeled` produces the same view as a sequence
of *labeled* elements (cache level/set/tag, TLB page, per-stage timing
sample), and :func:`first_divergence` localizes the first element two
runs disagree on — the starting point of every leak-forensics report.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..uarch.pipeline import CoreResult


class AdversaryModel(enum.Enum):
    CACHE_TLB = "cache_tlb"
    TIMING = "timing"


def observe(result: CoreResult, model: AdversaryModel) -> Tuple:
    """Project a finished run into the adversary's view."""
    if model is AdversaryModel.CACHE_TLB:
        return result.adversary_cache_state
    if model is AdversaryModel.TIMING:
        return (result.cycles, tuple(result.timing_trace))
    raise ValueError(f"unknown adversary model: {model!r}")


ALL_MODELS = (AdversaryModel.CACHE_TLB, AdversaryModel.TIMING)


# ----------------------------------------------------------------------
# Structured (labeled) observations and divergence localization
# ----------------------------------------------------------------------

#: Names of the cache levels in ``CoreResult.adversary_cache_state``
#: order (paper Tab. III hierarchy; the TLB rides last).
CACHE_LEVELS = ("l1d", "l2", "l3")

#: Per-stage timestamp labels matching ``Uop.timing_observation()``
#: (pc rides in slot 0; the stages follow).
TIMING_STAGES = ("fetch", "rename", "issue", "complete", "commit")


@dataclass(frozen=True)
class ObservationElement:
    """One labeled element of an adversary observation.

    ``kind`` says what class of element this is; ``location`` pins it
    down within its class:

    * ``cache_tag``  — location ``(level, set_index, line_addr)``
    * ``tlb_page``   — location ``(page,)``
    * ``cycles``     — location ``()`` (total runtime)
    * ``stage_time`` — location ``(commit_index, pc, stage)``
    """

    kind: str
    location: Tuple
    value: object

    @property
    def label(self) -> str:
        if self.kind == "cache_tag":
            level, set_index, line = self.location
            return f"{level} set {set_index} line 0x{line:x}"
        if self.kind == "tlb_page":
            return f"tlb page 0x{self.location[0]:x}"
        if self.kind == "cycles":
            return "total cycles"
        index, pc, stage = self.location
        return f"commit[{index}] pc={pc} {stage}"


def observe_labeled(result: CoreResult,
                    model: AdversaryModel) -> Tuple[ObservationElement, ...]:
    """The structured variant of :func:`observe`: the same view, but
    with every element labeled so a checker (or a human) can say *which*
    observation leaked, not just that the tuples differ."""
    elements = []
    if model is AdversaryModel.CACHE_TLB:
        state = result.adversary_cache_state
        for level, tags in zip(CACHE_LEVELS, state):
            for set_index, line in sorted(tags):
                elements.append(ObservationElement(
                    "cache_tag", (level, set_index, line), "present"))
        for page in sorted(state[-1]):
            elements.append(ObservationElement(
                "tlb_page", (page,), "present"))
        return tuple(elements)
    if model is AdversaryModel.TIMING:
        elements.append(ObservationElement("cycles", (), result.cycles))
        for index, sample in enumerate(result.timing_trace):
            pc = sample[0]
            for stage, cycle in zip(TIMING_STAGES, sample[1:]):
                elements.append(ObservationElement(
                    "stage_time", (index, pc, stage), cycle))
        return tuple(elements)
    raise ValueError(f"unknown adversary model: {model!r}")


@dataclass(frozen=True)
class Divergence:
    """The first adversary-visible element two runs disagree on."""

    adversary: str
    kind: str
    location: Tuple
    value_a: object
    value_b: object

    @property
    def label(self) -> str:
        return ObservationElement(self.kind, self.location, None).label

    def describe(self) -> str:
        return (f"{self.label}: {self.value_a!r} != {self.value_b!r} "
                f"(adversary: {self.adversary})")

    def to_dict(self) -> Dict:
        return {"adversary": self.adversary, "kind": self.kind,
                "location": list(self.location),
                "value_a": self.value_a, "value_b": self.value_b}

    @classmethod
    def from_dict(cls, payload: Dict) -> "Divergence":
        return cls(adversary=payload["adversary"], kind=payload["kind"],
                   location=tuple(payload["location"]),
                   value_a=payload["value_a"], value_b=payload["value_b"])


def first_divergence(result_a: CoreResult, result_b: CoreResult,
                     model: AdversaryModel) -> Optional[Divergence]:
    """Localize the first observation element that distinguishes two
    runs under ``model``, or None if the views are identical.

    Cache/TLB state is a *set* of tags, so "first" means the smallest
    ``(level, set, line)`` present in exactly one run.  Timing traces
    are ordered, so "first" is the earliest committed-instruction stage
    sample (or the total cycle count) that differs.
    """
    obs_a = observe_labeled(result_a, model)
    obs_b = observe_labeled(result_b, model)
    if model is AdversaryModel.CACHE_TLB:
        map_a = {(e.kind, e.location): e.value for e in obs_a}
        map_b = {(e.kind, e.location): e.value for e in obs_b}
        for kind, location in sorted(set(map_a) | set(map_b)):
            value_a = map_a.get((kind, location), "absent")
            value_b = map_b.get((kind, location), "absent")
            if value_a != value_b:
                return Divergence(model.value, kind, location,
                                  value_a, value_b)
        return None
    for element_a, element_b in zip(obs_a, obs_b):
        if (element_a.kind, element_a.location) != \
                (element_b.kind, element_b.location):
            # Streams diverged structurally (different committed pcs):
            # report the position itself.
            return Divergence(model.value, element_a.kind,
                              element_a.location,
                              element_a.label, element_b.label)
        if element_a.value != element_b.value:
            return Divergence(model.value, element_a.kind,
                              element_a.location,
                              element_a.value, element_b.value)
    if len(obs_a) != len(obs_b):
        return Divergence(model.value, "cycles", (),
                          f"{len(obs_a)} elements", f"{len(obs_b)} elements")
    return None
