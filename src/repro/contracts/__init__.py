"""repro.contracts — hardware-software security contracts (paper SII-C):
observer/execution modes, adversary models, and the violation checker."""

from .adversary import ALL_MODELS, AdversaryModel, observe
from .checker import (
    CheckOutcome,
    Contract,
    TestInput,
    Verdict,
    check_contract_pair,
)

__all__ = [
    "ALL_MODELS", "AdversaryModel", "observe",
    "CheckOutcome", "Contract", "TestInput", "Verdict",
    "check_contract_pair",
]
