"""repro.contracts — hardware-software security contracts (paper SII-C):
observer/execution modes, adversary models, and the violation checker."""

from .adversary import (
    ALL_MODELS,
    AdversaryModel,
    Divergence,
    ObservationElement,
    first_divergence,
    observe,
    observe_labeled,
)
from .checker import (
    CheckOutcome,
    Contract,
    InvalidReason,
    TestInput,
    Verdict,
    check_contract_pair,
)

__all__ = [
    "ALL_MODELS", "AdversaryModel", "Divergence", "ObservationElement",
    "first_divergence", "observe", "observe_labeled",
    "CheckOutcome", "Contract", "InvalidReason", "TestInput", "Verdict",
    "check_contract_pair",
]
