"""Security microbenchmark fixtures shared by the test suite, the
golden-stats regression tests, and the ``repro diff`` harness.

Each fixture is a small assembly program engineered to exercise one
leak mechanism end to end:

* :data:`V1_GADGET` — the classic Spectre v1 bounds-check-bypass
  gadget with a flush+reload probe array (paper SII-A).
* :data:`DIV_CHANNEL` — a transient division whose secret-dependent
  latency contends with a committed division for the non-pipelined
  divider (paper SVII-B4b).
* :data:`SQUASH_BUG` — the STT-inherited squash-notification bug: a
  tainted transient branch delays a younger untainted branch's squash
  secret-dependently (paper SVII-B4b).

:func:`build` assembles a fixture and plants its secret, so callers
need one line to obtain a runnable (program, memory) pair.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from .arch import Memory
from .isa import assemble
from .isa.program import Program

V1_GADGET = """
main:
    movi r1, 0x1000      ; A base
    movi r2, 0x80000     ; probe array
    movi r6, 0
init:
    store [r1 + r6], r6
    addi r6, r6, 8
    cmpi r6, 512
    blt init
    load r10, [r1 + 768] ; prime the line holding the secret (A+800)
    movi r7, 0
    movi r9, 0x20000
train:
    movi r0, 0
    call gadget
    addi r9, r9, 0x4000
    addi r7, r7, 1
    cmpi r7, 6
    blt train
    movi r0, 800         ; out-of-bounds: A+800 holds the secret
    call gadget
    halt
.func gadget
gadget:
    load r8, [r9]
    load r8, [r9 + r8 + 64]
    addi r8, r8, 512
    cmp r0, r8
    bge skip
    load r3, [r1 + r0]
    shli r3, r3, 9
    load r4, [r2 + r3]
skip:
    ret
.endfunc
"""

DIV_CHANNEL = """
main:
    movi r10, 0x18000
    load r0, [r10]            ; prime the secret's line
    movi r1, 1
    muli r1, r1, 3
    muli r1, r1, 3
    muli r1, r1, 3
    muli r1, r1, 3
    muli r1, r1, 3
    muli r1, r1, 3
    muli r1, r1, 3
    muli r1, r1, 3
    muli r1, r1, 3
    muli r1, r1, 3
    muli r1, r1, 3
    muli r1, r1, 3
    muli r1, r1, 3
    muli r1, r1, 3
    muli r1, r1, 3
    andi r1, r1, 0
    test r1, r1
    beq skip                  ; architecturally taken; cold-predicted NT
    prot load r2, [r10 + 32]  ; transient secret (protected, line-primed)
    prot shli r2, r2, 4
    movi r6, 3
    muli r6, r6, 3
    muli r6, r6, 3
    muli r6, r6, 3
    muli r6, r6, 3
    muli r6, r6, 3
    muli r6, r6, 3
    muli r6, r6, 3
    muli r6, r6, 3
    muli r6, r6, 3
    muli r6, r6, 3
    muli r6, r6, 3
    muli r6, r6, 3
    muli r6, r6, 3
    prot add r6, r6, r2       ; divisor = f(secret), ready just before
    movi r4, -1               ; the squash (mul chains are calibrated)
    prot div r4, r4, r6       ; transient div: latency = f(secret)
skip:
    movi r5, 77
    movi r6, 13
    div r7, r5, r6            ; committed div contends for the divider
    halt
"""

SQUASH_BUG = """
main:
    movi r10, 0x18000
    movi r12, 0x30000
    load r0, [r10]             ; prime the secret's line
    load r1, [r12]             ; cold chain: outer branch resolves late
    load r1, [r12 + r1 + 64]
    test r1, r1
    beq done                   ; arch taken; predicted not-taken
    prot load r2, [r10 + 8]    ; transient secret
    test r2, r2
    beq m1                     ; tainted branch: outcome = f(secret)
    nop
m1:
    movi r5, 1                 ; short public chain: ensures the tainted
    muli r5, r5, 3             ; branch above has executed (and is
    muli r5, r5, 3             ; resolution-pending) before this branch
    muli r5, r5, 3             ; tries to initiate its squash
    muli r5, r5, 3
    cmpi r5, 0
    bne m2                     ; untainted, always mispredicts (cold)
    nop                        ; predicted (fall-through) path...
    nop
    nop
    jmp m3                     ; ...never reaches the probe loads
m2:
    movi r3, 0x50000           ; fetched only once this branch squashes:
    load r4, [r3]              ; the bug decides *whether* that happens
    load r4, [r3 + 0x1000]     ; before the outer branch kills the path
m3:
    nop
done:
    halt
"""


@dataclass(frozen=True)
class Fixture:
    """One named security microbenchmark."""

    name: str
    asm: str
    #: Where :func:`build` plants the secret word.
    secret_addr: int
    description: str = ""

    def program(self) -> Program:
        return assemble(self.asm).linked()


FIXTURES: Dict[str, Fixture] = {
    fixture.name: fixture
    for fixture in (
        Fixture("v1-gadget", V1_GADGET, 0x1000 + 800,
                "Spectre v1 bounds-check bypass with a probe array"),
        Fixture("div-channel", DIV_CHANNEL, 0x18020,
                "transient division holds the divider secret-dependently"),
        Fixture("squash-bug", SQUASH_BUG, 0x18008,
                "tainted branch delays an untainted branch's squash"),
    )
}


def build(name: str, secret: int = 3,
          extra_mem: Optional[Dict[int, int]] = None,
          ) -> Tuple[Program, Memory]:
    """Assemble a fixture and plant ``secret`` at its secret address."""
    fixture = FIXTURES[name]
    memory = Memory()
    memory.write_word(fixture.secret_addr, secret)
    if extra_mem:
        for addr, value in extra_mem.items():
            memory.write_word(addr, value)
    return fixture.program(), memory
