"""Two-way textual assembler for the repro ISA.

Syntax example::

    .func leak_gadget
    gadget:
        movi r1, 64
        cmp r0, r1
        bge done            ; bounds check
        load r2, [r3 + r0]  ; array access
        shli r2, r2, 6
        prot load r4, [r5 + r2 + 0]
    done:
        ret
    .endfunc

``prot`` before a mnemonic sets the ProtISA PROT prefix.  Comments start
with ``;`` or ``#``.  ``.func``/``.endfunc`` delimit function regions and
``.entry LABEL`` sets the program entry point.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple, Union

from .instruction import Instruction
from .operations import Cond, Op
from .program import FunctionRegion, Program, ProgramError
from .registers import reg_name, parse_reg


class AssemblyError(Exception):
    """Raised on malformed assembly input."""

    def __init__(self, line_no: int, message: str) -> None:
        super().__init__(f"line {line_no}: {message}")
        self.line_no = line_no


_BRANCH_ALIASES = {f"b{c.value}": c for c in Cond}

_MEM_RE = re.compile(
    r"^\[\s*(?P<base>\w+)\s*"
    r"(?:\+\s*(?P<index>[a-zA-Z]\w*)\s*)?"
    r"(?:(?P<sign>[+-])\s*(?P<disp>\w+)\s*)?\]$")


def _parse_int(text: str, line_no: int) -> int:
    try:
        return int(text, 0)
    except ValueError:
        raise AssemblyError(line_no, f"bad integer: {text!r}") from None


def _parse_mem(operand: str, line_no: int) -> Tuple[int, Optional[int], int]:
    """Parse ``[base (+ index) (+/- disp)]`` into (base, index, disp)."""
    match = _MEM_RE.match(operand.strip())
    if not match:
        raise AssemblyError(line_no, f"bad memory operand: {operand!r}")
    base = parse_reg(match.group("base"))
    index_text = match.group("index")
    index: Optional[int] = None
    if index_text is not None:
        try:
            index = parse_reg(index_text)
        except ValueError:
            # "[ra + 8]" parses with index=8's text in the index slot;
            # reinterpret a non-register middle term as the displacement.
            if match.group("disp") is None:
                return base, None, _parse_int(index_text, line_no)
            raise AssemblyError(
                line_no, f"bad index register: {index_text!r}") from None
    disp = 0
    if match.group("disp") is not None:
        disp = _parse_int(match.group("disp"), line_no)
        if match.group("sign") == "-":
            disp = -disp
    return base, index, disp


def _parse_target(text: str) -> Union[str, int]:
    """Branch targets are label names, or raw PCs in disassembled code."""
    try:
        return int(text, 0)
    except ValueError:
        return text


def _split_operands(text: str) -> List[str]:
    """Split an operand string on top-level commas (not inside [..])."""
    parts: List[str] = []
    depth = 0
    current = []
    for ch in text:
        if ch == "[":
            depth += 1
        elif ch == "]":
            depth -= 1
        if ch == "," and depth == 0:
            parts.append("".join(current).strip())
            current = []
        else:
            current.append(ch)
    tail = "".join(current).strip()
    if tail:
        parts.append(tail)
    return parts


def assemble(source: str) -> Program:
    """Assemble source text into an unlinked :class:`Program`."""
    instructions: List[Instruction] = []
    labels: Dict[str, int] = {}
    functions: List[FunctionRegion] = []
    open_func: Optional[Tuple[str, int]] = None
    entry_label: Optional[str] = None

    for line_no, raw in enumerate(source.splitlines(), start=1):
        line = re.split(r"[;#]", raw, maxsplit=1)[0].strip()
        if not line:
            continue

        if line.startswith("."):
            parts = line.split()
            directive = parts[0]
            if directive == ".func":
                if len(parts) != 2:
                    raise AssemblyError(line_no, ".func needs a name")
                if open_func is not None:
                    raise AssemblyError(line_no, "nested .func")
                open_func = (parts[1], len(instructions))
            elif directive == ".endfunc":
                if open_func is None:
                    raise AssemblyError(line_no, ".endfunc without .func")
                name, start = open_func
                functions.append(
                    FunctionRegion(name, start, len(instructions)))
                open_func = None
            elif directive == ".entry":
                if len(parts) != 2:
                    raise AssemblyError(line_no, ".entry needs a label")
                entry_label = parts[1]
            else:
                raise AssemblyError(line_no, f"unknown directive {directive}")
            continue

        while ":" in line:
            label, _, rest = line.partition(":")
            label = label.strip()
            if not re.fullmatch(r"\w+", label):
                raise AssemblyError(line_no, f"bad label {label!r}")
            if label in labels:
                raise AssemblyError(line_no, f"duplicate label {label!r}")
            labels[label] = len(instructions)
            line = rest.strip()
        if not line:
            continue

        instructions.append(_parse_instruction(line, line_no))

    if open_func is not None:
        raise AssemblyError(len(source.splitlines()), "unterminated .func")

    entry = 0
    if entry_label is not None:
        if entry_label not in labels:
            raise ProgramError(f"unknown entry label {entry_label!r}")
        entry = labels[entry_label]
    return Program(instructions, labels, functions, entry)


def _parse_instruction(line: str, line_no: int) -> Instruction:
    prot = False
    tokens = line.split(None, 1)
    mnemonic = tokens[0].lower()
    if mnemonic == "prot":
        prot = True
        if len(tokens) == 1:
            raise AssemblyError(line_no, "prot prefix without instruction")
        tokens = tokens[1].split(None, 1)
        mnemonic = tokens[0].lower()
    operand_text = tokens[1] if len(tokens) > 1 else ""
    operands = _split_operands(operand_text)

    def need(count: int) -> None:
        if len(operands) != count:
            raise AssemblyError(
                line_no,
                f"{mnemonic} expects {count} operands, got {len(operands)}")

    if mnemonic in _BRANCH_ALIASES:
        need(1)
        return Instruction(Op.BR, cond=_BRANCH_ALIASES[mnemonic],
                           target=_parse_target(operands[0]), prot=prot)

    try:
        op = Op(mnemonic)
    except ValueError:
        raise AssemblyError(line_no, f"unknown mnemonic {mnemonic!r}") \
            from None

    if op is Op.BR:
        need(2)
        try:
            cond = Cond(operands[0].lower())
        except ValueError:
            raise AssemblyError(
                line_no, f"unknown condition {operands[0]!r}") from None
        return Instruction(op, cond=cond, target=_parse_target(operands[1]),
                           prot=prot)
    if op in (Op.JMP, Op.CALL):
        need(1)
        return Instruction(op, target=_parse_target(operands[0]), prot=prot)
    if op is Op.JMPI:
        need(1)
        return Instruction(op, ra=parse_reg(operands[0]), prot=prot)
    if op in (Op.RET, Op.NOP, Op.HALT, Op.MFENCE):
        need(0)
        return Instruction(op, prot=prot)
    if op is Op.MOVI:
        need(2)
        return Instruction(op, rd=parse_reg(operands[0]),
                           imm=_parse_int(operands[1], line_no), prot=prot)
    if op is Op.MOV:
        need(2)
        return Instruction(op, rd=parse_reg(operands[0]),
                           ra=parse_reg(operands[1]), prot=prot)
    if op is Op.PUSH:
        need(1)
        return Instruction(op, ra=parse_reg(operands[0]), prot=prot)
    if op is Op.POP:
        need(1)
        return Instruction(op, rd=parse_reg(operands[0]), prot=prot)
    if op is Op.LOAD:
        need(2)
        base, index, disp = _parse_mem(operands[1], line_no)
        return Instruction(op, rd=parse_reg(operands[0]), ra=base, rb=index,
                           imm=disp, prot=prot)
    if op is Op.STORE:
        need(2)
        base, index, disp = _parse_mem(operands[0], line_no)
        return Instruction(op, rd=parse_reg(operands[1]), ra=base, rb=index,
                           imm=disp, prot=prot)
    if op in (Op.CMP, Op.TEST):
        need(2)
        return Instruction(op, ra=parse_reg(operands[0]),
                           rb=parse_reg(operands[1]), prot=prot)
    if op is Op.CMPI:
        need(2)
        return Instruction(op, ra=parse_reg(operands[0]),
                           imm=_parse_int(operands[1], line_no), prot=prot)
    if op.value.endswith("i") and op is not Op.MOVI:
        need(3)
        return Instruction(op, rd=parse_reg(operands[0]),
                           ra=parse_reg(operands[1]),
                           imm=_parse_int(operands[2], line_no), prot=prot)
    # Remaining register-register ALU + div forms: rd, ra, rb
    need(3)
    return Instruction(op, rd=parse_reg(operands[0]),
                       ra=parse_reg(operands[1]),
                       rb=parse_reg(operands[2]), prot=prot)


# ----------------------------------------------------------------------
# Disassembly
# ----------------------------------------------------------------------

def _format_mem(inst: Instruction) -> str:
    parts = [reg_name(inst.ra)]
    if inst.rb is not None:
        parts.append(reg_name(inst.rb))
    text = " + ".join(parts)
    if inst.imm:
        sign = "+" if inst.imm >= 0 else "-"
        text += f" {sign} {abs(inst.imm)}"
    return f"[{text}]"


def format_instruction(inst: Instruction) -> str:
    """Render one instruction back to assembly text."""
    prefix = "prot " if inst.prot else ""
    op = inst.op
    if op is Op.BR:
        return f"{prefix}b{inst.cond.value} {inst.target}"
    if op in (Op.JMP, Op.CALL):
        return f"{prefix}{op.value} {inst.target}"
    if op is Op.JMPI:
        return f"{prefix}jmpi {reg_name(inst.ra)}"
    if op in (Op.RET, Op.NOP, Op.HALT, Op.MFENCE):
        return f"{prefix}{op.value}"
    if op is Op.MOVI:
        return f"{prefix}movi {reg_name(inst.rd)}, {inst.imm}"
    if op is Op.MOV:
        return f"{prefix}mov {reg_name(inst.rd)}, {reg_name(inst.ra)}"
    if op is Op.PUSH:
        return f"{prefix}push {reg_name(inst.ra)}"
    if op is Op.POP:
        return f"{prefix}pop {reg_name(inst.rd)}"
    if op is Op.LOAD:
        return f"{prefix}load {reg_name(inst.rd)}, {_format_mem(inst)}"
    if op is Op.STORE:
        return f"{prefix}store {_format_mem(inst)}, {reg_name(inst.rd)}"
    if op in (Op.CMP, Op.TEST):
        return f"{prefix}{op.value} {reg_name(inst.ra)}, {reg_name(inst.rb)}"
    if op is Op.CMPI:
        return f"{prefix}cmpi {reg_name(inst.ra)}, {inst.imm}"
    if op.value.endswith("i") and op is not Op.MOVI:
        return (f"{prefix}{op.value} {reg_name(inst.rd)}, "
                f"{reg_name(inst.ra)}, {inst.imm}")
    return (f"{prefix}{op.value} {reg_name(inst.rd)}, "
            f"{reg_name(inst.ra)}, {reg_name(inst.rb)}")


def disassemble(program: Program) -> str:
    """Render a whole program, reconstructing label lines."""
    by_pc: Dict[int, List[str]] = {}
    for name, pc in program.labels.items():
        by_pc.setdefault(pc, []).append(name)
    lines: List[str] = []
    for pc, inst in enumerate(program.instructions):
        for name in sorted(by_pc.get(pc, [])):
            lines.append(f"{name}:")
        lines.append(f"    {format_instruction(inst)}")
    for name in sorted(by_pc.get(len(program.instructions), [])):
        lines.append(f"{name}:")
    return "\n".join(lines) + "\n"
