"""Program container: instructions, labels, and function regions.

A :class:`Program` is an immutable-ish list of instructions plus a label
map.  Branch targets are label names until :meth:`Program.linked` resolves
them to instruction indices (our PCs are instruction indices).

Function regions carry the per-component class labels that ProtCC's
multi-class driver consumes (paper SV-A: "allowing each component/function
to be instrumented independently according to its corresponding class").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from .instruction import Instruction
from .operations import Op


class ProgramError(Exception):
    """Raised for malformed programs (unknown labels, bad targets)."""


@dataclass(frozen=True)
class FunctionRegion:
    """A named, half-open [start, end) range of instruction indices."""

    name: str
    start: int
    end: int

    def __contains__(self, pc: int) -> bool:
        return self.start <= pc < self.end


class Program:
    """A linked or unlinked sequence of instructions."""

    def __init__(
        self,
        instructions: Sequence[Instruction],
        labels: Optional[Dict[str, int]] = None,
        functions: Optional[Sequence[FunctionRegion]] = None,
        entry: int = 0,
    ) -> None:
        self.instructions: List[Instruction] = list(instructions)
        self.labels: Dict[str, int] = dict(labels or {})
        self.functions: List[FunctionRegion] = list(functions or [])
        self.entry = entry
        self._validate_labels()

    def _validate_labels(self) -> None:
        for name, index in self.labels.items():
            if not 0 <= index <= len(self.instructions):
                raise ProgramError(
                    f"label {name!r} points at {index}, outside program "
                    f"of length {len(self.instructions)}")

    def __len__(self) -> int:
        return len(self.instructions)

    def __getitem__(self, pc: int) -> Instruction:
        return self.instructions[pc]

    def __iter__(self):
        return iter(self.instructions)

    # ------------------------------------------------------------------

    def linked(self) -> "Program":
        """Return a copy with every label target resolved to a PC."""
        resolved: List[Instruction] = []
        for i, inst in enumerate(self.instructions):
            if isinstance(inst.target, str):
                if inst.target not in self.labels:
                    raise ProgramError(
                        f"pc {i}: unknown label {inst.target!r}")
                inst = Instruction(
                    op=inst.op, rd=inst.rd, ra=inst.ra, rb=inst.rb,
                    imm=inst.imm, target=self.labels[inst.target],
                    cond=inst.cond, prot=inst.prot)
            resolved.append(inst)
        return Program(resolved, self.labels, self.functions, self.entry)

    @property
    def is_linked(self) -> bool:
        return all(not isinstance(i.target, str) for i in self.instructions)

    # ------------------------------------------------------------------

    def function_at(self, pc: int) -> Optional[FunctionRegion]:
        """Return the function region containing ``pc``, if any."""
        for region in self.functions:
            if pc in region:
                return region
        return None

    def function_named(self, name: str) -> FunctionRegion:
        for region in self.functions:
            if region.name == name:
                return region
        raise ProgramError(f"no function named {name!r}")

    # ------------------------------------------------------------------

    def with_instructions(self, instructions: Sequence[Instruction]) -> "Program":
        """Return a copy with the instruction list replaced (same length
        required, so labels and function regions stay valid).  ProtCC's
        prefix-only passes use this."""
        if len(instructions) != len(self.instructions):
            raise ProgramError(
                "with_instructions requires an equal-length list; use a "
                "rebuild for passes that insert instructions")
        return Program(list(instructions), self.labels, self.functions,
                       self.entry)

    def code_size(self) -> int:
        """Static code size metric: non-NOP instruction count (ProtCC
        code-size overhead experiments, paper SIX-A2).  PROT prefixes
        add one byte on x86; we charge them fractionally."""
        base = sum(1 for i in self.instructions if i.op is not Op.NOP)
        return base

    def prot_count(self) -> int:
        """Number of PROT-prefixed instructions."""
        return sum(1 for i in self.instructions if i.prot)

    def __repr__(self) -> str:  # pragma: no cover
        return (f"Program({len(self.instructions)} instructions, "
                f"{len(self.labels)} labels, "
                f"{len(self.functions)} functions)")


def find_basic_block_leaders(program: Program) -> List[int]:
    """Return sorted basic-block leader PCs of a linked program.

    Leaders: the entry, every branch target, and every instruction
    following a control-flow op.  Shared by ProtCC's CFG builder and the
    fuzzer's program validator.
    """
    if not program.is_linked:
        program = program.linked()
    leaders = {program.entry, 0}
    for pc, inst in enumerate(program.instructions):
        if inst.is_control:
            if isinstance(inst.target, int):
                leaders.add(inst.target)
            if pc + 1 < len(program):
                leaders.add(pc + 1)
    return sorted(pc for pc in leaders if pc < len(program))
