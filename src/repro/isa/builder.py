"""Programmatic assembly builder used by the workload generators.

Workloads in :mod:`repro.workloads` are synthesized in Python; this
builder gives them a fluent way to emit instructions, place labels, and
declare function regions without string formatting::

    asm = Builder()
    with asm.func("memset_like"):
        asm.movi(R0, 0)
        loop = asm.fresh_label("loop")
        asm.label(loop)
        asm.store_at(R1, None, 0, R0)
        asm.addi(R1, R1, 8)
        asm.subi(R2, R2, 1)
        asm.cmpi(R2, 0)
        asm.br(Cond.NE, loop)
        asm.ret()
    program = asm.build()
"""

from __future__ import annotations

import contextlib
import itertools
from typing import Dict, List

from .instruction import Instruction
from .operations import Cond, Op
from .program import FunctionRegion, Program


class Builder:
    """Accumulates instructions into a :class:`Program`."""

    def __init__(self) -> None:
        self._instructions: List[Instruction] = []
        self._labels: Dict[str, int] = {}
        self._functions: List[FunctionRegion] = []
        self._entry = 0
        self._label_counter = itertools.count()

    # -- structure -----------------------------------------------------

    def fresh_label(self, stem: str = "L") -> str:
        return f"{stem}_{next(self._label_counter)}"

    def label(self, name: str) -> str:
        if name in self._labels:
            raise ValueError(f"duplicate label {name!r}")
        self._labels[name] = len(self._instructions)
        return name

    def entry_here(self) -> None:
        self._entry = len(self._instructions)

    @contextlib.contextmanager
    def func(self, name: str):
        start = len(self._instructions)
        self.label(name)
        yield
        self._functions.append(
            FunctionRegion(name, start, len(self._instructions)))

    def emit(self, inst: Instruction) -> None:
        self._instructions.append(inst)

    def build(self) -> Program:
        return Program(list(self._instructions), dict(self._labels),
                       list(self._functions), self._entry).linked()

    @property
    def here(self) -> int:
        return len(self._instructions)

    # -- instruction emitters -------------------------------------------

    def movi(self, rd, imm, prot=False):
        self.emit(Instruction(Op.MOVI, rd=rd, imm=imm, prot=prot))

    def mov(self, rd, ra, prot=False):
        self.emit(Instruction(Op.MOV, rd=rd, ra=ra, prot=prot))

    def _alu(self, op, rd, ra, rb, prot):
        self.emit(Instruction(op, rd=rd, ra=ra, rb=rb, prot=prot))

    def add(self, rd, ra, rb, prot=False):
        self._alu(Op.ADD, rd, ra, rb, prot)

    def sub(self, rd, ra, rb, prot=False):
        self._alu(Op.SUB, rd, ra, rb, prot)

    def and_(self, rd, ra, rb, prot=False):
        self._alu(Op.AND, rd, ra, rb, prot)

    def or_(self, rd, ra, rb, prot=False):
        self._alu(Op.OR, rd, ra, rb, prot)

    def xor(self, rd, ra, rb, prot=False):
        self._alu(Op.XOR, rd, ra, rb, prot)

    def shl(self, rd, ra, rb, prot=False):
        self._alu(Op.SHL, rd, ra, rb, prot)

    def shr(self, rd, ra, rb, prot=False):
        self._alu(Op.SHR, rd, ra, rb, prot)

    def mul(self, rd, ra, rb, prot=False):
        self._alu(Op.MUL, rd, ra, rb, prot)

    def div(self, rd, ra, rb, prot=False):
        self._alu(Op.DIV, rd, ra, rb, prot)

    def rem(self, rd, ra, rb, prot=False):
        self._alu(Op.REM, rd, ra, rb, prot)

    def _alui(self, op, rd, ra, imm, prot):
        self.emit(Instruction(op, rd=rd, ra=ra, imm=imm, prot=prot))

    def addi(self, rd, ra, imm, prot=False):
        self._alui(Op.ADDI, rd, ra, imm, prot)

    def subi(self, rd, ra, imm, prot=False):
        self._alui(Op.SUBI, rd, ra, imm, prot)

    def andi(self, rd, ra, imm, prot=False):
        self._alui(Op.ANDI, rd, ra, imm, prot)

    def ori(self, rd, ra, imm, prot=False):
        self._alui(Op.ORI, rd, ra, imm, prot)

    def xori(self, rd, ra, imm, prot=False):
        self._alui(Op.XORI, rd, ra, imm, prot)

    def shli(self, rd, ra, imm, prot=False):
        self._alui(Op.SHLI, rd, ra, imm, prot)

    def shri(self, rd, ra, imm, prot=False):
        self._alui(Op.SHRI, rd, ra, imm, prot)

    def muli(self, rd, ra, imm, prot=False):
        self._alui(Op.MULI, rd, ra, imm, prot)

    def cmp(self, ra, rb, prot=False):
        self.emit(Instruction(Op.CMP, ra=ra, rb=rb, prot=prot))

    def cmpi(self, ra, imm, prot=False):
        self.emit(Instruction(Op.CMPI, ra=ra, imm=imm, prot=prot))

    def test(self, ra, rb, prot=False):
        self.emit(Instruction(Op.TEST, ra=ra, rb=rb, prot=prot))

    def load(self, rd, base, index=None, disp=0, prot=False):
        self.emit(Instruction(Op.LOAD, rd=rd, ra=base, rb=index, imm=disp,
                              prot=prot))

    def store(self, base, index, disp, rs, prot=False):
        self.emit(Instruction(Op.STORE, rd=rs, ra=base, rb=index, imm=disp,
                              prot=prot))

    def br(self, cond, target, prot=False):
        self.emit(Instruction(Op.BR, cond=cond, target=target, prot=prot))

    def jmp(self, target):
        self.emit(Instruction(Op.JMP, target=target))

    def jmpi(self, ra, prot=False):
        self.emit(Instruction(Op.JMPI, ra=ra, prot=prot))

    def call(self, target, prot=False):
        self.emit(Instruction(Op.CALL, target=target, prot=prot))

    def ret(self, prot=False):
        self.emit(Instruction(Op.RET, prot=prot))

    def push(self, ra, prot=False):
        self.emit(Instruction(Op.PUSH, ra=ra, prot=prot))

    def pop(self, rd, prot=False):
        self.emit(Instruction(Op.POP, rd=rd, prot=prot))

    def nop(self):
        self.emit(Instruction(Op.NOP))

    def mfence(self):
        self.emit(Instruction(Op.MFENCE))

    def halt(self):
        self.emit(Instruction(Op.HALT))
