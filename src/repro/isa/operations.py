"""Operation and condition codes for the repro ISA.

Every micro-op class the Protean paper's threat model cares about is
present: loads and stores (transmit their address registers at execute),
conditional and indirect branches (transmit flags / target at resolve),
and division (partially transmits both inputs at execute — the new gem5
transmitter AMuLeT* discovered, paper SVII-B4b).
"""

from __future__ import annotations

import enum


class Op(enum.Enum):
    """Micro-op opcodes."""

    # Data movement
    MOVI = "movi"      # rd <- imm
    MOV = "mov"        # rd <- ra (identity moves are ProtISA's unprotect idiom)

    # Three-operand ALU (register-register)
    ADD = "add"
    SUB = "sub"
    AND = "and"
    OR = "or"
    XOR = "xor"
    SHL = "shl"
    SHR = "shr"
    MUL = "mul"

    # Two-operand ALU (register-immediate)
    ADDI = "addi"
    SUBI = "subi"
    ANDI = "andi"
    ORI = "ori"
    XORI = "xori"
    SHLI = "shli"
    SHRI = "shri"
    MULI = "muli"

    # Division: operand-dependent latency makes it a transmitter.
    DIV = "div"
    REM = "rem"

    # Flag-setting compares
    CMP = "cmp"        # flags <- compare(ra, rb)
    CMPI = "cmpi"      # flags <- compare(ra, imm)
    TEST = "test"      # flags <- zero-test(ra & rb)

    # Control flow
    BR = "br"          # conditional branch on flags
    JMP = "jmp"        # direct unconditional jump
    JMPI = "jmpi"      # indirect jump through ra (transmits target)
    CALL = "call"      # push return pc, jump to target
    RET = "ret"        # pop return pc, jump to it (load + indirect jump)

    # Stack sugar (single micro-ops that touch memory)
    PUSH = "push"      # sp -= 8; mem[sp] <- ra
    POP = "pop"        # rd <- mem[sp]; sp += 8

    # Memory
    LOAD = "load"      # rd <- mem[ra + rb + imm]
    STORE = "store"    # mem[ra + rb + imm] <- rs (rs carried in rd field)

    MFENCE = "mfence"  # serializing fence (used by software baselines)
    NOP = "nop"
    HALT = "halt"


class Cond(enum.Enum):
    """Branch conditions, evaluated against the flags register."""

    EQ = "eq"
    NE = "ne"
    LT = "lt"   # signed less-than
    LE = "le"
    GT = "gt"
    GE = "ge"
    B = "b"     # unsigned below
    AE = "ae"   # unsigned at-or-above


#: Flags register encoding (a small bitfield value held in ``flags``).
FLAG_ZF = 1 << 0   # equal
FLAG_LT = 1 << 1   # signed less-than
FLAG_B = 1 << 2    # unsigned below


def encode_flags(a, b):
    """Compute the flags bitfield for ``compare(a, b)`` on 64-bit values."""
    mask = (1 << 64) - 1
    a &= mask
    b &= mask
    signed_a = a - (1 << 64) if a >= (1 << 63) else a
    signed_b = b - (1 << 64) if b >= (1 << 63) else b
    flags = 0
    if a == b:
        flags |= FLAG_ZF
    if signed_a < signed_b:
        flags |= FLAG_LT
    if a < b:
        flags |= FLAG_B
    return flags


def eval_cond(cond, flags):
    """Evaluate a branch condition against a flags bitfield."""
    zf = bool(flags & FLAG_ZF)
    lt = bool(flags & FLAG_LT)
    below = bool(flags & FLAG_B)
    if cond is Cond.EQ:
        return zf
    if cond is Cond.NE:
        return not zf
    if cond is Cond.LT:
        return lt
    if cond is Cond.LE:
        return lt or zf
    if cond is Cond.GT:
        return not (lt or zf)
    if cond is Cond.GE:
        return not lt
    if cond is Cond.B:
        return below
    if cond is Cond.AE:
        return not below
    raise ValueError(f"unknown condition: {cond!r}")


#: ALU ops of the form ``rd <- ra OP rb``.
REG_ALU_OPS = frozenset({
    Op.ADD, Op.SUB, Op.AND, Op.OR, Op.XOR, Op.SHL, Op.SHR, Op.MUL,
})

#: ALU ops of the form ``rd <- ra OP imm``.
IMM_ALU_OPS = frozenset({
    Op.ADDI, Op.SUBI, Op.ANDI, Op.ORI, Op.XORI, Op.SHLI, Op.SHRI, Op.MULI,
})

#: Ops that write the flags register.
FLAG_WRITERS = frozenset({Op.CMP, Op.CMPI, Op.TEST})

#: Division-class ops (the operand-dependent-latency transmitters).
DIV_OPS = frozenset({Op.DIV, Op.REM})

#: Ops that read memory.
MEM_READ_OPS = frozenset({Op.LOAD, Op.POP, Op.RET})

#: Ops that write memory.
MEM_WRITE_OPS = frozenset({Op.STORE, Op.PUSH, Op.CALL})

#: Ops that may redirect control flow.
CONTROL_OPS = frozenset({Op.BR, Op.JMP, Op.JMPI, Op.CALL, Op.RET})
