"""Architectural register file definition for the repro ISA.

The ISA models a compact x86-like machine: 14 general-purpose registers,
a frame pointer, a stack pointer, and a flags register.  ProtISA tracks
protection at *full register* granularity (paper SIV-B), which this flat
register space makes trivial.
"""

from __future__ import annotations

#: Number of general-purpose registers (r0..r13).
NUM_GP_REGS = 14

#: Index of the frame pointer (alias ``fp``).
FP = 14

#: Index of the stack pointer (alias ``sp``).  ProtCC-UNR relies on the
#: stack pointer being statically known to never hold program secrets
#: (paper SV-A4).
SP = 15

#: Index of the flags register, written by CMP/TEST and read by
#: conditional branches.  Conditional branches fully transmit this
#: register when they resolve (paper SII-B1).
FLAGS = 16

#: Total number of architectural registers.
NUM_REGS = 17

#: Canonical register names, index-aligned.
REG_NAMES = tuple(f"r{i}" for i in range(NUM_GP_REGS)) + ("fp", "sp", "flags")

#: Name -> index lookup, including aliases ``r14``/``r15``.
REG_INDEX = {name: i for i, name in enumerate(REG_NAMES)}
REG_INDEX["r14"] = FP
REG_INDEX["r15"] = SP


def reg_name(index):
    """Return the canonical name for a register index."""
    return REG_NAMES[index]


def parse_reg(name):
    """Parse a register name (case-insensitive) into its index.

    Raises ``ValueError`` for unknown names.
    """
    try:
        return REG_INDEX[name.strip().lower()]
    except KeyError:
        raise ValueError(f"unknown register: {name!r}") from None
