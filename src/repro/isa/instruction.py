"""The Instruction class: one micro-op, optionally PROT-prefixed.

ProtISA (paper SIV) is a single instruction prefix.  A ``PROT``-prefixed
instruction adds its output registers to the architectural ProtSet; an
unprefixed instruction removes its output registers and any memory bytes
it reads.  Stores label written bytes according to the protection of
their data operand.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Tuple, Union

from .operations import (
    CONTROL_OPS,
    DIV_OPS,
    FLAG_WRITERS,
    IMM_ALU_OPS,
    MEM_READ_OPS,
    MEM_WRITE_OPS,
    REG_ALU_OPS,
    Cond,
    Op,
)
from .registers import FLAGS, SP


@dataclass(frozen=True)
class Instruction:
    """A single micro-op of the repro ISA.

    Fields are interpreted per opcode:

    * ``rd`` — destination register (or the *data* register of a STORE).
    * ``ra``/``rb`` — source registers; for memory ops, the base and
      optional index address registers.
    * ``imm`` — immediate / address displacement.
    * ``target`` — branch target: a label name before linking, an
      instruction index afterwards.
    * ``cond`` — condition for ``BR``.
    * ``prot`` — the ProtISA PROT prefix.
    """

    op: Op
    rd: Optional[int] = None
    ra: Optional[int] = None
    rb: Optional[int] = None
    imm: int = 0
    target: Optional[Union[str, int]] = None
    cond: Optional[Cond] = None
    prot: bool = False

    # Decode metadata (predicates and operand tuples) is a pure function
    # of the fields, so it is computed once per instruction here instead
    # of per pipeline query: the simulator asks ``is_load``/``src_regs``
    # millions of times per run and the ``op in SET`` enum-hash lookups
    # used to dominate profiles.  The attributes are not dataclass
    # fields, so equality/hash/repr stay field-only.
    def __post_init__(self) -> None:
        op = self.op
        setattr_ = object.__setattr__  # bypass the frozen guard
        is_load = op in MEM_READ_OPS
        is_store = op in MEM_WRITE_OPS
        is_div = op in DIV_OPS
        setattr_(self, "is_load", is_load)
        setattr_(self, "is_store", is_store)
        setattr_(self, "is_mem", is_load or is_store)
        setattr_(self, "is_branch", op in (Op.BR, Op.JMPI, Op.RET))
        setattr_(self, "is_control", op in CONTROL_OPS)
        setattr_(self, "is_div", is_div)
        setattr_(self, "writes_flags", op in FLAG_WRITERS)
        setattr_(self, "transmits_loaded_target", op is Op.RET)
        setattr_(self, "is_transmitter",
                 is_load or is_store or is_div
                 or op in (Op.BR, Op.JMPI, Op.RET))
        setattr_(self, "_dest_regs", self._compute_dest_regs())
        setattr_(self, "_addr_regs", self._compute_addr_regs())
        setattr_(self, "_src_regs", self._compute_src_regs())
        setattr_(self, "_transmit_exec", self._compute_transmit_exec())
        setattr_(self, "_transmit_resolve", self._compute_transmit_resolve())

    # ------------------------------------------------------------------
    # Operand classification
    # ------------------------------------------------------------------

    def dest_regs(self) -> Tuple[int, ...]:
        """Architectural registers written by this instruction."""
        return self._dest_regs

    def _compute_dest_regs(self) -> Tuple[int, ...]:
        op = self.op
        if op is Op.MOVI or op is Op.MOV or op in REG_ALU_OPS \
                or op in IMM_ALU_OPS or op in DIV_OPS or op is Op.LOAD:
            return (self.rd,)
        if op in FLAG_WRITERS:
            return (FLAGS,)
        if op is Op.POP:
            return (self.rd, SP)
        if op is Op.PUSH or op is Op.CALL or op is Op.RET:
            return (SP,)
        return ()

    def src_regs(self) -> Tuple[int, ...]:
        """Architectural registers read by this instruction (including
        address registers and store data operands)."""
        return self._src_regs

    def _compute_src_regs(self) -> Tuple[int, ...]:
        op = self.op
        if op is Op.MOV:
            return (self.ra,)
        if op in REG_ALU_OPS or op in DIV_OPS or op is Op.CMP or op is Op.TEST:
            return (self.ra, self.rb)
        if op in IMM_ALU_OPS or op is Op.CMPI or op is Op.JMPI:
            return (self.ra,)
        if op is Op.BR:
            return (FLAGS,)
        if op is Op.LOAD:
            return self._addr_regs
        if op is Op.STORE:
            return self._addr_regs + (self.rd,)
        if op is Op.PUSH:
            return (SP, self.ra)
        if op is Op.POP or op is Op.CALL or op is Op.RET:
            return (SP,)
        return ()

    def addr_regs(self) -> Tuple[int, ...]:
        """Registers that form the memory address (transmitter-sensitive
        for loads and stores, paper SII-B1)."""
        return self._addr_regs

    def _compute_addr_regs(self) -> Tuple[int, ...]:
        op = self.op
        if op is Op.LOAD or op is Op.STORE:
            regs = (self.ra,)
            if self.rb is not None:
                regs += (self.rb,)
            return regs
        if op in (Op.PUSH, Op.POP, Op.CALL, Op.RET):
            return (SP,)
        return ()

    def data_reg(self) -> Optional[int]:
        """The data operand of a store-class op, if any."""
        if self.op is Op.STORE:
            return self.rd
        if self.op is Op.PUSH:
            return self.ra
        return None

    # ------------------------------------------------------------------
    # Behaviour predicates — precomputed in ``__post_init__``:
    # ``is_load``, ``is_store``, ``is_mem``, ``is_branch``,
    # ``is_control``, ``is_div``, ``writes_flags``, ``is_transmitter``,
    # ``transmits_loaded_target``.
    # ------------------------------------------------------------------

    # ------------------------------------------------------------------
    # Transmitter classification (paper SII-B1)
    # ------------------------------------------------------------------

    def transmit_regs_at_execute(self) -> Tuple[int, ...]:
        """Registers fully/partially transmitted when the op *executes*:
        load/store address registers and both division inputs."""
        return self._transmit_exec

    def _compute_transmit_exec(self) -> Tuple[int, ...]:
        if self.is_mem:
            return self._addr_regs
        if self.is_div:
            return (self.ra, self.rb)
        return ()

    def transmit_regs_at_resolve(self) -> Tuple[int, ...]:
        """Registers fully transmitted when the op *resolves*: a
        conditional branch's flags and an indirect jump's target."""
        return self._transmit_resolve

    def _compute_transmit_resolve(self) -> Tuple[int, ...]:
        if self.op is Op.BR:
            return (FLAGS,)
        if self.op is Op.JMPI:
            return (self.ra,)
        return ()

    # ------------------------------------------------------------------

    def with_prot(self, prot: bool = True) -> "Instruction":
        """Return a copy with the PROT prefix set/cleared."""
        if self.prot == prot:
            return self
        return replace(self, prot=prot)

    def __str__(self) -> str:  # pragma: no cover - formatting shim
        from .assembler import format_instruction

        return format_instruction(self)
