"""The Instruction class: one micro-op, optionally PROT-prefixed.

ProtISA (paper SIV) is a single instruction prefix.  A ``PROT``-prefixed
instruction adds its output registers to the architectural ProtSet; an
unprefixed instruction removes its output registers and any memory bytes
it reads.  Stores label written bytes according to the protection of
their data operand.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Tuple, Union

from .operations import (
    CONTROL_OPS,
    DIV_OPS,
    FLAG_WRITERS,
    IMM_ALU_OPS,
    MEM_READ_OPS,
    MEM_WRITE_OPS,
    REG_ALU_OPS,
    Cond,
    Op,
)
from .registers import FLAGS, SP


@dataclass(frozen=True)
class Instruction:
    """A single micro-op of the repro ISA.

    Fields are interpreted per opcode:

    * ``rd`` — destination register (or the *data* register of a STORE).
    * ``ra``/``rb`` — source registers; for memory ops, the base and
      optional index address registers.
    * ``imm`` — immediate / address displacement.
    * ``target`` — branch target: a label name before linking, an
      instruction index afterwards.
    * ``cond`` — condition for ``BR``.
    * ``prot`` — the ProtISA PROT prefix.
    """

    op: Op
    rd: Optional[int] = None
    ra: Optional[int] = None
    rb: Optional[int] = None
    imm: int = 0
    target: Optional[Union[str, int]] = None
    cond: Optional[Cond] = None
    prot: bool = False

    # ------------------------------------------------------------------
    # Operand classification
    # ------------------------------------------------------------------

    def dest_regs(self) -> Tuple[int, ...]:
        """Architectural registers written by this instruction."""
        op = self.op
        if op is Op.MOVI or op is Op.MOV or op in REG_ALU_OPS \
                or op in IMM_ALU_OPS or op in DIV_OPS or op is Op.LOAD:
            return (self.rd,)
        if op in FLAG_WRITERS:
            return (FLAGS,)
        if op is Op.POP:
            return (self.rd, SP)
        if op is Op.PUSH or op is Op.CALL or op is Op.RET:
            return (SP,)
        return ()

    def src_regs(self) -> Tuple[int, ...]:
        """Architectural registers read by this instruction (including
        address registers and store data operands)."""
        op = self.op
        if op is Op.MOV:
            return (self.ra,)
        if op in REG_ALU_OPS or op in DIV_OPS or op is Op.CMP or op is Op.TEST:
            return (self.ra, self.rb)
        if op in IMM_ALU_OPS or op is Op.CMPI or op is Op.JMPI:
            return (self.ra,)
        if op is Op.BR:
            return (FLAGS,)
        if op is Op.LOAD:
            return self.addr_regs()
        if op is Op.STORE:
            return self.addr_regs() + (self.rd,)
        if op is Op.PUSH:
            return (SP, self.ra)
        if op is Op.POP or op is Op.CALL or op is Op.RET:
            return (SP,)
        return ()

    def addr_regs(self) -> Tuple[int, ...]:
        """Registers that form the memory address (transmitter-sensitive
        for loads and stores, paper SII-B1)."""
        op = self.op
        if op is Op.LOAD or op is Op.STORE:
            regs = (self.ra,)
            if self.rb is not None:
                regs += (self.rb,)
            return regs
        if op in (Op.PUSH, Op.POP, Op.CALL, Op.RET):
            return (SP,)
        return ()

    def data_reg(self) -> Optional[int]:
        """The data operand of a store-class op, if any."""
        if self.op is Op.STORE:
            return self.rd
        if self.op is Op.PUSH:
            return self.ra
        return None

    # ------------------------------------------------------------------
    # Behaviour predicates
    # ------------------------------------------------------------------

    @property
    def is_load(self) -> bool:
        return self.op in MEM_READ_OPS

    @property
    def is_store(self) -> bool:
        return self.op in MEM_WRITE_OPS

    @property
    def is_mem(self) -> bool:
        return self.is_load or self.is_store

    @property
    def is_branch(self) -> bool:
        """Conditional or indirect control flow (may mispredict)."""
        return self.op in (Op.BR, Op.JMPI, Op.RET)

    @property
    def is_control(self) -> bool:
        return self.op in CONTROL_OPS

    @property
    def is_div(self) -> bool:
        return self.op in DIV_OPS

    @property
    def writes_flags(self) -> bool:
        return self.op in FLAG_WRITERS

    # ------------------------------------------------------------------
    # Transmitter classification (paper SII-B1)
    # ------------------------------------------------------------------

    def transmit_regs_at_execute(self) -> Tuple[int, ...]:
        """Registers fully/partially transmitted when the op *executes*:
        load/store address registers and both division inputs."""
        if self.is_mem:
            return self.addr_regs()
        if self.is_div:
            return (self.ra, self.rb)
        return ()

    def transmit_regs_at_resolve(self) -> Tuple[int, ...]:
        """Registers fully transmitted when the op *resolves*: a
        conditional branch's flags and an indirect jump's target."""
        if self.op is Op.BR:
            return (FLAGS,)
        if self.op is Op.JMPI:
            return (self.ra,)
        return ()

    @property
    def transmits_loaded_target(self) -> bool:
        """RET transmits the return address it loads from the stack when
        it resolves (a load output, not a register operand)."""
        return self.op is Op.RET

    @property
    def is_transmitter(self) -> bool:
        return (self.is_mem or self.is_div or self.op in (Op.BR, Op.JMPI)
                or self.op is Op.RET)

    # ------------------------------------------------------------------

    def with_prot(self, prot: bool = True) -> "Instruction":
        """Return a copy with the PROT prefix set/cleared."""
        if self.prot == prot:
            return self
        return replace(self, prot=prot)

    def __str__(self) -> str:  # pragma: no cover - formatting shim
        from .assembler import format_instruction

        return format_instruction(self)
