"""repro.isa — the instruction set and its tooling.

A compact x86-like micro-op ISA with ProtISA's ``PROT`` instruction
prefix (paper SIV).  Provides registers, opcodes, the instruction and
program containers, a textual assembler/disassembler, and a programmatic
builder.
"""

from .registers import (
    FLAGS,
    FP,
    NUM_GP_REGS,
    NUM_REGS,
    REG_NAMES,
    SP,
    parse_reg,
    reg_name,
)
from .operations import (
    Cond,
    DIV_OPS,
    FLAG_WRITERS,
    IMM_ALU_OPS,
    Op,
    REG_ALU_OPS,
    encode_flags,
    eval_cond,
)
from .instruction import Instruction
from .program import FunctionRegion, Program, ProgramError, find_basic_block_leaders
from .assembler import AssemblyError, assemble, disassemble, format_instruction
from .builder import Builder

__all__ = [
    "FLAGS", "FP", "NUM_GP_REGS", "NUM_REGS", "REG_NAMES", "SP",
    "parse_reg", "reg_name",
    "Cond", "DIV_OPS", "FLAG_WRITERS", "IMM_ALU_OPS", "Op", "REG_ALU_OPS",
    "encode_flags", "eval_cond",
    "Instruction",
    "FunctionRegion", "Program", "ProgramError", "find_basic_block_leaders",
    "AssemblyError", "assemble", "disassemble", "format_instruction",
    "Builder",
]
