"""Architectural ProtSet semantics (paper SIV-A/B).

The ProtSet is the set of architectural state elements (registers and
memory bytes) that software asks hardware to protect from transient
leakage.  This module implements ProtISA's *architectural* semantics —
the precise, shadow-memory view that the microarchitectural tags of
:mod:`repro.protisa` conservatively approximate (Lemma 2 in the paper).

Rules (paper SIV-B):

* A PROT-prefixed instruction adds its output registers to the ProtSet.
* An unprefixed instruction removes its output registers and any memory
  bytes it reads from the ProtSet.
* Stores label written bytes according to the protection of their data
  operand (CALL's pushed return address is program-constant and thus
  unprotected unless the CALL is PROT-prefixed).
* PROT-prefixing a load protects its output but *not* the memory it
  reads (classifying already-produced data is futile, paper SIV-A).

Everything starts protected: unknown state must be assumed secret.
"""

from __future__ import annotations

from typing import Set

from ..isa.instruction import Instruction
from ..isa.registers import NUM_REGS
from .executor import StepRecord


class ArchProtSet:
    """Tracks the architectural ProtSet along a sequential execution."""

    def __init__(self) -> None:
        self.protected_regs: Set[int] = set(range(NUM_REGS))
        # Memory bytes are protected by default; this set holds the
        # *unprotected* exceptions (typically small).
        self.unprotected_mem: Set[int] = set()

    # -- queries ---------------------------------------------------------

    def reg_protected(self, reg: int) -> bool:
        return reg in self.protected_regs

    def mem_protected(self, addr: int) -> bool:
        return addr not in self.unprotected_mem

    def word_protected(self, addr: int) -> bool:
        """A word is protected if any of its bytes is."""
        return any(self.mem_protected(addr + i) for i in range(8))

    # -- updates ----------------------------------------------------------

    def apply(self, step: StepRecord) -> None:
        """Update the ProtSet for one retired instruction."""
        inst = step.inst
        if inst.prot:
            self.protected_regs.update(inst.dest_regs())
        else:
            self.protected_regs.difference_update(inst.dest_regs())
            if step.mem_read is not None:
                addr = step.mem_read[0]
                self.unprotected_mem.update(range(addr, addr + 8))
        if step.mem_write is not None:
            addr = step.mem_write[0]
            data_reg = inst.data_reg()
            if data_reg is not None:
                data_protected = self._data_was_protected(inst, data_reg)
            else:
                # CALL pushes a constant return address.
                data_protected = inst.prot
            if data_protected:
                self.unprotected_mem.difference_update(
                    range(addr, addr + 8))
            else:
                self.unprotected_mem.update(range(addr, addr + 8))

    def _data_was_protected(self, inst: Instruction, data_reg: int) -> bool:
        # Protection of the data operand *before* this instruction's own
        # destination updates; store-class ops never write their data
        # register, so current state is the before state.
        return data_reg in self.protected_regs

    def copy(self) -> "ArchProtSet":
        clone = ArchProtSet()
        clone.protected_regs = set(self.protected_regs)
        clone.unprotected_mem = set(self.unprotected_mem)
        return clone
