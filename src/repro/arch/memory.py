"""Sparse byte-addressable memory.

Backing store is a dict of byte addresses; unwritten bytes read as zero.
Both the sequential machine and the O3 core's memory hierarchy sit on
top of this class, so transient wrong-path accesses to arbitrary
addresses are always well-defined.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Optional, Tuple

from .semantics import ADDR_MASK


class Memory:
    """Little-endian sparse memory with 64-bit word accessors."""

    def __init__(self, initial: Optional[Dict[int, int]] = None) -> None:
        self._bytes: Dict[int, int] = {}
        if initial:
            for addr, value in initial.items():
                self.write_byte(addr, value)

    def copy(self) -> "Memory":
        clone = Memory()
        clone._bytes = dict(self._bytes)
        return clone

    # -- byte access ----------------------------------------------------

    def read_byte(self, addr: int) -> int:
        return self._bytes.get(addr & ADDR_MASK, 0)

    def write_byte(self, addr: int, value: int) -> None:
        self._bytes[addr & ADDR_MASK] = value & 0xFF

    # -- word access ----------------------------------------------------

    def read_word(self, addr: int) -> int:
        addr &= ADDR_MASK
        value = 0
        for offset in range(8):
            value |= self.read_byte(addr + offset) << (8 * offset)
        return value

    def write_word(self, addr: int, value: int) -> None:
        addr &= ADDR_MASK
        for offset in range(8):
            self.write_byte(addr + offset, (value >> (8 * offset)) & 0xFF)

    # -- bulk helpers ---------------------------------------------------

    def write_words(self, addr: int, values: Iterable[int]) -> None:
        for i, value in enumerate(values):
            self.write_word(addr + 8 * i, value)

    def read_words(self, addr: int, count: int) -> Tuple[int, ...]:
        return tuple(self.read_word(addr + 8 * i) for i in range(count))

    def touched_addresses(self) -> Iterator[int]:
        """Byte addresses ever written (for input mutation in fuzzing)."""
        return iter(self._bytes)

    def snapshot(self) -> Dict[int, int]:
        return dict(self._bytes)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Memory):
            return NotImplemented
        mine = {a: v for a, v in self._bytes.items() if v}
        theirs = {a: v for a, v in other._bytes.items() if v}
        return mine == theirs

    def __hash__(self):  # pragma: no cover - mutable container
        raise TypeError("Memory is unhashable")

    def __repr__(self) -> str:  # pragma: no cover
        return f"Memory({len(self._bytes)} bytes populated)"
