"""repro.arch — the sequential reference machine and security contracts'
architectural side: SEQ execution, the architectural ProtSet, and the
observer modes that define contract traces."""

from .memory import Memory
from .semantics import (
    ADDR_MASK,
    MASK64,
    alu,
    compare_flags,
    div_timing_class,
    effective_address,
    to_signed,
)
from .executor import (
    DEFAULT_FUEL,
    STACK_TOP,
    SeqResult,
    SequentialMachine,
    StepRecord,
    run_program,
)
from .protset import ArchProtSet
from .observers import ObserverMode, contract_trace, traces_equal

__all__ = [
    "Memory",
    "ADDR_MASK", "MASK64", "alu", "compare_flags", "div_timing_class",
    "effective_address", "to_signed",
    "DEFAULT_FUEL", "STACK_TOP", "SeqResult", "SequentialMachine",
    "StepRecord", "run_program",
    "ArchProtSet",
    "ObserverMode", "contract_trace", "traces_equal",
]
