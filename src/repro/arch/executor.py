"""Sequential (in-order, non-speculative) reference machine.

This is the machine software *thinks* it runs on: the SEQ execution mode
of hardware-software security contracts (paper SII-C).  It produces rich
per-step records that the observer modes in :mod:`repro.arch.observers`
project into contract traces, and that the equivalence property tests
compare against the O3 core's committed state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..isa.instruction import Instruction
from ..isa.operations import (
    DIV_OPS,
    FLAG_WRITERS,
    IMM_ALU_OPS,
    Op,
    REG_ALU_OPS,
    eval_cond,
)
from ..isa.program import Program
from ..isa.registers import FLAGS, NUM_REGS, SP
from .memory import Memory
from .semantics import MASK64, alu, compare_flags, effective_address

#: Default initial stack pointer (grows downward).
STACK_TOP = 0x0010_0000

#: Default execution fuel (steps) before the run is declared divergent.
DEFAULT_FUEL = 200_000


@dataclass(frozen=True)
class StepRecord:
    """Everything that happened during one architectural step."""

    pc: int
    inst: Instruction
    next_pc: int
    reg_reads: Tuple[Tuple[int, int], ...] = ()
    reg_writes: Tuple[Tuple[int, int], ...] = ()
    mem_read: Optional[Tuple[int, int]] = None    # (address, value)
    mem_write: Optional[Tuple[int, int]] = None   # (address, value)
    addr_reg_values: Tuple[Tuple[int, int], ...] = ()
    branch: Optional[Tuple[bool, int]] = None     # (taken, target)
    div_operands: Optional[Tuple[int, int]] = None


@dataclass
class SeqResult:
    """Outcome of a sequential run."""

    steps: List[StepRecord]
    final_regs: Tuple[int, ...]
    memory: Memory
    halt_reason: str
    accessed_bytes: Set[int] = field(default_factory=set)

    @property
    def instruction_count(self) -> int:
        return len(self.steps)


class SequentialMachine:
    """Executes a linked program one instruction at a time."""

    def __init__(
        self,
        program: Program,
        memory: Optional[Memory] = None,
        regs: Optional[Dict[int, int]] = None,
    ) -> None:
        if not program.is_linked:
            program = program.linked()
        self.program = program
        self.memory = memory.copy() if memory is not None else Memory()
        self.regs: List[int] = [0] * NUM_REGS
        self.regs[SP] = STACK_TOP
        if regs:
            for index, value in regs.items():
                self.regs[index] = value & MASK64
        self.pc = program.entry

    # ------------------------------------------------------------------

    def run(self, fuel: int = DEFAULT_FUEL, record: bool = True) -> SeqResult:
        """Run until HALT, fall-off-end, a bad PC, or fuel exhaustion."""
        steps: List[StepRecord] = []
        accessed: Set[int] = set()
        halt_reason = "fuel"
        for _ in range(fuel):
            if not 0 <= self.pc < len(self.program):
                halt_reason = "bad_pc" if self.pc != len(self.program) \
                    else "off_end"
                break
            inst = self.program[self.pc]
            if inst.op is Op.HALT:
                halt_reason = "halt"
                break
            step = self._step(inst)
            if step.mem_read is not None:
                accessed.update(range(step.mem_read[0],
                                      step.mem_read[0] + 8))
            if step.mem_write is not None:
                accessed.update(range(step.mem_write[0],
                                      step.mem_write[0] + 8))
            if record:
                steps.append(step)
            self.pc = step.next_pc
        return SeqResult(steps, tuple(self.regs), self.memory, halt_reason,
                         accessed)

    # ------------------------------------------------------------------

    def _step(self, inst: Instruction) -> StepRecord:
        """Execute one instruction, returning its step record."""
        op = inst.op
        pc = self.pc
        regs = self.regs
        reads: List[Tuple[int, int]] = [(r, regs[r]) for r in inst.src_regs()]
        writes: List[Tuple[int, int]] = []
        mem_read = mem_write = None
        addr_vals: Tuple[Tuple[int, int], ...] = ()
        branch = None
        div_ops = None
        next_pc = pc + 1

        def write_reg(index: int, value: int) -> None:
            value &= MASK64
            regs[index] = value
            writes.append((index, value))

        if op is Op.MOVI:
            write_reg(inst.rd, inst.imm)
        elif op is Op.MOV:
            write_reg(inst.rd, regs[inst.ra])
        elif op in REG_ALU_OPS:
            write_reg(inst.rd, alu(op, regs[inst.ra], regs[inst.rb]))
        elif op in IMM_ALU_OPS:
            write_reg(inst.rd, alu(op, regs[inst.ra], inst.imm & MASK64))
        elif op in DIV_OPS:
            div_ops = (regs[inst.ra], regs[inst.rb])
            write_reg(inst.rd, alu(op, regs[inst.ra], regs[inst.rb]))
        elif op in FLAG_WRITERS:
            b = inst.imm & MASK64 if op is Op.CMPI else regs[inst.rb]
            write_reg(FLAGS, compare_flags(op, regs[inst.ra], b))
        elif op is Op.LOAD:
            addr_vals = tuple((r, regs[r]) for r in inst.addr_regs())
            index_val = regs[inst.rb] if inst.rb is not None else 0
            addr = effective_address(regs[inst.ra], index_val, inst.imm)
            value = self.memory.read_word(addr)
            mem_read = (addr, value)
            write_reg(inst.rd, value)
        elif op is Op.STORE:
            addr_vals = tuple((r, regs[r]) for r in inst.addr_regs())
            index_val = regs[inst.rb] if inst.rb is not None else 0
            addr = effective_address(regs[inst.ra], index_val, inst.imm)
            value = regs[inst.rd]
            self.memory.write_word(addr, value)
            mem_write = (addr, value)
        elif op is Op.PUSH:
            addr_vals = ((SP, regs[SP]),)
            new_sp = (regs[SP] - 8) & MASK64
            addr = effective_address(new_sp, 0, 0)
            self.memory.write_word(addr, regs[inst.ra])
            mem_write = (addr, regs[inst.ra])
            write_reg(SP, new_sp)
        elif op is Op.POP:
            addr_vals = ((SP, regs[SP]),)
            addr = effective_address(regs[SP], 0, 0)
            value = self.memory.read_word(addr)
            mem_read = (addr, value)
            write_reg(inst.rd, value)
            write_reg(SP, (regs[SP] + 8) & MASK64)
        elif op is Op.BR:
            taken = eval_cond(inst.cond, regs[FLAGS])
            target = inst.target if taken else pc + 1
            branch = (taken, target)
            next_pc = target
        elif op is Op.JMP:
            next_pc = inst.target
            branch = (True, next_pc)
        elif op is Op.JMPI:
            next_pc = regs[inst.ra] & MASK64
            branch = (True, next_pc)
        elif op is Op.CALL:
            addr_vals = ((SP, regs[SP]),)
            new_sp = (regs[SP] - 8) & MASK64
            addr = effective_address(new_sp, 0, 0)
            self.memory.write_word(addr, pc + 1)
            mem_write = (addr, pc + 1)
            write_reg(SP, new_sp)
            next_pc = inst.target
            branch = (True, next_pc)
        elif op is Op.RET:
            addr_vals = ((SP, regs[SP]),)
            addr = effective_address(regs[SP], 0, 0)
            target = self.memory.read_word(addr)
            mem_read = (addr, target)
            write_reg(SP, (regs[SP] + 8) & MASK64)
            next_pc = target
            branch = (True, next_pc)
        elif op in (Op.NOP, Op.MFENCE):
            pass
        else:  # pragma: no cover - HALT handled by run()
            raise ValueError(f"cannot step {op!r}")

        return StepRecord(
            pc=pc, inst=inst, next_pc=next_pc,
            reg_reads=tuple(reads), reg_writes=tuple(writes),
            mem_read=mem_read, mem_write=mem_write,
            addr_reg_values=addr_vals, branch=branch, div_operands=div_ops)


def run_program(
    program: Program,
    memory: Optional[Memory] = None,
    regs: Optional[Dict[int, int]] = None,
    fuel: int = DEFAULT_FUEL,
    record: bool = True,
) -> SeqResult:
    """Convenience wrapper: run ``program`` on a fresh machine."""
    return SequentialMachine(program, memory, regs).run(fuel, record)
