"""Observer modes and contract traces (paper SII-C, SVII-B1).

An observer mode defines what architectural state a security contract
exposes at each step of the SEQ execution.  Two victim runs whose
contract traces are equal must be indistinguishable to the adversary on
secure hardware; a microarchitecture that lets an adversary distinguish
them *violates* the contract.

Modes:

* ``ARCH``  — exposes all accessed data (non-secret-accessing code).
* ``CT``    — exposes transmitter operands: individual address registers
  (the AMuLeT* refinement), branch flags, indirect targets, division
  operands (constant-time code).
* ``CTS``   — CT plus all data written by publicly-*typed* definitions.
* ``UNPROT``— CT plus all data held in ProtISA-unprotected registers.
"""

from __future__ import annotations

import enum
from typing import List, Optional, Sequence, Set, Tuple

from ..isa.operations import Op
from .executor import SeqResult, StepRecord
from .protset import ArchProtSet

Observation = Tuple


class ObserverMode(enum.Enum):
    ARCH = "arch"
    CT = "ct"
    CTS = "cts"
    UNPROT = "unprot"


def _ct_observation(step: StepRecord) -> Observation:
    """The CT-mode projection of one step."""
    inst = step.inst
    obs: List = [step.pc, step.next_pc]
    if inst.is_mem:
        # AMuLeT* exposes each address register individually, not just
        # their sum (paper SVII-B1b).
        obs.append(tuple(value for _, value in step.addr_reg_values))
        if step.mem_read is not None:
            obs.append(("raddr", step.mem_read[0]))
        if step.mem_write is not None:
            obs.append(("waddr", step.mem_write[0]))
    if inst.op is Op.BR:
        obs.append(("flags", step.reg_reads[0][1]))
    if inst.op is Op.JMPI:
        obs.append(("target", step.reg_reads[0][1]))
    if inst.op is Op.RET and step.mem_read is not None:
        obs.append(("target", step.mem_read[1]))
    if step.div_operands is not None:
        obs.append(("div", step.div_operands))
    return tuple(obs)


def _arch_observation(step: StepRecord) -> Observation:
    """ARCH mode: everything the program touches is exposed."""
    obs: List = [step.pc, step.next_pc,
                 tuple(value for _, value in step.reg_reads)]
    if step.mem_read is not None:
        obs.append(step.mem_read)
    if step.mem_write is not None:
        obs.append(step.mem_write)
    return tuple(obs)


def contract_trace(
    result: SeqResult,
    mode: ObserverMode,
    public_defs: Optional[Set[int]] = None,
) -> List[Observation]:
    """Project a sequential run into a contract trace.

    ``public_defs`` (CTS mode) is the set of PCs whose output definition
    is publicly typed, as computed by ProtCC-CTS's type inference.
    """
    trace: List[Observation] = []
    protset = ArchProtSet() if mode is ObserverMode.UNPROT else None
    for step in result.steps:
        if mode is ObserverMode.ARCH:
            trace.append(_arch_observation(step))
            continue
        obs = _ct_observation(step)
        if mode is ObserverMode.CTS:
            if public_defs is not None and step.pc in public_defs:
                obs = obs + (("pubdef",
                              tuple(v for _, v in step.reg_writes)),)
        elif mode is ObserverMode.UNPROT:
            assert protset is not None
            if not step.inst.prot:
                obs = obs + (("unprot",
                              tuple(v for _, v in step.reg_writes)),)
            protset.apply(step)
        trace.append(obs)
    return trace


def traces_equal(
    a: Sequence[Observation], b: Sequence[Observation]
) -> bool:
    """Whether two contract traces are indistinguishable."""
    return list(a) == list(b)
