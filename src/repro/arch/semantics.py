"""Value semantics shared by the sequential machine and the O3 core.

Both execution engines call into this module so that they agree on
results by construction; the property tests in
``tests/test_equivalence.py`` check exactly that.
"""

from __future__ import annotations

from ..isa.operations import Op, encode_flags

#: 64-bit value mask.
MASK64 = (1 << 64) - 1

#: Effective addresses are truncated to 32 bits so the cache hierarchy
#: and wrong-path (transient) accesses stay well-behaved.
ADDR_MASK = (1 << 32) - 1


def to_signed(value: int) -> int:
    """Interpret a 64-bit value as two's-complement signed."""
    value &= MASK64
    return value - (1 << 64) if value >= (1 << 63) else value


def effective_address(base: int, index: int, disp: int) -> int:
    """Compute a load/store effective address (base + index + disp)."""
    return (base + index + disp) & ADDR_MASK


def alu(op: Op, a: int, b: int) -> int:
    """Evaluate an ALU or divide op on 64-bit operands.

    Immediate forms pass the immediate as ``b``.  Division by zero does
    not fault in this ISA: it produces all-ones (quotient) / the dividend
    (remainder), mirroring how the repro models gem5's fault path as a
    distinct-latency, non-faulting outcome (paper SVII-B4b).
    """
    a &= MASK64
    b &= MASK64
    if op in (Op.ADD, Op.ADDI):
        return (a + b) & MASK64
    if op in (Op.SUB, Op.SUBI):
        return (a - b) & MASK64
    if op in (Op.AND, Op.ANDI):
        return a & b
    if op in (Op.OR, Op.ORI):
        return a | b
    if op in (Op.XOR, Op.XORI):
        return a ^ b
    if op in (Op.SHL, Op.SHLI):
        return (a << (b & 63)) & MASK64
    if op in (Op.SHR, Op.SHRI):
        return a >> (b & 63)
    if op in (Op.MUL, Op.MULI):
        return (a * b) & MASK64
    if op is Op.DIV:
        return MASK64 if b == 0 else (a // b) & MASK64
    if op is Op.REM:
        return a if b == 0 else a % b
    raise ValueError(f"not an ALU op: {op!r}")


def compare_flags(op: Op, a: int, b: int) -> int:
    """Compute the flags value for CMP/CMPI/TEST."""
    if op is Op.TEST:
        return encode_flags(a & b, 0)
    return encode_flags(a, b)


def div_timing_class(dividend: int, divisor: int) -> int:
    """The operand-dependent component of divider latency.

    gem5's divider (as surfaced by AMuLeT*) leaks a function of its
    n-bit divisor and 2n-bit dividend through conditional fault paths.
    We model the same *kind* of channel: an early-out for a zero divisor
    and a quotient-width-dependent iteration count.  Returned value is a
    small integer added to the base divide latency.
    """
    divisor &= MASK64
    dividend &= MASK64
    if divisor == 0:
        return 0  # fast fault path
    quotient = dividend // divisor
    return 1 + quotient.bit_length() // 8
