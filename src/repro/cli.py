"""Command-line entry points mirroring the paper's artifact scripts.

The paper's Docker artifact ships ``table-v.py``, ``table-ii.py``, etc.
(Appendix A); here the same experiments run as subcommands::

    python -m repro table-i
    python -m repro table-ii [--programs N] [--pairs N]
    python -m repro table-iv [--cores P E] [--no-parsec]
    python -m repro table-v  [--suite S ...]
    python -m repro figure-5
    python -m repro figure-6 [--bench NAME ...]
    python -m repro ablations
    python -m repro workloads
    python -m repro bench [--quick] [--only NAME ...] [--report FILE]
    python -m repro fuzz  [--defense D] [--contract C] [--programs N]
                          [--mitigation M] [--report-dir DIR]
    python -m repro work  --spool DIR [--lease S] [--max-jobs N]
    python -m repro explain WITNESS.json [--minimize]
    python -m repro diff  [--programs N] [--defense D ...] [--core P E]
                          [--workload NAME ...]
    python -m repro cache [--wipe]
    python -m repro stats WORKLOAD [--defense D] [--instrument C]
    python -m repro speculation [--workload NAME ...] [--defense D ...]
                          [--json] [--ledger-out FILE]
    python -m repro trace WORKLOAD [--out FILE] [--fmt chrome|text]
    python -m repro profile WORKLOAD [--top N] [--collapsed FILE]
    python -m repro history [--metric M ...] [--limit N]
    python -m repro compare OLD NEW [--threshold PCT]
    python -m repro trace-merge DIR [--out FILE]
    python -m repro top --spool DIR [--interval S] [--once]

Every simulation-heavy subcommand takes ``--jobs N`` to fan its run
matrix out over worker processes (default: ``REPRO_JOBS`` env, then
``os.cpu_count()``); results persist in ``benchmarks/.cache/``.

``repro fuzz`` exits nonzero when a *protected* defense records
violations, so CI can gate on the security result; with
``--report-dir`` it also emits leak witnesses, a JSONL event log, and a
Markdown forensics report that ``repro explain`` can dig into.

``repro bench --fabric DIR`` / ``repro fuzz --fabric DIR`` shard the
run matrix through the campaign fabric: a broker spools jobs into DIR
and workers started with ``repro work --spool DIR`` (any host sharing
the filesystem) lease and execute them; the merged result is
byte-identical to a local run.

``repro bench --trace-out FILE`` / ``repro fuzz --trace-out FILE``
record the whole invocation as a span tree and write one merged
Chrome-trace JSON (Perfetto-loadable).  With ``--fabric`` the trace
context rides in the spool, workers record their own span shards into
the spool's ``metrics/`` directory, and the merged timeline covers
every process — ``repro trace-merge DIR`` re-merges a spool's shards
after the fact, and ``repro top --spool DIR`` is a live terminal
monitor for a draining spool.

``repro bench`` and ``repro fuzz`` attach a metrics registry and append
one record per invocation (git SHA, host fingerprint, metrics snapshot,
per-table geomeans) to the run ledger at
``benchmarks/results/ledger.db`` (``REPRO_LEDGER`` overrides the path,
``--no-ledger``/``REPRO_NO_LEDGER=1`` disable it).  ``repro history``
renders the trajectory; ``repro compare`` diffs two records and exits
nonzero on a perf or overhead-fidelity regression beyond the threshold.
"""

from __future__ import annotations

import argparse
import logging
import os
import sys
from typing import List, Optional


def _emit(result) -> None:
    print(result.render())


def _add_jobs(parser) -> None:
    parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes (default: REPRO_JOBS or cpu count)")


#: Builders the ``bench`` subcommand can run, in print order.
BENCH_TARGETS = ("table-i", "table-ii", "table-iv", "table-v",
                 "figure-5", "figure-6", "ablations", "attribution",
                 "mitigations")


def _add_spec_args(parser) -> None:
    """Shared RunSpec arguments for the stats/trace subcommands."""
    parser.add_argument("workload", help="registered workload name")
    parser.add_argument("--defense", default="unsafe",
                        help="defense harness name")
    parser.add_argument("--instrument", default=None,
                        help="ProtCC class ('auto' = workload's own)")
    parser.add_argument("--core", default="P", choices=["P", "E"])


def _make_spec(args):
    from .bench import DEFENSES, RunSpec

    if args.defense not in DEFENSES:
        print(f"unknown defense {args.defense!r}; "
              f"known: {', '.join(sorted(DEFENSES))}", file=sys.stderr)
        return None
    return RunSpec(workload=args.workload, defense=args.defense,
                   instrument=args.instrument, core=args.core)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the Protean paper's tables and figures.")
    parser.add_argument("-v", "--verbose", action="count", default=0,
                        help="log progress (-v: info, -vv: debug)")
    sub = parser.add_subparsers(dest="command", required=True)

    t1 = sub.add_parser("table-i", help="per-class overhead summary (Tab. I)")
    _add_jobs(t1)

    t2 = sub.add_parser("table-ii",
                        help="AMuLeT* contract-violation grid (Tab. II)")
    t2.add_argument("--programs", type=int, default=6)
    t2.add_argument("--pairs", type=int, default=3)
    t2.add_argument("--seed", type=int, default=2026)
    t2.add_argument("--report-dir", default=None, metavar="DIR",
                    help="emit leak-witness forensics for violating cells")
    _add_jobs(t2)

    t4 = sub.add_parser("table-iv",
                        help="geomean runtimes, 8 Protean configs (Tab. IV)")
    t4.add_argument("--cores", nargs="+", default=["P", "E"],
                    choices=["P", "E"])
    t4.add_argument("--no-parsec", action="store_true")
    _add_jobs(t4)

    t5 = sub.add_parser("table-v",
                        help="single-class suites + nginx (Tab. V)")
    t5.add_argument("--suite", nargs="+",
                    default=["arch-wasm", "cts-crypto", "ct-crypto",
                             "unr-crypto", "nginx"])
    _add_jobs(t5)

    f5 = sub.add_parser("figure-5", help="access-predictor sweep (Fig. 5)")
    _add_jobs(f5)

    f6 = sub.add_parser("figure-6",
                        help="per-benchmark runtimes (Fig. 6)")
    f6.add_argument("--bench", nargs="+", default=None)
    _add_jobs(f6)

    ab = sub.add_parser("ablations", help="all SIX-A ablation studies")
    _add_jobs(ab)

    sub.add_parser("workloads", help="list registered workloads")

    bench = sub.add_parser(
        "bench", help="run the whole table/figure suite in one go")
    bench.add_argument("--quick", action="store_true",
                       help="reduced-size variants (REPRO_QUICK-style)")
    bench.add_argument("--only", nargs="+", default=None,
                       choices=BENCH_TARGETS)
    bench.add_argument("--report", default=None, metavar="FILE",
                       help="also write a JSON report of the tables")
    bench.add_argument("--engine", default=None,
                       choices=["auto", "ref", "refcore", "fast",
                                "compiled"],
                       help="simulation engine for cache misses "
                            "(default: auto — compiled when possible)")
    bench.add_argument("--no-ledger", action="store_true",
                       help="skip appending a run-ledger record")
    bench.add_argument("--metrics-out", default=None, metavar="FILE",
                       help="write the metrics snapshot as JSON "
                            "(FILE.prom gets the Prometheus rendition)")
    bench.add_argument("--fabric", default=None, metavar="DIR",
                       help="shard the run matrix through the campaign "
                            "fabric spool at DIR (start workers with "
                            "`repro work --spool DIR`)")
    bench.add_argument("--trace-out", default=None, metavar="FILE",
                       help="record the invocation as a span tree and "
                            "write one merged Chrome trace (with "
                            "--fabric, includes worker spans)")
    _add_jobs(bench)

    fuzz = sub.add_parser(
        "fuzz", help="run one AMuLeT*-style fuzzing campaign")
    fuzz.add_argument("--defense", default="unsafe",
                      help="defense harness name (see repro.bench.DEFENSES)")
    fuzz.add_argument("--contract", default="unprot-seq",
                      choices=["arch-seq", "cts-seq", "ct-seq",
                               "unprot-seq"])
    fuzz.add_argument("--instrument", default="rand",
                      help="ProtCC instrumentation class (or 'rand')")
    fuzz.add_argument("--mitigation", default=None,
                      help="software mitigation pass applied to every "
                           "generated program (see "
                           "repro.protcc.MITIGATIONS); typically paired "
                           "with --defense unsafe to test the pass alone")
    fuzz.add_argument("--programs", type=int, default=10)
    fuzz.add_argument("--pairs", type=int, default=4)
    fuzz.add_argument("--size", type=int, default=40,
                      help="generated program size")
    fuzz.add_argument("--seed", type=int, default=0)
    fuzz.add_argument("--report-dir", default=None, metavar="DIR",
                      help="capture leak witnesses and write a forensics "
                           "report + JSONL event log to DIR")
    fuzz.add_argument("--max-checks", type=int, default=200, metavar="N",
                      help="witness-minimization budget, in contract "
                           "re-checks (default: 200)")
    fuzz.add_argument("--no-minimize", action="store_true",
                      help="write witnesses verbatim, skipping "
                           "delta-debugging minimization")
    fuzz.add_argument("--no-ledger", action="store_true",
                      help="skip appending a run-ledger record")
    fuzz.add_argument("--fabric", default=None, metavar="DIR",
                      help="shard per-program units through the campaign "
                           "fabric spool at DIR")
    fuzz.add_argument("--trace-out", default=None, metavar="FILE",
                      help="record the campaign as a span tree and "
                           "write one merged Chrome trace (with "
                           "--fabric, includes worker spans)")
    _add_jobs(fuzz)

    work = sub.add_parser(
        "work", help="run a campaign-fabric worker against a spool")
    work.add_argument("--spool", required=True, metavar="DIR",
                      help="spool directory shared with the broker")
    work.add_argument("--lease", type=float, default=30.0, metavar="S",
                      help="lease duration in seconds (default: 30)")
    work.add_argument("--poll", type=float, default=0.5, metavar="S",
                      help="idle poll interval (default: 0.5)")
    work.add_argument("--idle-timeout", type=float, default=None,
                      metavar="S",
                      help="exit after S seconds with nothing claimable "
                           "(default: run until signalled)")
    work.add_argument("--max-jobs", type=int, default=None, metavar="N",
                      help="exit after claiming N jobs")
    work.add_argument("--timeout", type=float, default=None, metavar="S",
                      help="per-job wall-clock limit "
                           "(default: executor default)")
    work.add_argument("--name", default=None,
                      help="worker identity (default: host-pid)")

    ex = sub.add_parser(
        "explain", help="replay a leak witness and name the transmitter")
    ex.add_argument("witness", metavar="WITNESS.json",
                    help="witness file written by fuzz --report-dir")
    ex.add_argument("--minimize", action="store_true",
                    help="minimize the witness before explaining it")
    ex.add_argument("--max-checks", type=int, default=200, metavar="N",
                    help="minimization budget (default: 200)")
    ex.add_argument("--json", action="store_true",
                    help="emit the explanation as JSON")
    ex.add_argument("--save-minimized", default=None, metavar="FILE",
                    help="also write the minimized witness to FILE")

    diff = sub.add_parser(
        "diff", help="prove the fast-path and compiled engines "
                     "cycle-identical to the reference engine; exits "
                     "nonzero on any divergence")
    diff.add_argument("--programs", type=int, default=3, metavar="N",
                      help="random programs per (defense, class, core) "
                           "cell (default: 3)")
    diff.add_argument("--seed", type=int, default=0)
    diff.add_argument("--size", type=int, default=40,
                      help="generated program size")
    diff.add_argument("--defense", nargs="+", default=None,
                      help="defense subset (default: all)")
    diff.add_argument("--core", nargs="+", default=["P", "E"],
                      choices=["P", "E"])
    diff.add_argument("--engines", default=None, metavar="E1,E2,...",
                      help="engine subset to diff, first is the "
                           "reference (default: refcore,fast,compiled)")
    diff.add_argument("--no-fixtures", action="store_true",
                      help="skip the security-fixture differential runs")
    diff.add_argument("--workload", nargs="+", default=None,
                      metavar="NAME",
                      help="also differentially run these workloads "
                           "under every defense")
    diff.add_argument("--report", default=None, metavar="FILE",
                      help="write the divergence report (all diverging "
                           "cases + timing) to FILE")

    cache = sub.add_parser(
        "cache", help="inspect or wipe the persistent result cache")
    cache.add_argument("--wipe", action="store_true")

    st = sub.add_parser(
        "stats", help="full stats report for one simulation spec")
    _add_spec_args(st)
    st.add_argument("--json", action="store_true",
                    help="emit the raw RunSummary as JSON")

    tr = sub.add_parser(
        "trace", help="record a per-uop pipeline trace for one spec")
    _add_spec_args(tr)
    tr.add_argument("--out", default="trace.json", metavar="FILE",
                    help="output path (default: trace.json)")
    tr.add_argument("--fmt", default="chrome", choices=["chrome", "text"],
                    help="chrome: Perfetto-loadable JSON; text: Konata-"
                         "style pipeline view")
    tr.add_argument("--max-uops", type=int, default=100_000,
                    help="record at most N uops (bounds trace size)")

    pr = sub.add_parser(
        "profile", help="cProfile one spec, aggregated by simulator "
                        "subsystem")
    _add_spec_args(pr)
    pr.add_argument("--top", type=int, default=15, metavar="N",
                    help="functions to list (default: 15)")
    pr.add_argument("--collapsed", default=None, metavar="FILE",
                    help="write flamegraph-style collapsed stacks")
    pr.add_argument("--json", action="store_true",
                    help="emit the profile report as JSON")

    hist = sub.add_parser(
        "history", help="render metric trends from the run ledger")
    hist.add_argument("--metric", nargs="+", default=None, metavar="M",
                      help="metric/table name substrings to column-ize "
                           "(default: command_seconds)")
    hist.add_argument("--limit", type=int, default=20, metavar="N",
                      help="show the N most recent records")
    hist.add_argument("--ledger", default=None, metavar="DB",
                      help="ledger path (default: "
                           "benchmarks/results/ledger.db)")
    hist.add_argument("--json", action="store_true")

    tm = sub.add_parser(
        "trace-merge", help="merge a spool's span shards into one "
                            "Chrome trace")
    tm.add_argument("directory", metavar="DIR",
                    help="spool directory (or its metrics/ subdir)")
    tm.add_argument("--out", default="campaign-trace.json", metavar="FILE",
                    help="output path (default: campaign-trace.json)")

    top = sub.add_parser(
        "top", help="live terminal monitor for a campaign-fabric spool")
    top.add_argument("--spool", required=True, metavar="DIR",
                     help="spool directory shared with broker and workers")
    top.add_argument("--interval", type=float, default=2.0, metavar="S",
                     help="refresh interval in seconds (default: 2)")
    top.add_argument("--once", action="store_true",
                     help="print one snapshot and exit (scripts, CI logs)")

    cmp_ = sub.add_parser(
        "compare", help="diff two ledger records; exits nonzero on a "
                        "perf or fidelity regression")
    cmp_.add_argument("old", help="record: #id, SHA prefix, latest, prev")
    cmp_.add_argument("new", help="record: #id, SHA prefix, latest, prev")
    cmp_.add_argument("--threshold", type=float, default=10.0,
                      metavar="PCT",
                      help="relative regression threshold in percent "
                           "(default: 10)")
    cmp_.add_argument("--ledger", default=None, metavar="DB")
    cmp_.add_argument("--json", action="store_true")

    spec_ = sub.add_parser(
        "speculation",
        help="per-defense intervention anatomy from the speculation "
             "observatory")
    spec_.add_argument("--workload", nargs="+", default=None,
                       metavar="NAME",
                       help="workloads to aggregate over (default: quick "
                            "SPEC-like subset)")
    spec_.add_argument("--defense", nargs="+", default=None, metavar="D",
                       help="defense harnesses to profile (default: the "
                            "attribution set)")
    spec_.add_argument("--core", default="P", choices=["P", "E"])
    spec_.add_argument("--json", action="store_true",
                       help="emit the per-defense anatomy as JSON")
    spec_.add_argument("--ledger-out", default=None, metavar="FILE",
                       help="record an InterventionLedger for the first "
                            "workload x first intervening defense and "
                            "write the merged Chrome trace here")
    _add_jobs(spec_)

    args = parser.parse_args(argv)

    if args.verbose:
        logging.basicConfig(
            level=logging.DEBUG if args.verbose > 1 else logging.INFO,
            format="%(asctime)s %(name)s %(levelname)s: %(message)s")

    # Imports deferred so `--help` stays instant.
    from .bench import (
        access_mechanisms,
        bugfix_overhead,
        control_model,
        figure_5,
        figure_6,
        l1d_tag_variants,
        protcc_overhead,
        table_i,
        table_ii,
        table_iv,
        table_v,
    )

    if args.command == "table-i":
        _emit(table_i(jobs=args.jobs))
    elif args.command == "table-ii":
        _emit(table_ii(n_programs=args.programs, pairs=args.pairs,
                       seed=args.seed, jobs=args.jobs,
                       report_dir=args.report_dir))
        if args.report_dir:
            print(f"forensics artifacts written to {args.report_dir}")
    elif args.command == "table-iv":
        _emit(table_iv(cores=tuple(args.cores),
                       include_parsec=not args.no_parsec, jobs=args.jobs))
    elif args.command == "table-v":
        _emit(table_v(include=tuple(args.suite), jobs=args.jobs))
    elif args.command == "figure-5":
        _emit(figure_5(jobs=args.jobs))
    elif args.command == "figure-6":
        names = tuple(args.bench) if args.bench else None
        _emit(figure_6(names, jobs=args.jobs))
    elif args.command == "ablations":
        for builder in (protcc_overhead, l1d_tag_variants,
                        access_mechanisms, control_model, bugfix_overhead):
            _emit(builder(jobs=args.jobs))
            print()
    elif args.command == "bench":
        return _run_bench_suite(args)
    elif args.command == "fuzz":
        return _run_fuzz(args)
    elif args.command == "work":
        return _run_work(args)
    elif args.command == "explain":
        return _run_explain(args)
    elif args.command == "diff":
        return _run_diff(args)
    elif args.command == "cache":
        return _run_cache(args)
    elif args.command == "stats":
        return _run_stats(args)
    elif args.command == "speculation":
        return _run_speculation(args)
    elif args.command == "trace":
        return _run_trace(args)
    elif args.command == "profile":
        return _run_profile(args)
    elif args.command == "history":
        return _run_history(args)
    elif args.command == "trace-merge":
        return _run_trace_merge(args)
    elif args.command == "top":
        return _run_top(args)
    elif args.command == "compare":
        return _run_compare(args)
    elif args.command == "workloads":
        from .workloads import get_workload, workload_names

        for name in workload_names():
            workload = get_workload(name)
            print(f"{name:<18} {workload.suite:<11} "
                  f"baseline={workload.baseline:<7} "
                  f"{workload.description}")
    return 0


def _run_bench_suite(args) -> int:
    """``repro bench``: every table/figure through the batch executor,
    with a metrics registry attached and one run-ledger record appended
    per invocation."""
    import time

    from .bench import (
        SPEC,
        SPEC_INT_FAST,
        access_mechanisms,
        bugfix_overhead,
        control_model,
        figure_5,
        figure_6,
        l1d_tag_variants,
        mitigation_table,
        overhead_attribution,
        protcc_overhead,
        table_i,
        table_ii,
        table_iv,
        table_v,
        write_report,
    )
    from .metrics import MetricsRegistry, attached

    quick = args.quick
    jobs = args.jobs
    if getattr(args, "engine", None):
        # Via the environment so pool workers inherit the choice (see
        # repro.bench.runner.execute_spec).
        os.environ["REPRO_ENGINE"] = args.engine
    if getattr(args, "fabric", None):
        # Same pattern: run_batch picks REPRO_FABRIC up wherever the
        # builders call it.
        os.environ["REPRO_FABRIC"] = args.fabric
    targets = tuple(args.only) if args.only else BENCH_TARGETS
    tables = []

    def build(name):
        if name == "table-i":
            return [table_i(jobs=jobs)]
        if name == "table-ii":
            kwargs = dict(n_programs=3, pairs=2) if quick \
                else dict(n_programs=6, pairs=3)
            return [table_ii(jobs=jobs, **kwargs)]
        if name == "table-iv":
            cores = ("P",) if quick else ("P", "E")
            return [table_iv(cores=cores, include_parsec=not quick,
                             jobs=jobs)]
        if name == "table-v":
            include = ("ct-crypto", "unr-crypto") if quick else \
                ("arch-wasm", "cts-crypto", "ct-crypto", "unr-crypto",
                 "nginx")
            return [table_v(include=include, jobs=jobs)]
        if name == "figure-5":
            sweep = (2, 1024, "inf") if quick \
                else (2, 4, 16, 256, 1024, "inf")
            names = SPEC_INT_FAST[:3] if quick else SPEC_INT_FAST
            return [figure_5(sweep, names, jobs=jobs)]
        if name == "figure-6":
            names = SPEC[:4] if quick else None
            return [figure_6(names, jobs=jobs)]
        if name == "attribution":
            from .bench.tables import speculation_anatomy

            names = SPEC_INT_FAST[:3] if quick else SPEC_INT_FAST
            return [overhead_attribution(names, jobs=jobs),
                    speculation_anatomy(names, jobs=jobs)]
        if name == "mitigations":
            names = SPEC_INT_FAST[:3] if quick else SPEC_INT_FAST
            return [mitigation_table(names, jobs=jobs)]
        ablations = []
        for builder in (protcc_overhead, l1d_tag_variants,
                        access_mechanisms, control_model, bugfix_overhead):
            names = SPEC_INT_FAST[:3] if quick else SPEC_INT_FAST
            ablations.append(builder(names, jobs=jobs))
        return ablations

    registry = MetricsRegistry()
    recorder, root_span = _start_cli_trace(
        getattr(args, "trace_out", None), "bench.cli",
        {"targets": " ".join(targets), "quick": quick})
    started = time.monotonic()
    try:
        with attached(registry):
            for name in targets:
                for table in build(name):
                    tables.append(table)
                    _emit(table)
                    print()
    finally:
        if recorder is not None:
            _finish_cli_trace(recorder, root_span, args.trace_out,
                              fabric=getattr(args, "fabric", None))
    elapsed = time.monotonic() - started

    counters = registry.snapshot()["counters"]
    hits = counters.get("cache.memory_hits", 0) \
        + counters.get("cache.disk_hits", 0)
    misses = counters.get("cache.misses", 0)
    total = hits + misses
    print(f"[cache] {hits} hits "
          f"({counters.get('cache.memory_hits', 0)} mem, "
          f"{counters.get('cache.disk_hits', 0)} disk), "
          f"{misses} simulated"
          + (f", {100 * hits / total:.0f}% hit rate" if total else ""))

    if args.report:
        write_report(tables, args.report)
        print(f"report written to {args.report}")
    if args.metrics_out:
        import pathlib

        out = pathlib.Path(args.metrics_out)
        out.write_text(registry.to_json() + "\n")
        out.with_suffix(out.suffix + ".prom").write_text(
            registry.to_prometheus())
        print(f"metrics snapshot written to {out}")
    _append_ledger(
        command="bench " + " ".join(targets) + (" --quick" if quick
                                                else ""),
        config={"targets": targets, "quick": quick, "jobs": jobs},
        tables=tables, registry=registry, elapsed_s=elapsed,
        disabled=args.no_ledger)
    return 0


def _start_cli_trace(trace_out, name: str, attrs):
    """``--trace-out`` wiring: attach a span recorder with one root
    span covering the whole invocation.  Returns ``(None, None)`` when
    tracing was not requested — the zero-overhead default."""
    if not trace_out:
        return None, None
    from .metrics.spans import SpanRecorder, set_recorder

    recorder = SpanRecorder()
    set_recorder(recorder)
    return recorder, recorder.start(name, attrs=attrs, push=True)


def _finish_cli_trace(recorder, root_span, trace_out,
                      fabric=None) -> None:
    """Finish the invocation's root span and write the merged Chrome
    trace, folding in the spool's broker/worker shards when the run
    went through the fabric.  The merger dedups by span id, so spans
    that exist both in this recorder and in a shard count once."""
    from .metrics.spans import (
        load_shards,
        set_recorder,
        write_merged_trace,
    )

    recorder.finish(root_span)
    set_recorder(None)
    spans = list(recorder.spans)
    offsets = {}
    if fabric:
        shard_spans, offsets = load_shards(fabric)
        spans.extend(shard_spans)
    path = write_merged_trace(trace_out, spans, clock_offsets=offsets)
    print(f"campaign trace written to {path} "
          f"(load in Perfetto / chrome://tracing)")


def _append_ledger(command: str, config, tables, registry,
                   elapsed_s: float, disabled: bool) -> None:
    """Append one run-ledger record (best-effort: a read-only ledger
    directory must never fail the invocation that produced results)."""
    from .metrics import (
        append_record,
        default_ledger_path,
        ledger_enabled,
        make_record,
    )

    if disabled or not ledger_enabled():
        return
    record = make_record(command=command, tables=tables,
                         registry=registry, config=config,
                         extra_metrics={"command_seconds": elapsed_s})
    try:
        record = append_record(record)
    except OSError as exc:
        print(f"[ledger] not recorded: {exc}", file=sys.stderr)
        return
    print(f"[ledger] appended record {record.label()} "
          f"to {default_ledger_path()}")


def _run_fuzz(args) -> int:
    """``repro fuzz``: one campaign cell, parallel at program level.

    Exit status: 0 on a clean (or unsafe-baseline) run, 1 when a
    protected defense recorded violations, 2 on bad arguments."""
    import time

    from .bench.runner import DEFENSES
    from .contracts import Contract
    from .fuzzing import CampaignConfig, run_campaign
    from .fuzzing.campaign import resolve_campaign_jobs
    from .metrics import MetricsRegistry, attached

    if args.defense not in DEFENSES:
        print(f"unknown defense {args.defense!r}; "
              f"known: {', '.join(sorted(DEFENSES))}", file=sys.stderr)
        return 2
    if args.mitigation is not None:
        from .protcc import MITIGATIONS

        if args.mitigation not in MITIGATIONS:
            print(f"unknown mitigation {args.mitigation!r}; "
                  f"known: {', '.join(sorted(MITIGATIONS))}",
                  file=sys.stderr)
            return 2
        if args.contract == "cts-seq":
            print("--mitigation cannot be combined with --contract "
                  "cts-seq: mitigation passes move instruction "
                  "positions, invalidating the contract's "
                  "public-definition PCs", file=sys.stderr)
            return 2
    config = CampaignConfig(
        defense_factory=DEFENSES[args.defense],
        contract=Contract(args.contract),
        instrumentation=args.instrument,
        n_programs=args.programs,
        pairs_per_program=args.pairs,
        program_size=args.size,
        seed=args.seed,
        defense_name=args.defense,
        collect_witnesses=args.report_dir is not None,
        mitigation=args.mitigation,
    )
    recorder, root_span = _start_cli_trace(
        getattr(args, "trace_out", None), "fuzz.cli",
        {"defense": args.defense, "contract": args.contract,
         "instrument": args.instrument, "programs": args.programs,
         "mitigation": args.mitigation or ""})
    reporter = None
    on_program = None
    if args.report_dir is not None:
        import pathlib

        from .forensics import CampaignReporter

        reporter = CampaignReporter(
            pathlib.Path(args.report_dir) / "events.jsonl")
        reporter.campaign_start(config, resolve_campaign_jobs(args.jobs))
        on_program = reporter.on_program
    registry = MetricsRegistry()
    started = time.monotonic()
    try:
        with attached(registry):
            result = run_campaign(config, jobs=args.jobs,
                                  on_program=on_program,
                                  fabric=args.fabric)
        if reporter is not None:
            reporter.campaign_end(result)
    finally:
        if reporter is not None:
            reporter.close()
        if recorder is not None:
            _finish_cli_trace(recorder, root_span, args.trace_out,
                              fabric=args.fabric)
    _append_ledger(
        command=f"fuzz {args.defense} {args.contract}",
        config={"defense": args.defense, "contract": args.contract,
                "instrument": args.instrument, "programs": args.programs,
                "pairs": args.pairs, "size": args.size, "seed": args.seed,
                "mitigation": args.mitigation},
        tables=[], registry=registry,
        elapsed_s=time.monotonic() - started, disabled=args.no_ledger)
    mitigated = f" + {args.mitigation}" if args.mitigation else ""
    print(f"{args.defense}{mitigated} vs {args.contract} "
          f"(ProtCC-{args.instrument.upper()}): {result.summary()}")
    for program_seed, pair_index, adversary in result.violation_sites:
        print(f"  violation: program seed {program_seed}, "
              f"pair {pair_index}, adversary {adversary}")
    if args.report_dir is not None:
        from .bench.tables import SPEC_INT_FAST, speculation_anatomy
        from .forensics import write_forensics_report

        anatomy = None
        if args.defense != "unsafe":
            # Where this defense spends its intervention budget on the
            # quick benchmark subset — context for the witnesses below.
            instrument = "auto" if args.defense in ("delay", "track") \
                else None
            anatomy = speculation_anatomy(
                SPEC_INT_FAST[:3], ((args.defense, instrument),),
                jobs=args.jobs).render()
        written = write_forensics_report(
            result, args.report_dir,
            minimize=not args.no_minimize,
            max_checks=args.max_checks,
            title=f"Leak forensics: {args.defense} vs {args.contract} "
                  f"(ProtCC-{args.instrument.upper()})",
            anatomy=anatomy)
        print(f"forensics: {len(written)} artifacts in {args.report_dir}")
    if result.violations and args.defense != "unsafe":
        print(f"FAIL: protected defense {args.defense!r} recorded "
              f"{result.violations} contract violations", file=sys.stderr)
        return 1
    if result.violations and args.mitigation is not None:
        from .protcc import SECURE_MITIGATIONS

        if args.mitigation in SECURE_MITIGATIONS:
            print(f"FAIL: mitigation {args.mitigation!r} claims contract "
                  f"security but recorded {result.violations} violations",
                  file=sys.stderr)
            return 1
    return 0


def _run_work(args) -> int:
    """``repro work``: one campaign-fabric worker loop.

    Runs with a metrics registry attached so per-worker counters land
    in the spool's ``metrics/<worker>.prom`` textfile after every job."""
    from .bench.fabric import run_worker
    from .metrics import MetricsRegistry, attached

    with attached(MetricsRegistry()):
        stats = run_worker(
            args.spool, lease_s=args.lease, poll_s=args.poll,
            idle_timeout_s=args.idle_timeout, max_jobs=args.max_jobs,
            job_timeout_s=args.timeout, name=args.name)
    print(stats.line())
    return 0


def _run_explain(args) -> int:
    """``repro explain``: replay a witness and report the transmitter."""
    import json

    from .forensics import (
        LeakWitness,
        WitnessError,
        explain_witness,
        minimize_witness,
    )

    try:
        witness = LeakWitness.load(args.witness)
    except WitnessError as exc:
        print(f"cannot load witness: {exc}", file=sys.stderr)
        return 2
    try:
        if args.minimize:
            witness = minimize_witness(witness, max_checks=args.max_checks)
            if args.save_minimized:
                witness.save(args.save_minimized)
                print(f"minimized witness written to {args.save_minimized}",
                      file=sys.stderr)
        explanation = explain_witness(witness)
    except WitnessError as exc:
        print(f"cannot explain witness: {exc}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(explanation.to_dict(), indent=2, sort_keys=True))
    else:
        print(f"witness: {witness.describe()}")
        print(explanation.render())
    return 0


def _run_stats(args) -> int:
    """``repro stats``: the full per-run stats schema, rendered."""
    import json

    from .bench import format_run_stats, run_summary
    from .bench.runner import CORES

    spec = _make_spec(args)
    if spec is None:
        return 2
    summary = run_summary(spec)
    if args.json:
        print(json.dumps(summary.to_dict(), indent=2, sort_keys=True))
    else:
        print(format_run_stats(spec, summary, CORES[spec.core].width))
    return 0


def _run_speculation(args) -> int:
    """``repro speculation``: the observatory's per-defense anatomy.

    Aggregates the always-on telemetry over a workload matrix (cached,
    batch-executed) into a per-defense table of intervention episodes
    and delay cycles per gating hook, plus transient-uop pressure.
    ``--ledger-out`` additionally attaches an
    :class:`~repro.uarch.speculation.InterventionLedger` to one run and
    writes the merged pipeline + intervention Chrome trace."""
    import json

    from .bench.runner import DEFENSES
    from .bench.tables import (
        ATTRIBUTION_DEFENSES,
        SPEC_INT_FAST,
        speculation_anatomy,
    )

    if args.defense:
        unknown = set(args.defense) - set(DEFENSES)
        if unknown:
            print(f"unknown defenses: {', '.join(sorted(unknown))}; "
                  f"known: {', '.join(sorted(DEFENSES))}",
                  file=sys.stderr)
            return 2
        defenses = tuple(
            (d, "auto" if d in ("delay", "track") else None)
            for d in args.defense)
    else:
        defenses = ATTRIBUTION_DEFENSES
    names = tuple(args.workload) if args.workload else SPEC_INT_FAST[:3]

    result = speculation_anatomy(names, defenses, jobs=args.jobs,
                                 core=args.core)
    if args.json:
        print(json.dumps({"workloads": list(names), "core": args.core,
                          "defenses": result.data},
                         indent=2, sort_keys=True))
    else:
        _emit(result)

    if args.ledger_out:
        from .bench.runner import RunSpec, execute_spec
        from .uarch.speculation import InterventionLedger
        from .uarch.trace import PipelineTracer, write_chrome_trace

        target = next(
            ((d, i) for d, i in defenses
             if result.data[d]["hooks"]["execute"]["interventions"]
             or result.data[d]["hooks"]["resolve"]["interventions"]
             or result.data[d]["hooks"]["wakeup"]["interventions"]),
            None)
        if target is None:
            print("no defense intervened on this matrix; "
                  "nothing to ledger", file=sys.stderr)
            return 1
        defense, instrument = target
        spec = RunSpec(workload=names[0], defense=defense,
                       instrument=instrument, core=args.core)
        tracer = PipelineTracer()
        ledger = InterventionLedger()
        run = execute_spec(spec, tracer=tracer, ledger=ledger)
        path = write_chrome_trace(
            args.ledger_out, tracer,
            label=f"{names[0]}/{defense}", ledger=ledger)
        print(f"{names[0]}/{defense}: {run.cycles} cycles, "
              f"{len(ledger.events)} intervention events "
              f"({ledger.dropped} dropped, "
              f"{ledger.total_delay()} delay cycles)")
        print(f"chrome trace (pipeline + intervention overlay) "
              f"written to {path}")
    return 0


def _run_trace(args) -> int:
    """``repro trace``: record and export a pipeline event trace."""
    from .bench.runner import execute_spec
    from .uarch.trace import (
        PipelineTracer,
        text_pipeline,
        write_chrome_trace,
    )

    spec = _make_spec(args)
    if spec is None:
        return 2
    tracer = PipelineTracer(max_uops=args.max_uops)
    result = execute_spec(spec, tracer=tracer)
    if args.fmt == "chrome":
        path = write_chrome_trace(args.out, tracer, label=spec.workload)
        print(f"{spec.workload}: {result.cycles} cycles, "
              f"{len(tracer.uops)} uops recorded "
              f"({tracer.dropped} dropped)")
        print(f"chrome trace written to {path} "
              f"(load in Perfetto / chrome://tracing)")
    else:
        import pathlib

        text = text_pipeline(tracer)
        pathlib.Path(args.out).write_text(text + "\n")
        print(f"text pipeline view written to {args.out}")
    return 0


def _run_diff(args) -> int:
    """``repro diff``: the engine-equivalence proof harness.

    Runs the randomized defense x ProtCC-class x core grid (plus the
    security fixtures and any requested workloads) through every
    selected engine — ``refcore``, ``fast``, and ``compiled`` by
    default — and reports divergences plus per-case wall time.  Exit
    status: 0 when every run is identical, 1 otherwise, 2 on bad
    arguments."""
    import time

    from .bench.runner import DEFENSES
    from .uarch.refcore import (
        DEFAULT_ENGINES,
        diff_cases,
        fixture_cases,
        mitigation_cases,
        parse_engines,
        run_case,
    )

    if args.defense:
        unknown = set(args.defense) - set(DEFENSES)
        if unknown:
            print(f"unknown defenses: {', '.join(sorted(unknown))}; "
                  f"known: {', '.join(sorted(DEFENSES))}",
                  file=sys.stderr)
            return 2
    if args.engines:
        try:
            engines = parse_engines(args.engines)
        except ValueError as exc:
            print(f"bad --engines: {exc}", file=sys.stderr)
            return 2
    else:
        engines = DEFAULT_ENGINES
    checked = divergent = 0
    started = time.monotonic()
    timings = []  # (seconds, label)
    divergent_lines = []

    def tally(report, seconds: float) -> None:
        nonlocal checked, divergent
        checked += 1
        timings.append((seconds, report.label))
        if not report.identical:
            divergent += 1
            divergent_lines.append(report.render())
            print(report.render())

    def timed(thunk):
        case_started = time.monotonic()
        report = thunk()
        tally(report, time.monotonic() - case_started)

    for case in diff_cases(programs=args.programs, seed=args.seed,
                           defenses=tuple(args.defense)
                           if args.defense else None,
                           cores=tuple(args.core)):
        timed(lambda c=case: run_case(c, program_size=args.size,
                                      engines=engines))
    if not args.no_fixtures:
        fixture_iter = fixture_cases(engines=engines)
        while True:
            case_started = time.monotonic()
            try:
                _, report = next(fixture_iter)
            except StopIteration:
                break
            tally(report, time.monotonic() - case_started)
        # Mitigated binaries (all four software passes over the
        # fixtures + one generated program) must agree across engines
        # too — the passes only add architectural no-ops.
        mitigation_iter = mitigation_cases(engines=engines, seed=args.seed)
        while True:
            case_started = time.monotonic()
            try:
                _, report = next(mitigation_iter)
            except StopIteration:
                break
            tally(report, time.monotonic() - case_started)
    if args.workload:
        workload_iter = _diff_workloads(args.workload,
                                        tuple(args.defense)
                                        if args.defense else None,
                                        engines)
        while True:
            case_started = time.monotonic()
            try:
                report = next(workload_iter)
            except StopIteration:
                break
            tally(report, time.monotonic() - case_started)
    elapsed = time.monotonic() - started
    timing_lines = _diff_timing_lines(timings, elapsed)
    for line in timing_lines:
        print(line)
    status = "identical" if divergent == 0 else "DIVERGENT"
    summary = (f"{checked} differential runs "
               f"({','.join(engines)}), {divergent} divergent: {status}")
    print(summary)
    if args.report:
        import pathlib

        body = "\n".join(divergent_lines + timing_lines + [summary])
        pathlib.Path(args.report).write_text(body + "\n")
        print(f"report written to {args.report}")
    return 1 if divergent else 0


def _diff_timing_lines(timings, elapsed: float) -> List[str]:
    """Render per-case wall time: total, mean, and the slowest 10."""
    if not timings:
        return []
    total = sum(seconds for seconds, _ in timings)
    lines = [f"[diff] {len(timings)} runs in {elapsed:.1f}s "
             f"(mean {1000 * total / len(timings):.0f}ms/run), "
             f"slowest:"]
    ranked = sorted(timings, reverse=True)[:10]
    width = max(len(label) for _, label in ranked)
    for seconds, label in ranked:
        lines.append(f"  {label:<{width}}  {seconds:8.3f}s")
    return lines


def _diff_workloads(names, defenses, engines):
    """Differential runs of full workloads (every selected engine,
    every defense)."""
    from .bench.runner import DEFENSES
    from .protcc import compile_program
    from .uarch.refcore import run_engines
    from .workloads import get_workload

    for name in names:
        workload = get_workload(name)
        prot = compile_program(workload.program, workload.classes).program
        for dname, factory in DEFENSES.items():
            if defenses is not None and dname not in defenses:
                continue
            program = prot if factory().binary == "protcc" \
                else workload.program
            _, report = run_engines(
                program, factory, memory_factory=lambda w=workload: w.memory,
                regs=workload.regs, engines=engines,
                label=f"workload:{name}/{dname}")
            yield report


def _run_cache(args) -> int:
    """``repro cache``: show or wipe the persistent result cache."""
    from .bench.executor import cache_info, wipe_cache
    from .metrics import default_ledger_path, load_records

    if args.wipe:
        removed = wipe_cache()
        print(f"removed {removed} cached results")
    info = cache_info()
    state = "enabled" if info["enabled"] else "disabled (REPRO_NO_CACHE)"
    print(f"cache dir: {info['dir']} ({state})")
    print(f"entries:   {info['entries']} ({info['bytes']} bytes)")
    if default_ledger_path().exists():
        records = load_records(limit=1)
        if records:
            metrics = records[-1].metrics
            print(f"last run:  {records[-1].label()} — "
                  f"{metrics.get('cache.memory_hits', 0):.0f} mem hits, "
                  f"{metrics.get('cache.disk_hits', 0):.0f} disk hits, "
                  f"{metrics.get('cache.misses', 0):.0f} misses, "
                  f"{metrics.get('cache.full_result_evictions', 0):.0f} "
                  f"evictions")
    return 0


def _run_profile(args) -> int:
    """``repro profile``: cProfile one spec, hotspots grouped by
    simulator subsystem, optional collapsed-stack flamegraph file."""
    import json

    from .metrics import profile_spec

    spec = _make_spec(args)
    if spec is None:
        return 2
    report = profile_spec(spec, top_n=args.top)
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(report.render(args.top))
    if args.collapsed:
        report.write_collapsed(args.collapsed)
        print(f"collapsed stacks written to {args.collapsed} "
              f"(feed to flamegraph.pl / speedscope)")
    return 0


def _filter_history_record(record: dict, patterns) -> dict:
    """``history --json --metric``: keep only the metrics/tables
    entries whose name contains one of the substrings; record identity
    fields (sha, time, command, …) always stay."""
    def keep(name: str) -> bool:
        return any(pattern in name for pattern in patterns)

    filtered = dict(record)
    filtered["metrics"] = {name: value
                           for name, value in record["metrics"].items()
                           if keep(name)}
    filtered["tables"] = {name: value
                          for name, value in record["tables"].items()
                          if keep(name)}
    return filtered


def _run_history(args) -> int:
    """``repro history``: metric trends across ledger records."""
    import json

    from .metrics import load_records, render_history

    records = load_records(path=args.ledger, limit=args.limit)
    if args.json:
        payload = [r.to_dict() for r in records]
        if args.metric:
            payload = [_filter_history_record(record, args.metric)
                       for record in payload]
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    if not records:
        print("the run ledger is empty — run `repro bench` or "
              "`repro fuzz` to append a record")
        return 0
    print(render_history(records, metrics=args.metric))
    return 0


def _run_trace_merge(args) -> int:
    """``repro trace-merge``: merge a spool's span shards into one
    Chrome trace, after the fact (the broker does the same at the end
    of a ``--trace-out`` run).  Exit status: 0 on success, 1 when the
    directory holds no shards."""
    from .metrics.spans import load_shards, write_merged_trace

    spans, offsets = load_shards(args.directory)
    if not spans:
        print(f"no span shards (spans-*.jsonl) under {args.directory} — "
              f"run the campaign with --trace-out to record them",
              file=sys.stderr)
        return 1
    path = write_merged_trace(args.out, spans, clock_offsets=offsets)
    processes = {span.process for span in spans}
    print(f"merged {len(spans)} spans from {len(processes)} "
          f"process(es) into {path} "
          f"(load in Perfetto / chrome://tracing)")
    return 0


def _run_top(args) -> int:
    """``repro top``: the live spool monitor."""
    from .bench.fabric import run_top

    if not os.path.isdir(args.spool):
        print(f"no spool at {args.spool}", file=sys.stderr)
        return 2
    return run_top(args.spool, interval_s=args.interval, once=args.once)


def _run_compare(args) -> int:
    """``repro compare``: diff two ledger records.

    Exit status: 0 when the new record holds up, 1 on a perf or
    overhead-fidelity regression beyond the threshold, 2 when a record
    selector does not resolve."""
    import json

    from .metrics import (
        LedgerError,
        compare_records,
        load_records,
        resolve_record,
    )

    records = load_records(path=args.ledger)
    try:
        old = resolve_record(records, args.old)
        new = resolve_record(records, args.new)
    except LedgerError as exc:
        print(f"compare: {exc}", file=sys.stderr)
        return 2
    comparison = compare_records(old, new, threshold_pct=args.threshold)
    if args.json:
        print(json.dumps(comparison.to_dict(), indent=2, sort_keys=True))
    else:
        print(comparison.render())
    return 1 if comparison.regressed else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
