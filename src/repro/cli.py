"""Command-line entry points mirroring the paper's artifact scripts.

The paper's Docker artifact ships ``table-v.py``, ``table-ii.py``, etc.
(Appendix A); here the same experiments run as subcommands::

    python -m repro table-i
    python -m repro table-ii [--programs N] [--pairs N]
    python -m repro table-iv [--cores P E] [--no-parsec]
    python -m repro table-v  [--suite S ...]
    python -m repro figure-5
    python -m repro figure-6 [--bench NAME ...]
    python -m repro ablations
    python -m repro workloads
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional


def _emit(result) -> None:
    print(result.render())


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the Protean paper's tables and figures.")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table-i", help="per-class overhead summary (Tab. I)")

    t2 = sub.add_parser("table-ii",
                        help="AMuLeT* contract-violation grid (Tab. II)")
    t2.add_argument("--programs", type=int, default=6)
    t2.add_argument("--pairs", type=int, default=3)
    t2.add_argument("--seed", type=int, default=2026)

    t4 = sub.add_parser("table-iv",
                        help="geomean runtimes, 8 Protean configs (Tab. IV)")
    t4.add_argument("--cores", nargs="+", default=["P", "E"],
                    choices=["P", "E"])
    t4.add_argument("--no-parsec", action="store_true")

    t5 = sub.add_parser("table-v",
                        help="single-class suites + nginx (Tab. V)")
    t5.add_argument("--suite", nargs="+",
                    default=["arch-wasm", "cts-crypto", "ct-crypto",
                             "unr-crypto", "nginx"])

    sub.add_parser("figure-5", help="access-predictor sweep (Fig. 5)")

    f6 = sub.add_parser("figure-6",
                        help="per-benchmark runtimes (Fig. 6)")
    f6.add_argument("--bench", nargs="+", default=None)

    sub.add_parser("ablations", help="all SIX-A ablation studies")
    sub.add_parser("workloads", help="list registered workloads")

    args = parser.parse_args(argv)

    # Imports deferred so `--help` stays instant.
    from .bench import (
        access_mechanisms,
        bugfix_overhead,
        control_model,
        figure_5,
        figure_6,
        l1d_tag_variants,
        protcc_overhead,
        table_i,
        table_ii,
        table_iv,
        table_v,
    )

    if args.command == "table-i":
        _emit(table_i())
    elif args.command == "table-ii":
        _emit(table_ii(n_programs=args.programs, pairs=args.pairs,
                       seed=args.seed))
    elif args.command == "table-iv":
        _emit(table_iv(cores=tuple(args.cores),
                       include_parsec=not args.no_parsec))
    elif args.command == "table-v":
        _emit(table_v(include=tuple(args.suite)))
    elif args.command == "figure-5":
        _emit(figure_5())
    elif args.command == "figure-6":
        names = tuple(args.bench) if args.bench else None
        _emit(figure_6(names))
    elif args.command == "ablations":
        for builder in (protcc_overhead, l1d_tag_variants,
                        access_mechanisms, control_model, bugfix_overhead):
            _emit(builder())
            print()
    elif args.command == "workloads":
        from .workloads import get_workload, workload_names

        for name in workload_names():
            workload = get_workload(name)
            print(f"{name:<18} {workload.suite:<11} "
                  f"baseline={workload.baseline:<7} "
                  f"{workload.description}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
