"""A lightweight metrics registry: counters, gauges, and timers.

The registry is the measurement half of the measure -> record -> compare
loop: hot components (the batch executor, fuzzing campaigns, the core's
run loop) publish counters and timings into an attached
:class:`MetricsRegistry`, the run ledger snapshots it per invocation,
and ``repro compare`` diffs snapshots across commits.

Attachment follows the same opt-in pattern as
:class:`repro.uarch.trace.PipelineTracer`: nothing is measured unless a
registry is attached, and detached code paths pay at most a single
``is not None`` check per batch/spec/run — never per cycle.  A registry
is attached per process via :func:`set_registry`; worker processes
never inherit one, so their simulations run at full speed and the
parent accounts for them from the outside.

Timers are fixed-bucket histograms (log-spaced seconds), so percentile
estimates are O(buckets) with zero per-observation allocation, and the
bucket layout exports directly as a Prometheus histogram.

The registry is deliberately not thread-safe: the reproduction
parallelizes with *processes*, and each process owns (at most) one
registry.

Exports:

* :meth:`MetricsRegistry.snapshot` — a JSON-safe dict.
* :meth:`MetricsRegistry.to_prometheus` — Prometheus text exposition
  format (``# TYPE`` comments, ``_bucket{le=...}`` histogram series).
* :func:`flatten_snapshot` — scalar ``name -> float`` projection, the
  shape the run ledger stores and compares.
"""

from __future__ import annotations

import json
import math
import time
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

#: Default timer buckets (seconds), log-spaced from 0.1 ms to 10 min.
#: Observations above the last edge land in the implicit +Inf bucket.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0,
    600.0,
)

#: Short descriptions for the metrics the reproduction emits, keyed by
#: dotted metric name; the Prometheus export renders them as ``# HELP``
#: lines.  Accessors never require an entry here — an undescribed
#: metric simply exports without HELP — so instrumentation sites stay
#: declaration-free.
METRIC_HELP: Dict[str, str] = {
    "executor.batches": "run_batch invocations",
    "executor.specs": "specs requested across all batches",
    "executor.simulated": "specs actually simulated (cache misses)",
    "executor.retried": "spec attempts re-queued after a crash/timeout",
    "executor.timeouts": "pool workers killed by the per-spec alarm",
    "executor.requeues": "re-queue events (crash, timeout, or error)",
    "executor.batch_seconds": "wall time of each run_batch call",
    "executor.spec_seconds": "worker-side simulation time per spec",
    "executor.queue_wait_seconds":
        "time a spec waited for a pool worker",
    "cache.memory_hits": "specs served from the in-process cache",
    "cache.disk_hits": "specs served from benchmarks/.cache/",
    "cache.misses": "specs that had to simulate",
    "fabric.submitted": "jobs newly inserted into a spool",
    "fabric.reused": "submitted jobs already done in the spool",
    "fabric.collected": "job results merged back by a broker",
    "fabric.lease_expiries": "leases reaped after a missed heartbeat",
    "fabric.backoffs": "spool transactions retried on lock contention",
    "fabric.heartbeat_errors":
        "heartbeat-thread failures (lease at risk of expiring)",
    "fabric.worker_claims": "jobs leased by this worker",
    "fabric.worker_completed": "jobs this worker completed",
    "fabric.worker_releases": "jobs this worker released after errors",
    "fabric.job_seconds": "worker-side wall time per fabric job",
    "fabric.pending": "jobs waiting for a worker",
    "fabric.leased": "jobs currently leased",
    "fabric.done": "jobs finished in the spool",
    "fabric.failed": "jobs that exhausted their attempt budget",
    "fabric.workers_active": "workers with a fresh spool heartbeat",
    "fuzz.campaigns": "fuzzing campaign cells run",
    "fuzz.programs": "generated programs fuzzed",
    "fuzz.checks": "contract-pair checks executed",
    "fuzz.violations": "contract violations observed",
    "fuzz.false_positives": "defense-attributed false positives",
    "fuzz.invalid_pairs": "input pairs rejected before checking",
    "fuzz.witnesses": "leak witnesses captured",
    "fuzz.campaign_seconds": "wall time per campaign cell",
    "fuzz.programs_per_sec": "campaign throughput in programs/second",
    "fuzz.checks_per_sec": "campaign throughput in checks/second",
    "cache.full_result_evictions":
        "full CoreResults dropped from the in-process cache",
    "uarch.sim_cycles": "core cycles simulated across all runs",
    "uarch.runs": "simulations completed (any engine)",
    "uarch.run_seconds": "host wall time per simulation",
    "uarch.sim_cycles_per_sec": "fast-engine simulation throughput",
    "uarch.compiled_cycles_per_sec":
        "compiled-engine simulation throughput",
    "uarch.compiled_runs": "simulations served by the compiled backend",
    "uarch.compile_seconds": "wall time spent generating/loading "
        "compiled artifacts",
    "uarch.compile_cache_hits": "compiled artifacts reused in-process",
    "uarch.compile_cache_disk_hits": "compiled artifacts reused from disk",
    "uarch.compile_cache_misses": "programs compiled from scratch",
    "uarch.fast_forward_cycles": "cycles skipped by idle fast-forwarding",
    "uarch.fast_forward_jumps": "idle fast-forward jumps taken",
    "uarch.defense_interventions":
        "defense-hook intervention episodes across all runs",
    "uarch.defense_delay_cycles":
        "cycles of defense-imposed delay across all runs",
    "uarch.transient_uops": "fetched-but-never-committed uops "
        "across all runs",
}


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(
                f"counter {self.name!r} cannot decrease (inc {amount})")
        self.value += amount


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Timer:
    """A fixed-bucket histogram of durations (seconds).

    ``observe`` is O(buckets) worst case with no allocation; percentile
    estimates return the upper edge of the bucket containing the target
    rank (clamped to the observed max, so ``percentile(100)`` is exact).
    """

    __slots__ = ("name", "buckets", "bucket_counts", "count", "sum",
                 "min", "max")

    def __init__(self, name: str,
                 buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        if list(buckets) != sorted(buckets) or len(set(buckets)) != len(buckets):
            raise ValueError(f"timer {name!r} buckets must be strictly "
                             f"increasing")
        self.name = name
        self.buckets: Tuple[float, ...] = tuple(buckets)
        self.bucket_counts: List[int] = [0] * (len(self.buckets) + 1)
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, seconds: float) -> None:
        seconds = float(seconds)
        self.count += 1
        self.sum += seconds
        if seconds < self.min:
            self.min = seconds
        if seconds > self.max:
            self.max = seconds
        for index, edge in enumerate(self.buckets):
            if seconds <= edge:
                self.bucket_counts[index] += 1
                return
        self.bucket_counts[-1] += 1  # +Inf bucket

    @contextmanager
    def time(self) -> Iterator[None]:
        started = time.perf_counter()
        try:
            yield
        finally:
            self.observe(time.perf_counter() - started)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """Bucket-resolution estimate of the ``p``-th percentile."""
        if not 0 < p <= 100:
            raise ValueError(f"percentile must be in (0, 100], got {p}")
        if self.count == 0:
            return 0.0
        target = math.ceil(self.count * p / 100.0)
        seen = 0
        for index, edge in enumerate(self.buckets):
            seen += self.bucket_counts[index]
            if seen >= target:
                return min(edge, self.max)
        return self.max  # target rank lies in the +Inf bucket

    def to_dict(self) -> Dict:
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
            "buckets": [[edge, count] for edge, count
                        in zip(self.buckets, self.bucket_counts)
                        if count] + ([["+Inf", self.bucket_counts[-1]]]
                                     if self.bucket_counts[-1] else []),
        }


class MetricsRegistry:
    """A named collection of counters, gauges, and timers.

    Metric names are dotted paths (``executor.spec_seconds``); the
    Prometheus export mangles them to ``repro_executor_spec_seconds``.
    Accessors create on first use, so instrumentation sites never need
    to pre-declare what they measure.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._timers: Dict[str, Timer] = {}

    def counter(self, name: str) -> Counter:
        metric = self._counters.get(name)
        if metric is None:
            metric = self._counters[name] = Counter(name)
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self._gauges.get(name)
        if metric is None:
            metric = self._gauges[name] = Gauge(name)
        return metric

    def timer(self, name: str,
              buckets: Sequence[float] = DEFAULT_BUCKETS) -> Timer:
        metric = self._timers.get(name)
        if metric is None:
            metric = self._timers[name] = Timer(name, buckets)
        return metric

    # -- export --------------------------------------------------------

    def snapshot(self) -> Dict:
        """JSON-safe dict of every metric's current state."""
        return {
            "counters": {name: c.value
                         for name, c in sorted(self._counters.items())},
            "gauges": {name: g.value
                       for name, g in sorted(self._gauges.items())},
            "timers": {name: t.to_dict()
                       for name, t in sorted(self._timers.items())},
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def to_prometheus(self) -> str:
        """Prometheus text exposition format (one scrape's worth):
        ``# HELP`` (when :data:`METRIC_HELP` describes the metric),
        ``# TYPE``, then the sample lines."""
        lines: List[str] = []

        def describe(name: str, metric: str) -> None:
            help_text = METRIC_HELP.get(name)
            if help_text:
                lines.append(f"# HELP {metric} {help_text}")

        for name, counter in sorted(self._counters.items()):
            metric = _prom_name(name) + "_total"
            describe(name, metric)
            lines.append(f"# TYPE {metric} counter")
            lines.append(f"{metric} {counter.value}")
        for name, gauge in sorted(self._gauges.items()):
            metric = _prom_name(name)
            describe(name, metric)
            lines.append(f"# TYPE {metric} gauge")
            lines.append(f"{metric} {_prom_value(gauge.value)}")
        for name, timer in sorted(self._timers.items()):
            metric = _prom_name(name)
            describe(name, metric)
            lines.append(f"# TYPE {metric} histogram")
            cumulative = 0
            for edge, count in zip(timer.buckets, timer.bucket_counts):
                cumulative += count
                lines.append(f'{metric}_bucket{{le="{_prom_value(edge)}"}} '
                             f"{cumulative}")
            cumulative += timer.bucket_counts[-1]
            lines.append(f'{metric}_bucket{{le="+Inf"}} {cumulative}')
            lines.append(f"{metric}_sum {_prom_value(timer.sum)}")
            lines.append(f"{metric}_count {timer.count}")
        return "\n".join(lines) + ("\n" if lines else "")


def _prom_name(name: str) -> str:
    mangled = "".join(ch if ch.isalnum() else "_" for ch in name)
    return f"repro_{mangled}"


def _prom_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def flatten_snapshot(snapshot: Dict) -> Dict[str, float]:
    """Project a snapshot to scalars — the run ledger's storage shape.

    Counters and gauges keep their names; each timer contributes
    ``<name>.count``, ``<name>.sum``, ``<name>.mean``, and
    ``<name>.max`` (the comparable aggregates; bucket layouts are an
    export detail).
    """
    flat: Dict[str, float] = {}
    for name, value in snapshot.get("counters", {}).items():
        flat[name] = float(value)
    for name, value in snapshot.get("gauges", {}).items():
        flat[name] = float(value)
    for name, timer in snapshot.get("timers", {}).items():
        for key in ("count", "sum", "mean", "max"):
            flat[f"{name}.{key}"] = float(timer[key])
    return flat


# ----------------------------------------------------------------------
# Process-wide attachment (the PipelineTracer pattern, lifted to a
# process scope): instrumented components consult get_registry() once
# per batch/spec/run and skip all accounting when it returns None.
# ----------------------------------------------------------------------

_ACTIVE: Optional[MetricsRegistry] = None


def set_registry(registry: Optional[MetricsRegistry]
                 ) -> Optional[MetricsRegistry]:
    """Attach ``registry`` process-wide; returns the previous one."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = registry
    return previous


def get_registry() -> Optional[MetricsRegistry]:
    """The attached registry, or None (the zero-overhead default)."""
    return _ACTIVE


@contextmanager
def attached(registry: MetricsRegistry) -> Iterator[MetricsRegistry]:
    """Attach a registry for the duration of a ``with`` block."""
    previous = set_registry(registry)
    try:
        yield registry
    finally:
        set_registry(previous)
