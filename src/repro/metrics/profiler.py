"""Host-side profiling: where does simulator wall time actually go?

``repro profile <workload>`` wraps one simulation in :mod:`cProfile`
and aggregates the flat profile by *simulator subsystem* — pipeline
stages, caches, defense hooks, ISA semantics — via a module-to-
subsystem map, so "make the hot path faster" work starts from a
breakdown in the simulator's own vocabulary instead of a wall of
function names.

Because the subsystem map partitions every profiled function (unmatched
frames land in ``host-runtime``), the per-subsystem times sum exactly
to the profile's total internal time — asserted by the test suite, so
the breakdown can never silently drop a hot spot.

Two outputs:

* :meth:`ProfileReport.render` — per-subsystem table plus the top-N
  functions by internal time;
* :meth:`ProfileReport.write_collapsed` — ``subsystem;function count``
  collapsed-stack lines (counts in microseconds of internal time),
  directly consumable by flamegraph tools (``flamegraph.pl``,
  speedscope, inferno).
"""

from __future__ import annotations

import cProfile
import pathlib
import pstats
from dataclasses import dataclass, field
from typing import Dict, List, Tuple, Union

#: First match wins: (path fragment under ``src/repro/``, subsystem).
SUBSYSTEM_RULES: Tuple[Tuple[str, str], ...] = (
    ("uarch/pipeline", "pipeline"),
    ("uarch/caches", "caches"),
    ("uarch/branch_predictor", "branch-predictor"),
    ("uarch/structures", "rob-iq-lsq"),
    ("uarch/trace", "tracing"),
    ("uarch/", "uarch-other"),
    ("defenses/", "defense-hooks"),
    ("protisa/", "protisa-tags"),
    ("arch/", "arch-semantics"),
    ("isa/", "isa"),
    ("protcc/", "protcc"),
    ("contracts/", "contracts"),
    ("fuzzing/", "fuzzing"),
    ("workloads/", "workloads"),
    ("forensics/", "forensics"),
    ("metrics/", "metrics"),
    ("bench/", "bench-harness"),
)

#: Catch-all for frames outside ``src/repro`` (stdlib, builtins).
HOST_SUBSYSTEM = "host-runtime"


def classify_module(filename: str) -> str:
    """Map a profiled frame's filename to its simulator subsystem."""
    path = filename.replace("\\", "/")
    marker = "/repro/"
    index = path.rfind(marker)
    if index < 0:
        return HOST_SUBSYSTEM
    relative = path[index + len(marker):]
    for fragment, subsystem in SUBSYSTEM_RULES:
        if relative.startswith(fragment):
            return subsystem
    return "repro-other"


@dataclass
class ProfileEntry:
    """One profiled function, already classified."""

    subsystem: str
    function: str          # "module.py:line(name)"
    calls: int
    internal_s: float      # tottime: time in the frame itself
    cumulative_s: float    # ct: including callees


@dataclass
class ProfileReport:
    """Aggregated outcome of one profiled simulation."""

    label: str
    cycles: int
    total_s: float                     # sum of every frame's tottime
    subsystems: Dict[str, float] = field(default_factory=dict)
    subsystem_calls: Dict[str, int] = field(default_factory=dict)
    entries: List[ProfileEntry] = field(default_factory=list)

    @property
    def sim_cycles_per_sec(self) -> float:
        return self.cycles / self.total_s if self.total_s else 0.0

    def top(self, n: int = 15) -> List[ProfileEntry]:
        return sorted(self.entries, key=lambda e: -e.internal_s)[:n]

    def render(self, top_n: int = 15) -> str:
        from ..bench.runner import render_table

        rows = [[name, f"{seconds:.3f}",
                 f"{100 * seconds / self.total_s:.1f}%" if self.total_s
                 else "-",
                 self.subsystem_calls.get(name, 0)]
                for name, seconds in sorted(self.subsystems.items(),
                                            key=lambda kv: -kv[1])
                if seconds > 0 or self.subsystem_calls.get(name, 0)]
        lines = [
            f"profile: {self.label} — {self.cycles} sim cycles in "
            f"{self.total_s:.3f}s host time "
            f"({self.sim_cycles_per_sec:,.0f} cycles/s)",
            "",
            render_table("host time by subsystem",
                         ["subsystem", "seconds", "share", "calls"], rows),
            "",
            render_table(
                f"top {top_n} functions by internal time",
                ["subsystem", "function", "calls", "internal_s", "cum_s"],
                [[e.subsystem, e.function, e.calls,
                  f"{e.internal_s:.3f}", f"{e.cumulative_s:.3f}"]
                 for e in self.top(top_n)]),
        ]
        return "\n".join(lines)

    def to_dict(self) -> Dict:
        return {
            "label": self.label,
            "cycles": self.cycles,
            "total_s": self.total_s,
            "sim_cycles_per_sec": self.sim_cycles_per_sec,
            "subsystems": dict(sorted(self.subsystems.items())),
            "top": [{"subsystem": e.subsystem, "function": e.function,
                     "calls": e.calls, "internal_s": e.internal_s,
                     "cumulative_s": e.cumulative_s}
                    for e in self.top()],
        }

    def collapsed_stacks(self) -> List[str]:
        """``subsystem;function <microseconds>`` lines, one per frame.

        cProfile records a call *graph*, not full stacks, so the frames
        collapse under their subsystem rather than their true caller
        chain — coarse, but exact in where the time went, and every
        flamegraph tool renders it directly.
        """
        lines = []
        for entry in sorted(self.entries,
                            key=lambda e: (e.subsystem, e.function)):
            micros = int(round(entry.internal_s * 1e6))
            if micros <= 0:
                continue
            frame = entry.function.replace(";", ":").replace(" ", "_")
            lines.append(f"{entry.subsystem};{frame} {micros}")
        return lines

    def write_collapsed(self, path: Union[str, pathlib.Path]
                        ) -> pathlib.Path:
        path = pathlib.Path(path)
        path.write_text("\n".join(self.collapsed_stacks()) + "\n")
        return path


def profile_spec(spec, top_n: int = 15) -> ProfileReport:
    """Profile one :class:`~repro.bench.runner.RunSpec` simulation."""
    from ..bench.runner import execute_spec

    profile = cProfile.Profile()
    profile.enable()
    try:
        result = execute_spec(spec)
    finally:
        profile.disable()
    report = report_from_stats(pstats.Stats(profile),
                               label=f"{spec.workload} "
                                     f"defense={spec.defense} "
                                     f"core={spec.core}",
                               cycles=result.cycles)
    return report


def report_from_stats(stats: pstats.Stats, label: str,
                      cycles: int = 0) -> ProfileReport:
    """Aggregate a :class:`pstats.Stats` flat profile by subsystem."""
    report = ProfileReport(label=label, cycles=cycles, total_s=0.0)
    for (filename, lineno, funcname), row in stats.stats.items():
        _, ncalls, tottime, cumtime, _callers = row
        subsystem = classify_module(filename)
        short = pathlib.PurePath(filename).name
        function = (f"{short}:{lineno}({funcname})"
                    if short != "~" else f"<built-in>({funcname})")
        report.entries.append(ProfileEntry(
            subsystem=subsystem, function=function, calls=ncalls,
            internal_s=tottime, cumulative_s=cumtime))
        report.subsystems[subsystem] = \
            report.subsystems.get(subsystem, 0.0) + tottime
        report.subsystem_calls[subsystem] = \
            report.subsystem_calls.get(subsystem, 0) + ncalls
        report.total_s += tottime
    return report
