"""Distributed campaign tracing: spans, propagation, and the merger.

A campaign is a tree of work that crosses process — and potentially
machine — boundaries: ``run_batch`` fans specs over a local pool or
the campaign fabric, fuzzing campaigns shard per-program cells, and
fabric workers lease jobs from a spool on any host that shares the
filesystem.  This module gives every piece of that tree one timeline:

* a **span** is a named interval (``trace_id``/``span_id``/
  ``parent_id``, attrs, start/end) whose timestamps come from a
  per-process monotonic clock anchored to the wall clock once at
  recorder creation — monotone within a process, comparable across
  processes up to clock offset;
* a **trace context** (``{"trace_id", "span_id"}``) is the wire format
  shipped across process boundaries — in the pool-worker call tuple
  and in the fabric spool's job rows — so remote children parent under
  the submitting side's span;
* **shards** are per-process JSONL files (``spans-<process>.jsonl``)
  dropped into the spool's ``metrics/`` directory, one line per
  finished span plus per-worker clock-offset estimates;
* the **merger** (:func:`merged_trace`) assembles shards into one
  Chrome-trace/Perfetto JSON, shifting each worker's spans by its
  estimated clock offset and then clamping children into their parents
  in integer microseconds, so the nesting invariant holds exactly even
  across unsynchronized clocks.

Attachment follows the metrics-registry contract exactly: nothing is
recorded unless a recorder is attached via :func:`set_recorder` /
:func:`recording`, and detached code paths pay at most one
``is not None`` check per batch/spec/run — ``Core.step`` contains no
span code at all (asserted by test).  The recorder is deliberately not
thread-safe (the reproduction parallelizes with processes); the one
in-process thread we own — the fabric worker's heartbeat — records
into its *own* recorder against an explicit parent context and is
merged in afterwards.
"""

from __future__ import annotations

import json
import os
import pathlib
import socket
import time
import uuid
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple, Union

#: Bumped whenever the shard or merged-trace layout changes; the golden
#: schema test pins the merged shape.
TRACE_SCHEMA = 1

#: Sentinel: "parent defaults to the innermost open span".
_CURRENT = object()


def new_id() -> str:
    """A 16-hex-digit random id (span and trace identity)."""
    return uuid.uuid4().hex[:16]


def default_process_label() -> str:
    return f"{socket.gethostname()}-{os.getpid()}"


@dataclass
class Span:
    """One named interval on the campaign timeline."""

    name: str
    trace_id: str
    span_id: str
    parent_id: Optional[str]
    start_s: float
    end_s: Optional[float] = None
    process: str = ""
    attrs: Dict = field(default_factory=dict)

    @property
    def duration_s(self) -> float:
        return (self.end_s - self.start_s) if self.end_s is not None \
            else 0.0

    def context(self) -> Dict[str, str]:
        """The wire format shipped across process boundaries."""
        return {"trace_id": self.trace_id, "span_id": self.span_id}

    def to_dict(self) -> Dict:
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "process": self.process,
            "attrs": self.attrs,
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "Span":
        return cls(
            name=str(payload["name"]),
            trace_id=str(payload["trace_id"]),
            span_id=str(payload["span_id"]),
            parent_id=payload.get("parent_id"),
            start_s=float(payload["start_s"]),
            end_s=(float(payload["end_s"])
                   if payload.get("end_s") is not None else None),
            process=str(payload.get("process", "")),
            attrs=dict(payload.get("attrs", {})),
        )


class SpanRecorder:
    """Collects finished spans for one process.

    Timestamps are ``anchor_wall + (monotonic - anchor_mono)``: the
    wall clock is read exactly once (at construction), so spans never
    jump backwards under NTP slew, yet remain comparable across
    processes up to clock offset — which the fabric estimates and the
    merger corrects.
    """

    def __init__(self, process: Optional[str] = None) -> None:
        self.process = process or default_process_label()
        #: Finished spans, in finish order (children before parents).
        self.spans: List[Span] = []
        self._stack: List[Span] = []
        self._anchor_wall = time.time()
        self._anchor_mono = time.monotonic()
        self._written = 0  # shard append high-water mark

    def now(self) -> float:
        """Monotonic seconds anchored to this process's wall clock."""
        return self._anchor_wall + (time.monotonic() - self._anchor_mono)

    # -- span lifecycle ------------------------------------------------

    def _resolve_parent(self, parent) -> Tuple[str, Optional[str]]:
        """(trace_id, parent_id) for a new span."""
        if parent is _CURRENT:
            parent = self._stack[-1] if self._stack else None
        if parent is None:
            return new_id(), None
        if isinstance(parent, Span):
            return parent.trace_id, parent.span_id
        # A wire-format context dict from another process.
        return str(parent["trace_id"]), str(parent["span_id"])

    def start(self, name: str, attrs: Optional[Dict] = None,
              parent=_CURRENT, push: bool = False) -> Span:
        """Open a span.  ``parent`` is the innermost open span by
        default; pass a :class:`Span`, a wire-format context dict, or
        None (a new trace root).  ``push`` makes it the default parent
        for spans opened while it is live."""
        trace_id, parent_id = self._resolve_parent(parent)
        span = Span(name=name, trace_id=trace_id, span_id=new_id(),
                    parent_id=parent_id, start_s=self.now(),
                    process=self.process, attrs=dict(attrs or {}))
        if push:
            self._stack.append(span)
        return span

    def finish(self, span: Span, **attrs) -> Span:
        """Close a span (recording it) and merge ``attrs`` in."""
        if span.end_s is None:
            span.end_s = self.now()
        span.attrs.update(attrs)
        if self._stack and self._stack[-1] is span:
            self._stack.pop()
        self.spans.append(span)
        return span

    @contextmanager
    def span(self, name: str, attrs: Optional[Dict] = None,
             parent=_CURRENT):
        """``with recorder.span("sim"): ...`` — opens, pushes, and
        always finishes (exceptions included)."""
        opened = self.start(name, attrs=attrs, parent=parent, push=True)
        try:
            yield opened
        finally:
            self.finish(opened)

    def add(self, name: str, start_s: float, end_s: float,
            attrs: Optional[Dict] = None, parent=_CURRENT) -> Span:
        """Record an already-completed span with explicit timestamps
        (queue waits, lease round-trips: measured around a call)."""
        trace_id, parent_id = self._resolve_parent(parent)
        span = Span(name=name, trace_id=trace_id, span_id=new_id(),
                    parent_id=parent_id, start_s=start_s,
                    end_s=max(start_s, end_s), process=self.process,
                    attrs=dict(attrs or {}))
        self.spans.append(span)
        return span

    def current(self) -> Optional[Span]:
        return self._stack[-1] if self._stack else None

    def context(self, span: Optional[Span] = None) -> Optional[Dict]:
        """Wire-format context of ``span`` (default: innermost open
        span); None when nothing is open."""
        if span is None:
            span = self.current()
        return span.context() if span is not None else None

    # -- cross-process transport ---------------------------------------

    def to_dicts(self) -> List[Dict]:
        return [span.to_dict() for span in self.spans]

    def adopt(self, payloads: Iterable[Dict]) -> int:
        """Merge spans recorded in another process (pool workers return
        them in the result tuple); returns how many were adopted."""
        adopted = 0
        for payload in payloads:
            self.spans.append(Span.from_dict(payload))
            adopted += 1
        return adopted

    # -- shard files ---------------------------------------------------

    def shard_path(self, directory) -> pathlib.Path:
        safe = "".join(ch if ch.isalnum() or ch in "-_." else "_"
                       for ch in self.process)
        return pathlib.Path(directory) / f"spans-{safe}.jsonl"

    def write_shard(self, directory,
                    clock_offsets: Optional[Dict[str, float]] = None
                    ) -> Optional[pathlib.Path]:
        """Append spans finished since the last write (plus any clock
        estimates) to this process's shard.  Best effort: a read-only
        metrics directory must never fail the work being traced."""
        path = self.shard_path(directory)
        lines: List[str] = []
        if not path.exists():
            lines.append(json.dumps(
                {"kind": "meta", "schema": TRACE_SCHEMA,
                 "process": self.process}, sort_keys=True))
        for span in self.spans[self._written:]:
            lines.append(json.dumps({"kind": "span", **span.to_dict()},
                                    sort_keys=True))
        for worker, offset in sorted((clock_offsets or {}).items()):
            lines.append(json.dumps(
                {"kind": "clock", "process": worker,
                 "offset_s": offset, "source": "heartbeat-rtt"},
                sort_keys=True))
        if not lines:
            return None
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            with path.open("a") as stream:
                stream.write("\n".join(lines) + "\n")
        except OSError:
            return None
        self._written = len(self.spans)
        return path


# ----------------------------------------------------------------------
# Process-wide attachment (the metrics-registry pattern).
# ----------------------------------------------------------------------

_ACTIVE: Optional[SpanRecorder] = None


def set_recorder(recorder: Optional[SpanRecorder]
                 ) -> Optional[SpanRecorder]:
    """Attach ``recorder`` process-wide; returns the previous one."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = recorder
    return previous


def get_recorder() -> Optional[SpanRecorder]:
    """The attached recorder, or None (the zero-overhead default)."""
    return _ACTIVE


@contextmanager
def recording(recorder: SpanRecorder):
    """Attach a recorder for the duration of a ``with`` block."""
    previous = set_recorder(recorder)
    try:
        yield recorder
    finally:
        set_recorder(previous)


# ----------------------------------------------------------------------
# Shard loading and the deterministic merger
# ----------------------------------------------------------------------

def load_shards(directory) -> Tuple[List[Span], Dict[str, float]]:
    """Read every ``spans-*.jsonl`` shard under ``directory``.

    Accepts either a shard directory or a spool root (in which case
    the spool's ``metrics/`` subdirectory is read).  Returns the spans
    and the per-process clock-offset estimates (last writer wins —
    later estimates come from more round-trip samples).  Malformed
    lines are skipped: a shard truncated by a dying worker must not
    sink the whole merge.
    """
    base = pathlib.Path(directory)
    if not list(base.glob("spans-*.jsonl")) and (base / "metrics").is_dir():
        base = base / "metrics"
    spans: List[Span] = []
    offsets: Dict[str, float] = {}
    for path in sorted(base.glob("spans-*.jsonl")):
        for line in path.read_text().splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
                kind = payload.get("kind")
                if kind == "span":
                    spans.append(Span.from_dict(payload))
                elif kind == "clock":
                    offsets[str(payload["process"])] = \
                        float(payload["offset_s"])
            except (ValueError, KeyError, TypeError):
                continue
    return spans, offsets


def _assign_lanes(roots: List[Tuple[int, int, str]]) -> Dict[str, int]:
    """Interval-partition one process's root spans onto display lanes
    so concurrent roots never overlap on one Perfetto track."""
    import heapq

    lanes: Dict[str, int] = {}
    free: List[Tuple[int, int]] = []  # (free-from ts, lane)
    next_lane = 0
    for start, end, span_id in sorted(roots):
        if free and free[0][0] <= start:
            _, lane = heapq.heappop(free)
        else:
            lane = next_lane
            next_lane += 1
        lanes[span_id] = lane
        heapq.heappush(free, (end + 1, lane))
    return lanes


def merged_trace(spans: Iterable[Span],
                 clock_offsets: Optional[Dict[str, float]] = None,
                 label: str = "campaign") -> Dict:
    """Assemble spans (usually from :func:`load_shards`) into one
    Chrome-trace JSON dict.

    Deterministic: the same spans and offsets always produce the same
    dict (and, via ``json.dumps(..., sort_keys=True)``, the same
    bytes).  Worker clocks are corrected in two steps: first each
    span's timestamps are shifted by its process's estimated offset
    (recorded as a ``clock_offset_s`` attr), then every child interval
    is clamped into its parent's in integer microseconds — so the
    nesting invariant (child within parent) holds *exactly* even when
    the offset estimate is off by the residual round-trip delay.
    """
    clock_offsets = dict(clock_offsets or {})
    spans = sorted(spans, key=lambda s: (s.start_s, s.span_id))
    if not spans:
        return {
            "traceEvents": [],
            "displayTimeUnit": "ms",
            "metadata": {"tool": "repro.metrics.spans",
                         "schema": TRACE_SCHEMA, "epoch_s": 0.0,
                         "processes": {}, "clock_offsets": clock_offsets},
        }

    # 1. Clock correction + integer microsecond intervals.
    corrected: Dict[str, Dict] = {}
    for span in spans:
        offset = clock_offsets.get(span.process, 0.0)
        start = span.start_s - offset
        end = (span.end_s - offset) if span.end_s is not None else start
        corrected[span.span_id] = {
            "span": span, "start": start, "end": max(start, end),
            "offset": offset, "unfinished": span.end_s is None,
        }
    epoch = min(entry["start"] for entry in corrected.values())
    for entry in corrected.values():
        entry["ts"] = int(round((entry["start"] - epoch) * 1e6))
        entry["te"] = int(round((entry["end"] - epoch) * 1e6))

    # 2. Clamp children into parents, parents first (spans whose parent
    #    is not in the set are roots — the submitting side's shard may
    #    not have been collected; they keep their own interval).
    def clamp(entry, seen) -> None:
        span = entry["span"]
        if entry.get("clamped") is not None or span.span_id in seen:
            return
        parent = corrected.get(span.parent_id)
        if parent is None:
            entry["clamped"] = False
            return
        clamp(parent, seen | {span.span_id})
        ts = max(entry["ts"], parent["ts"])
        te = min(entry["te"], parent["te"])
        te = max(te, ts)
        entry["clamped"] = (ts, te) != (entry["ts"], entry["te"])
        entry["ts"], entry["te"] = ts, te

    for entry in corrected.values():
        clamp(entry, frozenset())

    # 3. Stable pid per process, lane (tid) per root tree.
    processes = sorted({span.process for span in spans})
    pid_of = {process: index + 1
              for index, process in enumerate(processes)}
    root_of: Dict[str, str] = {}

    def find_root(span_id: str, seen) -> str:
        cached = root_of.get(span_id)
        if cached is not None:
            return cached
        entry = corrected[span_id]
        parent_id = entry["span"].parent_id
        parent = corrected.get(parent_id)
        if (parent is None
                or parent["span"].process != entry["span"].process
                or parent_id in seen):
            root = span_id
        else:
            root = find_root(parent_id, seen | {span_id})
        root_of[span_id] = root
        return root

    lanes: Dict[str, int] = {}
    for process in processes:
        roots = []
        for span_id, entry in corrected.items():
            if entry["span"].process != process:
                continue
            if find_root(span_id, frozenset({span_id})) == span_id:
                roots.append((entry["ts"], entry["te"], span_id))
        lanes.update(_assign_lanes(roots))

    # 4. Emit events, deterministically ordered.
    events: List[Dict] = []
    for index, process in enumerate(processes):
        events.append({"name": "process_name", "ph": "M",
                       "pid": index + 1, "tid": 0,
                       "args": {"name": f"{label}: {process}"}})
    slices = []
    for span_id, entry in sorted(corrected.items()):
        span = entry["span"]
        args = {"trace_id": span.trace_id, "span_id": span.span_id,
                "parent_id": span.parent_id, "process": span.process,
                **span.attrs}
        if entry["offset"]:
            args["clock_offset_s"] = entry["offset"]
        if entry["clamped"]:
            args["clamped"] = True
        if entry["unfinished"]:
            args["unfinished"] = True
        slices.append({
            "name": span.name,
            "cat": "span",
            "ph": "X",
            "ts": entry["ts"],
            "dur": entry["te"] - entry["ts"],
            "pid": pid_of[span.process],
            "tid": lanes[find_root(span_id, frozenset({span_id}))],
            "args": args,
        })
    slices.sort(key=lambda e: (e["ts"], e["pid"], e["tid"], -e["dur"],
                               e["args"]["span_id"]))
    events.extend(slices)
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "metadata": {
            "tool": "repro.metrics.spans",
            "schema": TRACE_SCHEMA,
            "epoch_s": epoch,
            "processes": {str(pid_of[p]): p for p in processes},
            "clock_offsets": clock_offsets,
        },
    }


def write_merged_trace(path, spans: Iterable[Span],
                       clock_offsets: Optional[Dict[str, float]] = None,
                       label: str = "campaign") -> pathlib.Path:
    """Write one merged Chrome trace (Perfetto-loadable JSON)."""
    path = pathlib.Path(path)
    path.write_text(json.dumps(merged_trace(spans, clock_offsets,
                                            label=label),
                               sort_keys=True))
    return path


def nesting_violations(trace: Dict) -> List[str]:
    """Every merged span whose interval escapes its parent's — the
    invariant the merger guarantees (used by tests and the golden
    schema check); empty on a well-formed trace."""
    slices = {event["args"]["span_id"]: event
              for event in trace.get("traceEvents", [])
              if event.get("ph") == "X"}
    problems = []
    for span_id, event in sorted(slices.items()):
        parent = slices.get(event["args"].get("parent_id"))
        if parent is None:
            continue
        if (event["ts"] < parent["ts"]
                or event["ts"] + event["dur"]
                > parent["ts"] + parent["dur"]):
            problems.append(
                f"{event['name']} [{span_id}] "
                f"({event['ts']}+{event['dur']}) escapes parent "
                f"{parent['name']} ({parent['ts']}+{parent['dur']})")
    return problems


def span_attrs_for_spec(spec) -> Dict:
    """The standard attrs a spec-shaped span carries (shared by the
    executor, the fabric, and the CLI so traces join cleanly)."""
    return {"workload": spec.workload, "defense": spec.defense,
            "instrument": spec.instrument, "core": spec.core}
