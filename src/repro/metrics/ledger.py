"""The persistent run ledger: a trajectory of benchmark invocations.

Every ``repro bench`` / ``repro fuzz`` invocation appends one schema-
versioned record — git SHA, host fingerprint, config digest, a
flattened metrics snapshot, and the per-table geomean overheads — to a
SQLite database at ``benchmarks/results/ledger.db`` (override with the
``REPRO_LEDGER`` environment variable).  The ledger is what gives the
reproduction memory across runs: ``repro history`` renders trends and
``repro compare`` diffs two records and exits nonzero on a regression,
so CI can gate on both *simulator performance* (host seconds going up)
and *overhead fidelity* (the paper's normalized-runtime geomeans
drifting).

Two regression axes, judged against a relative threshold (percent):

* **perf** — wall-clock metrics (``command_seconds`` and every
  ``*seconds*.sum`` timer aggregate).  Only an *increase* beyond the
  threshold regresses; getting faster is an improvement.
* **fidelity** — the recorded table values (geomean normalized
  runtimes).  Any relative drift beyond the threshold regresses,
  in either direction: a "faster" overhead number still means the
  reproduction no longer reproduces the paper.

Records are addressed by ``#<id>``, a git-SHA prefix (most recent
match), or the keywords ``latest`` / ``prev``.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import platform
import sqlite3
import subprocess
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Union

#: Bumped whenever the record layout changes; ``load_records`` skips
#: records written under another schema rather than misreading them.
LEDGER_SCHEMA = 1


class LedgerError(RuntimeError):
    """Raised on unreadable ledgers and unresolvable record selectors."""


def repo_root() -> pathlib.Path:
    # src/repro/metrics/ledger.py -> repo root is four parents up.
    return pathlib.Path(__file__).resolve().parents[3]


def default_ledger_path() -> pathlib.Path:
    override = os.environ.get("REPRO_LEDGER", "")
    if override:
        return pathlib.Path(override)
    return repo_root() / "benchmarks" / "results" / "ledger.db"


def ledger_enabled() -> bool:
    return os.environ.get("REPRO_NO_LEDGER", "") in ("", "0")


def current_git_sha() -> str:
    """HEAD's SHA (``REPRO_GIT_SHA`` overrides; ``unknown`` fallback)."""
    override = os.environ.get("REPRO_GIT_SHA", "")
    if override:
        return override
    try:
        out = subprocess.run(
            ["git", "-C", str(repo_root()), "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=10)
        if out.returncode == 0:
            return out.stdout.strip()
    except (OSError, subprocess.SubprocessError):
        pass
    return "unknown"


def host_fingerprint() -> Dict:
    """What makes two runs comparable: the machine and interpreter.

    Trajectory points from different fingerprints still land in the
    same ledger, but ``repro compare`` flags the mismatch so a laptop
    run is never silently judged against a CI runner.
    """
    info = {
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "cpu_count": os.cpu_count() or 1,
    }
    digest = hashlib.sha256(
        json.dumps(info, sort_keys=True).encode()).hexdigest()
    info["digest"] = digest[:16]
    return info


def config_digest(payload) -> str:
    """Stable digest of an invocation's configuration knobs."""
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True, default=str).encode()
    ).hexdigest()[:16]


@dataclass
class LedgerRecord:
    """One invocation's snapshot — the unit the ledger appends."""

    command: str
    git_sha: str = ""
    host: Dict = field(default_factory=dict)
    config: str = ""
    metrics: Dict[str, float] = field(default_factory=dict)
    tables: Dict[str, float] = field(default_factory=dict)
    schema: int = LEDGER_SCHEMA
    created_at: float = 0.0
    record_id: Optional[int] = None

    def label(self) -> str:
        rid = f"#{self.record_id}" if self.record_id is not None else "#?"
        return f"{rid} {self.git_sha[:10] or '?'} ({self.command})"

    def to_dict(self) -> Dict:
        return {
            "record_id": self.record_id,
            "schema": self.schema,
            "created_at": self.created_at,
            "git_sha": self.git_sha,
            "command": self.command,
            "config": self.config,
            "host": dict(self.host),
            "metrics": dict(self.metrics),
            "tables": dict(self.tables),
        }


def summarize_tables(tables: Iterable) -> Dict[str, float]:
    """Flatten table results to the geomean scalars the ledger keeps.

    ``tables`` is any iterable of objects with ``name`` and ``data``
    (:class:`repro.bench.tables.TableResult`).  When a table's data
    carries explicit ``geomean`` entries only those are kept (per-
    benchmark points would make cross-commit diffs noisy and huge);
    tables without geomeans contribute every numeric leaf.
    """
    flat: Dict[str, float] = {}
    for table in tables:
        leaves: Dict[str, float] = {}
        for key, value in getattr(table, "data", {}).items():
            if isinstance(key, str):
                key_s = key
            elif isinstance(key, (tuple, list)):
                key_s = "/".join(str(part) for part in key)
            else:
                key_s = str(key)
            if isinstance(value, dict):
                for sub, number in value.items():
                    if _is_number(number):
                        leaves[f"{key_s}/{sub}"] = float(number)
            elif _is_number(value):
                leaves[key_s] = float(value)
        geomeans = {k: v for k, v in leaves.items() if "geomean" in k}
        chosen = geomeans or leaves
        for key_s, number in chosen.items():
            flat[f"{table.name}::{key_s}"] = number
    return flat


def _is_number(value) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def make_record(command: str, tables: Iterable = (),
                registry=None, config: Union[str, Dict, None] = None,
                extra_metrics: Optional[Dict[str, float]] = None
                ) -> LedgerRecord:
    """Assemble a record from an invocation's outputs (not yet stored)."""
    from .registry import flatten_snapshot

    metrics: Dict[str, float] = {}
    if registry is not None:
        metrics.update(flatten_snapshot(registry.snapshot()))
    if extra_metrics:
        metrics.update(extra_metrics)
    return LedgerRecord(
        command=command,
        git_sha=current_git_sha(),
        host=host_fingerprint(),
        config=(config if isinstance(config, str)
                else config_digest(config or command)),
        metrics=metrics,
        tables=summarize_tables(tables),
    )


# ----------------------------------------------------------------------
# SQLite storage
# ----------------------------------------------------------------------

def _connect(path: pathlib.Path) -> sqlite3.Connection:
    path.parent.mkdir(parents=True, exist_ok=True)
    conn = sqlite3.connect(str(path))
    conn.execute("""
        CREATE TABLE IF NOT EXISTS runs (
            id INTEGER PRIMARY KEY AUTOINCREMENT,
            schema INTEGER NOT NULL,
            created_at REAL NOT NULL,
            git_sha TEXT NOT NULL,
            command TEXT NOT NULL,
            config TEXT NOT NULL,
            host_json TEXT NOT NULL,
            metrics_json TEXT NOT NULL,
            tables_json TEXT NOT NULL
        )""")
    return conn


def append_record(record: LedgerRecord,
                  path: Union[str, pathlib.Path, None] = None
                  ) -> LedgerRecord:
    """Append one record; returns it with ``record_id``/``created_at``
    stamped."""
    ledger = pathlib.Path(path) if path else default_ledger_path()
    record.created_at = record.created_at or time.time()
    with _connect(ledger) as conn:
        cursor = conn.execute(
            "INSERT INTO runs (schema, created_at, git_sha, command, "
            "config, host_json, metrics_json, tables_json) "
            "VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
            (record.schema, record.created_at, record.git_sha,
             record.command, record.config,
             json.dumps(record.host, sort_keys=True),
             json.dumps(record.metrics, sort_keys=True),
             json.dumps(record.tables, sort_keys=True)))
        record.record_id = cursor.lastrowid
    return record


def load_records(path: Union[str, pathlib.Path, None] = None,
                 limit: Optional[int] = None) -> List[LedgerRecord]:
    """Every readable record, oldest first (bounded by ``limit`` newest)."""
    ledger = pathlib.Path(path) if path else default_ledger_path()
    if not ledger.exists():
        return []
    try:
        with _connect(ledger) as conn:
            rows = conn.execute(
                "SELECT id, schema, created_at, git_sha, command, config, "
                "host_json, metrics_json, tables_json FROM runs "
                "ORDER BY id DESC" + (f" LIMIT {int(limit)}" if limit
                                      else "")).fetchall()
    except sqlite3.Error as exc:
        raise LedgerError(f"cannot read ledger {ledger}: {exc}") from exc
    records = []
    for (rid, schema, created, sha, command, config,
         host_json, metrics_json, tables_json) in rows:
        if schema != LEDGER_SCHEMA:
            continue  # written by a different layout; never misread it
        try:
            records.append(LedgerRecord(
                command=command, git_sha=sha,
                host=json.loads(host_json), config=config,
                metrics=json.loads(metrics_json),
                tables=json.loads(tables_json),
                schema=schema, created_at=created, record_id=rid))
        except (ValueError, TypeError):
            continue
    records.reverse()
    return records


def resolve_record(records: List[LedgerRecord],
                   selector: str) -> LedgerRecord:
    """``#id`` | ``latest`` | ``prev`` | git-SHA prefix (newest match)."""
    if not records:
        raise LedgerError("the run ledger is empty — run `repro bench` "
                          "to append a first record")
    if selector == "latest":
        return records[-1]
    if selector == "prev":
        if len(records) < 2:
            raise LedgerError("`prev` needs at least two ledger records")
        return records[-2]
    if selector.startswith("#"):
        try:
            rid = int(selector[1:])
        except ValueError:
            raise LedgerError(f"bad record id {selector!r}") from None
        for record in records:
            if record.record_id == rid:
                return record
        raise LedgerError(f"no ledger record with id {selector}")
    matches = [r for r in records if r.git_sha.startswith(selector)]
    if not matches:
        raise LedgerError(f"no ledger record matches SHA prefix "
                          f"{selector!r}")
    return matches[-1]


# ----------------------------------------------------------------------
# Cross-commit comparison
# ----------------------------------------------------------------------

def _is_perf_key(key: str) -> bool:
    return key == "command_seconds" or (
        "seconds" in key and key.endswith(".sum"))


@dataclass
class Delta:
    """One compared value."""

    axis: str         # "perf" | "fidelity"
    name: str
    old: float
    new: float
    pct: float        # signed relative change, percent
    regression: bool

    def describe(self) -> str:
        arrow = "REGRESSION" if self.regression else (
            "improved" if self.pct < 0 else "ok")
        return (f"[{self.axis}] {self.name}: {self.old:.4g} -> "
                f"{self.new:.4g} ({self.pct:+.1f}%) {arrow}")


@dataclass
class Comparison:
    """Outcome of diffing two ledger records."""

    old: LedgerRecord
    new: LedgerRecord
    threshold_pct: float
    deltas: List[Delta] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    @property
    def regressions(self) -> List[Delta]:
        return [d for d in self.deltas if d.regression]

    @property
    def regressed(self) -> bool:
        return bool(self.regressions)

    def render(self) -> str:
        lines = [f"compare {self.old.label()} -> {self.new.label()} "
                 f"(threshold {self.threshold_pct:g}%)"]
        lines += [f"  note: {note}" for note in self.notes]
        changed = [d for d in self.deltas if d.regression or d.pct]
        for delta in sorted(changed, key=lambda d: (not d.regression,
                                                    -abs(d.pct))):
            lines.append(f"  {delta.describe()}")
        unchanged = len(self.deltas) - len(changed)
        if unchanged:
            lines.append(f"  ({unchanged} values unchanged)")
        lines.append(f"verdict: {len(self.regressions)} regressions "
                     f"in {len(self.deltas)} compared values")
        return "\n".join(lines)

    def to_dict(self) -> Dict:
        return {
            "old": self.old.label(),
            "new": self.new.label(),
            "threshold_pct": self.threshold_pct,
            "regressed": self.regressed,
            "notes": list(self.notes),
            "deltas": [{"axis": d.axis, "name": d.name, "old": d.old,
                        "new": d.new, "pct": d.pct,
                        "regression": d.regression}
                       for d in self.deltas],
        }


def compare_records(old: LedgerRecord, new: LedgerRecord,
                    threshold_pct: float = 10.0) -> Comparison:
    """Diff two records along the perf and fidelity axes."""
    comparison = Comparison(old=old, new=new, threshold_pct=threshold_pct)
    if old.host.get("digest") != new.host.get("digest"):
        comparison.notes.append(
            "records come from different hosts "
            f"({old.host.get('digest')} vs {new.host.get('digest')}); "
            "wall-clock comparisons are indicative only")

    # Fidelity: recorded table values must agree in both directions.
    shared = sorted(set(old.tables) & set(new.tables))
    for name in sorted(set(old.tables) ^ set(new.tables)):
        side = "old" if name in old.tables else "new"
        comparison.notes.append(f"table value only in {side}: {name}")
    for name in shared:
        a, b = old.tables[name], new.tables[name]
        pct = _relative_pct(a, b)
        comparison.deltas.append(Delta(
            axis="fidelity", name=name, old=a, new=b, pct=pct,
            regression=abs(pct) > threshold_pct))

    # Perf: host wall time may only increase within the threshold.
    perf_keys = sorted(k for k in set(old.metrics) & set(new.metrics)
                       if _is_perf_key(k))
    for name in perf_keys:
        a, b = old.metrics[name], new.metrics[name]
        pct = _relative_pct(a, b)
        comparison.deltas.append(Delta(
            axis="perf", name=name, old=a, new=b, pct=pct,
            regression=pct > threshold_pct))
    return comparison


def _relative_pct(old: float, new: float) -> float:
    if old == new:
        return 0.0
    if old == 0:
        return float("inf") if new > 0 else float("-inf")
    return 100.0 * (new - old) / abs(old)


# ----------------------------------------------------------------------
# History rendering
# ----------------------------------------------------------------------

def render_history(records: List[LedgerRecord],
                   metrics: Optional[List[str]] = None) -> str:
    """One line per record, with selected metric/table columns.

    ``metrics`` entries match by substring against both the metrics
    and tables namespaces; the default shows the invocation wall time.
    """
    from ..bench.runner import render_table

    wanted = metrics or ["command_seconds"]
    columns: List[str] = []
    for pattern in wanted:
        for record in records:
            for key in list(record.metrics) + list(record.tables):
                if pattern in key and key not in columns:
                    columns.append(key)
    columns = columns[:6]  # keep the table readable

    rows = []
    for record in records:
        when = time.strftime("%Y-%m-%d %H:%M",
                             time.localtime(record.created_at))
        row: List[object] = [f"#{record.record_id}", record.git_sha[:10],
                             when, record.command]
        for key in columns:
            value = record.metrics.get(key, record.tables.get(key))
            row.append("-" if value is None else f"{value:.4g}")
        rows.append(row)
    headers = ["id", "sha", "when", "command"] + columns
    return render_table(f"run ledger ({len(records)} records)",
                        headers, rows)
