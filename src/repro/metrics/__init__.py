"""repro.metrics — the measure -> record -> compare loop.

* :mod:`.registry` — counters/gauges/timers with JSON + Prometheus
  export, attached per process with :func:`set_registry` (detached
  code pays one ``is not None`` check, the ``PipelineTracer`` pattern).
* :mod:`.spans` — distributed campaign tracing: spans with
  cross-process trace-context propagation, per-process shard files,
  and a deterministic Chrome-trace merger (attached per process with
  :func:`set_recorder`, same zero-overhead contract).
* :mod:`.profiler` — host-side cProfile wrapper aggregating hotspots
  by simulator subsystem, with collapsed-stack flamegraph output.
* :mod:`.ledger` — the persistent SQLite run ledger behind
  ``repro history`` and ``repro compare``.
"""

from .registry import (
    DEFAULT_BUCKETS,
    METRIC_HELP,
    Counter,
    Gauge,
    MetricsRegistry,
    Timer,
    attached,
    flatten_snapshot,
    get_registry,
    set_registry,
)
from .spans import (
    TRACE_SCHEMA,
    Span,
    SpanRecorder,
    get_recorder,
    load_shards,
    merged_trace,
    nesting_violations,
    recording,
    set_recorder,
    write_merged_trace,
)
from .profiler import (
    HOST_SUBSYSTEM,
    ProfileEntry,
    ProfileReport,
    SUBSYSTEM_RULES,
    classify_module,
    profile_spec,
    report_from_stats,
)
from .ledger import (
    LEDGER_SCHEMA,
    Comparison,
    Delta,
    LedgerError,
    LedgerRecord,
    append_record,
    compare_records,
    config_digest,
    current_git_sha,
    default_ledger_path,
    host_fingerprint,
    ledger_enabled,
    load_records,
    make_record,
    render_history,
    resolve_record,
    summarize_tables,
)

__all__ = [
    "DEFAULT_BUCKETS", "METRIC_HELP", "Counter", "Gauge",
    "MetricsRegistry", "Timer",
    "attached", "flatten_snapshot", "get_registry", "set_registry",
    "TRACE_SCHEMA", "Span", "SpanRecorder", "get_recorder",
    "load_shards", "merged_trace", "nesting_violations", "recording",
    "set_recorder", "write_merged_trace",
    "HOST_SUBSYSTEM", "ProfileEntry", "ProfileReport", "SUBSYSTEM_RULES",
    "classify_module", "profile_spec", "report_from_stats",
    "LEDGER_SCHEMA", "Comparison", "Delta", "LedgerError", "LedgerRecord",
    "append_record", "compare_records", "config_digest",
    "current_git_sha", "default_ledger_path", "host_fingerprint",
    "ledger_enabled", "load_records", "make_record", "render_history",
    "resolve_record", "summarize_tables",
]
