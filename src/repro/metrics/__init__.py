"""repro.metrics — the measure -> record -> compare loop.

* :mod:`.registry` — counters/gauges/timers with JSON + Prometheus
  export, attached per process with :func:`set_registry` (detached
  code pays one ``is not None`` check, the ``PipelineTracer`` pattern).
* :mod:`.profiler` — host-side cProfile wrapper aggregating hotspots
  by simulator subsystem, with collapsed-stack flamegraph output.
* :mod:`.ledger` — the persistent SQLite run ledger behind
  ``repro history`` and ``repro compare``.
"""

from .registry import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    MetricsRegistry,
    Timer,
    attached,
    flatten_snapshot,
    get_registry,
    set_registry,
)
from .profiler import (
    HOST_SUBSYSTEM,
    ProfileEntry,
    ProfileReport,
    SUBSYSTEM_RULES,
    classify_module,
    profile_spec,
    report_from_stats,
)
from .ledger import (
    LEDGER_SCHEMA,
    Comparison,
    Delta,
    LedgerError,
    LedgerRecord,
    append_record,
    compare_records,
    config_digest,
    current_git_sha,
    default_ledger_path,
    host_fingerprint,
    ledger_enabled,
    load_records,
    make_record,
    render_history,
    resolve_record,
    summarize_tables,
)

__all__ = [
    "DEFAULT_BUCKETS", "Counter", "Gauge", "MetricsRegistry", "Timer",
    "attached", "flatten_snapshot", "get_registry", "set_registry",
    "HOST_SUBSYSTEM", "ProfileEntry", "ProfileReport", "SUBSYSTEM_RULES",
    "classify_module", "profile_spec", "report_from_stats",
    "LEDGER_SCHEMA", "Comparison", "Delta", "LedgerError", "LedgerRecord",
    "append_record", "compare_records", "config_digest",
    "current_git_sha", "default_ledger_path", "host_fingerprint",
    "ledger_enabled", "load_records", "make_record", "render_history",
    "resolve_record", "summarize_tables",
]
