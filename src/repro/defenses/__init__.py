"""repro.defenses — protection mechanisms (paper SIII-B, SVI).

The unsafe baseline, the hardware-defined-ProtSet secure baselines
(AccessDelay/NDA, AccessTrack/STT, SPT, SPT-SB), and Protean's
ProtDelay/ProtTrack, all as pipeline policy objects."""

from .base import Defense, Unsafe
from .baselines import AccessDelay, AccessTrack, SPT, SPTSB
from .predictor import AccessPredictor
from .protean import ProtDelay, ProtTrack

__all__ = [
    "Defense", "Unsafe",
    "AccessDelay", "AccessTrack", "SPT", "SPTSB",
    "AccessPredictor",
    "ProtDelay", "ProtTrack",
]
