"""Protection-mechanism interface (paper SIII-B, SVI).

A defense is a policy object the pipeline consults at fixed points.
Every mechanism in the paper — AccessDelay (NDA/SpecShield),
AccessTrack (STT), SPT, SPT-SB's XmitDelay, ProtDelay, and ProtTrack —
is expressible through these hooks:

* ``on_rename``        — taint/protection decisions at rename.
* ``may_execute``      — gate issue of execute-time transmitters
  (loads, stores, divisions) and anything else.
* ``may_resolve``      — gate branch resolution (the squash signal),
  the resolve-time transmission of flags / indirect targets.
* ``may_wakeup``       — gate the ready-broadcast of a completed uop's
  outputs (AccessDelay-style wakeup delays).
* ``on_load_executed`` — observe a load's actual memory protection
  (ProtTrack's access-misprediction detection).
* ``on_commit`` / ``on_squash`` — retire-time bookkeeping.

Helper predicates shared by all mechanisms live here: speculation-state
queries, YRoT taint checks, and the transmitter-operand enumeration the
threat model fixes (paper SII-B1).
"""

from __future__ import annotations

from typing import List, Optional

from ..uarch.uop import Uop


class Defense:
    """Base policy: the unsafe baseline (no protection at all)."""

    #: Display name used by the benchmark harness.
    name = "Unsafe"

    #: Which ProtCC instrumentation this mechanism expects ("base" for
    #: hardware-defined-ProtSet baselines that ignore PROT prefixes).
    binary = "base"

    def __init__(self) -> None:
        self.core = None
        #: Counters exported into ``CoreResult.stats`` under a
        #: ``defense_`` prefix (and from there into ``RunSummary`` and
        #: the report tables).  The three below are maintained by the
        #: pipeline for every mechanism; subclasses add their own keys
        #: here in ``__init__`` (not lazily — the schema should be
        #: stable from cycle 0) and increment them in their hooks.
        self.stats = {
            "delayed_transmitters": 0,
            "delayed_resolutions": 0,
            "delayed_wakeups": 0,
        }

    def attach(self, core) -> None:
        self.core = core

    # -- hooks (default: allow everything) -------------------------------

    def on_rename(self, uop: Uop) -> None:
        pass

    def may_execute(self, uop: Uop) -> bool:
        return True

    def may_resolve(self, uop: Uop) -> bool:
        return True

    def may_wakeup(self, uop: Uop) -> bool:
        return True

    def on_load_executed(self, uop: Uop) -> None:
        pass

    def on_commit(self, uop: Uop) -> None:
        pass

    def on_squash(self, uop: Uop) -> None:
        pass

    # -- shared helpers ---------------------------------------------------

    def nonspeculative(self, uop: Uop) -> bool:
        """Whether the uop is past its speculation window (SII-B2)."""
        return self.core.seq_nonspeculative(uop.seq)

    def tainted(self, preg: int) -> bool:
        """YRoT taint check: a physical register is tainted while the
        youngest access instruction it depends on is still speculative."""
        yrot = self.core.prf.yrot[preg]
        return yrot is not None and not self.core.seq_nonspeculative(yrot)

    def propagated_yrot(self, uop: Uop) -> Optional[int]:
        """Taint propagation at rename: max of the (live) source roots."""
        result: Optional[int] = None
        prf = self.core.prf
        for _, preg in uop.psrcs:
            yrot = prf.yrot[preg]
            if yrot is not None and not self.core.seq_nonspeculative(yrot):
                if result is None or yrot > result:
                    result = yrot
        return result

    def protected_src(self, uop: Uop) -> bool:
        """Whether any renamed register input carries a ProtISA
        protection tag (the register half of Definition 1)."""
        prf = self.core.prf
        return any(prf.prot[preg] for _, preg in uop.psrcs)

    def execute_sensitive_pregs(self, uop: Uop) -> List[int]:
        """Physical registers transmitted when ``uop`` executes."""
        regs = uop.inst.transmit_regs_at_execute()
        if uop.inst.is_div and not self.core.config.div_is_transmitter:
            return []
        return [p for a, p in uop.psrcs if a in regs]

    def resolve_sensitive_pregs(self, uop: Uop) -> List[int]:
        """Physical registers transmitted when ``uop`` resolves."""
        regs = uop.inst.transmit_regs_at_resolve()
        return [p for a, p in uop.psrcs if a in regs]

    def div_gated(self, uop: Uop) -> bool:
        return uop.inst.is_div and self.core.config.div_is_transmitter


class Unsafe(Defense):
    """The unmodified out-of-order core (paper's unsafe baseline)."""

    name = "Unsafe"
    binary = "base"
