"""Protection-mechanism interface (paper SIII-B, SVI).

A defense is a policy object the pipeline consults at fixed points.
Every mechanism in the paper — AccessDelay (NDA/SpecShield),
AccessTrack (STT), SPT, SPT-SB's XmitDelay, ProtDelay, and ProtTrack —
is expressible through these hooks:

* ``on_rename``        — taint/protection decisions at rename.
* ``may_execute``      — gate issue of execute-time transmitters
  (loads, stores, divisions) and anything else.
* ``may_resolve``      — gate branch resolution (the squash signal),
  the resolve-time transmission of flags / indirect targets.
* ``may_wakeup``       — gate the ready-broadcast of a completed uop's
  outputs (AccessDelay-style wakeup delays).
* ``on_load_executed`` — observe a load's actual memory protection
  (ProtTrack's access-misprediction detection).
* ``on_commit`` / ``on_squash`` — retire-time bookkeeping.

Helper predicates shared by all mechanisms live here: speculation-state
queries, YRoT taint checks, and the transmitter-operand enumeration the
threat model fixes (paper SII-B1).
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple

from ..uarch.config import SpeculationModel
from ..uarch.uop import Uop

#: Returned by the ``*_recheck_seq`` hooks when a refusal can never be
#: overturned by commits alone (only by the event counters the core's
#: fast path tracks separately: squash, resolution, and — for
#: load-sensitive mechanisms — load execution).
RECHECK_NEVER = 1 << 62


class Defense:
    """Base policy: the unsafe baseline (no protection at all)."""

    #: Display name used by the benchmark harness.
    name = "Unsafe"

    #: Which ProtCC instrumentation this mechanism expects ("base" for
    #: hardware-defined-ProtSet baselines that ignore PROT prefixes).
    binary = "base"

    #: Fast-path invalidation hint: True when this mechanism's gate
    #: answers can change when *some other* load executes (i.e. when
    #: ``on_load_executed`` mutates state that ``may_execute`` /
    #: ``may_resolve`` / ``may_wakeup`` read for unrelated uops, like
    #: SPT's public bits).  ``None`` (the default) auto-detects: any
    #: subclass overriding ``on_load_executed`` is treated as
    #: load-sensitive unless it explicitly sets this to False (ProtTrack
    #: does: its mutations are keyed by the executing load itself and
    #: never change answers for other uops).
    recheck_on_load_execute: Optional[bool] = None

    def recheck_loads(self) -> bool:
        """Resolve :attr:`recheck_on_load_execute` (see there)."""
        flag = self.recheck_on_load_execute
        if flag is None:
            return type(self).on_load_executed \
                is not Defense.on_load_executed
        return bool(flag)

    def __init__(self) -> None:
        self.core = None
        #: Counters exported into ``CoreResult.stats`` under a
        #: ``defense_`` prefix (and from there into ``RunSummary`` and
        #: the report tables).  The three below are maintained by the
        #: pipeline for every mechanism; subclasses add their own keys
        #: here in ``__init__`` (not lazily — the schema should be
        #: stable from cycle 0) and increment them in their hooks.
        self.stats = {
            "delayed_transmitters": 0,
            "delayed_resolutions": 0,
            "delayed_wakeups": 0,
            # Per-hook intervention episodes (also pipeline-maintained):
            # ``*_interventions`` counts uops a hook refused at least
            # once; ``*_delay_cycles`` sums first-refusal -> allow (or
            # squash / end-of-run) cycles per episode.  Unlike the
            # ``delayed_*`` refusal counters above, an episode spanning
            # N retry cycles counts once.
            "exec_interventions": 0,
            "exec_delay_cycles": 0,
            "resolve_interventions": 0,
            "resolve_delay_cycles": 0,
            "wakeup_interventions": 0,
            "wakeup_delay_cycles": 0,
        }

    def attach(self, core) -> None:
        self.core = core

    def compile_params(self) -> Tuple:
        """Constructor parameters that change this mechanism's behaviour,
        for the compiled backend's artifact cache key (see
        :func:`repro.uarch.compiled.compile_key`).  Subclasses with
        behavioural constructor arguments must override this — two
        instances of the same class with different ``compile_params()``
        must never share a compiled artifact."""
        return ()

    # -- hooks (default: allow everything) -------------------------------

    def on_rename(self, uop: Uop) -> None:
        pass

    def may_execute(self, uop: Uop) -> bool:
        return True

    def may_resolve(self, uop: Uop) -> bool:
        return True

    def may_wakeup(self, uop: Uop) -> bool:
        return True

    def on_load_executed(self, uop: Uop) -> None:
        pass

    def on_commit(self, uop: Uop) -> None:
        pass

    def on_squash(self, uop: Uop) -> None:
        pass

    # -- fast-path refusal-stability hints --------------------------------
    #
    # Each hook is consulted by the core's fast path immediately after
    # the corresponding ``may_*`` hook returned False, and answers:
    # "until when is this refusal guaranteed to stand?"  The contract:
    # absent squash/resolution events (and load executions, for
    # load-sensitive mechanisms) — all of which invalidate separately —
    # the refusal must hold at least until the ROB head's sequence
    # number reaches the returned value.  ``None`` means "a commit might
    # flip it" (the conservative default: the cache dies at the next
    # commit); :data:`RECHECK_NEVER` means commits alone can never flip
    # it.  Returning too *small* a value merely costs a redundant
    # re-probe; returning too large a value breaks cycle-identity, so
    # derive these only from monotone thresholds (``nonspeculative`` /
    # taint clearing under ATCOMMIT advance with the head and never
    # regress between events).

    def execute_recheck_seq(self, uop: Uop) -> Optional[int]:
        """Stability hint for a ``may_execute`` refusal."""
        return None

    def resolve_recheck_seq(self, uop: Uop) -> Optional[int]:
        """Stability hint for a ``may_resolve`` refusal."""
        return None

    def wakeup_recheck_seq(self, uop: Uop) -> Optional[int]:
        """Stability hint for a ``may_wakeup`` refusal."""
        return None

    def _nonspec_flip_seq(self, seq: int) -> int:
        """Head seq at which ``seq_nonspeculative(seq)`` can first turn
        True.  Under ATCOMMIT that is exactly ``seq`` (the head advances
        monotonically); under CONTROL the answer changes only at branch
        resolutions, which bump the core's resolution event counter."""
        if self.core.config.speculation_model is SpeculationModel.ATCOMMIT:
            return seq
        return RECHECK_NEVER

    def _taint_flip_seq(self, pregs: Iterable[int]) -> int:
        """Head seq at which the *earliest* current taint among
        ``pregs`` can clear (taints only clear, never appear, between
        events: YRoT values are written at rename of fresh registers)."""
        core = self.core
        if core.config.speculation_model is not SpeculationModel.ATCOMMIT:
            return RECHECK_NEVER
        flip = RECHECK_NEVER
        yrot_arr = core.prf.yrot
        nonspec = core.seq_nonspeculative
        for preg in pregs:
            yrot = yrot_arr[preg]
            if yrot is not None and yrot < flip and not nonspec(yrot):
                flip = yrot
        return flip

    # -- shared helpers ---------------------------------------------------

    def nonspeculative(self, uop: Uop) -> bool:
        """Whether the uop is past its speculation window (SII-B2)."""
        return self.core.seq_nonspeculative(uop.seq)

    def tainted(self, preg: int) -> bool:
        """YRoT taint check: a physical register is tainted while the
        youngest access instruction it depends on is still speculative."""
        yrot = self.core.prf.yrot[preg]
        return yrot is not None and not self.core.seq_nonspeculative(yrot)

    def propagated_yrot(self, uop: Uop) -> Optional[int]:
        """Taint propagation at rename: max of the (live) source roots."""
        result: Optional[int] = None
        prf = self.core.prf
        for _, preg in uop.psrcs:
            yrot = prf.yrot[preg]
            if yrot is not None and not self.core.seq_nonspeculative(yrot):
                if result is None or yrot > result:
                    result = yrot
        return result

    def protected_src(self, uop: Uop) -> bool:
        """Whether any renamed register input carries a ProtISA
        protection tag (the register half of Definition 1)."""
        prf = self.core.prf
        return any(prf.prot[preg] for _, preg in uop.psrcs)

    def execute_sensitive_pregs(self, uop: Uop) -> Tuple[int, ...]:
        """Physical registers transmitted when ``uop`` executes
        (memoized on the uop: ``psrcs`` never changes after rename)."""
        pregs = uop.exec_sensitive
        if pregs is None:
            inst = uop.inst
            if inst.is_div and not self.core.config.div_is_transmitter:
                pregs = ()
            else:
                regs = inst.transmit_regs_at_execute()
                pregs = tuple(p for a, p in uop.psrcs if a in regs)
            uop.exec_sensitive = pregs
        return pregs

    def resolve_sensitive_pregs(self, uop: Uop) -> Tuple[int, ...]:
        """Physical registers transmitted when ``uop`` resolves
        (memoized like :meth:`execute_sensitive_pregs`)."""
        pregs = uop.resolve_sensitive
        if pregs is None:
            regs = uop.inst.transmit_regs_at_resolve()
            pregs = tuple(p for a, p in uop.psrcs if a in regs)
            uop.resolve_sensitive = pregs
        return pregs

    def div_gated(self, uop: Uop) -> bool:
        return uop.inst.is_div and self.core.config.div_is_transmitter


class Unsafe(Defense):
    """The unmodified out-of-order core (paper's unsafe baseline)."""

    name = "Unsafe"
    binary = "base"
