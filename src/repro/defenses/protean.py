"""Protean's hardware protection mechanisms (paper SVI).

Both mechanisms enforce the software-programmed ProtISA ProtSet under
Definition 1: *access instructions* are instructions with protected
register or memory inputs; *access transmitters* additionally have a
protected sensitive operand.

* :class:`ProtDelay` extends AccessDelay: (security) access
  transmitters may not transmit until non-speculative; (performance)
  only *unprefixed* accesses delay their dependents' wakeup —
  PROT-prefixed accesses produce protected outputs whose consumers are
  themselves access instructions and are policed downstream.
* :class:`ProtTrack` extends AccessTrack: (security) like ProtDelay for
  access transmitters; (performance) a 1-bit access predictor lets
  loads that will read unprotected memory skip tainting, with secure
  fallbacks to ProtDelay on access false negatives and on forwarding
  from stores of tainted data.

Constructor flags reproduce the paper's SIX-A4 ablation: the raw
AccessDelay/AccessTrack mechanisms applied to ProtISA directly are
``ProtDelay(selective_wakeup=False)`` and
``ProtTrack(use_predictor=False)``.
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from ..isa.operations import Op
from ..uarch.uop import Uop
from .base import Defense
from .predictor import AccessPredictor


class ProtDelay(Defense):
    """Delay-based enforcement of ProtISA ProtSets."""

    name = "Protean-Delay"
    binary = "protcc"

    def __init__(self, selective_wakeup: bool = True) -> None:
        super().__init__()
        self.selective_wakeup = selective_wakeup
        if not selective_wakeup:
            self.name = "AccessDelay-on-ProtISA"

    def compile_params(self):
        return (self.selective_wakeup,)

    # -- security: access transmitters stall until non-speculative --------

    def _protected_sensitive(self, pregs) -> bool:
        prf = self.core.prf
        return any(prf.prot[p] for p in pregs)

    def may_execute(self, uop: Uop) -> bool:
        if uop.inst.is_mem or self.div_gated(uop):
            if self._protected_sensitive(self.execute_sensitive_pregs(uop)):
                return self.nonspeculative(uop)
        return True

    def may_resolve(self, uop: Uop) -> bool:
        if self._protected_sensitive(self.resolve_sensitive_pregs(uop)):
            return self.nonspeculative(uop)
        if uop.inst.op is Op.RET and uop.lsq_prot:
            # The loaded return target is protected data.
            return self.nonspeculative(uop)
        return True

    # -- wakeup delay for access instructions ------------------------------

    def _is_access(self, uop: Uop) -> bool:
        if self.protected_src(uop):
            return True
        if uop.is_load and uop.lsq_prot:
            return True
        if (uop.forwarded_from is not None
                and uop.forwarded_from.lsq_prot):
            return True
        return False

    def may_wakeup(self, uop: Uop) -> bool:
        if not self._is_access(uop):
            return True
        if self.selective_wakeup and uop.inst.prot:
            # PROT-prefixed access: its output is protected; dependents
            # are access instructions themselves and will be delayed as
            # needed (paper SVI-B1).
            return True
        return self.nonspeculative(uop)

    # Every ProtDelay refusal is a ``nonspeculative(uop)`` miss; the
    # protection tags it also consults are fixed per physical register.

    def execute_recheck_seq(self, uop: Uop) -> int:
        return self._nonspec_flip_seq(uop.seq)

    def resolve_recheck_seq(self, uop: Uop) -> int:
        return self._nonspec_flip_seq(uop.seq)

    def wakeup_recheck_seq(self, uop: Uop) -> int:
        return self._nonspec_flip_seq(uop.seq)


class ProtTrack(Defense):
    """Taint-based enforcement of ProtISA ProtSets with a secure access
    predictor."""

    name = "Protean-Track"
    binary = "protcc"

    #: ``on_load_executed`` only touches ``_fallback`` /
    #: ``_forward_gated`` entries keyed by the executing load itself —
    #: it never changes a gate answer for any *other* uop, so the fast
    #: path need not invalidate its caches on load execution.
    recheck_on_load_execute = False

    def __init__(self, use_predictor: bool = True,
                 predictor_entries: Optional[int] = 1024) -> None:
        super().__init__()
        self.use_predictor = use_predictor
        self.predictor = AccessPredictor(predictor_entries)
        # Present from cycle 0 so the exported stats schema is stable
        # (these track the predictor's counters at each load commit).
        self.stats["predictions"] = 0
        self.stats["mispredictions"] = 0
        if not use_predictor:
            self.name = "AccessTrack-on-ProtISA"
        #: Loads that must fall back to ProtDelay-style wakeup gating:
        #: access-predictor false negatives (paper SVI-B2b).
        self._fallback: Set[int] = set()
        #: Untainted loads forwarding from stores of tainted data
        #: (paper SVI-B2c): load seq -> the store uop.
        self._forward_gated: Dict[int, Uop] = {}

    def compile_params(self):
        return (self.use_predictor, self.predictor.entries)

    # -- rename: taint decisions -------------------------------------------

    def on_rename(self, uop: Uop) -> None:
        prf = self.core.prf
        inst = uop.inst
        yrot = self.propagated_yrot(uop)
        if self.protected_src(uop) and not inst.prot:
            # An unprefixed instruction reading protected data produces
            # an (architecturally unprotected) output that speculatively
            # still carries protected data: taint it until this
            # instruction is non-speculative.
            yrot = uop.seq
        if uop.is_load:
            predicted_access = True
            if self.use_predictor:
                predicted_access = self.predictor.predict_access(uop.pc)
            uop.predicted_no_access = not predicted_access
            if predicted_access and not inst.prot:
                # Predicted to read protected memory into an unprotected
                # output: taint.  (A PROT-prefixed load's output is
                # covered by its protection tag instead.)
                yrot = uop.seq
        for _, preg in uop.pdests:
            prf.yrot[preg] = yrot

    # -- transmitter gating ---------------------------------------------------

    def _gate(self, uop: Uop, pregs) -> bool:
        prf = self.core.prf
        if any(prf.prot[p] for p in pregs):
            # Access transmitter: protected sensitive operand.
            return self.nonspeculative(uop)
        if any(self.tainted(p) for p in pregs):
            return False  # wait for the untaint broadcast
        return True

    def may_execute(self, uop: Uop) -> bool:
        if uop.inst.is_mem or self.div_gated(uop):
            return self._gate(uop, self.execute_sensitive_pregs(uop))
        return True

    def may_resolve(self, uop: Uop) -> bool:
        if not self._gate(uop, self.resolve_sensitive_pregs(uop)):
            return False
        if uop.inst.op is Op.RET:
            if uop.lsq_prot:
                return self.nonspeculative(uop)
            store = uop.forwarded_from
            if store is not None and self._store_data_tainted(store):
                return False
        return True

    # -- fast-path stability hints (one per refusing clause above) --------

    def _gate_recheck_seq(self, uop: Uop, pregs) -> int:
        if any(self.core.prf.prot[p] for p in pregs):
            # Refused by the protected-sensitive clause (protection tags
            # are fixed per preg, so the clause selection is stable).
            return self._nonspec_flip_seq(uop.seq)
        return self._taint_flip_seq(pregs)

    def execute_recheck_seq(self, uop: Uop) -> int:
        return self._gate_recheck_seq(uop, self.execute_sensitive_pregs(uop))

    def resolve_recheck_seq(self, uop: Uop) -> int:
        flip = self._gate_recheck_seq(uop, self.resolve_sensitive_pregs(uop))
        if uop.inst.op is Op.RET:
            if uop.lsq_prot:
                flip = min(flip, self._nonspec_flip_seq(uop.seq))
            store = uop.forwarded_from
            if store is not None:
                data_reg = store.inst.data_reg()
                if data_reg is not None:
                    flip = min(flip, self._taint_flip_seq(
                        (store.phys_for(data_reg),)))
        return flip

    def wakeup_recheck_seq(self, uop: Uop) -> Optional[int]:
        if uop.seq in self._fallback:
            return self._nonspec_flip_seq(uop.seq)
        store = self._forward_gated.get(uop.seq)
        if store is not None:
            data_reg = store.inst.data_reg()
            if data_reg is None:
                return None  # unreachable: CALL data is never tainted
            return self._taint_flip_seq((store.phys_for(data_reg),))
        return None

    # -- load execution: misprediction recovery -------------------------------

    def _store_data_tainted(self, store: Uop) -> bool:
        data_reg = store.inst.data_reg()
        if data_reg is None:
            return False  # CALL pushes a constant
        preg = store.phys_for(data_reg)
        return self.tainted(preg)

    def on_load_executed(self, uop: Uop) -> None:
        uop.actual_access = bool(uop.lsq_prot)
        if uop.predicted_no_access and uop.actual_access:
            # Access false negative: the load's output was predictively
            # untainted but holds protected data.  Fall back to
            # ProtDelay: no dependent wakeup until the load retires.
            self.predictor.false_negatives += 0  # counted at train time
            self._fallback.add(uop.seq)
        if (uop.forwarded_from is not None
                and not self.tainted_dests(uop)
                and self._store_data_tainted(uop.forwarded_from)):
            # Untainted load forwarding from a store of tainted data:
            # gate its wakeup until the store's data untaints.
            self._forward_gated[uop.seq] = uop.forwarded_from

    def tainted_dests(self, uop: Uop) -> bool:
        return any(self.tainted(p) for _, p in uop.pdests)

    def may_wakeup(self, uop: Uop) -> bool:
        if uop.seq in self._fallback:
            if self.nonspeculative(uop):
                self._fallback.discard(uop.seq)
                return True
            return False
        store = self._forward_gated.get(uop.seq)
        if store is not None:
            if store.squashed or not self._store_data_tainted(store):
                del self._forward_gated[uop.seq]
                return True
            return False
        return True

    # -- retire / squash -----------------------------------------------------

    def on_commit(self, uop: Uop) -> None:
        if uop.is_load and self.use_predictor:
            self.predictor.train(uop.pc, bool(uop.lsq_prot),
                                 not uop.predicted_no_access)
            self.stats["predictions"] = self.predictor.predictions
            self.stats["mispredictions"] = self.predictor.mispredictions
        self._fallback.discard(uop.seq)
        self._forward_gated.pop(uop.seq, None)

    def on_squash(self, uop: Uop) -> None:
        self._fallback.discard(uop.seq)
        self._forward_gated.pop(uop.seq, None)
