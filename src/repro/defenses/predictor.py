"""ProtTrack's secure access predictor (paper SVI-B2a, Fig. 5).

A 1-bit, untagged table indexed by the low bits of load PCs.  Each
entry remembers whether the load at that PC read *protected* memory the
last time it retired.  ProtTrack consults it at rename: a load
predicted *no-access* whose output is unprotected is predictively
untainted; mispredictions are handled securely (false negatives fall
back to ProtDelay, paper SVI-B2b).

``entries=None`` models the infinitely-sized predictor of the Fig. 5
sensitivity study (one entry per load PC, no aliasing).
"""

from __future__ import annotations

from typing import Dict, List, Optional


class AccessPredictor:
    """1-bit PC-indexed access predictor."""

    def __init__(self, entries: Optional[int] = 1024) -> None:
        self.entries = entries
        if entries is None:
            self._table: Dict[int, bool] = {}
        else:
            if entries <= 0:
                raise ValueError("predictor needs at least one entry")
            # Initialized to *access* (True): unknown loads are assumed
            # to read protected memory, the safe cold-start default.
            self._bits: List[bool] = [True] * entries
        self.predictions = 0
        self.mispredictions = 0
        self.false_negatives = 0

    def _index(self, pc: int) -> int:
        assert self.entries is not None
        return pc % self.entries

    def predict_access(self, pc: int) -> bool:
        """Predict whether the load at ``pc`` will read protected memory."""
        self.predictions += 1
        if self.entries is None:
            return self._table.get(pc, True)
        return self._bits[self._index(pc)]

    def train(self, pc: int, was_access: bool, predicted: bool) -> None:
        """Retire-time update with the load's actual outcome."""
        if predicted != was_access:
            self.mispredictions += 1
            if was_access:
                self.false_negatives += 1
        if self.entries is None:
            self._table[pc] = was_access
        else:
            self._bits[self._index(pc)] = was_access

    @property
    def misprediction_rate(self) -> float:
        if self.predictions == 0:
            return 0.0
        return self.mispredictions / self.predictions
