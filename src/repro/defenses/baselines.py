"""Secure-baseline protection mechanisms with hardware-defined ProtSets
(paper SIII-C, Tab. I).

* :class:`AccessDelay` — NDA / SpecShield.  ProtSet: all memory.
  Speculative loads execute but may not wake dependents until
  non-speculative.
* :class:`AccessTrack` — STT.  ProtSet: all memory.  Load outputs are
  tainted (YRoT) and transmitters with tainted sensitive operands are
  delayed until untainted; tainted branches delay resolution.
* :class:`SPT` — ProtSet: architecturally untransmitted state.  Like
  AccessTrack, plus *every* transmitter of not-yet-transmitted data is
  delayed until non-speculative; transmitted values (and values derived
  from them) become public and flow freely afterwards.
* :class:`SPTSB` — SPT's secure baseline.  ProtSet: all state.
  XmitDelay: every transmitter waits until it is non-speculative.

All run *base* (uninstrumented) binaries and ignore PROT prefixes.
"""

from __future__ import annotations

from typing import Dict, List

from ..isa.operations import Op
from ..isa.registers import SP
from ..uarch.uop import Uop
from .base import Defense


class AccessDelay(Defense):
    """NDA/SpecShield-style wakeup delay on speculative loads."""

    name = "AccessDelay(NDA)"
    binary = "base"

    def may_wakeup(self, uop: Uop) -> bool:
        if uop.is_load:
            return self.nonspeculative(uop)
        return True

    def wakeup_recheck_seq(self, uop: Uop) -> int:
        # Refused only while the load is speculative.
        return self._nonspec_flip_seq(uop.seq)


class AccessTrack(Defense):
    """STT-style speculative taint tracking."""

    name = "STT"
    binary = "base"

    def on_rename(self, uop: Uop) -> None:
        yrot = self.propagated_yrot(uop)
        if uop.is_load:
            # Every load output is the root of its own taint: loads are
            # the access instructions of STT's hardware-defined ProtSet.
            yrot = uop.seq
        for _, preg in uop.pdests:
            self.core.prf.yrot[preg] = yrot

    def _sensitive_untainted(self, pregs: List[int]) -> bool:
        return not any(self.tainted(p) for p in pregs)

    def may_execute(self, uop: Uop) -> bool:
        if uop.inst.is_mem or self.div_gated(uop):
            return self._sensitive_untainted(
                self.execute_sensitive_pregs(uop))
        return True

    def may_resolve(self, uop: Uop) -> bool:
        if not self._sensitive_untainted(self.resolve_sensitive_pregs(uop)):
            return False
        if uop.inst.op is Op.RET:
            # The loaded return target is the load's own output: tainted
            # until the RET itself is non-speculative.
            return self.nonspeculative(uop)
        return True

    def execute_recheck_seq(self, uop: Uop) -> int:
        # Refused while a sensitive operand is tainted; taints clear as
        # the head passes their roots.
        return self._taint_flip_seq(self.execute_sensitive_pregs(uop))

    def resolve_recheck_seq(self, uop: Uop) -> int:
        flip = self._taint_flip_seq(self.resolve_sensitive_pregs(uop))
        if uop.inst.op is Op.RET:
            flip = min(flip, self._nonspec_flip_seq(uop.seq))
        return flip


class SPT(Defense):
    """Speculative Privacy Tracking: protect whatever has not yet been
    architecturally transmitted."""

    name = "SPT"
    binary = "base"

    def __init__(self) -> None:
        super().__init__()
        #: Memory bytes whose contents have been architecturally
        #: transmitted (SPT's shadow-L1 analogue, slightly idealized:
        #: we do not model its eviction-induced forgetting).
        self._public_mem: set = set()
        #: preg -> producing uop, for the backward invertible closure
        #: (loads additionally declassify the bytes they read).
        self._producer: Dict[int, Uop] = {}
        #: load seq -> whether the loaded word itself was public.
        self._loaded_public: Dict[int, bool] = {}
        self.stats["declassified_pregs"] = 0

    # -- publicness propagation ------------------------------------------

    #: Ops through which SPT's "already transmitted" status propagates
    #: forward: only *invertible* arithmetic (paper SIII-C) — the
    #: attacker can reconstruct the output from the transmitted inputs
    #: and vice versa.  Masking, multiplication, shifts-right, division,
    #: and flag computation are lossy: their fresh outputs have *not*
    #: been transmitted, and SPT must delay their first transmission.
    #: This restriction is exactly what ProtCC-CTS/-CT exploit
    #: (paper SIX-B2/B3).
    _INVERTIBLE_FWD = frozenset({
        Op.MOV, Op.ADD, Op.SUB, Op.XOR, Op.ADDI, Op.SUBI, Op.XORI,
    })

    def on_rename(self, uop: Uop) -> None:
        prf = self.core.prf
        inst = uop.inst
        yrot = self.propagated_yrot(uop)
        if uop.is_load:
            yrot = uop.seq
        if inst.is_load:
            public = False  # refined at execute from the shadow bytes
        elif inst.op is Op.MOVI:
            # Immediates are program text, which the attacker has.
            public = True
        elif not uop.psrcs:
            public = True
        elif inst.op in self._INVERTIBLE_FWD:
            public = all(prf.public[preg] for _, preg in uop.psrcs)
        else:
            public = False
        sp_public = False
        if inst.op in (Op.PUSH, Op.POP, Op.CALL, Op.RET):
            # The stack-pointer update is +/- 8: invertible.
            sp_preg = uop.phys_for(SP)
            sp_public = sp_preg is not None and prf.public[sp_preg]
        for areg, preg in uop.pdests:
            prf.yrot[preg] = yrot
            if areg == SP and inst.op in (Op.PUSH, Op.POP, Op.CALL,
                                          Op.RET):
                prf.public[preg] = sp_public
            else:
                prf.public[preg] = public
            self._producer[preg] = uop

    def on_load_executed(self, uop: Uop) -> None:
        word_public = all(uop.mem_addr + i in self._public_mem
                          for i in range(8))
        if uop.forwarded_from is not None:
            store = uop.forwarded_from
            data_preg = store.phys_for(store.inst.data_reg()) \
                if store.inst.data_reg() is not None else None
            word_public = (data_preg is not None
                           and self.core.prf.public[data_preg])
        self._loaded_public[uop.seq] = word_public
        if word_public:
            for areg, preg in uop.pdests:
                if areg == SP and uop.inst.op is not Op.LOAD:
                    continue  # the SP update is not the loaded value
                self.core.prf.public[preg] = True
                self.core.prf.yrot[preg] = None

    # -- transmitter gating ------------------------------------------------

    def _all_public(self, pregs: List[int]) -> bool:
        prf = self.core.prf
        return all(prf.public[p] for p in pregs)

    def may_execute(self, uop: Uop) -> bool:
        if uop.inst.is_mem or self.div_gated(uop):
            pregs = self.execute_sensitive_pregs(uop)
            if self._all_public(pregs):
                return True
            return self.nonspeculative(uop)
        return True

    def may_resolve(self, uop: Uop) -> bool:
        pregs = self.resolve_sensitive_pregs(uop)
        if uop.inst.op is Op.RET:
            # The target is the loaded return address.
            if not self._loaded_public.get(uop.seq, False):
                return self.nonspeculative(uop)
            return True
        if self._all_public(pregs):
            return True
        return self.nonspeculative(uop)

    # -- declassification at retire -----------------------------------------

    def _make_public(self, preg: int) -> None:
        """Declassify a transmitted value, closing backward through
        invertible dependencies (paper SIII-C: 'directly or indirectly
        via invertible arithmetic dependencies') and through the memory
        it was loaded from (the shadow-L1 analogue)."""
        prf = self.core.prf
        worklist = [preg]
        while worklist:
            current = worklist.pop()
            if prf.public[current]:
                continue
            prf.public[current] = True
            self.stats["declassified_pregs"] += 1
            producer = self._producer.get(current)
            if producer is None:
                continue
            if producer.is_load and producer.mem_addr is not None:
                self._public_mem.update(
                    range(producer.mem_addr, producer.mem_addr + 8))
                continue
            if producer.inst.op not in self._INVERTIBLE_FWD:
                continue
            src_pregs = [p for _, p in producer.psrcs]
            secret_srcs = [p for p in src_pregs if not prf.public[p]]
            if len(secret_srcs) == 1:
                # output + the public co-input determine the last input.
                worklist.append(secret_srcs[0])

    def on_commit(self, uop: Uop) -> None:
        prf = self.core.prf
        # Fully transmitted operands become public...
        transmitted = list(self.execute_sensitive_pregs(uop))
        if uop.inst.is_div:
            transmitted = []  # divisions only *partially* transmit
        transmitted += self.resolve_sensitive_pregs(uop)
        for preg in transmitted:
            self._make_public(preg)
        if uop.inst.op is Op.RET and uop.mem_addr is not None:
            self._public_mem.update(range(uop.mem_addr, uop.mem_addr + 8))
        if uop.is_store and uop.mem_addr is not None:
            data_reg = uop.inst.data_reg()
            if data_reg is None:
                data_public = True  # CALL return addresses are constants
            else:
                data_preg = uop.phys_for(data_reg)
                data_public = prf.public[data_preg]
            span = range(uop.mem_addr, uop.mem_addr + 8)
            if data_public:
                self._public_mem.update(span)
            else:
                self._public_mem.difference_update(span)

        if uop.is_load:
            self._loaded_public.pop(uop.seq, None)

    def on_squash(self, uop: Uop) -> None:
        for _, preg in uop.pdests:
            self._producer.pop(preg, None)
        self._loaded_public.pop(uop.seq, None)


class SPTSB(Defense):
    """SPT's secure baseline: delay every transmitter until it is
    non-speculative (XmitDelay over an all-state ProtSet)."""

    name = "SPT-SB"
    binary = "base"

    def may_execute(self, uop: Uop) -> bool:
        if uop.inst.is_mem or self.div_gated(uop):
            return self.nonspeculative(uop)
        return True

    def may_resolve(self, uop: Uop) -> bool:
        return self.nonspeculative(uop)

    def execute_recheck_seq(self, uop: Uop) -> int:
        return self._nonspec_flip_seq(uop.seq)

    def resolve_recheck_seq(self, uop: Uop) -> int:
        return self._nonspec_flip_seq(uop.seq)
